//! Baseline system emulations (paper §8.1).
//!
//! Each baseline is reconstructed from the same substrate as UGache so
//! that comparisons isolate *policy* and *mechanism*:
//!
//! | system      | policy                    | mechanism      | extra cost |
//! |-------------|---------------------------|----------------|------------|
//! | GNNLab      | replication               | peer (local)   | sampler GPUs + host queues (app level) |
//! | WholeGraph  | partition (must fit all)  | naive peer     | fails on unconnected pairs / small memory |
//! | PartU       | partition (+CPU fallback) | naive peer     | cliques on non-uniform platforms |
//! | RepU        | replication               | naive peer     | — |
//! | Quiver      | clique partition          | naive peer     | — |
//! | HPS         | replication               | naive peer     | LRU online-eviction overhead |
//! | SOK         | partition (+CPU fallback) | message-based  | — |
//! | UGache      | solver (§6)               | factored (§5)  | — |

use cache_policy::{baselines as policies, Hotness, Placement, SolverConfig, UGacheSolver};
use extractor::{ExtractOutcome, Extractor, Mechanism};
use gpu_memsim::SimConfig;
use gpu_platform::{DedicationConfig, Platform};

/// Fractional extraction-time overhead of HPS's LRU bookkeeping (online
/// eviction on every lookup; the paper credits UGache's static design
/// with removing exactly this cost).
const HPS_LRU_OVERHEAD: f64 = 0.20;

/// The systems compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// This paper's system.
    UGache,
    /// GNNLab-style replication cache (paper baseline for GNN).
    GnnLab,
    /// WholeGraph: strict partition, peer access.
    WholeGraph,
    /// PartU: WholeGraph extended with a CPU tier and clique support.
    PartU,
    /// RepU: PartU's codebase with a replication policy.
    RepU,
    /// Quiver-style clique partition.
    Quiver,
    /// HPS: replication + LRU online eviction (paper baseline for DLR).
    Hps,
    /// SOK: partition + message-based extraction.
    Sok,
}

impl SystemKind {
    /// Display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::UGache => "UGache",
            SystemKind::GnnLab => "GNNLab",
            SystemKind::WholeGraph => "WholeGraph",
            SystemKind::PartU => "PartU",
            SystemKind::RepU => "RepU",
            SystemKind::Quiver => "Quiver",
            SystemKind::Hps => "HPS",
            SystemKind::Sok => "SOK",
        }
    }
}

/// A ready-to-measure system: placement + extraction mechanism.
#[derive(Debug, Clone)]
pub struct SystemInstance {
    /// Which system this is.
    pub kind: SystemKind,
    /// The entry-level placement its policy produced.
    pub placement: Placement,
    /// The extraction front-end its mechanism uses.
    pub extractor: Extractor,
    /// Multiplier on extraction time for per-lookup bookkeeping.
    pub overhead_factor: f64,
    /// Bytes per embedding entry.
    pub entry_bytes: usize,
}

impl SystemInstance {
    /// Extracts one iteration's key batches, applying the system's
    /// bookkeeping overhead.
    pub fn extract(&self, keys_per_gpu: &[Vec<u32>]) -> ExtractOutcome {
        let mut out = self
            .extractor
            .extract(&self.placement, keys_per_gpu, self.entry_bytes);
        if self.overhead_factor > 1.0 {
            out.makespan = out.makespan.mul_f64(self.overhead_factor);
            for g in out.per_gpu.iter_mut() {
                g.time = g.time.mul_f64(self.overhead_factor);
            }
        }
        out
    }
}

/// Builds a baseline (or UGache itself) on a platform.
///
/// # Errors
///
/// [`SystemKind::WholeGraph`] fails exactly where the real system fails
/// to launch: unconnected GPU pairs, or total GPU memory below the full
/// embedding volume. [`SystemKind::UGache`] propagates solver errors.
pub fn build_system(
    kind: SystemKind,
    platform: &Platform,
    hotness: &Hotness,
    cap_entries: usize,
    entry_bytes: usize,
    accesses_per_iter: f64,
    seed: u64,
) -> Result<SystemInstance, String> {
    let g = platform.num_gpus();
    let e = hotness.len();
    let naive = Mechanism::PeerNaive { seed };
    let fem = Mechanism::Factored {
        dedication: DedicationConfig::default(),
    };
    let sim = SimConfig::default();

    let (placement, mechanism, overhead) = match kind {
        SystemKind::UGache => {
            let solver = UGacheSolver::new(platform.clone(), DedicationConfig::default());
            let mut cfg = SolverConfig::new(entry_bytes, accesses_per_iter);
            cfg.dedup_adjust = true;
            let solved = solver.solve(hotness, &vec![cap_entries; g], &cfg)?;
            (solved.placement, fem, 1.0)
        }
        SystemKind::GnnLab => (
            policies::replication(platform, hotness, cap_entries),
            naive,
            1.0,
        ),
        SystemKind::WholeGraph => {
            if g * cap_entries < e {
                return Err(format!(
                    "WholeGraph cannot launch: total GPU cache ({}) below embedding count ({e})",
                    g * cap_entries
                ));
            }
            let p = policies::partition(platform, hotness, cap_entries)
                .map_err(|err| format!("WholeGraph cannot launch: {err}"))?;
            (p, naive, 1.0)
        }
        SystemKind::PartU => {
            let p = match policies::partition(platform, hotness, cap_entries) {
                Ok(p) => p,
                Err(_) => policies::clique_partition(platform, hotness, cap_entries),
            };
            (p, naive, 1.0)
        }
        SystemKind::RepU => (
            policies::replication(platform, hotness, cap_entries),
            naive,
            1.0,
        ),
        SystemKind::Quiver => (
            policies::clique_partition(platform, hotness, cap_entries),
            naive,
            1.0,
        ),
        SystemKind::Hps => (
            policies::replication(platform, hotness, cap_entries),
            naive,
            1.0 + HPS_LRU_OVERHEAD,
        ),
        SystemKind::Sok => {
            let p = match policies::partition(platform, hotness, cap_entries) {
                Ok(p) => p,
                Err(_) => policies::clique_partition(platform, hotness, cap_entries),
            };
            (p, Mechanism::MessageBased, 1.0)
        }
    };

    Ok(SystemInstance {
        kind,
        placement,
        extractor: Extractor::new(platform.clone(), sim, mechanism),
        overhead_factor: overhead,
        entry_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emb_util::zipf::powerlaw_hotness;
    use emb_util::{seed_rng, ZipfSampler};

    const N: usize = 40_000;
    const BYTES: usize = 512;

    fn hotness() -> Hotness {
        Hotness::new(powerlaw_hotness(N, 1.2))
    }

    fn batches(g: usize, per_gpu: usize) -> Vec<Vec<u32>> {
        let zipf = ZipfSampler::new(N as u64, 1.2);
        (0..g)
            .map(|i| {
                let mut rng = seed_rng(77 + i as u64);
                let mut v: Vec<u32> = (0..per_gpu).map(|_| zipf.sample(&mut rng) as u32).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect()
    }

    #[test]
    fn all_systems_build_on_server_c() {
        let plat = Platform::server_c();
        let h = hotness();
        for kind in [
            SystemKind::UGache,
            SystemKind::GnnLab,
            SystemKind::PartU,
            SystemKind::RepU,
            SystemKind::Quiver,
            SystemKind::Hps,
            SystemKind::Sok,
        ] {
            let s = build_system(kind, &plat, &h, 1500, BYTES, 2e4, 1).unwrap();
            s.placement.validate().unwrap();
        }
    }

    #[test]
    fn wholegraph_launch_failures_match_paper() {
        let h = hotness();
        // ① total GPU memory below embedding volume.
        let err = build_system(
            SystemKind::WholeGraph,
            &Platform::server_c(),
            &h,
            100,
            BYTES,
            2e4,
            1,
        )
        .unwrap_err();
        assert!(err.contains("cannot launch"));
        // ② unconnected pairs (Server B), even with enough memory.
        let err = build_system(
            SystemKind::WholeGraph,
            &Platform::server_b(),
            &h,
            N,
            BYTES,
            2e4,
            1,
        )
        .unwrap_err();
        assert!(err.contains("cannot launch"));
        // Enough memory + fully connected: launches.
        let ok = build_system(
            SystemKind::WholeGraph,
            &Platform::server_c(),
            &h,
            N / 8 + 1,
            BYTES,
            2e4,
            1,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn ugache_extraction_beats_baselines_end_to_end() {
        let plat = Platform::server_c();
        let h = hotness();
        let keys = batches(8, 20_000);
        let cap = 1500;
        let t = |kind| {
            build_system(kind, &plat, &h, cap, BYTES, 2e4, 1)
                .unwrap()
                .extract(&keys)
                .makespan
        };
        let u = t(SystemKind::UGache);
        for kind in [
            SystemKind::Hps,
            SystemKind::Sok,
            SystemKind::RepU,
            SystemKind::PartU,
        ] {
            let b = t(kind);
            assert!(
                u.as_secs_f64() <= b.as_secs_f64() * 1.02,
                "UGache {u} vs {} {b}",
                kind.name()
            );
        }
    }

    #[test]
    fn hps_overhead_applies() {
        let plat = Platform::server_a();
        let h = hotness();
        let keys = batches(4, 10_000);
        let hps = build_system(SystemKind::Hps, &plat, &h, 1000, BYTES, 1e4, 1).unwrap();
        let repu = build_system(SystemKind::RepU, &plat, &h, 1000, BYTES, 1e4, 1).unwrap();
        let t_hps = hps.extract(&keys).makespan;
        let t_repu = repu.extract(&keys).makespan;
        let ratio = t_hps.as_secs_f64() / t_repu.as_secs_f64();
        assert!(
            (ratio - (1.0 + HPS_LRU_OVERHEAD)).abs() < 0.02,
            "ratio {ratio}"
        );
    }

    #[test]
    fn partu_falls_back_to_cliques_on_server_b() {
        let plat = Platform::server_b();
        let h = hotness();
        let s = build_system(SystemKind::PartU, &plat, &h, 1000, BYTES, 2e4, 1).unwrap();
        s.placement.validate().unwrap();
        // GPU0 must never read from the other clique.
        for e in 0..N {
            let src = s.placement.access[0][e];
            assert!(src == s.placement.host_idx() || src < 4);
        }
    }
}
