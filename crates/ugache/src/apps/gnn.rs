//! End-to-end GNN training epochs (Figure 10, left).

use crate::apps::cost::{MlpCostModel, SamplingCostModel};
use crate::baselines::{build_system, SystemKind};
use cache_policy::Hotness;
use emb_workload::{GnnDataset, GnnWorkload};
use gpu_platform::Platform;

/// App-level configuration for GNN epoch runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnnAppConfig {
    /// Seeds per GPU per iteration (paper default 8K at full scale).
    pub batch_size: usize,
    /// Iterations actually simulated; the epoch extrapolates from their
    /// mean (the workload is stationary within an epoch).
    pub measure_iters: usize,
    /// Dense cost model.
    pub mlp: MlpCostModel,
    /// Sampling cost model.
    pub sampling: SamplingCostModel,
    /// GNNLab only: GPUs dedicated to sampling (0 = auto, `⌈G/4⌉`).
    pub gnnlab_sampler_gpus: usize,
}

impl Default for GnnAppConfig {
    fn default() -> Self {
        GnnAppConfig {
            batch_size: 1024,
            measure_iters: 3,
            mlp: MlpCostModel::default(),
            sampling: SamplingCostModel::default(),
            gnnlab_sampler_gpus: 0,
        }
    }
}

/// End-to-end breakdown of one training epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// System under test.
    pub system: String,
    /// Iterations per epoch (accounting for GNNLab's reduced trainers).
    pub iters: usize,
    /// Embedding-extraction seconds per epoch.
    pub extract_secs: f64,
    /// Neighbourhood-sampling seconds per epoch (overlapped portions
    /// excluded from `epoch_secs` where the system overlaps them).
    pub sample_secs: f64,
    /// Dense-layer training seconds per epoch.
    pub train_secs: f64,
    /// Queue/transfer overheads per epoch (GNNLab's host queues).
    pub other_secs: f64,
    /// End-to-end epoch seconds.
    pub epoch_secs: f64,
    /// Mean unique keys per GPU per iteration (diagnostic).
    pub keys_per_iter: f64,
    /// Mean per-iteration extraction seconds (diagnostic).
    pub extract_per_iter_secs: f64,
}

/// Cache capacity (entries per GPU) available to `kind` on `platform`
/// for `dataset`, using the scaled memory budget described in
/// `DESIGN.md`: GPU memory is divided by the dataset's scale divisor,
/// 60 % of it is usable for caching, and systems that keep the graph
/// topology on the GPUs (WholeGraph lineage, including UGache, which
/// reuses WholeGraph's sampler) subtract a `1/G` graph shard. GNNLab's
/// trainers hold no graph — that is precisely its capacity advantage.
pub fn gnn_cache_capacity(platform: &Platform, dataset: &GnnDataset, kind: SystemKind) -> usize {
    let g = platform.num_gpus() as u64;
    let mem = platform.gpus[0].mem_bytes / dataset.scale_div as u64;
    let usable = (mem as f64 * 0.6) as u64;
    let graph_share = match kind {
        SystemKind::GnnLab => 0,
        _ => dataset.graph.topology_bytes() / g,
    };
    (usable.saturating_sub(graph_share) / dataset.entry_bytes as u64) as usize
}

/// Expected pre-dedup vertex visits per GPU per iteration (sampling cost
/// driver): `batch × (1 + f₁ + f₁f₂ + …)`, doubled for negative seeds.
fn expected_visits(workload: &GnnWorkload, batch_size: usize) -> f64 {
    let sampler = workload.model().sampler();
    let mut per_seed = 1.0;
    let mut frontier = 1.0;
    for &f in &sampler.fanouts {
        frontier *= f as f64;
        per_seed += frontier;
    }
    let negs = 1.0 + sampler.negatives_per_seed as f64;
    batch_size as f64 * per_seed * negs
}

/// Runs (a sampled estimate of) one training epoch for `kind`.
///
/// # Errors
///
/// Propagates system build failures (e.g. WholeGraph launch failure).
pub fn run_gnn_epoch(
    kind: SystemKind,
    platform: &Platform,
    workload: &mut GnnWorkload,
    hotness: &Hotness,
    cfg: &GnnAppConfig,
) -> Result<EpochReport, String> {
    let g = platform.num_gpus();
    let dataset = workload.dataset().clone();
    let cap = gnn_cache_capacity(platform, &dataset, kind);
    let entry_bytes = dataset.entry_bytes;

    // Measure a few iterations' key volume first to scale the solver.
    let mut probe = workload.clone();
    let accesses = probe.measure_accesses_per_iter(2);

    let system = build_system(kind, platform, hotness, cap, entry_bytes, accesses, 0xE9)?;

    let mut extract_sum = 0.0f64;
    let mut keys_sum = 0.0f64;
    for _ in 0..cfg.measure_iters.max(1) {
        let keys = workload.next_batch();
        keys_sum += keys.iter().map(|k| k.len()).sum::<usize>() as f64 / g as f64;
        extract_sum += system.extract(&keys).makespan.as_secs_f64();
    }
    let iters_meas = cfg.measure_iters.max(1) as f64;
    let extract_per_iter = extract_sum / iters_meas;
    let keys_per_iter = keys_sum / iters_meas;

    let visits = expected_visits(workload, cfg.batch_size);
    let sample_per_iter = cfg.sampling.sample_secs(visits);
    let train_per_iter = cfg.mlp.gnn_train_secs(
        &platform.gpus[0],
        keys_per_iter as usize,
        dataset.dim,
        workload.model().mlp_layers(),
    );

    let train_set = dataset.train_set.len();
    let (iters, iter_secs, sample_epoch, other_epoch) = match kind {
        SystemKind::GnnLab => {
            // Dedicated sampler GPUs overlap sampling with training but
            // shrink the trainer pool and add host-queue transfers.
            let samplers = if cfg.gnnlab_sampler_gpus > 0 {
                cfg.gnnlab_sampler_gpus.min(g - 1)
            } else {
                g.div_ceil(4).min(g - 1)
            };
            let trainers = g - samplers;
            let iters = train_set.div_ceil(cfg.batch_size * trainers).max(1);
            // Samplers produce `trainers` batches per iteration.
            let sample_rate = sample_per_iter * trainers as f64 / samplers as f64;
            // Queue transfer: sampled subgraphs (ids + offsets ≈ 8 B per
            // visit) cross host memory between sampler and trainer.
            let queue = visits * 8.0 / platform.gpus[0].pcie_bw;
            let compute = extract_per_iter + train_per_iter + queue;
            (
                iters,
                compute.max(sample_rate),
                sample_rate * iters as f64,
                queue * iters as f64,
            )
        }
        _ => {
            // Co-located sampling: sample → extract → train per iteration.
            let iters = train_set.div_ceil(cfg.batch_size * g).max(1);
            let it = sample_per_iter + extract_per_iter + train_per_iter;
            (iters, it, sample_per_iter * iters as f64, 0.0)
        }
    };

    Ok(EpochReport {
        system: kind.name().to_string(),
        iters,
        extract_secs: extract_per_iter * iters as f64,
        sample_secs: sample_epoch,
        train_secs: train_per_iter * iters as f64,
        other_secs: other_epoch,
        epoch_secs: iter_secs * iters as f64,
        keys_per_iter,
        extract_per_iter_secs: extract_per_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emb_workload::{gnn_preset, GnnDatasetId, GnnModel};

    fn setup(platform: &Platform) -> (GnnWorkload, Hotness) {
        let d = gnn_preset(GnnDatasetId::Pa, 2048, 3);
        let mut w = GnnWorkload::new(
            d,
            GnnModel::GraphSageSupervised,
            512,
            platform.num_gpus(),
            5,
        );
        let h = w.profile_hotness(2);
        (w, h)
    }

    fn cfg() -> GnnAppConfig {
        GnnAppConfig {
            batch_size: 512,
            measure_iters: 2,
            ..Default::default()
        }
    }

    #[test]
    fn epoch_report_is_consistent() {
        let plat = Platform::server_a();
        let (mut w, h) = setup(&plat);
        let r = run_gnn_epoch(SystemKind::UGache, &plat, &mut w, &h, &cfg()).unwrap();
        assert!(r.epoch_secs > 0.0);
        assert!(r.iters >= 1);
        assert!(r.extract_secs > 0.0);
        assert!(r.epoch_secs >= r.extract_secs * 0.99);
    }

    #[test]
    fn ugache_beats_baselines_on_server_a() {
        let plat = Platform::server_a();
        let (mut w, h) = setup(&plat);
        let c = cfg();
        let u = run_gnn_epoch(SystemKind::UGache, &plat, &mut w.clone(), &h, &c).unwrap();
        let gl = run_gnn_epoch(SystemKind::GnnLab, &plat, &mut w.clone(), &h, &c).unwrap();
        let pu = run_gnn_epoch(SystemKind::PartU, &plat, &mut w, &h, &c).unwrap();
        assert!(
            u.epoch_secs <= gl.epoch_secs * 1.05,
            "UGache {} vs GNNLab {}",
            u.epoch_secs,
            gl.epoch_secs
        );
        assert!(
            u.epoch_secs <= pu.epoch_secs * 1.05,
            "UGache {} vs PartU {}",
            u.epoch_secs,
            pu.epoch_secs
        );
    }

    #[test]
    fn gnnlab_has_capacity_advantage_but_queue_cost() {
        let plat = Platform::server_a();
        let d = gnn_preset(GnnDatasetId::Pa, 2048, 3);
        let cap_gnnlab = gnn_cache_capacity(&plat, &d, SystemKind::GnnLab);
        let cap_wg = gnn_cache_capacity(&plat, &d, SystemKind::WholeGraph);
        assert!(cap_gnnlab > cap_wg);
        let (mut w, h) = setup(&plat);
        let r = run_gnn_epoch(SystemKind::GnnLab, &plat, &mut w, &h, &cfg()).unwrap();
        assert!(r.other_secs > 0.0, "GNNLab must pay queue overhead");
    }

    #[test]
    fn unsupervised_epoch_is_heavier_than_supervised() {
        let plat = Platform::server_a();
        let d = gnn_preset(GnnDatasetId::Pa, 2048, 3);
        let mk = |model| {
            let mut w = GnnWorkload::new(d.clone(), model, 512, 4, 5);
            let h = w.profile_hotness(2);
            run_gnn_epoch(SystemKind::UGache, &plat, &mut w, &h, &cfg()).unwrap()
        };
        let sup = mk(GnnModel::GraphSageSupervised);
        let unsup = mk(GnnModel::GraphSageUnsupervised);
        assert!(unsup.extract_per_iter_secs > sup.extract_per_iter_secs);
    }
}
