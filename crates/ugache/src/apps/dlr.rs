//! End-to-end DLR inference iterations (Figure 10, right).

use crate::apps::cost::{DlrModel, MlpCostModel};
use crate::baselines::{build_system, SystemKind};
use cache_policy::Hotness;
use emb_workload::{DlrDataset, DlrWorkload};
use gpu_platform::Platform;

/// End-to-end numbers for DLR inference.
#[derive(Debug, Clone, PartialEq)]
pub struct DlrIterationReport {
    /// System under test.
    pub system: String,
    /// Mean embedding-extraction seconds per iteration.
    pub extract_secs: f64,
    /// Dense (MLP/Cross) seconds per iteration.
    pub mlp_secs: f64,
    /// Mean end-to-end iteration seconds.
    pub iteration_secs: f64,
    /// Mean unique keys per GPU per iteration.
    pub keys_per_iter: f64,
}

/// Cache capacity (entries per GPU) for DLR on a scaled platform: 60 % of
/// the scale-divided HBM (no graph shard; inference workspaces are small).
pub fn dlr_cache_capacity(platform: &Platform, dataset: &DlrDataset) -> usize {
    let mem = platform.gpus[0].mem_bytes / dataset.scale_div as u64;
    ((mem as f64 * 0.6) as u64 / dataset.entry_bytes as u64) as usize
}

/// Measures mean per-iteration time for `kind` over `iters` batches.
///
/// # Errors
///
/// Propagates system build failures.
pub fn run_dlr_iterations(
    kind: SystemKind,
    platform: &Platform,
    workload: &mut DlrWorkload,
    hotness: &Hotness,
    model: DlrModel,
    batch_size: usize,
    iters: usize,
) -> Result<DlrIterationReport, String> {
    let g = platform.num_gpus();
    let dataset = workload.dataset().clone();
    let cap = dlr_cache_capacity(platform, &dataset);

    let mut probe = workload.clone();
    let accesses = probe.measure_accesses_per_iter(2);
    let system = build_system(
        kind,
        platform,
        hotness,
        cap,
        dataset.entry_bytes,
        accesses,
        0xD7,
    )?;

    let mlp = MlpCostModel::default();
    let mlp_secs = mlp.dlr_infer_secs(&platform.gpus[0], batch_size, model);

    let mut extract_sum = 0.0;
    let mut keys_sum = 0.0;
    let n = iters.max(1);
    for _ in 0..n {
        let keys = workload.next_batch();
        keys_sum += keys.iter().map(|k| k.len()).sum::<usize>() as f64 / g as f64;
        extract_sum += system.extract(&keys).makespan.as_secs_f64();
    }
    let extract_secs = extract_sum / n as f64;

    Ok(DlrIterationReport {
        system: kind.name().to_string(),
        extract_secs,
        mlp_secs,
        iteration_secs: extract_secs + mlp_secs,
        keys_per_iter: keys_sum / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emb_workload::dlr::DlrHotness;
    use emb_workload::{dlr_preset, DlrDatasetId};

    fn setup(platform: &Platform, id: DlrDatasetId) -> (DlrWorkload, Hotness) {
        let d = dlr_preset(id, 8192);
        let mut w = DlrWorkload::new(d, 256, platform.num_gpus(), 13);
        let h = w.hotness(DlrHotness::Analytic);
        (w, h)
    }

    #[test]
    fn report_is_consistent() {
        let plat = Platform::server_a();
        let (mut w, h) = setup(&plat, DlrDatasetId::SynA);
        let r = run_dlr_iterations(
            SystemKind::UGache,
            &plat,
            &mut w,
            &h,
            DlrModel::Dlrm,
            256,
            2,
        )
        .unwrap();
        assert!(r.extract_secs > 0.0);
        assert!((r.iteration_secs - (r.extract_secs + r.mlp_secs)).abs() < 1e-12);
    }

    #[test]
    fn ugache_beats_hps_and_sok() {
        let plat = Platform::server_a();
        let (w, h) = setup(&plat, DlrDatasetId::SynA);
        let run = |kind| {
            run_dlr_iterations(kind, &plat, &mut w.clone(), &h, DlrModel::Dlrm, 256, 2)
                .unwrap()
                .iteration_secs
        };
        let u = run(SystemKind::UGache);
        let hps = run(SystemKind::Hps);
        let sok = run(SystemKind::Sok);
        assert!(u <= hps * 1.02, "UGache {u} vs HPS {hps}");
        assert!(u <= sok * 1.02, "UGache {u} vs SOK {sok}");
    }

    #[test]
    fn higher_skew_shifts_the_balance_toward_replication() {
        // Paper §8.2: with higher skewness, SOK's partition cache loses
        // ground to HPS's replication cache. At reproduction scale the
        // robust form of that claim is the *ratio* SOK/HPS growing with
        // skew from SYN-A (α=1.2) to SYN-B (α=1.4).
        let plat = Platform::server_a();
        let ratio = |id| {
            let (w, h) = setup(&plat, id);
            let run = |kind| {
                run_dlr_iterations(kind, &plat, &mut w.clone(), &h, DlrModel::Dlrm, 256, 2)
                    .unwrap()
                    .extract_secs
            };
            run(SystemKind::Sok) / run(SystemKind::Hps)
        };
        let a = ratio(DlrDatasetId::SynA);
        let b = ratio(DlrDatasetId::SynB);
        assert!(b > a, "SOK/HPS ratio should grow with skew: {a} -> {b}");
    }

    #[test]
    fn dcn_iteration_is_slower_than_dlrm() {
        let plat = Platform::server_a();
        let (w, h) = setup(&plat, DlrDatasetId::SynA);
        let a = run_dlr_iterations(
            SystemKind::UGache,
            &plat,
            &mut w.clone(),
            &h,
            DlrModel::Dlrm,
            256,
            1,
        )
        .unwrap();
        let b = run_dlr_iterations(
            SystemKind::UGache,
            &plat,
            &mut w.clone(),
            &h,
            DlrModel::Dcn,
            256,
            1,
        )
        .unwrap();
        assert!(b.mlp_secs > a.mlp_secs);
    }
}
