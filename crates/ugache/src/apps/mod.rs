//! End-to-end application models (paper §8.1).
//!
//! The embedding layer is the optimization target; everything around it
//! (dense layers, GNN sampling, GNNLab's host queues) is modelled with
//! calibrated analytic costs so end-to-end epoch/iteration times can be
//! compared across systems, as in the paper's Figure 10.

pub mod cost;
pub mod dlr;
pub mod gnn;

pub use cost::{DlrModel, MlpCostModel, SamplingCostModel};
pub use dlr::{run_dlr_iterations, DlrIterationReport};
pub use gnn::{gnn_cache_capacity, run_gnn_epoch, EpochReport, GnnAppConfig};
