//! Analytic cost models for the non-embedding parts of the pipeline.
//!
//! The paper varies dataset and sampling method to vary the embedding
//! workload and holds the dense part constant (§8.1: "the model type
//! mainly affects the performance of the dense layer"), so dense costs
//! only need to be *plausible and consistent*: FLOP counts divided by a
//! derated device rate, calibrated against the paper's Table 1 breakdown
//! (≈10 ms of MLP per 8 K-seed unsupervised GraphSAGE iteration on an
//! A100).

use gpu_platform::GpuSpec;

/// DLR model presets (§8.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DlrModel {
    /// DLRM: six MLP layers + one embedding layer.
    Dlrm,
    /// DCN: DLRM plus a Cross layer.
    Dcn,
}

impl DlrModel {
    /// All models in paper order.
    pub const ALL: [DlrModel; 2] = [DlrModel::Dlrm, DlrModel::Dcn];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DlrModel::Dlrm => "DLRM",
            DlrModel::Dcn => "DCN",
        }
    }

    /// Dense FLOPs per request (bottom + top MLP stacks; DCN adds the
    /// cross-layer outer products).
    pub fn flops_per_request(self) -> f64 {
        match self {
            DlrModel::Dlrm => 2.0e6,
            DlrModel::Dcn => 2.6e6,
        }
    }
}

/// Dense-layer cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpCostModel {
    /// Hidden width of the GNN dense layers.
    pub hidden_dim: usize,
    /// Fraction of peak FLOP/s actually achieved (memory-bound GEMMs).
    pub efficiency: f64,
}

impl Default for MlpCostModel {
    fn default() -> Self {
        MlpCostModel {
            hidden_dim: 128,
            efficiency: 0.5,
        }
    }
}

impl MlpCostModel {
    /// Seconds of dense compute for one GNN training iteration that
    /// gathered `unique_keys` embeddings of width `dim` through `layers`
    /// message-passing layers (forward + backward ≈ 3 passes).
    pub fn gnn_train_secs(
        &self,
        gpu: &GpuSpec,
        unique_keys: usize,
        dim: usize,
        layers: usize,
    ) -> f64 {
        let flops =
            3.0 * layers as f64 * unique_keys as f64 * dim as f64 * self.hidden_dim as f64 * 2.0;
        flops / (gpu.flops * self.efficiency)
    }

    /// Seconds of dense compute for one DLR inference iteration.
    pub fn dlr_infer_secs(&self, gpu: &GpuSpec, batch_size: usize, model: DlrModel) -> f64 {
        batch_size as f64 * model.flops_per_request() / (gpu.flops * self.efficiency)
    }
}

/// GNN neighbourhood-sampling cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingCostModel {
    /// Edge samples per second one GPU sustains.
    pub edges_per_sec: f64,
}

impl Default for SamplingCostModel {
    fn default() -> Self {
        SamplingCostModel { edges_per_sec: 4e8 }
    }
}

impl SamplingCostModel {
    /// Seconds to draw `visits` edge samples on one GPU.
    pub fn sample_secs(&self, visits: f64) -> f64 {
        visits / self.edges_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_calibration_is_in_range() {
        // Unsupervised GraphSAGE on A100: ~8K seeds doubled by negatives,
        // 2-hop 25×10 expansion, dim 768 (MAG) → paper reports ~10.6 ms.
        let gpu = GpuSpec::a100(80);
        let m = MlpCostModel::default();
        let unique = 350_000;
        let t = m.gnn_train_secs(&gpu, unique, 768, 2);
        assert!(
            (0.005..0.06).contains(&t),
            "MLP estimate {t}s out of plausible range"
        );
    }

    #[test]
    fn dcn_costs_more_than_dlrm() {
        let gpu = GpuSpec::a100(80);
        let m = MlpCostModel::default();
        let a = m.dlr_infer_secs(&gpu, 8192, DlrModel::Dlrm);
        let b = m.dlr_infer_secs(&gpu, 8192, DlrModel::Dcn);
        assert!(b > a);
        // Single-digit milliseconds for an 8K batch.
        assert!((0.0001..0.02).contains(&a), "DLRM {a}s");
    }

    #[test]
    fn v100_is_slower_than_a100() {
        let m = MlpCostModel::default();
        let t_v = m.gnn_train_secs(&GpuSpec::v100(16), 100_000, 128, 2);
        let t_a = m.gnn_train_secs(&GpuSpec::a100(80), 100_000, 128, 2);
        assert!(t_v > t_a);
    }

    #[test]
    fn sampling_scales_linearly() {
        let s = SamplingCostModel::default();
        assert!((s.sample_secs(4e8) - 1.0).abs() < 1e-12);
        assert!((s.sample_secs(2e8) - 0.5).abs() < 1e-12);
    }
}
