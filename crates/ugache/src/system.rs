//! The composed UGache system (paper §4).

use cache_policy::{Hotness, Placement, SolverConfig, UGacheSolver};
use emb_cache::{HostTable, HotnessSampler, MultiGpuCache, RefreshConfig, Refresher};
use extractor::{ExtractOutcome, Extractor, Mechanism};
use gpu_memsim::SimConfig;
use gpu_platform::{DedicationConfig, Platform};

/// Configuration of a UGache instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UGacheConfig {
    /// Core-dedication tunables (§5.3).
    pub dedication: DedicationConfig,
    /// Timing-simulator parameters.
    pub sim: SimConfig,
    /// Solver parameters (block batching, scaling).
    pub solver: SolverConfig,
    /// Refresher parameters (§7.2).
    pub refresh: RefreshConfig,
    /// Hotness sampling stride (1 = count every key).
    pub sample_stride: usize,
}

impl UGacheConfig {
    /// A reasonable default for the given entry size and measured
    /// accesses per iteration.
    pub fn new(entry_bytes: usize, accesses_per_iter: f64) -> Self {
        let mut solver = SolverConfig::new(entry_bytes, accesses_per_iter);
        // Batches are deduplicated; size the time model accordingly.
        solver.dedup_adjust = true;
        UGacheConfig {
            dedication: DedicationConfig::default(),
            sim: SimConfig::default(),
            solver,
            refresh: RefreshConfig::default(),
            sample_stride: 16,
        }
    }
}

/// Timing and hit statistics of one data-parallel iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationReport {
    /// Simulated extraction outcome (slowdown-adjusted).
    pub extract: ExtractOutcome,
    /// Whether a refresh was active during the iteration.
    pub refresh_active: bool,
    /// Virtual time at the end of the iteration (seconds).
    pub clock: f64,
}

/// A live UGache instance managing one embedding table across GPUs.
pub struct UGache {
    platform: Platform,
    solver: UGacheSolver,
    extractor: Extractor,
    cache: MultiGpuCache,
    sampler: HotnessSampler,
    refresher: Refresher,
    cfg: UGacheConfig,
    cap_entries: Vec<usize>,
    predicted_secs: f64,
    clock: f64,
    /// Open telemetry span for an in-flight refresh (inert when no scope
    /// was active at refresh start).
    refresh_span: Option<emb_telemetry::SpanId>,
}

impl UGache {
    /// Builds a UGache: solves the policy for `hotness`, fills the cache,
    /// and stands up the factored extractor.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn build(
        platform: Platform,
        host: HostTable,
        hotness: &Hotness,
        cap_entries: Vec<usize>,
        cfg: UGacheConfig,
    ) -> Result<Self, String> {
        assert_eq!(
            hotness.len(),
            host.num_entries(),
            "hotness/table size mismatch"
        );
        let solver = UGacheSolver::new(platform.clone(), cfg.dedication);
        let solved = solver.solve(hotness, &cap_entries, &cfg.solver)?;
        let cache = MultiGpuCache::build(host, &solved.placement, &cap_entries);
        let extractor = Extractor::new(
            platform.clone(),
            cfg.sim,
            Mechanism::Factored {
                dedication: cfg.dedication,
            },
        );
        let sampler = HotnessSampler::new(hotness.len(), cfg.sample_stride);
        let refresher = Refresher::new(cfg.refresh);
        Ok(UGache {
            platform,
            solver,
            extractor,
            cache,
            sampler,
            refresher,
            cfg,
            cap_entries,
            predicted_secs: solved.predicted_secs,
            clock: 0.0,
            refresh_span: None,
        })
    }

    /// The platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The active placement.
    pub fn placement(&self) -> &Placement {
        self.cache.placement()
    }

    /// Current virtual time in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The solver's predicted per-iteration extraction time (seconds).
    pub fn predicted_extraction_secs(&self) -> f64 {
        self.predicted_secs
    }

    /// Completed refresh durations (seconds).
    pub fn refresh_history(&self) -> &[f64] {
        self.refresher.history.as_slice()
    }

    /// Functional gather for one GPU: fills `out` with real embedding
    /// values and feeds the hotness sampler.
    pub fn gather(&mut self, gpu: usize, keys: &[u32], out: &mut [f32]) -> emb_cache::GatherStats {
        self.sampler.observe(keys);
        self.cache.gather(gpu, keys, out)
    }

    /// One timed data-parallel iteration: simulates extraction of
    /// `keys_per_gpu` under the current placement, advances the virtual
    /// clock, ticks the refresher, and applies its foreground impact.
    pub fn process_iteration(&mut self, keys_per_gpu: &[Vec<u32>]) -> IterationReport {
        for keys in keys_per_gpu {
            self.sampler.observe(keys);
        }
        let base_ns = emb_telemetry::clock_ns();
        // Split keys by source with the cache's plan counting pass
        // (identical to `Placement::split_keys`, but reusing the gather
        // plan's buffers) and hand the counts straight to the extractor.
        let splits = self.cache.access_splits(keys_per_gpu);
        let mut outcome = self
            .extractor
            .extract_splits(&splits, self.cfg.solver.entry_bytes);
        let slowdown = self.refresher.slowdown();
        if slowdown > 1.0 {
            let unadjusted = outcome.makespan;
            outcome.makespan = outcome.makespan.mul_f64(slowdown);
            for g in outcome.per_gpu.iter_mut() {
                g.time = g.time.mul_f64(slowdown);
            }
            // The extractor advanced the scope clock by the raw makespan;
            // push it past the refresh-induced slowdown too so the
            // iteration span covers the adjusted window.
            emb_telemetry::advance_clock_ns((outcome.makespan - unadjusted).as_nanos());
        }
        self.clock += outcome.makespan.as_secs_f64();
        let refresh_active = self.refresher.active();
        let clock = self.clock;
        self.tick_refresher();
        emb_telemetry::span(
            "ugache/iterations",
            "iteration",
            base_ns,
            emb_telemetry::clock_ns(),
            || {
                vec![
                    (
                        "extract_secs".to_string(),
                        emb_telemetry::EventValue::F64(outcome.makespan.as_secs_f64()),
                    ),
                    (
                        "refresh_active".to_string(),
                        emb_telemetry::EventValue::U64(u64::from(refresh_active)),
                    ),
                ]
            },
        );
        emb_telemetry::count("ugache.iterations", 1.0);
        emb_telemetry::count("ugache.extract_secs", outcome.makespan.as_secs_f64());
        emb_telemetry::event("ugache.iteration", || {
            vec![
                (
                    "extract_secs".to_string(),
                    emb_telemetry::EventValue::F64(outcome.makespan.as_secs_f64()),
                ),
                (
                    "clock_secs".to_string(),
                    emb_telemetry::EventValue::F64(clock),
                ),
                (
                    "refresh_active".to_string(),
                    emb_telemetry::EventValue::U64(u64::from(refresh_active)),
                ),
            ]
        });
        IterationReport {
            extract: outcome,
            refresh_active,
            clock,
        }
    }

    /// Advances the virtual clock without extraction work (e.g. dense
    /// compute time), still ticking the refresher.
    pub fn advance_clock(&mut self, secs: f64) {
        self.clock += secs;
        emb_telemetry::advance_clock_ns(emb_util::SimTime::from_secs_f64(secs).as_nanos());
        self.tick_refresher();
    }

    /// Ticks the refresher at the current virtual time and closes the
    /// refresh lifecycle span when the tick completes a refresh.
    fn tick_refresher(&mut self) {
        let was_active = self.refresher.active();
        self.refresher.tick(self.clock, &mut self.cache);
        if was_active && !self.refresher.active() {
            if let Some(id) = self.refresh_span.take() {
                let secs = self.refresher.history.last().copied().unwrap_or(0.0);
                emb_telemetry::span_end(id, emb_telemetry::clock_ns(), || {
                    vec![("secs".to_string(), emb_telemetry::EventValue::F64(secs))]
                });
            }
        }
    }

    /// Re-solves the policy against freshly sampled hotness and starts a
    /// background refresh if the estimated benefit exceeds the trigger
    /// threshold (or `force` is set). Returns whether a refresh started.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn consider_refresh(&mut self, force: bool) -> Result<bool, String> {
        if self.refresher.active() {
            return Ok(false);
        }
        let fresh = self.sampler.snapshot();
        if fresh.total() <= 0.0 {
            return Ok(false);
        }
        let solved = self
            .solver
            .solve(&fresh, &self.cap_entries, &self.cfg.solver)?;
        // How would the *current* placement fare under the new hotness?
        // Apply the same dedup adjustment the solver uses so the two
        // estimates are comparable.
        let fresh_cmp = if self.cfg.solver.dedup_adjust {
            fresh.dedup_adjusted(self.cfg.solver.accesses_per_iter)
        } else {
            fresh.clone()
        };
        let current = cache_policy::estimate_extraction_time(
            self.cache.placement(),
            &fresh_cmp,
            self.solver.profile(),
            self.cfg.solver.entry_bytes,
            self.cfg.solver.accesses_per_iter,
        )
        .makespan;
        if force
            || self
                .refresher
                .should_refresh(current, solved.predicted_secs)
        {
            self.refresher
                .begin(self.clock, self.cache.placement(), solved.placement);
            self.predicted_secs = solved.predicted_secs;
            self.sampler.reset();
            self.refresh_span = Some(emb_telemetry::span_begin(
                "ugache/refresh",
                "refresh",
                emb_telemetry::clock_ns(),
            ));
            emb_telemetry::count("ugache.refreshes", 1.0);
            emb_telemetry::event("ugache.refresh_started", || {
                vec![
                    (
                        "clock_secs".to_string(),
                        emb_telemetry::EventValue::F64(self.clock),
                    ),
                    (
                        "predicted_secs".to_string(),
                        emb_telemetry::EventValue::F64(self.predicted_secs),
                    ),
                ]
            });
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Whether a refresh is currently active.
    pub fn refresh_active(&self) -> bool {
        self.refresher.active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emb_util::zipf::powerlaw_hotness;

    const N: usize = 2_000;
    const DIM: usize = 8;

    fn build() -> UGache {
        let platform = Platform::server_a();
        let host = HostTable::dense(N, DIM);
        let hotness = Hotness::new(powerlaw_hotness(N, 1.2));
        let mut cfg = UGacheConfig::new(DIM * 4, 500.0);
        cfg.solver.blocks.max_blocks = 32;
        cfg.solver.blocks.min_splits = 4;
        UGache::build(platform, host, &hotness, vec![200; 4], cfg).unwrap()
    }

    #[test]
    fn build_and_functional_gather() {
        let mut u = build();
        let keys = [0u32, 1, 1999, 500];
        let mut out = vec![0.0f32; keys.len() * DIM];
        let stats = u.gather(0, &keys, &mut out);
        assert_eq!(stats.total(), 4);
        let truth = HostTable::dense(N, DIM);
        for (k, &key) in keys.iter().enumerate() {
            assert_eq!(&out[k * DIM..(k + 1) * DIM], truth.read(key).as_slice());
        }
    }

    #[test]
    fn timed_iteration_advances_clock() {
        let mut u = build();
        let keys: Vec<Vec<u32>> = (0..4)
            .map(|g| (g * 100..g * 100 + 400).map(|k| (k % N) as u32).collect())
            .collect();
        let r = u.process_iteration(&keys);
        assert!(r.extract.makespan > emb_util::SimTime::ZERO);
        assert!(u.clock() > 0.0);
        assert!(!r.refresh_active);
    }

    #[test]
    fn forced_refresh_runs_to_completion() {
        let mut u = build();
        let keys: Vec<Vec<u32>> = (0..4)
            .map(|_| (0..300u32).map(|k| (N as u32 - 1) - (k % 1000)).collect())
            .collect();
        // Feed some accesses so the sampler has a signal, then force.
        for _ in 0..3 {
            u.process_iteration(&keys);
        }
        assert!(u.consider_refresh(true).unwrap());
        assert!(u.refresh_active());
        // Drive the clock past solve + updates.
        let mut guard = 0;
        while u.refresh_active() {
            u.advance_clock(1.0);
            guard += 1;
            assert!(guard < 1_000, "refresh stuck");
        }
        assert_eq!(u.refresh_history().len(), 1);
    }

    #[test]
    fn refresh_lifecycle_and_iteration_spans_are_recorded() {
        let ((), report) = emb_telemetry::collect(|| {
            let mut u = build();
            let keys: Vec<Vec<u32>> = (0..4)
                .map(|_| (0..300u32).map(|k| (N as u32 - 1) - (k % 1000)).collect())
                .collect();
            for _ in 0..3 {
                u.process_iteration(&keys);
            }
            u.consider_refresh(true).unwrap();
            let mut guard = 0;
            while u.refresh_active() {
                u.advance_clock(1.0);
                guard += 1;
                assert!(guard < 1_000, "refresh stuck");
            }
        });
        let iterations: Vec<_> = report
            .spans
            .iter()
            .filter(|s| s.track == "ugache/iterations")
            .collect();
        assert_eq!(iterations.len(), 3);
        // Iterations are contiguous on the scope clock: each starts where
        // the previous ended.
        for w in iterations.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns);
        }
        let refresh: Vec<_> = report
            .spans
            .iter()
            .filter(|s| s.track == "ugache/refresh")
            .collect();
        assert_eq!(refresh.len(), 1);
        assert!(refresh[0].end_ns > refresh[0].start_ns);
        assert!(
            refresh[0].fields.iter().any(|(k, _)| k == "secs"),
            "closed refresh span carries its duration"
        );
    }

    #[test]
    fn refresh_slows_foreground() {
        let mut u = build();
        let keys: Vec<Vec<u32>> = (0..4).map(|_| (0..500u32).collect()).collect();
        let before = u.process_iteration(&keys).extract.makespan;
        u.consider_refresh(true).unwrap();
        let during = u.process_iteration(&keys).extract.makespan;
        assert!(during > before, "during {during} vs before {before}");
    }

    #[test]
    fn no_refresh_without_drift() {
        use emb_util::{seed_rng, ZipfSampler};
        let platform = Platform::server_a();
        let host = HostTable::dense(N, DIM);
        let hotness = Hotness::new(powerlaw_hotness(N, 1.2));
        let mut cfg = UGacheConfig::new(DIM * 4, 500.0);
        cfg.solver.blocks.max_blocks = 32;
        cfg.solver.blocks.min_splits = 4;
        // Count every key so sampling noise cannot fake a drift.
        cfg.sample_stride = 1;
        let mut u = UGache::build(platform, host, &hotness, vec![200; 4], cfg).unwrap();
        // Feed batches drawn from the same power law the cache was solved
        // for: no drift, no refresh.
        let zipf = ZipfSampler::new(N as u64, 1.2);
        let mut rng = seed_rng(99);
        for _ in 0..20 {
            let keys: Vec<Vec<u32>> = (0..4)
                .map(|_| {
                    let mut v: Vec<u32> = (0..2000).map(|_| zipf.sample(&mut rng) as u32).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            u.process_iteration(&keys);
        }
        assert!(!u.consider_refresh(false).unwrap());
    }
}
