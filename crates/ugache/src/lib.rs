//! UGache: a unified multi-GPU embedding cache (SOSP '23) — Rust
//! reproduction.
//!
//! The [`UGache`] type composes the pieces built by the substrate crates
//! exactly as the paper's architecture diagram does (§4): the **Solver**
//! (`cache-policy`) decides placement from hotness and the platform
//! profile, the **Filler** loads the per-GPU arenas (`emb-cache`), the
//! **Extractor** (`extractor`) serves lookups with factored extraction,
//! and the **Refresher** migrates the cache when hotness drifts.
//!
//! [`baselines`] reconstructs the systems the paper compares against
//! (GNNLab, WholeGraph, PartU/RepU, Quiver cliques, HPS, SOK) from the
//! same substrate, so like-for-like experiments differ only in policy
//! and mechanism. [`apps`] adds the end-to-end application models (GNN
//! training epochs, DLR inference iterations) with dense-layer and
//! sampling cost models. [`framework`] exposes the embedding-layer
//! integration surface (§7.1) in TensorFlow-ish and PyTorch-ish flavours.

#![deny(missing_docs)]

pub mod apps;
pub mod baselines;
pub mod framework;
pub mod system;

pub use baselines::{SystemInstance, SystemKind};
pub use system::{IterationReport, UGache, UGacheConfig};
