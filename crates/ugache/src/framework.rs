//! Framework integration surface (paper §7.1).
//!
//! The paper ships UGache as a drop-in embedding layer for TensorFlow and
//! PyTorch: applications swap their embedding-layer reference and keep
//! the rest of the model untouched. This module reproduces that surface
//! with a minimal tensor type and two adapter flavours whose call
//! conventions mirror the respective frameworks:
//!
//! * [`TorchStyleLayer::forward`] — `forward(keys) -> Tensor` (module
//!   object with a forward method, PyTorch-style);
//! * [`TfStyleLayer::call`] — `call(keys) -> Tensor` (Keras-layer-style).
//!
//! Both route through the same [`UGache`] instance, as the C++ core does.

use crate::system::UGache;
use emb_cache::GatherStats;

/// A minimal dense 2-D tensor (`rows × cols`, row-major f32).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Rows (one per looked-up key).
    pub rows: usize,
    /// Columns (the embedding dimension).
    pub cols: usize,
    /// Row-major values.
    pub data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// PyTorch-style embedding layer adapter for one GPU rank.
pub struct TorchStyleLayer<'a> {
    ugache: &'a mut UGache,
    gpu: usize,
    dim: usize,
    /// Per-source stats of the last forward (for profiling hooks).
    pub last_stats: GatherStats,
}

impl<'a> TorchStyleLayer<'a> {
    /// Binds the layer to a UGache instance and a GPU rank.
    pub fn new(ugache: &'a mut UGache, gpu: usize, dim: usize) -> Self {
        TorchStyleLayer {
            ugache,
            gpu,
            dim,
            last_stats: GatherStats::default(),
        }
    }

    /// `forward(keys)` — gathers embeddings for `keys`.
    pub fn forward(&mut self, keys: &[u32]) -> Tensor {
        let mut t = Tensor::zeros(keys.len(), self.dim);
        self.last_stats = self.ugache.gather(self.gpu, keys, &mut t.data);
        t
    }
}

/// TensorFlow/Keras-style embedding layer adapter for one GPU rank.
pub struct TfStyleLayer<'a> {
    ugache: &'a mut UGache,
    gpu: usize,
    dim: usize,
}

impl<'a> TfStyleLayer<'a> {
    /// Binds the layer to a UGache instance and a GPU rank.
    pub fn new(ugache: &'a mut UGache, gpu: usize, dim: usize) -> Self {
        TfStyleLayer { ugache, gpu, dim }
    }

    /// `call(keys)` — gathers embeddings for `keys`.
    pub fn call(&mut self, keys: &[u32]) -> Tensor {
        let mut t = Tensor::zeros(keys.len(), self.dim);
        let _ = self.ugache.gather(self.gpu, keys, &mut t.data);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::UGacheConfig;
    use cache_policy::Hotness;
    use emb_cache::HostTable;
    use emb_util::zipf::powerlaw_hotness;
    use gpu_platform::Platform;

    const N: usize = 1000;
    const DIM: usize = 4;

    fn ugache() -> UGache {
        let mut cfg = UGacheConfig::new(DIM * 4, 100.0);
        cfg.solver.blocks.max_blocks = 16;
        UGache::build(
            Platform::server_a(),
            HostTable::dense(N, DIM),
            &Hotness::new(powerlaw_hotness(N, 1.2)),
            vec![100; 4],
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn torch_forward_returns_correct_values() {
        let mut u = ugache();
        let mut layer = TorchStyleLayer::new(&mut u, 0, DIM);
        let t = layer.forward(&[3, 999]);
        assert_eq!((t.rows, t.cols), (2, DIM));
        let truth = HostTable::dense(N, DIM);
        assert_eq!(t.row(0), truth.read(3).as_slice());
        assert_eq!(t.row(1), truth.read(999).as_slice());
        assert_eq!(layer.last_stats.total(), 2);
    }

    #[test]
    fn tf_call_matches_torch_forward() {
        let mut u1 = ugache();
        let mut u2 = ugache();
        let keys = [1u32, 500, 2];
        let a = TorchStyleLayer::new(&mut u1, 2, DIM).forward(&keys);
        let b = TfStyleLayer::new(&mut u2, 2, DIM).call(&keys);
        assert_eq!(a, b);
    }

    #[test]
    fn stats_expose_cache_behaviour() {
        let mut u = ugache();
        let mut layer = TorchStyleLayer::new(&mut u, 1, DIM);
        // Key 0 is the hottest (cached); key 999 is cold (host).
        let _ = layer.forward(&[0, 999]);
        assert!(layer.last_stats.host >= 1);
        assert!(layer.last_stats.local + layer.last_stats.remote >= 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tensor_row_bounds() {
        let t = Tensor::zeros(2, 2);
        let _ = t.row(2);
    }
}
