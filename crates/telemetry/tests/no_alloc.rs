//! Proves the "zero-cost when disabled" contract: with no `collect`
//! scope active, recording calls perform no heap allocation at all.
//!
//! Lives alone in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide — concurrent tests in the same
//! binary would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates every operation unchanged to `System`; the counter
// update has no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recording_allocates_nothing() {
    // Warm up the thread-local stack (its first access may initialize
    // lazily) and whatever the runtime touches on first call.
    emb_telemetry::count("warmup", 1.0);
    assert!(!emb_telemetry::enabled());

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..1000 {
        emb_telemetry::count("memsim.extractions", 1.0);
        emb_telemetry::gauge("memsim.core_util", 0.5);
        emb_telemetry::observe("policy.lp.residual", 1e-9);
        emb_telemetry::observe_with_exemplar(
            "serve.latency_ns",
            i as f64,
            emb_telemetry::ReqId(i),
            || {
                // Never invoked while disabled — allocating here is fine.
                vec![("queue_ns".to_string(), emb_telemetry::EventValue::U64(i))]
            },
        );
        emb_telemetry::event("memsim.extract", || {
            // Never invoked while disabled — allocating here is fine.
            vec![("bytes".to_string(), emb_telemetry::EventValue::U64(i))]
        });
        // Span recording must be just as free when disabled: the track
        // and name are borrowed, the fields closure is never invoked,
        // and the returned handle is an inert Copy value.
        emb_telemetry::span("gpu0/link:nvlink->gpu1", "xfer", 0, i, || {
            vec![("bytes".to_string(), emb_telemetry::EventValue::U64(i))]
        });
        let id = emb_telemetry::span_begin("gpu0/cores", "stall", i);
        emb_telemetry::span_end(id, i + 1, || {
            vec![("n".to_string(), emb_telemetry::EventValue::U64(i))]
        });
        emb_telemetry::advance_clock_ns(i);
        let _ = emb_telemetry::clock_ns();
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry must not allocate (got {} allocations)",
        after - before
    );
}
