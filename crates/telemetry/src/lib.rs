//! Deterministic, scoped telemetry for the ugache-rs workspace.
//!
//! Simulation and policy code records *what happened* — bytes moved per
//! link, per-tier cache hits, LP iterations — without knowing who is
//! listening. A harness that wants the numbers wraps a computation in
//! [`collect`], which installs a thread-local collector for the duration
//! of the closure and returns everything recorded inside it as a
//! [`Report`].
//!
//! Three properties are load-bearing for the repro harness (see
//! `EXPERIMENTS.md` for the serialized schema):
//!
//! * **Deterministic.** A [`Report`] is a pure function of the wrapped
//!   computation: counters and gauges are keyed maps emitted in sorted
//!   order, events carry a per-scope sequence number assigned in record
//!   order. Because the collector is thread-local and scoped, two runs of
//!   the same computation produce byte-identical reports no matter how
//!   many *other* computations run concurrently on other threads.
//! * **Zero-cost when disabled.** Outside any [`collect`] scope every
//!   recording function returns after one thread-local check; nothing is
//!   allocated (enforced by a counting-allocator test). Call sites that
//!   must build dynamic metric names guard with [`enabled`].
//! * **Seed-free.** The crate never reads clocks or random state; values
//!   come exclusively from the instrumented code.
//!
//! # Example
//!
//! ```
//! let ((), report) = emb_telemetry::collect(|| {
//!     emb_telemetry::count("cache.local_hits", 3.0);
//!     emb_telemetry::observe("memsim.core_util", 0.85);
//!     emb_telemetry::event("memsim.extract", || {
//!         vec![("bytes".to_string(), emb_telemetry::EventValue::U64(4096))]
//!     });
//! });
//! assert_eq!(report.metrics.counters, vec![("cache.local_hits".to_string(), 3.0)]);
//! assert_eq!(report.events.len(), 1);
//! // Outside the scope, recording is a no-op.
//! emb_telemetry::count("cache.local_hits", 1.0);
//! assert!(!emb_telemetry::enabled());
//! ```

#![deny(missing_docs)]

use serde::ser::{SerializeMap, SerializeStruct};
use serde::{Serialize, Serializer};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// One value attached to a trace [`Event`] field.
#[derive(Debug, Clone, PartialEq)]
pub enum EventValue {
    /// An unsigned integer (counts, ids, byte totals).
    U64(u64),
    /// A float (seconds, rates, ratios).
    F64(f64),
    /// A short label (tier names, modes).
    Str(String),
}

impl Serialize for EventValue {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            EventValue::U64(v) => serializer.serialize_u64(*v),
            EventValue::F64(v) => serializer.serialize_f64(*v),
            EventValue::Str(v) => serializer.serialize_str(v),
        }
    }
}

/// One structured trace event, ordered within its [`collect`] scope.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position of this event in its scope, starting at 0.
    pub seq: u64,
    /// Dotted event name, e.g. `memsim.extract`.
    pub name: String,
    /// Named payload fields, in the order the recorder listed them.
    pub fields: Vec<(String, EventValue)>,
}

/// Count/sum/min/max digest of every [`observe`] call on one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl HistogramSummary {
    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn new(value: f64) -> Self {
        HistogramSummary {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }
}

/// All metric instruments of one [`collect`] scope, sorted by name.
///
/// Serializes as three JSON objects (`counters`, `gauges`,
/// `histograms`) keyed by metric name; key order is the sorted name
/// order, so serialization is byte-deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic sums, `(name, total)`, sorted by name.
    pub counters: Vec<(String, f64)>,
    /// Last-write-wins values, `(name, value)`, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Distribution digests, `(name, summary)`, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// True when no instrument recorded anything in the scope.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Serializes `(name, value)` pairs as a JSON object.
struct AsMap<'a, V>(&'a [(String, V)]);

impl<V: Serialize> Serialize for AsMap<'_, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.0.len()))?;
        for (name, value) in self.0 {
            map.serialize_key(name)?;
            map.serialize_value(value)?;
        }
        map.end()
    }
}

impl Serialize for MetricsSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("MetricsSnapshot", 3)?;
        st.serialize_field("counters", &AsMap(&self.counters))?;
        st.serialize_field("gauges", &AsMap(&self.gauges))?;
        st.serialize_field("histograms", &AsMap(&self.histograms))?;
        st.end()
    }
}

/// Everything recorded inside one [`collect`] scope.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Counter/gauge/histogram totals, sorted by name.
    pub metrics: MetricsSnapshot,
    /// Trace events in record order (`seq` is the index).
    pub events: Vec<Event>,
}

impl Report {
    /// True when the scope recorded no metrics and no events.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty() && self.events.is_empty()
    }
}

#[derive(Default)]
struct Collector {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSummary>,
    events: Vec<Event>,
}

impl Collector {
    fn into_report(self) -> Report {
        Report {
            metrics: MetricsSnapshot {
                counters: self.counters.into_iter().collect(),
                gauges: self.gauges.into_iter().collect(),
                histograms: self.histograms.into_iter().collect(),
            },
            events: self.events,
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<Collector>> = const { RefCell::new(Vec::new()) };
}

/// Pops the collector pushed by [`collect`] even if the closure panics,
/// so a panicking scope cannot leave the thread-local stack corrupted.
struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| s.borrow_mut().pop());
    }
}

/// Runs `f` with a fresh telemetry scope and returns its result together
/// with everything recorded inside.
///
/// Scopes nest: recordings go to the innermost scope only, so a caller
/// that wraps an already-instrumented harness observes nothing from the
/// inner scope. The scope is thread-local — work `f` spawns onto other
/// threads is not captured.
///
/// # Panics
///
/// Propagates any panic from `f` (after unwinding the scope, so the
/// thread's telemetry stack stays usable).
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Report) {
    STACK.with(|s| s.borrow_mut().push(Collector::default()));
    let guard = ScopeGuard;
    let result = f();
    std::mem::forget(guard);
    let collector = STACK
        .with(|s| s.borrow_mut().pop())
        .expect("scope pushed above");
    (result, collector.into_report())
}

/// True when a [`collect`] scope is active on this thread.
///
/// Hot paths that would have to *build* a metric name (e.g.
/// `format!("memsim.link.gpu{i}...")`) should guard on this so the
/// disabled path stays allocation-free; plain `&'static str` call sites
/// don't need to.
pub fn enabled() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

fn with_active(f: impl FnOnce(&mut Collector)) {
    STACK.with(|s| {
        if let Some(c) = s.borrow_mut().last_mut() {
            f(c);
        }
    });
}

/// Adds `delta` to the counter `name` (created at 0) in the active
/// scope; no-op when no scope is active.
pub fn count(name: &str, delta: f64) {
    with_active(|c| match c.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            c.counters.insert(name.to_string(), delta);
        }
    });
}

/// Sets the gauge `name` to `value` (last write wins) in the active
/// scope; no-op when no scope is active.
pub fn gauge(name: &str, value: f64) {
    with_active(|c| match c.gauges.get_mut(name) {
        Some(v) => *v = value,
        None => {
            c.gauges.insert(name.to_string(), value);
        }
    });
}

/// Records `value` into the histogram `name` in the active scope; no-op
/// when no scope is active.
pub fn observe(name: &str, value: f64) {
    with_active(|c| match c.histograms.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            c.histograms
                .insert(name.to_string(), HistogramSummary::new(value));
        }
    });
}

/// Appends a trace event named `name` to the active scope; `fields` is
/// only invoked when a scope is active, so building the payload costs
/// nothing when telemetry is disabled.
pub fn event(name: &str, fields: impl FnOnce() -> Vec<(String, EventValue)>) {
    with_active(|c| {
        let seq = c.events.len() as u64;
        c.events.push(Event {
            seq,
            name: name.to_string(),
            fields: fields(),
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        count("x", 1.0);
        gauge("y", 2.0);
        observe("z", 3.0);
        event("e", || vec![("k".to_string(), EventValue::U64(1))]);
        let ((), report) = collect(|| {});
        assert!(report.is_empty(), "pre-scope records must not leak in");
    }

    #[test]
    fn collect_captures_sorted_metrics_and_ordered_events() {
        let (val, report) = collect(|| {
            count("b.count", 2.0);
            count("a.count", 1.0);
            count("b.count", 3.0);
            gauge("g", 1.0);
            gauge("g", 9.0);
            observe("h", 4.0);
            observe("h", 2.0);
            event("first", Vec::new);
            event("second", || {
                vec![("n".to_string(), EventValue::Str("x".into()))]
            });
            42
        });
        assert_eq!(val, 42);
        assert_eq!(
            report.metrics.counters,
            vec![("a.count".to_string(), 1.0), ("b.count".to_string(), 5.0)]
        );
        assert_eq!(report.metrics.gauges, vec![("g".to_string(), 9.0)]);
        assert_eq!(
            report.metrics.histograms,
            vec![(
                "h".to_string(),
                HistogramSummary {
                    count: 2,
                    sum: 6.0,
                    min: 2.0,
                    max: 4.0
                }
            )]
        );
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events[0].seq, 0);
        assert_eq!(report.events[0].name, "first");
        assert_eq!(report.events[1].seq, 1);
        assert_eq!(report.events[1].fields.len(), 1);
    }

    #[test]
    fn nested_scopes_are_isolated() {
        let ((), outer) = collect(|| {
            count("outer", 1.0);
            let ((), inner) = collect(|| count("inner", 1.0));
            assert_eq!(inner.metrics.counters, vec![("inner".to_string(), 1.0)]);
        });
        assert_eq!(outer.metrics.counters, vec![("outer".to_string(), 1.0)]);
    }

    #[test]
    fn panicking_scope_unwinds_cleanly() {
        let caught = std::panic::catch_unwind(|| {
            let _ = collect(|| panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!enabled(), "panicked scope must pop its collector");
        let ((), report) = collect(|| count("after", 1.0));
        assert_eq!(report.metrics.counters, vec![("after".to_string(), 1.0)]);
    }

    #[test]
    fn identical_computations_produce_identical_reports() {
        let run = || {
            collect(|| {
                for i in 0..5 {
                    count("c", i as f64);
                    observe("h", (i * i) as f64);
                }
                event("done", || vec![("n".to_string(), EventValue::U64(5))]);
            })
            .1
        };
        assert_eq!(run(), run());
    }
}
