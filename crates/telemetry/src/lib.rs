//! Deterministic, scoped telemetry for the ugache-rs workspace.
//!
//! Simulation and policy code records *what happened* — bytes moved per
//! link, per-tier cache hits, LP iterations — without knowing who is
//! listening. A harness that wants the numbers wraps a computation in
//! [`collect`], which installs a thread-local collector for the duration
//! of the closure and returns everything recorded inside it as a
//! [`Report`].
//!
//! Three properties are load-bearing for the repro harness (see
//! `EXPERIMENTS.md` for the serialized schema):
//!
//! * **Deterministic.** A [`Report`] is a pure function of the wrapped
//!   computation: counters and gauges are keyed maps emitted in sorted
//!   order, events carry a per-scope sequence number assigned in record
//!   order. Because the collector is thread-local and scoped, two runs of
//!   the same computation produce byte-identical reports no matter how
//!   many *other* computations run concurrently on other threads.
//! * **Zero-cost when disabled.** Outside any [`collect`] scope every
//!   recording function returns after one thread-local check; nothing is
//!   allocated (enforced by a counting-allocator test). Call sites that
//!   must build dynamic metric names guard with [`enabled`].
//! * **Seed-free.** The crate never reads clocks or random state; values
//!   come exclusively from the instrumented code.
//!
//! # Example
//!
//! ```
//! let ((), report) = emb_telemetry::collect(|| {
//!     emb_telemetry::count("cache.local_hits", 3.0);
//!     emb_telemetry::observe("memsim.core_util", 0.85);
//!     emb_telemetry::event("memsim.extract", || {
//!         vec![("bytes".to_string(), emb_telemetry::EventValue::U64(4096))]
//!     });
//! });
//! assert_eq!(report.metrics.counters, vec![("cache.local_hits".to_string(), 3.0)]);
//! assert_eq!(report.events.len(), 1);
//! // Outside the scope, recording is a no-op.
//! emb_telemetry::count("cache.local_hits", 1.0);
//! assert!(!emb_telemetry::enabled());
//! ```

#![deny(missing_docs)]

use serde::ser::{SerializeMap, SerializeStruct};
use serde::{Serialize, Serializer};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// One value attached to a trace [`Event`] field.
#[derive(Debug, Clone, PartialEq)]
pub enum EventValue {
    /// An unsigned integer (counts, ids, byte totals).
    U64(u64),
    /// A float (seconds, rates, ratios).
    F64(f64),
    /// A short label (tier names, modes).
    Str(String),
}

impl Serialize for EventValue {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            EventValue::U64(v) => serializer.serialize_u64(*v),
            EventValue::F64(v) => serializer.serialize_f64(*v),
            EventValue::Str(v) => serializer.serialize_str(v),
        }
    }
}

/// A request correlation id linking telemetry records that belong to one
/// logical request.
///
/// The id is an opaque `u64` chosen by the instrumented code (the
/// serving layer packs `load_point << 32 | request_index`); telemetry
/// only requires that ids are unique within a scope, which makes the
/// exemplar tie-break ([`observe_with_exemplar`]) a total order. Attach
/// one to an [`Event`] or [`Span`] field via `EventValue::from(req)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

impl From<ReqId> for EventValue {
    fn from(req: ReqId) -> EventValue {
        EventValue::U64(req.0)
    }
}

/// One structured trace event, ordered within its [`collect`] scope.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position of this event in its scope, starting at 0.
    pub seq: u64,
    /// Dotted event name, e.g. `memsim.extract`.
    pub name: String,
    /// Named payload fields, in the order the recorder listed them.
    pub fields: Vec<(String, EventValue)>,
}

/// One simulated-time span, ordered by begin time within its [`collect`]
/// scope.
///
/// Spans live on *tracks* — stable string ids such as
/// `gpu0/link:nvlink->gpu1` or `gpu3/cores` — and carry start/end
/// instants on the scope's simulated clock (see [`clock_ns`]), in
/// nanoseconds. They are the raw material for timeline artifacts and the
/// Chrome-trace export in `ugache-bench`.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Position of this span in its scope's begin order, starting at 0.
    pub seq: u64,
    /// Track id, conventionally `<pid-group>/<sub-track>`.
    pub track: String,
    /// Span name, e.g. `xfer`, `stall`, `iteration`, `refresh`.
    pub name: String,
    /// Simulated start instant (scope clock, nanoseconds).
    pub start_ns: u64,
    /// Simulated end instant (scope clock, nanoseconds), `>= start_ns`.
    pub end_ns: u64,
    /// Named payload fields, in the order the recorder listed them.
    pub fields: Vec<(String, EventValue)>,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Handle for a span opened with [`span_begin`] and closed with
/// [`span_end`].
///
/// The handle stays valid across nested [`collect`] scopes: ending a
/// span that belongs to an outer scope from inside an inner one finds
/// the right collector. A handle obtained while no scope was active is
/// inert — [`span_end`] on it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId {
    /// Unique id of the owning scope (0 = no scope was active).
    scope: u64,
    /// Index into the owning scope's span list.
    idx: usize,
}

impl SpanId {
    /// The inert handle returned when recording is disabled.
    const DISABLED: SpanId = SpanId { scope: 0, idx: 0 };
}

/// Number of exemplars each histogram retains: the K largest
/// observations recorded with [`observe_with_exemplar`].
pub const EXEMPLAR_K: usize = 8;

/// One retained histogram observation with its request linkage.
///
/// Exemplars order by value descending, ties broken by ascending
/// [`ReqId`], so the retained top-[`EXEMPLAR_K`] set is a pure function
/// of the multiset of `(value, req)` pairs observed — identical no
/// matter how the observations were chunked across worker scopes and
/// [`absorb`]ed back.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// The observed value (the histogram's unit).
    pub value: f64,
    /// Correlation id of the request that produced the observation.
    pub req: u64,
    /// Caller-supplied context fields, in the order the recorder listed
    /// them.
    pub fields: Vec<(String, EventValue)>,
}

impl Serialize for Exemplar {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Exemplar", 3)?;
        st.serialize_field("value", &self.value)?;
        st.serialize_field("req", &self.req)?;
        st.serialize_field("fields", &AsMap(&self.fields))?;
        st.end()
    }
}

/// `true` when exemplar `a` ranks before (is "larger than") `b` in the
/// retained top-K order: value descending, ties by ascending id.
fn exemplar_before(a: &Exemplar, b: &Exemplar) -> bool {
    match a.value.total_cmp(&b.value) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a.req < b.req,
    }
}

/// Inserts `x` into the rank-ordered exemplar list `list`, keeping at
/// most [`EXEMPLAR_K`] entries.
fn exemplar_insert(list: &mut Vec<Exemplar>, x: Exemplar) {
    let pos = list.partition_point(|e| exemplar_before(e, &x));
    if pos >= EXEMPLAR_K {
        return;
    }
    list.insert(pos, x);
    list.truncate(EXEMPLAR_K);
}

/// Count/sum/min/max digest of every [`observe`] call on one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl HistogramSummary {
    /// Folds another summary into this one (as if every observation of
    /// `other` had been recorded here, after this summary's own).
    fn merge(&mut self, other: &HistogramSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn new(value: f64) -> Self {
        HistogramSummary {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }
}

/// All metric instruments of one [`collect`] scope, sorted by name.
///
/// Serializes as three JSON objects (`counters`, `gauges`,
/// `histograms`) keyed by metric name; key order is the sorted name
/// order, so serialization is byte-deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic sums, `(name, total)`, sorted by name.
    pub counters: Vec<(String, f64)>,
    /// Last-write-wins values, `(name, value)`, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Distribution digests, `(name, summary)`, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Retained top-[`EXEMPLAR_K`] observations per histogram recorded
    /// via [`observe_with_exemplar`], `(name, rank-ordered exemplars)`,
    /// sorted by name. Histograms observed without exemplars do not
    /// appear.
    pub exemplars: Vec<(String, Vec<Exemplar>)>,
}

impl MetricsSnapshot {
    /// True when no instrument recorded anything in the scope.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.exemplars.is_empty()
    }
}

/// Serializes `(name, value)` pairs as a JSON object.
struct AsMap<'a, V>(&'a [(String, V)]);

impl<V: Serialize> Serialize for AsMap<'_, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.0.len()))?;
        for (name, value) in self.0 {
            map.serialize_key(name)?;
            map.serialize_value(value)?;
        }
        map.end()
    }
}

impl Serialize for MetricsSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("MetricsSnapshot", 4)?;
        st.serialize_field("counters", &AsMap(&self.counters))?;
        st.serialize_field("gauges", &AsMap(&self.gauges))?;
        st.serialize_field("histograms", &AsMap(&self.histograms))?;
        st.serialize_field("exemplars", &AsMap(&self.exemplars))?;
        st.end()
    }
}

/// Everything recorded inside one [`collect`] scope.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Counter/gauge/histogram totals, sorted by name.
    pub metrics: MetricsSnapshot,
    /// Trace events in record order (`seq` is the index).
    pub events: Vec<Event>,
    /// Simulated-time spans in begin order (`seq` is the index). Spans
    /// still open when the scope closed are force-closed at the latest
    /// simulated instant the scope observed.
    pub spans: Vec<Span>,
    /// Final value of the scope's simulated clock (nanoseconds).
    pub clock_ns: u64,
}

impl Report {
    /// True when the scope recorded no metrics, events, or spans.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty() && self.events.is_empty() && self.spans.is_empty()
    }
}

#[derive(Default)]
struct Collector {
    /// Unique id tying [`SpanId`] handles to this scope.
    id: u64,
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSummary>,
    exemplars: BTreeMap<String, Vec<Exemplar>>,
    events: Vec<Event>,
    spans: Vec<Span>,
    /// Number of spans begun and not yet ended (open spans carry
    /// `end_ns == u64::MAX` as an in-progress sentinel).
    open_spans: usize,
    clock_ns: u64,
}

impl Collector {
    fn into_report(mut self) -> Report {
        // Force-close any span left open (e.g. a lifecycle span whose end
        // condition never fired before the scope ended) at the latest
        // instant the scope saw, so reports always hold well-formed spans.
        if self.open_spans > 0 {
            let horizon = self
                .spans
                .iter()
                .map(|s| {
                    if s.end_ns == u64::MAX {
                        s.start_ns
                    } else {
                        s.end_ns
                    }
                })
                .max()
                .unwrap_or(0)
                .max(self.clock_ns);
            for s in self.spans.iter_mut() {
                if s.end_ns == u64::MAX {
                    s.end_ns = s.start_ns.max(horizon);
                }
            }
        }
        Report {
            metrics: MetricsSnapshot {
                counters: self.counters.into_iter().collect(),
                gauges: self.gauges.into_iter().collect(),
                histograms: self.histograms.into_iter().collect(),
                exemplars: self.exemplars.into_iter().collect(),
            },
            events: self.events,
            spans: self.spans,
            clock_ns: self.clock_ns,
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<Collector>> = const { RefCell::new(Vec::new()) };
    /// Monotonic source of scope ids; 0 is reserved for "no scope".
    static NEXT_SCOPE_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(1) };
}

/// Pops the collector pushed by [`collect`] even if the closure panics,
/// so a panicking scope cannot leave the thread-local stack corrupted.
struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| s.borrow_mut().pop());
    }
}

/// Runs `f` with a fresh telemetry scope and returns its result together
/// with everything recorded inside.
///
/// Scopes nest: recordings go to the innermost scope only, so a caller
/// that wraps an already-instrumented harness observes nothing from the
/// inner scope. The scope is thread-local — work `f` spawns onto other
/// threads is not captured.
///
/// # Panics
///
/// Propagates any panic from `f` (after unwinding the scope, so the
/// thread's telemetry stack stays usable).
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Report) {
    let id = NEXT_SCOPE_ID.with(|n| {
        let id = n.get();
        n.set(id.wrapping_add(1).max(1));
        id
    });
    STACK.with(|s| {
        s.borrow_mut().push(Collector {
            id,
            ..Collector::default()
        })
    });
    let guard = ScopeGuard;
    let result = f();
    std::mem::forget(guard);
    let collector = STACK
        .with(|s| s.borrow_mut().pop())
        .expect("scope pushed above");
    (result, collector.into_report())
}

/// True when a [`collect`] scope is active on this thread.
///
/// Hot paths that would have to *build* a metric name (e.g.
/// `format!("memsim.link.gpu{i}...")`) should guard on this so the
/// disabled path stays allocation-free; plain `&'static str` call sites
/// don't need to.
pub fn enabled() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

fn with_active(f: impl FnOnce(&mut Collector)) {
    STACK.with(|s| {
        if let Some(c) = s.borrow_mut().last_mut() {
            f(c);
        }
    });
}

/// Adds `delta` to the counter `name` (created at 0) in the active
/// scope; no-op when no scope is active.
pub fn count(name: &str, delta: f64) {
    with_active(|c| match c.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            c.counters.insert(name.to_string(), delta);
        }
    });
}

/// Sets the gauge `name` to `value` (last write wins) in the active
/// scope; no-op when no scope is active.
pub fn gauge(name: &str, value: f64) {
    with_active(|c| match c.gauges.get_mut(name) {
        Some(v) => *v = value,
        None => {
            c.gauges.insert(name.to_string(), value);
        }
    });
}

/// Records `value` into the histogram `name` in the active scope; no-op
/// when no scope is active.
pub fn observe(name: &str, value: f64) {
    with_active(|c| match c.histograms.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            c.histograms
                .insert(name.to_string(), HistogramSummary::new(value));
        }
    });
}

/// Records `value` into the histogram `name` like [`observe`], and
/// additionally offers it as an exemplar linked to request `req`.
///
/// Each histogram keeps its [`EXEMPLAR_K`] largest exemplar
/// observations (value descending, ties broken by ascending id — see
/// [`Exemplar`]); `fields` is only invoked when the observation
/// actually enters the retained set, so context building costs nothing
/// for non-tail observations — and, like every recorder, the whole call
/// is a no-op (and allocation-free) when no scope is active.
pub fn observe_with_exemplar(
    name: &str,
    value: f64,
    req: ReqId,
    fields: impl FnOnce() -> Vec<(String, EventValue)>,
) {
    with_active(|c| {
        match c.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                c.histograms
                    .insert(name.to_string(), HistogramSummary::new(value));
            }
        }
        let list = c.exemplars.entry(name.to_string()).or_default();
        let candidate = Exemplar {
            value,
            req: req.0,
            fields: Vec::new(),
        };
        let pos = list.partition_point(|e| exemplar_before(e, &candidate));
        if pos >= EXEMPLAR_K {
            return;
        }
        list.insert(
            pos,
            Exemplar {
                fields: fields(),
                ..candidate
            },
        );
        list.truncate(EXEMPLAR_K);
    });
}

/// Appends a trace event named `name` to the active scope; `fields` is
/// only invoked when a scope is active, so building the payload costs
/// nothing when telemetry is disabled.
pub fn event(name: &str, fields: impl FnOnce() -> Vec<(String, EventValue)>) {
    with_active(|c| {
        let seq = c.events.len() as u64;
        c.events.push(Event {
            seq,
            name: name.to_string(),
            fields: fields(),
        });
    });
}

/// Merges a child-scope [`Report`] into the active scope, as if every
/// recording in the child had happened here, in the child's order, at
/// the moment of this call.
///
/// This is the merge half of the deterministic worker-pool contract
/// (`emb_util::pool`): parallel chunks record into per-worker child
/// scopes ([`collect`] opened on the worker thread) and the caller
/// absorbs the resulting reports **in chunk-index order**. Semantics:
///
/// * **Counters** add the child's totals; **gauges** take the child's
///   value (last write wins, in absorb order); **histograms** fold the
///   child's digest in ([`HistogramSummary`] count/sum/min/max) and
///   re-rank the child's exemplars into the parent's retained top-K
///   (the rank order is a total order, so the merged set equals the
///   inline-recorded one regardless of chunking).
/// * **Events** are appended with fresh sequence numbers continuing the
///   parent's stream.
/// * **Spans** are appended with fresh sequence numbers and rebased onto
///   the parent timeline: the child's instant 0 maps to the parent's
///   current [`clock_ns`] cursor, and afterwards the parent clock
///   advances by the child's final clock value, so successive absorbed
///   children lay out sequentially exactly as if they had run inline.
///
/// The merge law this is built to satisfy: for computations that end
/// every span they begin, absorbing the reports of `collect(c1)`,
/// `collect(c2)`, … in order leaves the active scope byte-identical to
/// running `c1(); c2(); …` inline — which is what makes artifacts and
/// traces independent of the worker count. No-op when no scope is
/// active.
pub fn absorb(child: &Report) {
    with_active(|c| {
        let base = c.clock_ns;
        for (name, delta) in &child.metrics.counters {
            match c.counters.get_mut(name) {
                Some(v) => *v += delta,
                None => {
                    c.counters.insert(name.clone(), *delta);
                }
            }
        }
        for (name, value) in &child.metrics.gauges {
            match c.gauges.get_mut(name) {
                Some(v) => *v = *value,
                None => {
                    c.gauges.insert(name.clone(), *value);
                }
            }
        }
        for (name, summary) in &child.metrics.histograms {
            match c.histograms.get_mut(name) {
                Some(h) => h.merge(summary),
                None => {
                    c.histograms.insert(name.clone(), *summary);
                }
            }
        }
        for (name, child_list) in &child.metrics.exemplars {
            let list = c.exemplars.entry(name.clone()).or_default();
            for x in child_list {
                exemplar_insert(list, x.clone());
            }
        }
        for event in &child.events {
            let seq = c.events.len() as u64;
            c.events.push(Event {
                seq,
                name: event.name.clone(),
                fields: event.fields.clone(),
            });
        }
        for span in &child.spans {
            let seq = c.spans.len() as u64;
            c.spans.push(Span {
                seq,
                track: span.track.clone(),
                name: span.name.clone(),
                start_ns: base.saturating_add(span.start_ns),
                end_ns: base.saturating_add(span.end_ns),
                fields: span.fields.clone(),
            });
        }
        c.clock_ns = c.clock_ns.saturating_add(child.clock_ns);
    });
}

/// The active scope's simulated clock cursor in nanoseconds (0 when no
/// scope is active).
///
/// The cursor is how independent instrumented computations lay out
/// sequentially on one scope timeline: code that simulates a window of
/// virtual time reads the cursor as its base instant, records spans at
/// `base + offset`, and [`advance_clock_ns`]-es the cursor past the
/// window when done.
pub fn clock_ns() -> u64 {
    STACK.with(|s| s.borrow().last().map_or(0, |c| c.clock_ns))
}

/// Advances the active scope's simulated clock by `delta_ns`
/// (saturating); no-op when no scope is active.
pub fn advance_clock_ns(delta_ns: u64) {
    with_active(|c| c.clock_ns = c.clock_ns.saturating_add(delta_ns));
}

/// Records a completed simulated-time span on `track`; `fields` is only
/// invoked when a scope is active. `end_ns` is clamped up to `start_ns`
/// so spans never have negative duration. No-op when no scope is active.
pub fn span(
    track: &str,
    name: &str,
    start_ns: u64,
    end_ns: u64,
    fields: impl FnOnce() -> Vec<(String, EventValue)>,
) {
    with_active(|c| {
        let seq = c.spans.len() as u64;
        c.spans.push(Span {
            seq,
            track: track.to_string(),
            name: name.to_string(),
            start_ns,
            end_ns: end_ns.max(start_ns),
            fields: fields(),
        });
    });
}

/// Opens a span on `track` at `start_ns` and returns a handle for
/// [`span_end`].
///
/// When no scope is active the returned handle is inert and nothing is
/// recorded (or allocated). A span still open when its scope closes is
/// force-closed at the latest simulated instant the scope observed —
/// see [`Report::spans`].
pub fn span_begin(track: &str, name: &str, start_ns: u64) -> SpanId {
    let mut id = SpanId::DISABLED;
    with_active(|c| {
        let seq = c.spans.len() as u64;
        id = SpanId {
            scope: c.id,
            idx: c.spans.len(),
        };
        c.open_spans += 1;
        c.spans.push(Span {
            seq,
            track: track.to_string(),
            name: name.to_string(),
            start_ns,
            end_ns: u64::MAX,
            fields: Vec::new(),
        });
    });
    id
}

/// Closes the span opened as `id` at `end_ns` (clamped up to the span's
/// start), appending any `fields` the closer supplies.
///
/// Finds the owning scope even from inside a nested [`collect`] — a
/// lifecycle span begun in an outer scope can be ended while an inner
/// scope is active. No-op when the handle is inert, the owning scope is
/// gone, or the span was already ended.
pub fn span_end(id: SpanId, end_ns: u64, fields: impl FnOnce() -> Vec<(String, EventValue)>) {
    if id.scope == 0 {
        return;
    }
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let Some(c) = stack.iter_mut().rev().find(|c| c.id == id.scope) else {
            return;
        };
        let Some(span) = c.spans.get_mut(id.idx) else {
            return;
        };
        if span.end_ns != u64::MAX {
            return; // already closed
        }
        span.end_ns = end_ns.max(span.start_ns);
        span.fields = fields();
        c.open_spans -= 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        count("x", 1.0);
        gauge("y", 2.0);
        observe("z", 3.0);
        event("e", || vec![("k".to_string(), EventValue::U64(1))]);
        let ((), report) = collect(|| {});
        assert!(report.is_empty(), "pre-scope records must not leak in");
    }

    #[test]
    fn collect_captures_sorted_metrics_and_ordered_events() {
        let (val, report) = collect(|| {
            count("b.count", 2.0);
            count("a.count", 1.0);
            count("b.count", 3.0);
            gauge("g", 1.0);
            gauge("g", 9.0);
            observe("h", 4.0);
            observe("h", 2.0);
            event("first", Vec::new);
            event("second", || {
                vec![("n".to_string(), EventValue::Str("x".into()))]
            });
            42
        });
        assert_eq!(val, 42);
        assert_eq!(
            report.metrics.counters,
            vec![("a.count".to_string(), 1.0), ("b.count".to_string(), 5.0)]
        );
        assert_eq!(report.metrics.gauges, vec![("g".to_string(), 9.0)]);
        assert_eq!(
            report.metrics.histograms,
            vec![(
                "h".to_string(),
                HistogramSummary {
                    count: 2,
                    sum: 6.0,
                    min: 2.0,
                    max: 4.0
                }
            )]
        );
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events[0].seq, 0);
        assert_eq!(report.events[0].name, "first");
        assert_eq!(report.events[1].seq, 1);
        assert_eq!(report.events[1].fields.len(), 1);
    }

    #[test]
    fn nested_scopes_are_isolated() {
        let ((), outer) = collect(|| {
            count("outer", 1.0);
            let ((), inner) = collect(|| count("inner", 1.0));
            assert_eq!(inner.metrics.counters, vec![("inner".to_string(), 1.0)]);
        });
        assert_eq!(outer.metrics.counters, vec![("outer".to_string(), 1.0)]);
    }

    #[test]
    fn panicking_scope_unwinds_cleanly() {
        let caught = std::panic::catch_unwind(|| {
            let _ = collect(|| panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!enabled(), "panicked scope must pop its collector");
        let ((), report) = collect(|| count("after", 1.0));
        assert_eq!(report.metrics.counters, vec![("after".to_string(), 1.0)]);
    }

    #[test]
    fn spans_record_in_begin_order_with_clock() {
        let ((), report) = collect(|| {
            assert_eq!(clock_ns(), 0);
            span("gpu0/link:nvlink->gpu1", "xfer", 0, 250, || {
                vec![("bytes".to_string(), EventValue::U64(4096))]
            });
            advance_clock_ns(1_000);
            span("gpu0/cores", "stall", clock_ns(), clock_ns() + 50, Vec::new);
            assert_eq!(clock_ns(), 1_000);
        });
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[0].seq, 0);
        assert_eq!(report.spans[0].track, "gpu0/link:nvlink->gpu1");
        assert_eq!(report.spans[0].dur_ns(), 250);
        assert_eq!(report.spans[1].start_ns, 1_000);
        assert_eq!(report.spans[1].end_ns, 1_050);
        assert_eq!(report.clock_ns, 1_000);
    }

    #[test]
    fn interleaved_open_spans_close_independently() {
        let ((), report) = collect(|| {
            let a = span_begin("t", "a", 0);
            let b = span_begin("t", "b", 10);
            span_end(a, 30, || vec![("k".to_string(), EventValue::U64(1))]);
            span_end(b, 20, Vec::new);
            // Double-close is a no-op.
            span_end(a, 99, Vec::new);
        });
        assert_eq!(report.spans.len(), 2);
        assert_eq!((report.spans[0].start_ns, report.spans[0].end_ns), (0, 30));
        assert_eq!(report.spans[0].fields.len(), 1);
        assert_eq!((report.spans[1].start_ns, report.spans[1].end_ns), (10, 20));
    }

    #[test]
    fn outer_scope_span_ends_from_inside_nested_scope() {
        let ((), outer) = collect(|| {
            let id = span_begin("outer/track", "lifecycle", 5);
            let ((), inner) = collect(|| {
                span("inner/track", "work", 0, 1, Vec::new);
                span_end(id, 40, Vec::new);
            });
            assert_eq!(inner.spans.len(), 1, "inner scope sees only its own span");
        });
        assert_eq!(outer.spans.len(), 1);
        assert_eq!(outer.spans[0].end_ns, 40);
    }

    #[test]
    fn open_spans_are_force_closed_at_scope_horizon() {
        let ((), report) = collect(|| {
            let _never_ended = span_begin("t", "open", 100);
            span("t", "done", 0, 500, Vec::new);
            advance_clock_ns(700);
        });
        assert_eq!(report.spans.len(), 2);
        // Horizon = max(latest end, clock) = 700.
        assert_eq!(report.spans[0].end_ns, 700);
    }

    #[test]
    fn negative_duration_is_clamped_to_zero() {
        let ((), report) = collect(|| {
            span("t", "s", 50, 10, Vec::new);
            let id = span_begin("t", "g", 80);
            span_end(id, 20, Vec::new);
        });
        assert_eq!(report.spans[0].end_ns, 50);
        assert_eq!(report.spans[1].end_ns, 80);
    }

    #[test]
    fn disabled_span_handle_is_inert() {
        let id = span_begin("t", "s", 0);
        span_end(id, 10, Vec::new);
        advance_clock_ns(1_000);
        assert_eq!(clock_ns(), 0);
        let ((), report) = collect(|| {});
        assert!(report.spans.is_empty());
        assert_eq!(report.clock_ns, 0);
    }

    #[test]
    fn stale_span_handle_after_panic_is_a_noop() {
        let caught = std::panic::catch_unwind(|| {
            collect(|| {
                let id = span_begin("t", "s", 0);
                // Leak the id out via the panic payload path: just panic —
                // the scope (and its spans) are discarded on unwind.
                let _ = id;
                panic!("boom");
            })
        });
        assert!(caught.is_err());
        assert!(!enabled(), "panicked scope must pop its collector");
        // A fresh scope gets a fresh id; ending a span from a dead scope
        // inside it must not touch the new collector.
        let ((), report) = collect(|| {
            let live = span_begin("t", "live", 0);
            span_end(live, 10, Vec::new);
        });
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].end_ns, 10);
    }

    #[test]
    fn absorb_matches_inline_recording() {
        // The merge law: collect each chunk, absorb in chunk order ≡ run
        // the chunks inline, for every instrument kind.
        let chunk = |k: u64| {
            move || {
                count("pool.items", k as f64 + 0.25);
                gauge("pool.last", k as f64);
                observe("pool.h", 1.0 / (k + 1) as f64);
                event("pool.chunk", || vec![("k".to_string(), EventValue::U64(k))]);
                let base = clock_ns();
                span("t", "work", base, base + 10 * (k + 1), Vec::new);
                advance_clock_ns(10 * (k + 1));
            }
        };
        let ((), inline) = collect(|| {
            for k in 0..4 {
                chunk(k)();
            }
        });
        let ((), merged) = collect(|| {
            let reports: Vec<Report> = (0..4).map(|k| collect(chunk(k)).1).collect();
            for r in &reports {
                absorb(r);
            }
        });
        assert_eq!(inline, merged);
    }

    #[test]
    fn absorb_is_deterministic_for_f64_sums() {
        // Chunk subtotals are folded in chunk order, so the parent total
        // is bit-identical no matter which thread produced each report.
        let mk = |k: usize| {
            collect(|| {
                for i in 0..7 {
                    count("c", 0.1 * (k * 7 + i) as f64);
                    observe("h", 0.3 * (k + i) as f64);
                }
            })
            .1
        };
        let reports: Vec<Report> = (0..3).map(mk).collect();
        let run = || {
            collect(|| {
                for r in &reports {
                    absorb(r);
                }
            })
            .1
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.metrics.counters[0].1.to_bits(),
            b.metrics.counters[0].1.to_bits()
        );
        assert_eq!(a, b);
    }

    #[test]
    fn absorb_outside_scope_is_a_noop() {
        let ((), child) = collect(|| count("x", 1.0));
        absorb(&child); // no active scope
        let ((), report) = collect(|| {});
        assert!(report.is_empty());
    }

    #[test]
    fn absorb_rebases_spans_and_advances_clock() {
        let ((), child) = collect(|| {
            span("t", "s", 5, 15, Vec::new);
            advance_clock_ns(20);
        });
        let ((), parent) = collect(|| {
            advance_clock_ns(100);
            absorb(&child);
            absorb(&child);
        });
        assert_eq!(parent.spans.len(), 2);
        assert_eq!(
            (parent.spans[0].start_ns, parent.spans[0].end_ns),
            (105, 115)
        );
        assert_eq!(
            (parent.spans[1].start_ns, parent.spans[1].end_ns),
            (125, 135)
        );
        assert_eq!(parent.clock_ns, 140);
        assert_eq!(parent.spans[1].seq, 1);
    }

    #[test]
    fn exemplars_keep_top_k_by_value_then_id() {
        let ((), report) = collect(|| {
            // 2 * EXEMPLAR_K observations, values 0..16, shuffled-ish
            // record order; only the largest EXEMPLAR_K survive.
            for i in [3u64, 11, 0, 15, 7, 12, 1, 9, 14, 2, 8, 13, 4, 10, 5, 6] {
                observe_with_exemplar("h", i as f64, ReqId(i), || {
                    vec![("i".to_string(), EventValue::U64(i))]
                });
            }
        });
        let (name, list) = &report.metrics.exemplars[0];
        assert_eq!(name, "h");
        assert_eq!(list.len(), EXEMPLAR_K);
        let values: Vec<f64> = list.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![15.0, 14.0, 13.0, 12.0, 11.0, 10.0, 9.0, 8.0]);
        // Retained entries kept their context fields.
        assert_eq!(list[0].fields, vec![("i".to_string(), EventValue::U64(15))]);
        // The histogram digest still counts every observation.
        let (_, h) = &report.metrics.histograms[0];
        assert_eq!(h.count, 16);
    }

    #[test]
    fn exemplar_ties_break_by_ascending_id() {
        let ((), a) = collect(|| {
            for req in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
                observe_with_exemplar("h", 1.0, ReqId(req), Vec::new);
            }
        });
        // All values equal: the K smallest ids survive, in id order.
        let ids: Vec<u64> = a.metrics.exemplars[0].1.iter().map(|e| e.req).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // Selection is a pure function of the (value, id) multiset:
        // reversed record order yields the identical report.
        let ((), b) = collect(|| {
            for req in [0u64, 6, 4, 8, 2, 7, 3, 9, 1, 5] {
                observe_with_exemplar("h", 1.0, ReqId(req), Vec::new);
            }
        });
        assert_eq!(a.metrics.exemplars, b.metrics.exemplars);
    }

    #[test]
    fn exemplars_merge_through_absorb_like_inline_recording() {
        let obs: Vec<(f64, u64)> = (0..24)
            .map(|i| (((i * 13) % 24) as f64 * 0.5, i as u64))
            .collect();
        let record = |chunk: &[(f64, u64)]| {
            for &(v, r) in chunk {
                observe_with_exemplar("lat", v, ReqId(r), || {
                    vec![("r".to_string(), EventValue::U64(r))]
                });
            }
        };
        let ((), inline) = collect(|| record(&obs));
        for split in [1usize, 3, 7, 24] {
            let ((), merged) = collect(|| {
                for chunk in obs.chunks(split) {
                    let ((), child) = collect(|| record(chunk));
                    absorb(&child);
                }
            });
            assert_eq!(
                inline.metrics.exemplars, merged.metrics.exemplars,
                "split {split}"
            );
            assert_eq!(inline.metrics.histograms, merged.metrics.histograms);
        }
    }

    #[test]
    fn exemplar_outside_scope_is_a_noop() {
        observe_with_exemplar("h", 1.0, ReqId(1), || {
            vec![("k".to_string(), EventValue::U64(1))]
        });
        let ((), report) = collect(|| {});
        assert!(report.is_empty());
    }

    #[test]
    fn identical_computations_produce_identical_reports() {
        let run = || {
            collect(|| {
                for i in 0..5 {
                    count("c", i as f64);
                    observe("h", (i * i) as f64);
                    span("t", "step", i * 10, i * 10 + 5, Vec::new);
                    advance_clock_ns(10);
                }
                event("done", || vec![("n".to_string(), EventValue::U64(5))]);
            })
            .1
        };
        assert_eq!(run(), run());
    }
}
