//! Deterministic power-law graph generation.
//!
//! Real GNN datasets (citation networks, social graphs) have power-law
//! in-degree distributions, which is what makes embedding access skewed
//! (paper §2, "skewed access"). The generator draws each edge's target
//! from a Zipf distribution over a hidden popularity ranking, so a small
//! set of vertices absorbs most in-edges — exactly the long-tail shape the
//! cache policy exploits. Target ids are scrambled by a fixed permutation
//! so "hot" does not mean "low id" (the policy must discover hotness, not
//! assume it).

use crate::csr::Csr;
use emb_util::{seed_rng, split_seed, ZipfSampler};
use rand::Rng;

/// Parameters of the power-law generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphConfig {
    /// Number of vertices (= embedding entries).
    pub num_vertices: usize,
    /// Average out-degree; total edges = `num_vertices * avg_degree`.
    pub avg_degree: usize,
    /// Zipf exponent of target popularity (higher = more skew).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            num_vertices: 100_000,
            avg_degree: 16,
            skew: 1.05,
            seed: 42,
        }
    }
}

/// Generates a directed power-law graph.
///
/// Out-degrees are mildly skewed (hub authors cite more), in-degrees
/// follow the configured Zipf popularity. Deterministic in `cfg.seed`.
///
/// # Panics
///
/// Panics if `num_vertices == 0`.
pub fn generate(cfg: &GraphConfig) -> Csr {
    assert!(cfg.num_vertices > 0, "graph must have vertices");
    let n = cfg.num_vertices;
    let mut rng = seed_rng(split_seed(cfg.seed, 0xB00C));
    let zipf = ZipfSampler::new(n as u64, cfg.skew);

    // Fixed pseudo-random permutation: popularity rank -> vertex id.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    // Fisher-Yates with the seeded rng.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }

    // Out-degree sequence: mild power law around the mean, min 1.
    let total_edges = (n * cfg.avg_degree) as u64;
    let mut degree: Vec<u32> = Vec::with_capacity(n);
    let deg_zipf = ZipfSampler::new(64, 0.8);
    let mut assigned: u64 = 0;
    for _ in 0..n {
        // Rank 0..64 mapped around avg_degree: hot ranks get larger lists.
        let r = deg_zipf.sample(&mut rng) as f64;
        let d = ((cfg.avg_degree as f64) * (2.0 / (1.0 + r / 8.0)))
            .round()
            .max(1.0) as u32;
        degree.push(d);
        assigned += d as u64;
    }
    // Rescale to hit the requested edge count approximately.
    let scale = total_edges as f64 / assigned as f64;
    for d in &mut degree {
        *d = ((*d as f64 * scale).round() as u32).max(1);
    }

    let mut adj: Vec<Vec<u32>> = Vec::with_capacity(n);
    for &d in degree.iter() {
        let mut nbrs = Vec::with_capacity(d as usize);
        for _ in 0..d {
            let rank = zipf.sample(&mut rng) as usize;
            nbrs.push(perm[rank]);
        }
        adj.push(nbrs);
    }
    Csr::from_adjacency(adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GraphConfig {
        GraphConfig {
            num_vertices: 5_000,
            avg_degree: 8,
            skew: 1.1,
            seed: 7,
        }
    }

    #[test]
    fn respects_vertex_count_and_edge_budget() {
        let cfg = small_cfg();
        let g = generate(&cfg);
        assert_eq!(g.num_vertices(), cfg.num_vertices);
        let target = (cfg.num_vertices * cfg.avg_degree) as f64;
        let actual = g.num_edges() as f64;
        assert!(
            (actual - target).abs() / target < 0.15,
            "edges {actual} vs target {target}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a, b);
        let c = generate(&GraphConfig {
            seed: 8,
            ..small_cfg()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn in_degree_is_skewed() {
        let g = generate(&small_cfg());
        let mut d = g.in_degrees();
        d.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = d.iter().sum();
        let top1pct: u64 = d.iter().take(g.num_vertices() / 100).sum();
        // The hottest 1% of vertices should absorb far more than 1% of
        // in-edges under a power law.
        assert!(
            top1pct as f64 / total as f64 > 0.10,
            "top 1% absorbs only {:.3}",
            top1pct as f64 / total as f64
        );
    }

    #[test]
    fn hot_vertices_are_scattered_across_id_space() {
        let g = generate(&small_cfg());
        let d = g.in_degrees();
        let n = d.len();
        let hot_ids: Vec<usize> = {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&v| std::cmp::Reverse(d[v]));
            idx.truncate(50);
            idx
        };
        let in_low_half = hot_ids.iter().filter(|&&v| v < n / 2).count();
        // If hotness were id-correlated, all hot ids would cluster low.
        assert!(
            (10..=40).contains(&in_low_half),
            "hot ids clustered: {in_low_half}/50 low"
        );
    }

    #[test]
    fn every_vertex_has_out_edges() {
        let g = generate(&small_cfg());
        for v in 0..g.num_vertices() as u32 {
            assert!(g.degree(v) >= 1);
        }
    }
}
