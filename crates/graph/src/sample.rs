//! Multi-hop neighbourhood sampling.
//!
//! Reproduces the sampling front-end of DGL-style GNN training: every
//! iteration picks a seed batch, expands it hop by hop with per-hop
//! fanouts, and the union of visited vertices is the set of embedding
//! keys the extraction layer must fetch (paper §2, "batched, subset
//! access"). Unsupervised training additionally draws uniform negative
//! samples, which *reduces* access skew — the effect the paper calls out
//! in §8.2.

use crate::csr::Csr;
use rand::seq::SliceRandom;
use rand::Rng;

/// Result of sampling one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledBatch {
    /// Unique vertices touched (seeds, neighbours, negatives) — the
    /// embedding keys to extract, deduplicated as real systems do.
    pub unique_keys: Vec<u32>,
    /// Every vertex visit before deduplication, in visit order. Hotness
    /// profiling counts these (deduplicated presence ties hot entries
    /// together and loses the frequency signal).
    pub visits: Vec<u32>,
}

impl SampledBatch {
    /// Total vertex visits before deduplication.
    pub fn total_visits(&self) -> u64 {
        self.visits.len() as u64
    }
}

/// Random k-hop neighbourhood sampler with per-hop fanouts.
#[derive(Debug, Clone, PartialEq)]
pub struct FanoutSampler {
    /// Neighbours sampled per vertex per hop, outermost hop first
    /// (e.g. `[25, 10]` for 2-hop GraphSAGE).
    pub fanouts: Vec<usize>,
    /// Uniform negative samples added per seed (0 for supervised runs).
    pub negatives_per_seed: usize,
}

impl FanoutSampler {
    /// The standard 2-hop GraphSAGE sampler (fanouts 25, 10), supervised.
    pub fn graphsage() -> Self {
        FanoutSampler {
            fanouts: vec![25, 10],
            negatives_per_seed: 0,
        }
    }

    /// 3-hop GCN-style sampler (fanouts 15, 10, 5), supervised.
    pub fn gcn() -> Self {
        FanoutSampler {
            fanouts: vec![15, 10, 5],
            negatives_per_seed: 0,
        }
    }

    /// Unsupervised GraphSAGE for link prediction: 2-hop plus one negative
    /// seed per positive, which also gets expanded.
    pub fn graphsage_unsupervised() -> Self {
        FanoutSampler {
            fanouts: vec![25, 10],
            negatives_per_seed: 1,
        }
    }

    /// Samples the k-hop neighbourhood of `seeds`.
    ///
    /// # Panics
    ///
    /// Panics if a seed is out of range for the graph.
    pub fn sample<R: Rng + ?Sized>(&self, graph: &Csr, seeds: &[u32], rng: &mut R) -> SampledBatch {
        let n = graph.num_vertices() as u32;
        let mut visited: Vec<u32> = Vec::with_capacity(seeds.len() * 8);
        let mut frontier: Vec<u32> = Vec::with_capacity(seeds.len() * 2);
        for &s in seeds {
            assert!(s < n, "seed {s} out of range");
            frontier.push(s);
        }
        // Negative sampling: uniform random vertices join the frontier and
        // are expanded like positives (link-prediction pipelines compute
        // representations for negatives too).
        if self.negatives_per_seed > 0 && n > 0 {
            for _ in 0..seeds.len() * self.negatives_per_seed {
                frontier.push(rng.gen_range(0..n));
            }
        }
        visited.extend_from_slice(&frontier);

        for &fanout in &self.fanouts {
            let mut next: Vec<u32> = Vec::with_capacity(frontier.len() * fanout);
            for &v in &frontier {
                let nbrs = graph.neighbors(v);
                if nbrs.is_empty() {
                    continue;
                }
                if nbrs.len() <= fanout {
                    next.extend_from_slice(nbrs);
                } else {
                    // Sample without replacement.
                    next.extend(nbrs.choose_multiple(rng, fanout).copied());
                }
            }
            visited.extend_from_slice(&next);
            frontier = next;
        }

        let visits = visited.clone();
        visited.sort_unstable();
        visited.dedup();
        SampledBatch {
            unique_keys: visited,
            visits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GraphConfig};
    use emb_util::seed_rng;

    fn graph() -> Csr {
        generate(&GraphConfig {
            num_vertices: 20_000,
            avg_degree: 12,
            skew: 1.1,
            seed: 3,
        })
    }

    #[test]
    fn seeds_always_included() {
        let g = graph();
        let mut rng = seed_rng(1);
        let seeds = [5u32, 99, 7777];
        let batch = FanoutSampler::graphsage().sample(&g, &seeds, &mut rng);
        for s in seeds {
            assert!(batch.unique_keys.binary_search(&s).is_ok());
        }
    }

    #[test]
    fn unique_keys_are_sorted_and_deduped() {
        let g = graph();
        let mut rng = seed_rng(2);
        let seeds: Vec<u32> = (0..512).collect();
        let batch = FanoutSampler::graphsage().sample(&g, &seeds, &mut rng);
        let mut copy = batch.unique_keys.clone();
        copy.sort_unstable();
        copy.dedup();
        assert_eq!(copy, batch.unique_keys);
        assert!(batch.total_visits() >= batch.unique_keys.len() as u64);
    }

    #[test]
    fn expansion_grows_with_fanout() {
        let g = graph();
        let seeds: Vec<u32> = (0..256).collect();
        let small = FanoutSampler {
            fanouts: vec![2],
            negatives_per_seed: 0,
        }
        .sample(&g, &seeds, &mut seed_rng(4));
        let large = FanoutSampler {
            fanouts: vec![20],
            negatives_per_seed: 0,
        }
        .sample(&g, &seeds, &mut seed_rng(4));
        assert!(large.unique_keys.len() > small.unique_keys.len());
    }

    #[test]
    fn three_hops_visit_more_than_two() {
        let g = graph();
        let seeds: Vec<u32> = (100..400).collect();
        let two = FanoutSampler {
            fanouts: vec![10, 10],
            negatives_per_seed: 0,
        }
        .sample(&g, &seeds, &mut seed_rng(5));
        let three = FanoutSampler {
            fanouts: vec![10, 10, 10],
            negatives_per_seed: 0,
        }
        .sample(&g, &seeds, &mut seed_rng(5));
        assert!(three.total_visits() > two.total_visits());
    }

    #[test]
    fn negatives_reduce_skew() {
        // With uniform negatives, the sampled key set covers more of the
        // cold tail: unique count rises relative to total visits.
        let g = graph();
        let seeds: Vec<u32> = (0..128).collect();
        let sup = FanoutSampler::graphsage().sample(&g, &seeds, &mut seed_rng(6));
        let unsup = FanoutSampler::graphsage_unsupervised().sample(&g, &seeds, &mut seed_rng(6));
        assert!(
            unsup.unique_keys.len() > sup.unique_keys.len(),
            "unsup {} vs sup {}",
            unsup.unique_keys.len(),
            sup.unique_keys.len()
        );
        assert!(unsup.total_visits() > sup.total_visits());
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let g = graph();
        let seeds: Vec<u32> = (0..128).collect();
        let a = FanoutSampler::gcn().sample(&g, &seeds, &mut seed_rng(9));
        let b = FanoutSampler::gcn().sample(&g, &seeds, &mut seed_rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_seed_panics() {
        let g = graph();
        let _ = FanoutSampler::gcn().sample(&g, &[1_000_000], &mut seed_rng(1));
    }
}
