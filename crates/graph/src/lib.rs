//! Graph substrate for GNN workloads.
//!
//! GNN training drives embedding access through k-hop neighbourhood
//! sampling over a power-law graph (paper §2): the skew of embedding
//! access *is* the skew of the graph's in-degree distribution. This crate
//! provides the pieces the paper's GNN experiments need:
//!
//! * [`Csr`] — compressed sparse row adjacency, the standard in-memory
//!   format graph systems sample from;
//! * [`generate()`] — a deterministic power-law graph generator whose
//!   in-degree skew is controlled by a Zipf exponent, standing in for
//!   OGB-Papers100M / Com-Friendster / MAG240M (scaled presets live in
//!   `emb-workload`);
//! * [`FanoutSampler`] — multi-hop random neighbourhood sampling
//!   (GraphSAGE 2-hop, GCN 3-hop) plus negative sampling for the
//!   unsupervised link-prediction workload.

pub mod csr;
pub mod generate;
pub mod sample;

pub use csr::Csr;
pub use generate::{generate, GraphConfig};
pub use sample::{FanoutSampler, SampledBatch};
