//! Compressed sparse row adjacency.

/// A directed graph in CSR form with `u32` vertex ids.
///
/// Vertex ids double as embedding keys throughout the workspace, so a
/// graph with `n` vertices implies an embedding table with `n` entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    offsets: Vec<u64>,
    /// Flattened out-neighbour lists.
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from an edge list over `n` vertices.
    ///
    /// Edges keep their multiplicity and order within a source is
    /// unspecified. Self-loops are allowed.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u64; n];
        for &(s, t) in edges {
            assert!(
                (s as usize) < n && (t as usize) < n,
                "edge ({s},{t}) out of range"
            );
            degree[s as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(s, t) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        Csr { offsets, targets }
    }

    /// Builds a CSR directly from per-vertex adjacency lists.
    pub fn from_adjacency(adj: Vec<Vec<u32>>) -> Self {
        let n = adj.len();
        let mut offsets = vec![0u64; n + 1];
        for (v, nbrs) in adj.iter().enumerate() {
            for &t in nbrs {
                assert!((t as usize) < n, "target {t} out of range");
            }
            offsets[v + 1] = offsets[v] + nbrs.len() as u64;
        }
        let mut targets = Vec::with_capacity(offsets[n] as usize);
        for nbrs in &adj {
            targets.extend_from_slice(nbrs);
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of a vertex.
    pub fn degree(&self, v: u32) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Out-neighbours of a vertex.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// In-degree of every vertex (one full edge scan).
    ///
    /// In-degree approximates embedding-access frequency in GNN sampling
    /// (paper §6.1, the PaGraph heuristic).
    pub fn in_degrees(&self) -> Vec<u64> {
        let mut d = vec![0u64; self.num_vertices()];
        for &t in &self.targets {
            d[t as usize] += 1;
        }
        d
    }

    /// Bytes of topology storage (the paper's `VolumeG`).
    pub fn topology_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<u32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1,2 ; 1 -> 3 ; 2 -> 3 ; 3 -> (none)
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn from_edges_basic() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        let mut n0 = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn in_degrees_counts_targets() {
        let g = diamond();
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn from_adjacency_matches_from_edges() {
        let a = Csr::from_adjacency(vec![vec![1, 2], vec![3], vec![3], vec![]]);
        let b = diamond();
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..4 {
            let mut x = a.neighbors(v).to_vec();
            let mut y = b.neighbors(v).to_vec();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn multi_edges_and_self_loops_kept() {
        let g = Csr::from_edges(2, &[(0, 0), (0, 1), (0, 1)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = Csr::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn topology_bytes_positive() {
        assert!(diamond().topology_bytes() > 0);
    }
}
