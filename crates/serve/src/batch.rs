//! The admission queue's dynamic micro-batching rule.

use emb_util::SimTime;

/// One admitted batch: which pending requests it takes and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAdmission {
    /// Number of requests admitted (starting at the oldest pending one).
    pub count: usize,
    /// When the batch started forming: the later of the server freeing
    /// up and the oldest pending request's arrival.
    pub start: SimTime,
    /// When the batch dispatches to the extractor: the instant it
    /// filled, or `start + window` if it timed out below `max_batch`.
    pub dispatch: SimTime,
}

/// Decides the next micro-batch.
///
/// `arrivals` are the arrival instants of all requests in arrival
/// order; `next` indexes the oldest not-yet-served request; `free` is
/// when the server finishes its current extraction. The batch begins
/// forming at `max(free, arrivals[next])`, admits requests in arrival
/// order, and dispatches as soon as it holds `max_batch` requests —
/// or at the window deadline with whatever arrived by then. Any backlog
/// accumulated while the server was busy is admitted instantly, so a
/// saturated server always dispatches full batches with no added window
/// wait.
///
/// Returns `None` once every request is served.
///
/// # Panics
///
/// Panics if `max_batch` is zero.
pub fn next_admission(
    arrivals: &[SimTime],
    next: usize,
    free: SimTime,
    max_batch: usize,
    window: SimTime,
) -> Option<BatchAdmission> {
    assert!(max_batch > 0, "batches must admit at least one request");
    if next >= arrivals.len() {
        return None;
    }
    let start = free.max(arrivals[next]);
    let deadline = start + window;
    let mut count = 0;
    while count < max_batch {
        match arrivals.get(next + count) {
            Some(&t) if t <= deadline => count += 1,
            _ => break,
        }
    }
    let dispatch = if count == max_batch {
        // Filled: dispatch the moment the last member arrived (or
        // immediately, if the backlog alone filled it).
        start.max(arrivals[next + count - 1])
    } else {
        deadline
    };
    Some(BatchAdmission {
        count,
        start,
        dispatch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn backlog_fills_a_batch_instantly() {
        let arrivals: Vec<SimTime> = (1..=8).map(ms).collect();
        let a = next_admission(&arrivals, 0, ms(100), 4, ms(5)).unwrap();
        assert_eq!(a.count, 4);
        assert_eq!(a.start, ms(100));
        assert_eq!(a.dispatch, ms(100));
    }

    #[test]
    fn window_timeout_dispatches_partial_batch() {
        let arrivals = vec![ms(10), ms(12), ms(40)];
        let a = next_admission(&arrivals, 0, SimTime::ZERO, 8, ms(5)).unwrap();
        assert_eq!(a.count, 2);
        assert_eq!(a.start, ms(10));
        assert_eq!(a.dispatch, ms(15));
    }

    #[test]
    fn batch_that_fills_mid_window_dispatches_early() {
        let arrivals = vec![ms(10), ms(11), ms(12), ms(13)];
        let a = next_admission(&arrivals, 0, SimTime::ZERO, 3, ms(50)).unwrap();
        assert_eq!(a.count, 3);
        assert_eq!(a.dispatch, ms(12));
    }

    #[test]
    fn served_trace_yields_none() {
        let arrivals = vec![ms(1)];
        assert!(next_admission(&arrivals, 1, SimTime::ZERO, 4, ms(5)).is_none());
    }

    #[test]
    fn lone_tail_request_waits_out_the_window() {
        let arrivals = vec![ms(500)];
        let a = next_admission(&arrivals, 0, ms(2), 16, ms(3)).unwrap();
        assert_eq!(a.count, 1);
        assert_eq!(a.start, ms(500));
        assert_eq!(a.dispatch, ms(503));
    }
}
