//! Deterministic Poisson arrival process on the virtual clock.

use emb_util::{seed_rng, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// A seeded Poisson process: successive [`PoissonArrivals::next`] calls
/// return strictly ordered arrival instants whose gaps are exponential
/// with mean `1 / rate_rps`.
///
/// Inter-arrival gaps come from the inverse CDF (`-ln(1-u) / rate`)
/// over a [`seed_rng`] stream and are accumulated in call order as
/// `f64` seconds before conversion to [`SimTime`], so the instants are
/// byte-for-byte reproducible for a given `(seed, rate)` — there is no
/// wall clock and no ambient randomness.
///
/// # Examples
///
/// ```
/// let mut a = emb_serve::PoissonArrivals::new(7, 1000.0);
/// let mut b = emb_serve::PoissonArrivals::new(7, 1000.0);
/// assert_eq!(a.next(), b.next());
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: StdRng,
    rate_rps: f64,
    elapsed_secs: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given seed and offered rate
    /// (requests per second of virtual time).
    ///
    /// # Panics
    ///
    /// Panics unless `rate_rps` is finite and positive.
    pub fn new(seed: u64, rate_rps: f64) -> Self {
        assert!(
            rate_rps.is_finite() && rate_rps > 0.0,
            "arrival rate must be a positive finite number"
        );
        PoissonArrivals {
            rng: seed_rng(seed),
            rate_rps,
            elapsed_secs: 0.0,
        }
    }

    /// The offered rate in requests per second.
    pub fn rate_rps(&self) -> f64 {
        self.rate_rps
    }

    /// Returns the next arrival instant (relative to the process start).
    // Deliberately an inherent method: the process is infinite, and an
    // `Iterator` impl would shadow the bounded inherent `take` below.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> SimTime {
        // u is uniform in [0, 1); 1-u is in (0, 1], so the log argument
        // never hits zero and the gap is finite and non-negative.
        let u: f64 = self.rng.gen();
        self.elapsed_secs += -(1.0 - u).ln() / self.rate_rps;
        SimTime::from_secs_f64(self.elapsed_secs)
    }

    /// Generates the first `n` arrival instants.
    pub fn take(&mut self, n: usize) -> Vec<SimTime> {
        (0..n).map(|_| self.next()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_ordered_and_positive() {
        let mut p = PoissonArrivals::new(3, 10_000.0);
        let ts = p.take(1_000);
        assert!(ts[0] > SimTime::ZERO);
        for w in ts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn mean_gap_matches_rate() {
        let rate = 5_000.0;
        let mut p = PoissonArrivals::new(11, rate);
        let n = 20_000;
        let last = p.take(n).pop().unwrap();
        let mean_gap = last.as_secs_f64() / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean_gap - expected).abs() / expected < 0.05,
            "mean gap {mean_gap} vs expected {expected}"
        );
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let a = PoissonArrivals::new(1, 100.0).take(16);
        let b = PoissonArrivals::new(2, 100.0).take(16);
        assert_ne!(a, b);
    }

    #[test]
    fn arrival_process_is_pinned_byte_for_byte() {
        // Golden nanosecond timestamps for the harness seed and the
        // serving engine's arrival stream label. Any change to the RNG,
        // the seed-splitting scheme, the inter-arrival formula, or the
        // f64 accumulation order shifts these and breaks every committed
        // serving baseline — this pin makes that a unit-test failure
        // instead of a CI artifact diff.
        const LABEL: u64 = 0xA22100; // engine::ARRIVAL_STREAM
        let main: Vec<u64> = PoissonArrivals::new(emb_util::split_seed(0x5EED, LABEL), 10_000.0)
            .take(8)
            .iter()
            .map(|t| t.as_nanos())
            .collect();
        assert_eq!(
            main,
            [48356, 56567, 159974, 261088, 285096, 778587, 886480, 916941]
        );
        // The per-point split stream (label ^ point) is an independent
        // pinned sequence, not a shift of the first.
        let split: Vec<u64> =
            PoissonArrivals::new(emb_util::split_seed(0x5EED, LABEL ^ 1), 10_000.0)
                .take(4)
                .iter()
                .map(|t| t.as_nanos())
                .collect();
        assert_eq!(split, [59465, 135227, 355462, 629831]);
        // Same seed, fresh process: byte-identical replay.
        let replay: Vec<u64> = PoissonArrivals::new(emb_util::split_seed(0x5EED, LABEL), 10_000.0)
            .take(8)
            .iter()
            .map(|t| t.as_nanos())
            .collect();
        assert_eq!(main, replay);
    }
}
