//! The serving engine: drives a [`UGache`] through micro-batched
//! request traffic and accounts per-request latency on the virtual
//! clock.

use crate::batch::next_admission;
use crate::clients::ClientPopulation;
use crate::{PoissonArrivals, ServeConfig};
use emb_util::stats::percentile;
use emb_util::{seed_rng, split_seed, SimTime};
use gpu_platform::Location;
use ugache::UGache;

/// Seed-split label for each load point's arrival process.
const ARRIVAL_STREAM: u64 = 0xA22100;
/// Seed-split label for each load point's user-pick stream.
const USER_PICK_STREAM: u64 = 0x05E200;
/// Seed-split label for the capacity probe's user-pick stream.
const CAPACITY_STREAM: u64 = 0xCA9AC1;

/// Throughput and latency summary of one offered-load level.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct LoadSample {
    /// Offered load (requests per second of virtual time).
    pub offered_rps: f64,
    /// Completed requests over the span from first arrival to last
    /// completion.
    pub achieved_rps: f64,
    /// Requests served.
    pub requests: u64,
    /// Extraction batches dispatched.
    pub batches: u64,
    /// Mean requests coalesced per batch.
    pub mean_batch: f64,
    /// Median request latency (ms of virtual time).
    pub p50_ms: f64,
    /// 99th-percentile request latency (ms).
    pub p99_ms: f64,
    /// 99.9th-percentile request latency (ms).
    pub p999_ms: f64,
    /// Worst request latency (ms).
    pub max_ms: f64,
    /// Mean time spent waiting for the server to free up (ms).
    pub mean_queue_ms: f64,
    /// Mean time spent waiting for the batch to fill or time out (ms).
    pub mean_batch_wait_ms: f64,
    /// Mean extraction time per request (ms).
    pub mean_extract_ms: f64,
    /// Fraction of extracted keys served from the local GPU arena.
    pub local_frac: f64,
    /// Fraction served from remote GPU arenas.
    pub remote_frac: f64,
    /// Fraction served from the host table.
    pub host_frac: f64,
}

/// Latency percentiles of a set of requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// 99.9th percentile (ms).
    pub p999_ms: f64,
    /// Maximum (ms).
    pub max_ms: f64,
    /// Mean (ms).
    pub mean_ms: f64,
}

/// Summarizes nanosecond latencies into p50/p99/p999/max/mean
/// milliseconds via the exact nearest-rank estimator
/// ([`emb_util::stats::percentile`]).
///
/// Returns zeros for an empty input.
pub fn summarize_latencies(latencies_ns: &[u64]) -> LatencySummary {
    let ms: Vec<f64> = latencies_ns.iter().map(|&ns| ns as f64 / 1e6).collect();
    let pct = |p: f64| percentile(&ms, p).unwrap_or(0.0);
    LatencySummary {
        p50_ms: pct(50.0),
        p99_ms: pct(99.0),
        p999_ms: pct(99.9),
        max_ms: pct(100.0),
        mean_ms: if ms.is_empty() {
            0.0
        } else {
            ms.iter().sum::<f64>() / ms.len() as f64
        },
    }
}

/// Builds the correlation id for request `index` of load `point`:
/// `point << 32 | index`.
///
/// Every telemetry record the engine emits for one request — the
/// `serve.request` event, the `serve.latency_ms` / `serve.latency_ns`
/// exemplars, and the enclosing batch span's `first_req`/`last_req`
/// fields — carries this id, so a tail observation links back to its
/// full lifecycle.
pub fn req_id(point: u64, index: usize) -> emb_telemetry::ReqId {
    emb_telemetry::ReqId((point << 32) | index as u64)
}

/// Coalesces the admitted requests' keys into per-GPU shards
/// (`key % num_gpus`), sorted and deduplicated like every other batch
/// the cache sees.
fn shard_keys<'a>(keys: impl Iterator<Item = &'a [u32]>, num_gpus: usize) -> Vec<Vec<u32>> {
    let mut shards = vec![Vec::new(); num_gpus];
    for req_keys in keys {
        for &k in req_keys {
            shards[k as usize % num_gpus].push(k);
        }
    }
    for shard in &mut shards {
        shard.sort_unstable();
        shard.dedup();
    }
    shards
}

/// Runs one coalesced extraction and returns `(makespan, local, remote,
/// host)` where the last three are extracted-key counts per tier.
fn extract_batch(u: &mut UGache, shards: &[Vec<u32>], entry_bytes: usize) -> (SimTime, [f64; 3]) {
    let r = u.process_iteration(shards);
    let mut tiers = [0.0f64; 3];
    for g in &r.extract.per_gpu {
        for lu in &g.per_src {
            let keys = lu.bytes / entry_bytes as f64;
            match lu.src {
                Location::Gpu(src) if src == g.gpu => tiers[0] += keys,
                Location::Gpu(_) => tiers[1] += keys,
                Location::Host => tiers[2] += keys,
            }
        }
    }
    (r.extract.makespan, tiers)
}

/// Estimates the server's saturation throughput: one full
/// `max_batch`-request extraction is simulated and the capacity is
/// `max_batch / makespan`. The harness sweeps offered load as multiples
/// of this estimate.
pub fn estimate_capacity_rps(
    u: &mut UGache,
    cfg: &ServeConfig,
    clients: &mut ClientPopulation,
) -> f64 {
    let mut rng = seed_rng(split_seed(cfg.seed, CAPACITY_STREAM));
    let requests: Vec<Vec<u32>> = (0..cfg.max_batch)
        .map(|_| clients.next_request(&mut rng).keys)
        .collect();
    let shards = shard_keys(requests.iter().map(Vec::as_slice), u.platform().num_gpus());
    let (makespan, _) = extract_batch(u, &shards, cfg.entry_bytes);
    let capacity = cfg.max_batch as f64 / makespan.as_secs_f64().max(1e-12);
    emb_telemetry::event("serve.capacity", || {
        vec![
            (
                "capacity_rps".to_string(),
                emb_telemetry::EventValue::F64(capacity),
            ),
            (
                "probe_makespan_secs".to_string(),
                emb_telemetry::EventValue::F64(makespan.as_secs_f64()),
            ),
        ]
    });
    capacity
}

/// Draws the `cfg.requests` per-request key lists that
/// [`run_load_point`] would serve at load point `point`.
///
/// This is the record/replay seam: recording a serving trace captures
/// exactly this stream, and [`run_load_point_with_keys`] consumes it
/// (or a decoded trace) without drawing any randomness of its own. The
/// draws are prefix-stable — requesting fewer keys yields a prefix of
/// the longer stream.
pub fn draw_request_keys(
    cfg: &ServeConfig,
    clients: &mut ClientPopulation,
    point: u64,
) -> Vec<Vec<u32>> {
    let mut user_rng = seed_rng(split_seed(cfg.seed, USER_PICK_STREAM ^ point));
    (0..cfg.requests)
        .map(|_| clients.next_request(&mut user_rng).keys)
        .collect()
}

/// Serves `cfg.requests` requests at `offered_rps` through `u` and
/// summarizes throughput and latency.
///
/// `point` labels this load level's seed-split streams, so every level
/// of a sweep draws independent, reproducible arrivals and users.
/// Equivalent to [`draw_request_keys`] followed by
/// [`run_load_point_with_keys`].
///
/// Per request, latency decomposes as queueing (arrival until the batch
/// starts forming) + batching (until dispatch) + extraction (the
/// coalesced multi-GPU extraction's makespan), all in exact nanosecond
/// arithmetic on the simulated clock. The engine advances `u`'s virtual
/// clock across idle gaps so the telemetry scope timeline mirrors
/// serving time, records one `serve/batches` span per dispatched batch,
/// and emits a `serve.load_point` summary event.
///
/// Each request is tagged with a correlation id ([`req_id`]) that links
/// its `serve.request` decomposition event, its `serve.latency_ms` /
/// `serve.latency_ns` exemplar context, and its batch's span fields;
/// `queue_ns + batch_wait_ns + extract_ns == latency_ns` holds exactly
/// for every request.
///
/// # Panics
///
/// Panics if `cfg.max_batch` is zero or a drawn key falls outside the
/// served table (a `cfg.num_keys` / cache-size mismatch).
pub fn run_load_point(
    u: &mut UGache,
    cfg: &ServeConfig,
    clients: &mut ClientPopulation,
    point: u64,
    offered_rps: f64,
) -> LoadSample {
    let request_keys = draw_request_keys(cfg, clients, point);
    run_load_point_with_keys(u, cfg, point, offered_rps, &request_keys)
}

/// Serves the given pre-drawn request key lists at `offered_rps`.
///
/// The request count is `request_keys.len()` (the arrival process draws
/// exactly that many arrivals), so replaying a recorded trace serves
/// exactly the recorded requests. With keys from [`draw_request_keys`]
/// at the same `point`, this is byte-for-byte [`run_load_point`].
///
/// # Panics
///
/// Panics if `cfg.max_batch` is zero or a key falls outside the served
/// table (a `cfg.num_keys` / cache-size mismatch).
pub fn run_load_point_with_keys(
    u: &mut UGache,
    cfg: &ServeConfig,
    point: u64,
    offered_rps: f64,
    request_keys: &[Vec<u32>],
) -> LoadSample {
    let num_gpus = u.platform().num_gpus();
    let mut arrivals_rng =
        PoissonArrivals::new(split_seed(cfg.seed, ARRIVAL_STREAM ^ point), offered_rps);
    let arrivals = arrivals_rng.take(request_keys.len());

    let mut next = 0usize;
    let mut free = SimTime::ZERO;
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(request_keys.len());
    let mut queue_ns_total = 0u64;
    let mut batch_wait_ns_total = 0u64;
    let mut extract_ns_total = 0u64;
    let mut batches = 0u64;
    let mut tier_keys = [0.0f64; 3];
    let mut last_completion = SimTime::ZERO;

    while let Some(adm) = next_admission(&arrivals, next, free, cfg.max_batch, cfg.batch_window) {
        let members = next..next + adm.count;
        let shards = shard_keys(
            members.clone().map(|i| request_keys[i].as_slice()),
            num_gpus,
        );
        let coalesced: usize = shards.iter().map(Vec::len).sum();
        // Keep the telemetry scope clock aligned with serving time: the
        // gap between the previous completion and this dispatch is idle.
        u.advance_clock(adm.dispatch.saturating_sub(free).as_secs_f64());
        let span_base = emb_telemetry::clock_ns();
        let (makespan, tiers) = extract_batch(u, &shards, cfg.entry_bytes);
        emb_telemetry::span(
            "serve/batches",
            "batch",
            span_base,
            emb_telemetry::clock_ns(),
            || {
                vec![
                    (
                        "requests".to_string(),
                        emb_telemetry::EventValue::U64(adm.count as u64),
                    ),
                    (
                        "coalesced_keys".to_string(),
                        emb_telemetry::EventValue::U64(coalesced as u64),
                    ),
                    ("first_req".to_string(), req_id(point, next).into()),
                    (
                        "last_req".to_string(),
                        req_id(point, next + adm.count - 1).into(),
                    ),
                ]
            },
        );
        let completion = adm.dispatch + makespan;
        for i in members {
            let arrival = arrivals[i];
            let queue = adm.start.saturating_sub(arrival);
            let batch_wait = adm.dispatch.saturating_sub(arrival.max(adm.start));
            let latency = (completion.saturating_sub(arrival)).as_nanos();
            queue_ns_total += queue.as_nanos();
            batch_wait_ns_total += batch_wait.as_nanos();
            extract_ns_total += makespan.as_nanos();
            latencies_ns.push(latency);
            let req = req_id(point, i);
            // Context the tail-forensics report (`repro explain-tail`)
            // reconstructs from: the exact-ns decomposition (the three
            // components sum to `latency_ns` by construction) plus the
            // batch's shape and per-tier key counts. Built lazily — the
            // closure only runs when the observation ranks in the
            // histogram's top-K.
            let exemplar_fields = || {
                vec![
                    ("point".to_string(), emb_telemetry::EventValue::U64(point)),
                    (
                        "offered_rps".to_string(),
                        emb_telemetry::EventValue::F64(offered_rps),
                    ),
                    (
                        "queue_ns".to_string(),
                        emb_telemetry::EventValue::U64(queue.as_nanos()),
                    ),
                    (
                        "batch_wait_ns".to_string(),
                        emb_telemetry::EventValue::U64(batch_wait.as_nanos()),
                    ),
                    (
                        "extract_ns".to_string(),
                        emb_telemetry::EventValue::U64(makespan.as_nanos()),
                    ),
                    (
                        "latency_ns".to_string(),
                        emb_telemetry::EventValue::U64(latency),
                    ),
                    (
                        "batch_requests".to_string(),
                        emb_telemetry::EventValue::U64(adm.count as u64),
                    ),
                    (
                        "batch_keys_local".to_string(),
                        emb_telemetry::EventValue::F64(tiers[0]),
                    ),
                    (
                        "batch_keys_remote".to_string(),
                        emb_telemetry::EventValue::F64(tiers[1]),
                    ),
                    (
                        "batch_keys_host".to_string(),
                        emb_telemetry::EventValue::F64(tiers[2]),
                    ),
                ]
            };
            emb_telemetry::observe_with_exemplar(
                "serve.latency_ms",
                latency as f64 / 1e6,
                req,
                exemplar_fields,
            );
            emb_telemetry::observe_with_exemplar(
                "serve.latency_ns",
                latency as f64,
                req,
                exemplar_fields,
            );
            emb_telemetry::observe("serve.queue_ms", queue.as_nanos() as f64 / 1e6);
            emb_telemetry::event("serve.request", || {
                vec![
                    ("req".to_string(), req.into()),
                    (
                        "queue_ns".to_string(),
                        emb_telemetry::EventValue::U64(queue.as_nanos()),
                    ),
                    (
                        "batch_wait_ns".to_string(),
                        emb_telemetry::EventValue::U64(batch_wait.as_nanos()),
                    ),
                    (
                        "extract_ns".to_string(),
                        emb_telemetry::EventValue::U64(makespan.as_nanos()),
                    ),
                    (
                        "latency_ns".to_string(),
                        emb_telemetry::EventValue::U64(latency),
                    ),
                ]
            });
        }
        emb_telemetry::count("serve.requests", adm.count as f64);
        emb_telemetry::count("serve.batches", 1.0);
        emb_telemetry::observe("serve.batch_size", adm.count as f64);
        emb_telemetry::count("serve.keys.local", tiers[0]);
        emb_telemetry::count("serve.keys.remote", tiers[1]);
        emb_telemetry::count("serve.keys.host", tiers[2]);
        for t in 0..3 {
            tier_keys[t] += tiers[t];
        }
        batches += 1;
        free = completion;
        last_completion = completion;
        next += adm.count;
    }

    let served = latencies_ns.len() as u64;
    let span_secs = last_completion
        .saturating_sub(arrivals.first().copied().unwrap_or(SimTime::ZERO))
        .as_secs_f64();
    let achieved_rps = if span_secs > 0.0 {
        served as f64 / span_secs
    } else {
        0.0
    };
    let lat = summarize_latencies(&latencies_ns);
    let per_req_ms = |total_ns: u64| {
        if served == 0 {
            0.0
        } else {
            total_ns as f64 / 1e6 / served as f64
        }
    };
    let total_keys: f64 = tier_keys.iter().sum();
    let frac = |t: usize| {
        if total_keys > 0.0 {
            tier_keys[t] / total_keys
        } else {
            0.0
        }
    };
    let sample = LoadSample {
        offered_rps,
        achieved_rps,
        requests: served,
        batches,
        mean_batch: if batches == 0 {
            0.0
        } else {
            served as f64 / batches as f64
        },
        p50_ms: lat.p50_ms,
        p99_ms: lat.p99_ms,
        p999_ms: lat.p999_ms,
        max_ms: lat.max_ms,
        mean_queue_ms: per_req_ms(queue_ns_total),
        mean_batch_wait_ms: per_req_ms(batch_wait_ns_total),
        mean_extract_ms: per_req_ms(extract_ns_total),
        local_frac: frac(0),
        remote_frac: frac(1),
        host_frac: frac(2),
    };
    emb_telemetry::event("serve.load_point", || {
        vec![
            (
                "offered_rps".to_string(),
                emb_telemetry::EventValue::F64(sample.offered_rps),
            ),
            (
                "achieved_rps".to_string(),
                emb_telemetry::EventValue::F64(sample.achieved_rps),
            ),
            (
                "requests".to_string(),
                emb_telemetry::EventValue::U64(sample.requests),
            ),
            (
                "batches".to_string(),
                emb_telemetry::EventValue::U64(sample.batches),
            ),
            (
                "p50_ms".to_string(),
                emb_telemetry::EventValue::F64(sample.p50_ms),
            ),
            (
                "p99_ms".to_string(),
                emb_telemetry::EventValue::F64(sample.p99_ms),
            ),
            (
                "p999_ms".to_string(),
                emb_telemetry::EventValue::F64(sample.p999_ms),
            ),
        ]
    });
    sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_policy::Hotness;
    use emb_cache::HostTable;
    use emb_util::zipf::powerlaw_hotness;
    use gpu_platform::Platform;
    use ugache::{UGache, UGacheConfig};

    const N: usize = 2_000;
    const DIM: usize = 8;

    fn build() -> UGache {
        let platform = Platform::server_a();
        let host = HostTable::procedural(N, DIM);
        let hotness = Hotness::new(powerlaw_hotness(N, 1.1));
        let mut cfg = UGacheConfig::new(DIM * 4, 200.0);
        cfg.solver.blocks.max_blocks = 32;
        cfg.solver.blocks.min_splits = 4;
        UGache::build(platform, host, &hotness, vec![300; 4], cfg).unwrap()
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            seed: 0x5EED,
            num_users: 50_000,
            num_keys: N as u64,
            user_alpha: 1.1,
            keys_per_request: 8,
            entry_bytes: DIM * 4,
            max_batch: 8,
            batch_window: SimTime::from_micros(200),
            requests: 64,
        }
    }

    fn run_once(offered: f64) -> LoadSample {
        let c = cfg();
        let mut u = build();
        let mut clients = ClientPopulation::new(
            c.seed,
            c.num_users,
            c.num_keys,
            c.user_alpha,
            c.keys_per_request,
        );
        run_load_point(&mut u, &c, &mut clients, 0, offered)
    }

    #[test]
    fn serves_every_request_and_orders_percentiles() {
        let s = run_once(20_000.0);
        assert_eq!(s.requests, 64);
        assert!(s.batches > 0 && s.batches <= 64);
        assert!(s.p50_ms > 0.0);
        assert!(s.p50_ms <= s.p99_ms);
        assert!(s.p99_ms <= s.p999_ms);
        assert!(s.p999_ms <= s.max_ms);
        assert!(s.achieved_rps > 0.0);
        let fracs = s.local_frac + s.remote_frac + s.host_frac;
        assert!((fracs - 1.0).abs() < 1e-9, "tier fractions sum to {fracs}");
    }

    #[test]
    fn identical_runs_are_identical() {
        assert_eq!(run_once(15_000.0), run_once(15_000.0));
    }

    #[test]
    fn request_decomposition_sums_exactly_and_links_by_id() {
        use emb_telemetry::EventValue;
        let field = |fields: &[(String, EventValue)], name: &str| -> u64 {
            match fields.iter().find(|(k, _)| k == name) {
                Some((_, EventValue::U64(v))) => *v,
                other => panic!("missing u64 field {name}: {other:?}"),
            }
        };
        let ((), report) = emb_telemetry::collect(|| {
            run_once(20_000.0);
        });
        // Every per-request event carries an exact decomposition.
        let requests: Vec<_> = report
            .events
            .iter()
            .filter(|e| e.name == "serve.request")
            .collect();
        assert_eq!(requests.len(), 64);
        for (i, e) in requests.iter().enumerate() {
            assert_eq!(field(&e.fields, "req"), i as u64, "ids are point<<32|i");
            assert_eq!(
                field(&e.fields, "queue_ns")
                    + field(&e.fields, "batch_wait_ns")
                    + field(&e.fields, "extract_ns"),
                field(&e.fields, "latency_ns"),
                "request {i}: components must sum to latency"
            );
        }
        // The ns histogram ranks the same tail as the ms one, and its
        // exemplar context repeats the identity with value == latency.
        let exemplars: std::collections::BTreeMap<_, _> = report
            .metrics
            .exemplars
            .iter()
            .map(|(n, l)| (n.as_str(), l))
            .collect();
        let ns = exemplars["serve.latency_ns"];
        let ms = exemplars["serve.latency_ms"];
        assert_eq!(ns.len(), emb_telemetry::EXEMPLAR_K);
        assert_eq!(
            ns.iter().map(|e| e.req).collect::<Vec<_>>(),
            ms.iter().map(|e| e.req).collect::<Vec<_>>()
        );
        for x in ns {
            assert_eq!(x.value, field(&x.fields, "latency_ns") as f64);
            assert_eq!(
                field(&x.fields, "queue_ns")
                    + field(&x.fields, "batch_wait_ns")
                    + field(&x.fields, "extract_ns"),
                field(&x.fields, "latency_ns")
            );
        }
        // Batch spans bracket their members' ids.
        let batches: Vec<_> = report
            .spans
            .iter()
            .filter(|s| s.track == "serve/batches")
            .collect();
        assert!(!batches.is_empty());
        let mut expect = 0u64;
        for b in &batches {
            assert_eq!(field(&b.fields, "first_req"), expect);
            expect = field(&b.fields, "last_req") + 1;
        }
        assert_eq!(expect, 64, "spans cover every request exactly once");
    }

    #[test]
    fn overload_queues_longer_than_light_load() {
        let c = cfg();
        let mut u = build();
        let mut clients = ClientPopulation::new(
            c.seed,
            c.num_users,
            c.num_keys,
            c.user_alpha,
            c.keys_per_request,
        );
        let capacity = estimate_capacity_rps(&mut u, &c, &mut clients);
        assert!(capacity > 0.0);
        let light = run_load_point(&mut u, &c, &mut clients, 0, capacity * 0.2);
        let heavy = run_load_point(&mut u, &c, &mut clients, 1, capacity * 3.0);
        // Under light load the batching window dominates latency, so the
        // discriminating signal of overload is queueing delay (and fuller
        // batches), not the raw percentile.
        assert!(
            heavy.mean_queue_ms > light.mean_queue_ms,
            "overload queue {} vs light queue {}",
            heavy.mean_queue_ms,
            light.mean_queue_ms
        );
        assert!(heavy.mean_batch >= light.mean_batch);
        assert!(heavy.achieved_rps < capacity * 3.0);
    }
}
