//! Simulated client populations with per-user Zipfian key draws.

use emb_util::{seed_rng, split_seed, ZipfSampler};
use rand::Rng;
use std::collections::HashMap;

/// Seed-split label for the per-user key-draw stream family.
const USER_STREAM: u64 = 0xC11E17;

/// One embedding lookup request from one user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The requesting user id (`0..num_users`).
    pub user: u64,
    /// The requested embedding keys (may contain duplicates; the
    /// admission queue deduplicates when coalescing a batch).
    pub keys: Vec<u32>,
}

/// A population of `num_users` simulated clients sharing one Zipfian
/// popularity profile.
///
/// Each request draws its user uniformly from the population (via the
/// caller-supplied RNG — typically split from the arrival stream), then
/// draws `keys_per_request` keys from the shared [`ZipfSampler`] using a
/// dedicated RNG seeded with
/// [`split_seed`]`(split_seed(seed, USER_STREAM ^ user), visit)`.
/// Per-user streams are therefore deterministic and independent — a new
/// user or an extra visit never perturbs anyone else's draws — and the
/// only per-user state is a lazily populated visit counter for users
/// that actually appeared, so populations of millions cost nothing up
/// front.
#[derive(Debug, Clone)]
pub struct ClientPopulation {
    seed: u64,
    num_users: u64,
    keys_per_request: usize,
    zipf: ZipfSampler,
    visits: HashMap<u64, u64>,
}

impl ClientPopulation {
    /// Creates a population over `num_keys` embedding keys.
    ///
    /// # Panics
    ///
    /// Panics if `num_users` or `num_keys` is zero, or if `alpha` is not
    /// a positive finite number (propagated from [`ZipfSampler::new`]).
    pub fn new(
        seed: u64,
        num_users: u64,
        num_keys: u64,
        alpha: f64,
        keys_per_request: usize,
    ) -> Self {
        assert!(num_users > 0, "population must be non-empty");
        ClientPopulation {
            seed,
            num_users,
            keys_per_request,
            zipf: ZipfSampler::new(num_keys, alpha),
            visits: HashMap::new(),
        }
    }

    /// The population size.
    pub fn num_users(&self) -> u64 {
        self.num_users
    }

    /// Draws the next request: a uniform user from `rng`, then that
    /// user's keys from their own split-seeded Zipf stream.
    pub fn next_request<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Request {
        let user = rng.gen_range(0..self.num_users);
        let visit = self.visits.entry(user).or_insert(0);
        let mut key_rng = seed_rng(split_seed(
            split_seed(self.seed, USER_STREAM ^ user),
            *visit,
        ));
        *visit += 1;
        let keys = (0..self.keys_per_request)
            .map(|_| self.zipf.sample(&mut key_rng) as u32)
            .collect();
        Request { user, keys }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_requests() {
        let mut a = ClientPopulation::new(9, 1_000_000, 10_000, 1.1, 8);
        let mut b = ClientPopulation::new(9, 1_000_000, 10_000, 1.1, 8);
        let mut ra = seed_rng(1);
        let mut rb = seed_rng(1);
        for _ in 0..64 {
            assert_eq!(a.next_request(&mut ra), b.next_request(&mut rb));
        }
    }

    #[test]
    fn keys_stay_in_domain_and_head_is_hot() {
        let n = 5_000u64;
        let mut pop = ClientPopulation::new(4, 100_000, n, 1.2, 16);
        let mut rng = seed_rng(2);
        let mut head = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let r = pop.next_request(&mut rng);
            assert_eq!(r.keys.len(), 16);
            assert!(r.user < 100_000);
            for &k in &r.keys {
                assert!((k as u64) < n);
                total += 1;
                if (k as u64) < n / 100 {
                    head += 1;
                }
            }
        }
        // A 1% key head should absorb far more than 1% of Zipf(1.2) draws.
        assert!(head * 10 > total, "head draws {head} of {total}");
    }

    #[test]
    fn repeat_visits_draw_fresh_keys() {
        // A single-user population: every request is a new visit of the
        // same user, and successive visits must not repeat a stream.
        let mut pop = ClientPopulation::new(7, 1, 1_000_000, 1.05, 8);
        let mut rng = seed_rng(3);
        let a = pop.next_request(&mut rng);
        let b = pop.next_request(&mut rng);
        assert_eq!(a.user, b.user);
        assert_ne!(a.keys, b.keys);
    }
}
