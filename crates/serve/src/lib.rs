//! Online inference serving over a [`ugache::UGache`] instance.
//!
//! The training-side harness replays the paper's offline figures; this
//! crate adds the request path the ROADMAP's north star asks for: a
//! deterministic, simulated-time embedding parameter server in the
//! style of NVIDIA's HPS (arXiv 2210.08804). Concurrent lookups from a
//! large client population are coalesced by a micro-batching admission
//! queue into single multi-GPU extractions, and every request's latency
//! is accounted as queueing + batching + extraction on the virtual
//! clock — no wall-clock reads anywhere.
//!
//! The moving parts, bottom up:
//!
//! * [`PoissonArrivals`] — a seeded Poisson process on the virtual
//!   clock: exponential inter-arrival gaps via inverse-CDF from a
//!   [`emb_util::seed_rng`] stream, accumulated in a fixed order so the
//!   arrival instants are byte-for-byte reproducible.
//! * [`ClientPopulation`] — millions of simulated users; each request
//!   picks a user and draws that user's keys from a Zipfian sampler
//!   seeded by [`emb_util::split_seed`]`(user_seed, visit)`, so every
//!   user has their own deterministic draw stream without per-user
//!   state proportional to the population size.
//! * [`next_admission`] — the micro-batcher's admission rule: a batch
//!   starts forming when the server frees up, admits up to `max_batch`
//!   requests, and dispatches early when full or at the batching-window
//!   deadline otherwise.
//! * [`run_load_point`] / [`estimate_capacity_rps`] — the serving
//!   engine: drives a [`ugache::UGache`] through the admitted batches
//!   (one [`ugache::UGache::process_iteration`] per batch — the
//!   coalesced multi-GPU extraction), keeps the telemetry scope clock
//!   aligned with serving time, and summarizes per-request latencies
//!   into throughput and p50/p99/p999 tail percentiles.
//!
//! Everything is a pure function of the config's `u64` seed; the bench
//! harness's `serve` target sweeps offered load through these APIs and
//! emits the resulting curves as schema'd artifacts.
//!
//! Every request additionally carries a correlation id ([`req_id`])
//! linking its `serve.request` decomposition event, its
//! `serve.latency_ms` / `serve.latency_ns` histogram exemplars, and its
//! batch's span fields — the raw material `repro explain-tail` turns
//! into a tail-latency forensics report.

#![deny(missing_docs)]

mod arrivals;
mod batch;
mod clients;
mod engine;

pub use arrivals::PoissonArrivals;
pub use batch::{next_admission, BatchAdmission};
pub use clients::{ClientPopulation, Request};
pub use engine::{
    draw_request_keys, estimate_capacity_rps, req_id, run_load_point, run_load_point_with_keys,
    summarize_latencies, LoadSample,
};

use emb_util::SimTime;

/// Configuration of the serving layer (everything except the offered
/// load, which the harness sweeps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Root seed; all client / arrival streams split from it.
    pub seed: u64,
    /// Simulated client population size.
    pub num_users: u64,
    /// Embedding key domain (must match the served cache's table).
    pub num_keys: u64,
    /// Zipf exponent of each user's key-draw distribution.
    pub user_alpha: f64,
    /// Embedding keys per request.
    pub keys_per_request: usize,
    /// Bytes per embedding entry (for key-count accounting of the
    /// extractor's byte totals).
    pub entry_bytes: usize,
    /// Maximum requests coalesced into one extraction.
    pub max_batch: usize,
    /// Longest a forming batch waits for more requests before
    /// dispatching below `max_batch`.
    pub batch_window: SimTime,
    /// Requests simulated per load point.
    pub requests: usize,
}
