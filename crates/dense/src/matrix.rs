//! A small row-major `f32` matrix with the handful of operations dense
//! layers need. Deliberately simple: correctness and determinism over
//! speed (the *performance* of dense layers is modelled analytically in
//! `ugache::apps::cost`; this is the functional path).

use emb_util::seed_rng;
use rand::Rng;

/// A dense `rows × cols` matrix, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major values, `rows × cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier-uniform initialization, deterministic in `seed`.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = seed_rng(seed);
        let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimensions differ");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(orow) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                *out.at_mut(j, i) = self.at(i, j);
            }
        }
        out
    }

    /// Adds a bias row-vector to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias width mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// In-place ReLU; returns the pre-activation mask needed by backprop.
    pub fn relu_inplace(&mut self) -> Vec<bool> {
        self.data
            .iter_mut()
            .map(|x| {
                let on = *x > 0.0;
                if !on {
                    *x = 0.0;
                }
                on
            })
            .collect()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// Numerically stable logistic function.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_reference() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::xavier(4, 4, 3);
        let mut id = Matrix::zeros(4, 4);
        for i in 0..4 {
            *id.at_mut(i, i) = 1.0;
        }
        let c = a.matmul(&id);
        assert_eq!(c, a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::xavier(3, 5, 9);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn bias_and_relu() {
        let mut m = Matrix::from_vec(2, 2, vec![-1.0, 1.0, 0.5, -0.5]);
        m.add_bias(&[0.25, 0.25]);
        let mask = m.relu_inplace();
        assert_eq!(m.data, vec![0.0, 1.25, 0.75, 0.0]);
        assert_eq!(mask, vec![false, true, true, false]);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(8, 8, 1);
        let b = Matrix::xavier(8, 8, 1);
        assert_eq!(a, b);
        let bound = (6.0f64 / 16.0).sqrt() as f32;
        assert!(a.data.iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn sigmoid_sane() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
