//! GNN feature aggregation over extracted embeddings.
//!
//! GraphSAGE-style mean aggregation: a seed's feature is the mean of its
//! sampled neighbours' (frozen, cache-served) embedding vectors,
//! concatenated with its own. The result feeds a trainable [`crate::Mlp`]
//! classifier — the paper's setting, where the embedding table is
//! pre-trained and only the dense part learns (§2).

use crate::matrix::Matrix;

/// Builds per-seed features: `[own embedding ‖ mean(neighbour embeddings)]`.
///
/// `lookup` maps a vertex id to its embedding slice (whatever storage the
/// cache layer gathered into). Seeds with no neighbours get a zero mean.
///
/// # Panics
///
/// Panics if any looked-up slice is not `dim` long.
pub fn mean_aggregate<'a, F>(
    seeds: &[u32],
    neighbors: &[Vec<u32>],
    dim: usize,
    mut lookup: F,
) -> Matrix
where
    F: FnMut(u32) -> &'a [f32],
{
    assert_eq!(seeds.len(), neighbors.len(), "one neighbour list per seed");
    let mut out = Matrix::zeros(seeds.len(), dim * 2);
    for (r, (&s, nbrs)) in seeds.iter().zip(neighbors).enumerate() {
        let own = lookup(s);
        assert_eq!(own.len(), dim, "embedding width mismatch");
        let row = &mut out.data[r * dim * 2..(r + 1) * dim * 2];
        row[..dim].copy_from_slice(own);
        if !nbrs.is_empty() {
            for &n in nbrs {
                let e = lookup(n);
                assert_eq!(e.len(), dim, "embedding width mismatch");
                for (acc, &v) in row[dim..].iter_mut().zip(e) {
                    *acc += v;
                }
            }
            let inv = 1.0 / nbrs.len() as f32;
            for acc in row[dim..].iter_mut() {
                *acc *= inv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Vec<Vec<f32>> {
        (0..8u32).map(|e| vec![e as f32, (e * 10) as f32]).collect()
    }

    #[test]
    fn aggregates_own_and_mean() {
        let t = table();
        let feats = mean_aggregate(&[1, 2], &[vec![3, 5], vec![]], 2, |v| &t[v as usize]);
        // Seed 1: own [1,10], mean of 3 and 5 = [4,40].
        assert_eq!(feats.row(0), &[1.0, 10.0, 4.0, 40.0]);
        // Seed 2 has no neighbours → zero mean.
        assert_eq!(feats.row(1), &[2.0, 20.0, 0.0, 0.0]);
    }

    #[test]
    fn shape_is_two_dim_wide() {
        let t = table();
        let f = mean_aggregate(&[0, 1, 2], &[vec![1], vec![2], vec![3]], 2, |v| {
            &t[v as usize]
        });
        assert_eq!((f.rows, f.cols), (3, 4));
    }

    #[test]
    #[should_panic(expected = "one neighbour list per seed")]
    fn mismatched_lists_panic() {
        let t = table();
        let _ = mean_aggregate(&[0, 1], &[vec![]], 2, |v| &t[v as usize]);
    }
}
