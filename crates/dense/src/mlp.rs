//! A multi-layer perceptron with manual backpropagation.
//!
//! Used as the trainable dense head of the GNN examples and as the
//! building block of the DLRM/DCN stacks. Embedding inputs are treated
//! as constants (the paper's pre-trained, read-only tables), so gradients
//! stop at the first layer's inputs.

use crate::matrix::{sigmoid, Matrix};

/// One fully connected layer: `y = relu(x·W + b)` (ReLU skipped on the
/// output layer).
#[derive(Debug, Clone, PartialEq)]
struct Linear {
    w: Matrix,
    b: Vec<f32>,
}

/// Per-layer forward state kept for the backward pass.
struct LayerState {
    input: Matrix,
    mask: Option<Vec<bool>>,
}

/// A ReLU MLP ending in a linear layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths (`dims[0]` = input,
    /// last = output), deterministically initialized from `seed`.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two dims.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "an MLP needs input and output widths");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear {
                w: Matrix::xavier(w[0], w[1], emb_util::split_seed(seed, i as u64)),
                b: vec![0.0; w[1]],
            })
            .collect();
        Mlp { layers }
    }

    /// Layer widths, input first.
    pub fn dims(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.layers.iter().map(|l| l.w.rows).collect();
        d.push(self.layers.last().expect("non-empty").w.cols);
        d
    }

    /// Forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_states(x).0
    }

    fn forward_states(&self, x: &Matrix) -> (Matrix, Vec<LayerState>) {
        let mut states = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        let n = self.layers.len();
        for (i, l) in self.layers.iter().enumerate() {
            let input = cur.clone();
            let mut z = cur.matmul(&l.w);
            z.add_bias(&l.b);
            let mask = if i + 1 < n {
                Some(z.relu_inplace())
            } else {
                None
            };
            states.push(LayerState { input, mask });
            cur = z;
        }
        (cur, states)
    }

    /// One SGD step on binary cross-entropy with logits. `x` is
    /// `batch × in_dim`, `targets` are 0/1 labels (one output unit).
    /// Returns the mean loss *before* the step.
    ///
    /// # Panics
    ///
    /// Panics if the output width is not 1 or shapes disagree.
    pub fn train_bce(&mut self, x: &Matrix, targets: &[f32], lr: f32) -> f32 {
        let (logits, states) = self.forward_states(x);
        assert_eq!(logits.cols, 1, "BCE expects a single output unit");
        assert_eq!(logits.rows, targets.len(), "batch/label mismatch");
        let n = logits.rows as f32;
        // Loss and dL/dlogit = (σ(z) − y) / n.
        let mut loss = 0.0f32;
        let mut grad = Matrix::zeros(logits.rows, 1);
        for r in 0..logits.rows {
            let z = logits.at(r, 0);
            let p = sigmoid(z);
            let y = targets[r];
            // Stable BCE-with-logits.
            loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
            *grad.at_mut(r, 0) = (p - y) / n;
        }
        self.backward(grad, states, lr);
        loss / n
    }

    /// One SGD step on mean-squared error (any output width). Returns the
    /// mean loss before the step.
    pub fn train_mse(&mut self, x: &Matrix, targets: &Matrix, lr: f32) -> f32 {
        let (out, states) = self.forward_states(x);
        assert_eq!(
            (out.rows, out.cols),
            (targets.rows, targets.cols),
            "target shape mismatch"
        );
        let n = (out.rows * out.cols) as f32;
        let mut loss = 0.0f32;
        let mut grad = Matrix::zeros(out.rows, out.cols);
        for i in 0..out.data.len() {
            let d = out.data[i] - targets.data[i];
            loss += d * d;
            grad.data[i] = 2.0 * d / n;
        }
        self.backward(grad, states, lr);
        loss / n
    }

    /// Backpropagates `grad` (dL/doutput) and applies SGD in place.
    fn backward(&mut self, mut grad: Matrix, states: Vec<LayerState>, lr: f32) {
        for (l, st) in self.layers.iter_mut().zip(states).rev() {
            if let Some(mask) = &st.mask {
                for (g, &on) in grad.data.iter_mut().zip(mask) {
                    if !on {
                        *g = 0.0;
                    }
                }
            }
            // dW = xᵀ · grad ; db = Σ_rows grad ; dx = grad · Wᵀ.
            let dw = st.input.transpose().matmul(&grad);
            let next_grad = grad.matmul(&l.w.transpose());
            for (w, &g) in l.w.data.iter_mut().zip(&dw.data) {
                *w -= lr * g;
            }
            for c in 0..grad.cols {
                let db: f32 = (0..grad.rows).map(|r| grad.at(r, c)).sum();
                l.b[c] -= lr * db;
            }
            grad = next_grad;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emb_util::seed_rng;
    use rand::Rng;

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(&[8, 16, 4], 1);
        assert_eq!(mlp.dims(), vec![8, 16, 4]);
        let x = Matrix::xavier(5, 8, 2);
        let y = mlp.forward(&x);
        assert_eq!((y.rows, y.cols), (5, 4));
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Numerically verify dL/dW for a small MSE network.
        let mut mlp = Mlp::new(&[3, 4, 2], 5);
        let x = Matrix::xavier(6, 3, 6);
        let t = Matrix::xavier(6, 2, 7);
        // Analytic step with tiny lr; compare resulting loss drop with the
        // finite-difference directional derivative.
        let eps = 1e-3f32;
        let loss0 = {
            let mut probe = mlp.clone();
            probe.train_mse(&x, &t, 0.0)
        };
        // Perturb one weight and measure dL/dw numerically.
        let (li, wi) = (0usize, 5usize);
        let mut plus = mlp.clone();
        plus.layers[li].w.data[wi] += eps;
        let lp = plus.train_mse(&x, &t, 0.0);
        let mut minus = mlp.clone();
        minus.layers[li].w.data[wi] -= eps;
        let lm = minus.train_mse(&x, &t, 0.0);
        let numeric = (lp - lm) / (2.0 * eps);
        // Analytic gradient: run a step with lr=1 and read the delta.
        let before = mlp.layers[li].w.data[wi];
        let _ = mlp.train_mse(&x, &t, 1.0);
        let analytic = before - mlp.layers[li].w.data[wi];
        assert!(
            (numeric - analytic).abs() < 1e-2 * numeric.abs().max(1e-3),
            "numeric {numeric} vs analytic {analytic} (loss0 {loss0})"
        );
    }

    #[test]
    fn bce_training_learns_a_separable_task() {
        // Two Gaussian-ish blobs; loss must fall and accuracy rise.
        let mut rng = seed_rng(8);
        let n = 256;
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let y = (i % 2) as f32;
            let cx = if y > 0.5 { 1.5 } else { -1.5 };
            xs.push(cx + rng.gen_range(-0.5..0.5));
            xs.push(rng.gen_range(-0.5..0.5));
            ys.push(y);
        }
        let x = Matrix::from_vec(n, 2, xs);
        let mut mlp = Mlp::new(&[2, 8, 1], 3);
        let first = mlp.train_bce(&x, &ys, 0.5);
        let mut last = first;
        for _ in 0..200 {
            last = mlp.train_bce(&x, &ys, 0.5);
        }
        assert!(last < first * 0.3, "loss did not fall: {first} -> {last}");
        // Accuracy.
        let logits = mlp.forward(&x);
        let correct = (0..n)
            .filter(|&r| (logits.at(r, 0) > 0.0) == (ys[r] > 0.5))
            .count();
        assert!(correct as f64 / n as f64 > 0.95, "accuracy {correct}/{n}");
    }

    #[test]
    fn training_is_deterministic() {
        let x = Matrix::xavier(10, 4, 11);
        let ys: Vec<f32> = (0..10).map(|i| (i % 2) as f32).collect();
        let run = || {
            let mut m = Mlp::new(&[4, 6, 1], 2);
            let mut l = 0.0;
            for _ in 0..10 {
                l = m.train_bce(&x, &ys, 0.1);
            }
            l
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "single output unit")]
    fn bce_needs_one_output() {
        let mut mlp = Mlp::new(&[2, 3], 1);
        let x = Matrix::zeros(1, 2);
        let _ = mlp.train_bce(&x, &[0.0], 0.1);
    }
}
