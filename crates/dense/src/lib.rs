//! Minimal dense-layer substrate.
//!
//! The paper's applications wrap the embedding layer with ordinary dense
//! compute: DLRM/DCN inference stacks (bottom MLP + feature interaction +
//! top MLP) and GNN layers that aggregate neighbour embeddings before a
//! classifier. The embedding table itself is *read-only* (pre-trained,
//! §2), so training only updates the dense part — which this crate
//! implements with plain `f32` matrices and manual backpropagation. It
//! exists so the examples can run real end-to-end model math over the
//! vectors the cache actually serves, not just cost-model time.

pub mod dlrm;
pub mod gnn;
pub mod matrix;
pub mod mlp;

pub use dlrm::{DcnModel, DlrmModel};
pub use gnn::mean_aggregate;
pub use matrix::Matrix;
pub use mlp::Mlp;
