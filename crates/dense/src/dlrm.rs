//! DLRM and DCN inference stacks (paper §8.1).
//!
//! DLRM: a bottom MLP embeds the dense features, a dot-product
//! interaction combines them with the looked-up embedding vectors, and a
//! top MLP produces the click-through logit. DCN replaces the explicit
//! interaction with stacked cross layers. Both consume embeddings the
//! cache layer gathered — the integration point the paper's TensorFlow
//! plugin provides.

use crate::matrix::{sigmoid, Matrix};
use crate::mlp::Mlp;

/// The DLRM inference model.
#[derive(Debug, Clone, PartialEq)]
pub struct DlrmModel {
    dense_features: usize,
    num_tables: usize,
    dim: usize,
    bottom: Mlp,
    top: Mlp,
}

impl DlrmModel {
    /// Builds a DLRM for `num_tables` embedding tables of width `dim` and
    /// `dense_features` continuous inputs (Criteo: 26 tables, 13 dense).
    pub fn new(dense_features: usize, num_tables: usize, dim: usize, seed: u64) -> Self {
        // Bottom MLP maps dense features into the embedding space; the
        // interaction is all pairwise dots among (bottom output + tables).
        let f = num_tables + 1;
        let interactions = f * (f - 1) / 2;
        DlrmModel {
            dense_features,
            num_tables,
            dim,
            bottom: Mlp::new(&[dense_features, 64, dim], emb_util::split_seed(seed, 1)),
            top: Mlp::new(
                &[interactions + dim, 64, 32, 1],
                emb_util::split_seed(seed, 2),
            ),
        }
    }

    /// Number of embedding vectors expected per request.
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// Embedding width expected per vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Scores a batch: `dense` is `batch × dense_features`, `embeddings`
    /// is `batch × (num_tables · dim)` (one gathered vector per table, as
    /// the embedding layer returns them). Returns CTR probabilities.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward(&self, dense: &Matrix, embeddings: &Matrix) -> Vec<f32> {
        assert_eq!(dense.cols, self.dense_features, "dense width");
        assert_eq!(
            embeddings.cols,
            self.num_tables * self.dim,
            "embedding width"
        );
        assert_eq!(dense.rows, embeddings.rows, "batch mismatch");
        let bottom = self.bottom.forward(dense);

        let f = self.num_tables + 1;
        let mut features = Matrix::zeros(dense.rows, f * (f - 1) / 2 + self.dim);
        for r in 0..dense.rows {
            // Feature vectors: bottom output + each table's embedding.
            let mut vecs: Vec<&[f32]> = Vec::with_capacity(f);
            vecs.push(bottom.row(r));
            let erow = embeddings.row(r);
            for t in 0..self.num_tables {
                vecs.push(&erow[t * self.dim..(t + 1) * self.dim]);
            }
            // Pairwise dot products (upper triangle).
            let mut k = 0usize;
            for i in 0..f {
                for j in (i + 1)..f {
                    let dot: f32 = vecs[i].iter().zip(vecs[j]).map(|(a, b)| a * b).sum();
                    *features.at_mut(r, k) = dot;
                    k += 1;
                }
            }
            // Concatenate the bottom output (standard DLRM).
            for (d, &v) in (0..self.dim).zip(bottom.row(r)) {
                *features.at_mut(r, k + d) = v;
            }
        }
        let logits = self.top.forward(&features);
        (0..logits.rows).map(|r| sigmoid(logits.at(r, 0))).collect()
    }
}

/// The DCN inference model: embedding + dense concatenation through
/// `cross_layers` cross layers (`x_{l+1} = x_0 ⊙ (x_l · w) + b + x_l`)
/// followed by a small MLP head.
#[derive(Debug, Clone, PartialEq)]
pub struct DcnModel {
    dense_features: usize,
    num_tables: usize,
    dim: usize,
    cross_w: Vec<Vec<f32>>,
    cross_b: Vec<Vec<f32>>,
    head: Mlp,
}

impl DcnModel {
    /// Builds a DCN with the given geometry and `cross_layers` crosses.
    pub fn new(
        dense_features: usize,
        num_tables: usize,
        dim: usize,
        cross_layers: usize,
        seed: u64,
    ) -> Self {
        let width = dense_features + num_tables * dim;
        let mut cross_w = Vec::with_capacity(cross_layers);
        let mut cross_b = Vec::with_capacity(cross_layers);
        for l in 0..cross_layers {
            let m = Matrix::xavier(width, 1, emb_util::split_seed(seed, 10 + l as u64));
            cross_w.push(m.data);
            cross_b.push(vec![0.0; width]);
        }
        DcnModel {
            dense_features,
            num_tables,
            dim,
            cross_w,
            cross_b,
            head: Mlp::new(&[width, 64, 1], emb_util::split_seed(seed, 99)),
        }
    }

    /// Scores a batch (same conventions as [`DlrmModel::forward`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward(&self, dense: &Matrix, embeddings: &Matrix) -> Vec<f32> {
        assert_eq!(dense.cols, self.dense_features, "dense width");
        assert_eq!(
            embeddings.cols,
            self.num_tables * self.dim,
            "embedding width"
        );
        assert_eq!(dense.rows, embeddings.rows, "batch mismatch");
        let width = self.dense_features + self.num_tables * self.dim;
        let rows = dense.rows;
        let mut x = Matrix::zeros(rows, width);
        for r in 0..rows {
            let dst = &mut x.data[r * width..(r + 1) * width];
            dst[..self.dense_features].copy_from_slice(dense.row(r));
            dst[self.dense_features..].copy_from_slice(embeddings.row(r));
        }
        let x0 = x.clone();
        for (w, b) in self.cross_w.iter().zip(&self.cross_b) {
            for r in 0..rows {
                let xr: f32 = x.row(r).iter().zip(w).map(|(a, c)| a * c).sum();
                let base = r * width;
                for k in 0..width {
                    x.data[base + k] += x0.data[base + k] * xr + b[k];
                }
            }
        }
        let logits = self.head.forward(&x);
        (0..rows).map(|r| sigmoid(logits.at(r, 0))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(rows: usize, tables: usize, dim: usize) -> (Matrix, Matrix) {
        (
            Matrix::xavier(rows, 13, 21),
            Matrix::xavier(rows, tables * dim, 22),
        )
    }

    #[test]
    fn dlrm_scores_are_probabilities() {
        let m = DlrmModel::new(13, 6, 8, 1);
        let (d, e) = batch(16, 6, 8);
        let p = m.forward(&d, &e);
        assert_eq!(p.len(), 16);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn dlrm_depends_on_embeddings() {
        let m = DlrmModel::new(13, 6, 8, 1);
        let (d, e) = batch(4, 6, 8);
        let mut e2 = e.clone();
        e2.data[3] += 1.0;
        assert_ne!(m.forward(&d, &e), m.forward(&d, &e2));
    }

    #[test]
    fn dcn_scores_are_probabilities_and_deterministic() {
        let m = DcnModel::new(13, 6, 8, 2, 4);
        let (d, e) = batch(8, 6, 8);
        let a = m.forward(&d, &e);
        let b = m.forward(&d, &e);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn dcn_cross_layers_change_the_function() {
        let (d, e) = batch(4, 6, 8);
        let m1 = DcnModel::new(13, 6, 8, 1, 4);
        let m2 = DcnModel::new(13, 6, 8, 3, 4);
        assert_ne!(m1.forward(&d, &e), m2.forward(&d, &e));
    }

    #[test]
    #[should_panic(expected = "embedding width")]
    fn dlrm_rejects_wrong_embedding_width() {
        let m = DlrmModel::new(13, 6, 8, 1);
        let d = Matrix::zeros(2, 13);
        let e = Matrix::zeros(2, 5 * 8);
        let _ = m.forward(&d, &e);
    }
}
