//! Log-scale hotness batching (§6.3, Figure 9).
//!
//! Entries with similar hotness get near-identical placement decisions,
//! so the solver groups them into *blocks* and decides per block. Levels
//! are log-scale in hotness (a 110→120 difference matters less than
//! 10→20); within a level, block size is capped both coarsely (a fixed
//! fraction of all entries, bounding cold-tail blocks) and finely (each
//! level splits into at least `min_splits` blocks so low cache ratios can
//! still place sub-level fractions).

use crate::types::Hotness;

/// Block-building tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockConfig {
    /// Maximum block size as a fraction of total entries (paper: 0.5 %).
    pub coarse_cap: f64,
    /// Minimum number of blocks per hotness level (paper: the GPU count).
    pub min_splits: usize,
    /// Upper bound on total blocks; adjacent same-level blocks are merged
    /// to respect it (keeps the LP small on huge entry counts).
    pub max_blocks: usize,
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig {
            coarse_cap: 0.005,
            min_splits: 8,
            max_blocks: 256,
        }
    }
}

/// A group of entries with similar hotness, placed as a unit (possibly
/// split fractionally by the solver).
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Entry ids, hottest first.
    pub entries: Vec<u32>,
    /// Summed *normalized* hotness of the entries.
    pub weight: f64,
    /// Log-scale hotness level (0 = hottest).
    pub level: u32,
}

impl Block {
    /// Number of entries in the block.
    pub fn size(&self) -> usize {
        self.entries.len()
    }
}

/// Batches entries into hotness blocks.
///
/// Zero-hotness entries form the final level. The concatenation of all
/// blocks' entries is a permutation of `0..E`, ordered hottest-first.
pub fn build_blocks(hotness: &Hotness, cfg: &BlockConfig) -> Vec<Block> {
    let e = hotness.len();
    if e == 0 {
        return Vec::new();
    }
    let norm = hotness.normalized();
    let ranking = hotness.ranking();
    let h_max = hotness.weights[ranking[0] as usize];

    // Assign levels on a log2 scale relative to the hottest entry.
    const ZERO_LEVEL: u32 = u32::MAX;
    let level_of = |w: f64| -> u32 {
        if w <= 0.0 || h_max <= 0.0 {
            ZERO_LEVEL
        } else {
            (h_max / w).log2().floor().clamp(0.0, 60.0) as u32
        }
    };

    // Walk the ranking, cutting level runs into capped blocks.
    let coarse = ((cfg.coarse_cap * e as f64).ceil() as usize).max(1);
    let mut blocks: Vec<Block> = Vec::new();
    let mut i = 0usize;
    while i < e {
        let lvl = level_of(hotness.weights[ranking[i] as usize]);
        let mut j = i;
        while j < e && level_of(hotness.weights[ranking[j] as usize]) == lvl {
            j += 1;
        }
        let count = j - i;
        // Fine split: at least `min_splits` blocks per level (floor-based
        // so the remainder becomes an extra block); coarse cap on top.
        let per_block = (count / cfg.min_splits.max(1)).clamp(1, coarse);
        let mut s = i;
        while s < j {
            let t = (s + per_block).min(j);
            let entries: Vec<u32> = ranking[s..t].to_vec();
            let weight: f64 = entries.iter().map(|&id| norm[id as usize]).sum();
            blocks.push(Block {
                entries,
                weight,
                level: if lvl == ZERO_LEVEL { 61 } else { lvl },
            });
            s = t;
        }
        i = j;
    }

    // Merge pass to respect max_blocks: repeatedly merge the smallest
    // adjacent same-level pair.
    while blocks.len() > cfg.max_blocks.max(1) {
        let mut best: Option<(usize, usize)> = None; // (index, combined size)
        for k in 0..blocks.len() - 1 {
            if blocks[k].level != blocks[k + 1].level {
                continue;
            }
            let sz = blocks[k].size() + blocks[k + 1].size();
            if best.is_none_or(|(_, s)| sz < s) {
                best = Some((k, sz));
            }
        }
        let Some((k, _)) = best else {
            // No same-level pair left: merge the smallest adjacent pair of
            // different levels (keeps termination guaranteed).
            let k = (0..blocks.len() - 1)
                .min_by_key(|&k| blocks[k].size() + blocks[k + 1].size())
                .expect("at least two blocks");
            let b = blocks.remove(k + 1);
            blocks[k].entries.extend(b.entries);
            blocks[k].weight += b.weight;
            continue;
        };
        let b = blocks.remove(k + 1);
        blocks[k].entries.extend(b.entries);
        blocks[k].weight += b.weight;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use emb_util::zipf::powerlaw_hotness;

    fn powerlaw(n: usize) -> Hotness {
        Hotness::new(powerlaw_hotness(n, 1.2))
    }

    #[test]
    fn blocks_partition_all_entries() {
        let h = powerlaw(10_000);
        let blocks = build_blocks(&h, &BlockConfig::default());
        let mut all: Vec<u32> = blocks.iter().flat_map(|b| b.entries.clone()).collect();
        assert_eq!(all.len(), 10_000);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 10_000);
    }

    #[test]
    fn weights_sum_to_one() {
        let h = powerlaw(5_000);
        let blocks = build_blocks(&h, &BlockConfig::default());
        let total: f64 = blocks.iter().map(|b| b.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hot_levels_are_finely_split() {
        let h = powerlaw(100_000);
        let cfg = BlockConfig {
            min_splits: 8,
            ..Default::default()
        };
        let blocks = build_blocks(&h, &cfg);
        // Level 0 (hottest) must have at least min_splits blocks unless it
        // has fewer entries than that.
        let l0: Vec<&Block> = blocks.iter().filter(|b| b.level == 0).collect();
        let l0_entries: usize = l0.iter().map(|b| b.size()).sum();
        if l0_entries >= cfg.min_splits {
            assert!(
                l0.len() >= cfg.min_splits,
                "level 0 has {} blocks",
                l0.len()
            );
        }
    }

    #[test]
    fn coarse_cap_bounds_cold_blocks() {
        let h = powerlaw(100_000);
        let cfg = BlockConfig {
            max_blocks: 10_000,
            ..Default::default()
        };
        let blocks = build_blocks(&h, &cfg);
        let cap = (0.005f64 * 100_000.0).ceil() as usize;
        for b in &blocks {
            assert!(
                b.size() <= cap,
                "block of {} exceeds coarse cap {cap}",
                b.size()
            );
        }
    }

    #[test]
    fn max_blocks_respected() {
        let h = powerlaw(200_000);
        let cfg = BlockConfig {
            max_blocks: 64,
            ..Default::default()
        };
        let blocks = build_blocks(&h, &cfg);
        assert!(blocks.len() <= 64, "{} blocks", blocks.len());
        let total: usize = blocks.iter().map(|b| b.size()).sum();
        assert_eq!(total, 200_000);
    }

    #[test]
    fn blocks_are_hotness_ordered() {
        let h = powerlaw(10_000);
        let blocks = build_blocks(&h, &BlockConfig::default());
        for w in blocks.windows(2) {
            let a = w[0].weight / w[0].size() as f64;
            let b = w[1].weight / w[1].size() as f64;
            assert!(a >= b * 0.999, "blocks out of order: {a} then {b}");
        }
    }

    #[test]
    fn zero_hotness_entries_form_tail_level() {
        let mut w = vec![0.0; 100];
        w[3] = 5.0;
        w[7] = 1.0;
        let h = Hotness::new(w);
        let blocks = build_blocks(
            &h,
            &BlockConfig {
                min_splits: 2,
                ..Default::default()
            },
        );
        assert_eq!(blocks[0].entries[0], 3);
        let tail: usize = blocks
            .iter()
            .filter(|b| b.level == 61)
            .map(|b| b.size())
            .sum();
        assert_eq!(tail, 98);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(build_blocks(&Hotness::new(vec![]), &BlockConfig::default()).is_empty());
        let one = build_blocks(&Hotness::new(vec![2.0]), &BlockConfig::default());
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].entries, vec![0]);
    }
}
