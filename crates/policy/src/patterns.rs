//! Placement patterns: the realizable building blocks of the solver.
//!
//! A *pattern* describes one way to lay a set of entries across the
//! machine — "replicate on k of G GPUs round-robin", "partition within
//! each clique", "leave on host" — together with the storage fraction it
//! consumes per GPU and the per-`(dst, src)` read fractions it induces.
//! Any convex combination of patterns is realizable by splitting a block
//! proportionally, which is why the solver can work with an LP instead of
//! the paper's MILP at block granularity (see crate docs).

use gpu_platform::{Interconnect, Location, Platform};

/// What a pattern does with its entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Not cached; every GPU reads from host.
    Host,
    /// Stored on `k` of the `G` GPUs, round-robin (uniform platforms).
    RepK {
        /// Copies per entry, `1..=G`.
        k: usize,
    },
    /// Stored on `k` GPUs *within each fully-connected clique*
    /// (non-uniform platforms; reads never cross cliques).
    CliqueRepK {
        /// Copies per entry per clique, `1..=min clique size`.
        k: usize,
    },
}

/// A placement pattern with its precomputed aggregate effects.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// The structural rule.
    pub kind: PatternKind,
    /// `store_frac[j]`: expected fraction of the pattern's entries stored
    /// on GPU `j`.
    pub store_frac: Vec<f64>,
    /// `read_frac[i][j]`: fraction of GPU `i`'s reads of pattern entries
    /// served by source `j` (`j == G` is host). Rows sum to 1.
    pub read_frac: Vec<Vec<f64>>,
}

/// Whether every GPU pair is connected with identical bandwidth.
pub fn is_uniform(platform: &Platform) -> bool {
    match &platform.interconnect {
        Interconnect::Switch { .. } => true,
        Interconnect::HardWired { pair_bw } => {
            let g = platform.num_gpus();
            if g <= 1 {
                return true;
            }
            let mut reference: Option<f64> = None;
            for i in 0..g {
                for j in 0..g {
                    if i == j {
                        continue;
                    }
                    let bw = pair_bw[i][j];
                    if bw <= 0.0 {
                        return false;
                    }
                    match reference {
                        None => reference = Some(bw),
                        Some(r) if (bw - r).abs() > 1e-6 => return false,
                        _ => {}
                    }
                }
            }
            true
        }
    }
}

/// Generates the pattern set for a platform.
///
/// Uniform platforms get `Host` plus `RepK{1..=G}`; non-uniform ones get
/// `Host` plus `CliqueRepK{1..=c}` (where `c` is the smallest clique
/// size). `RepK{G}` / `CliqueRepK{c}` are full replication.
pub fn generate_patterns(platform: &Platform) -> Vec<Pattern> {
    let g = platform.num_gpus();
    let host = g;
    let mut out = Vec::new();

    // Host pattern.
    let mut host_read = vec![vec![0.0; g + 1]; g];
    for row in host_read.iter_mut() {
        row[host] = 1.0;
    }
    out.push(Pattern {
        kind: PatternKind::Host,
        store_frac: vec![0.0; g],
        read_frac: host_read,
    });

    if is_uniform(platform) {
        for k in 1..=g {
            let mut read = vec![vec![0.0; g + 1]; g];
            for (i, row) in read.iter_mut().enumerate() {
                let local = k as f64 / g as f64;
                row[i] = local;
                if g > 1 {
                    let per_remote = (1.0 - local) / (g - 1) as f64;
                    for (j, cell) in row.iter_mut().take(g).enumerate() {
                        if j != i {
                            *cell = per_remote;
                        }
                    }
                }
            }
            out.push(Pattern {
                kind: PatternKind::RepK { k },
                store_frac: vec![k as f64 / g as f64; g],
                read_frac: read,
            });
        }
    } else {
        let cliques = platform.fully_connected_groups();
        let min_c = cliques.iter().map(|c| c.len()).min().unwrap_or(1);
        // Clique id per GPU.
        let mut clique_of = vec![0usize; g];
        for (q, members) in cliques.iter().enumerate() {
            for &m in members {
                clique_of[m] = q;
            }
        }
        for k in 1..=min_c {
            let mut store = vec![0.0; g];
            let mut read = vec![vec![0.0; g + 1]; g];
            for i in 0..g {
                let c = cliques[clique_of[i]].len();
                let k_eff = k.min(c);
                store[i] = k_eff as f64 / c as f64;
                let local = k_eff as f64 / c as f64;
                read[i][i] = local;
                if c > 1 {
                    let per_sib = (1.0 - local) / (c - 1) as f64;
                    for &j in &cliques[clique_of[i]] {
                        if j != i {
                            read[i][j] = per_sib;
                        }
                    }
                }
            }
            out.push(Pattern {
                kind: PatternKind::CliqueRepK { k },
                store_frac: store,
                read_frac: read,
            });
        }
    }
    out
}

impl Pattern {
    /// Storage locations for the entry at block-local position `r`
    /// (deterministic round-robin; empty for `Host`).
    pub fn holders(&self, platform: &Platform, r: usize) -> Vec<usize> {
        let g = platform.num_gpus();
        match self.kind {
            PatternKind::Host => vec![],
            PatternKind::RepK { k } => (0..k).map(|m| (r + m) % g).collect(),
            PatternKind::CliqueRepK { k } => {
                let cliques = platform.fully_connected_groups();
                let mut out = Vec::new();
                for members in &cliques {
                    let c = members.len();
                    let k_eff = k.min(c);
                    for m in 0..k_eff {
                        out.push(members[(r + m) % c]);
                    }
                }
                out
            }
        }
    }

    /// The source GPU `i` reads the entry at position `r` from, given the
    /// holders computed by [`Pattern::holders`]. `None` means host.
    pub fn source_for(
        &self,
        platform: &Platform,
        gpu: usize,
        r: usize,
        holders: &[usize],
    ) -> Option<usize> {
        if holders.is_empty() {
            return None;
        }
        if holders.contains(&gpu) {
            return Some(gpu);
        }
        // Reachable holders only; pick deterministically but spread by
        // (gpu + r) to balance source egress.
        let reachable: Vec<usize> = holders
            .iter()
            .copied()
            .filter(|&h| platform.connected(gpu, Location::Gpu(h)))
            .collect();
        if reachable.is_empty() {
            return None;
        }
        Some(reachable[(gpu + r) % reachable.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniformity_detection() {
        assert!(is_uniform(&Platform::server_a()));
        assert!(!is_uniform(&Platform::server_b()));
        assert!(is_uniform(&Platform::server_c()));
    }

    #[test]
    fn uniform_pattern_set_shape() {
        let p = Platform::server_c();
        let pats = generate_patterns(&p);
        // Host + RepK{1..=8}.
        assert_eq!(pats.len(), 9);
        assert_eq!(pats[0].kind, PatternKind::Host);
        assert_eq!(pats[8].kind, PatternKind::RepK { k: 8 });
    }

    #[test]
    fn read_fractions_sum_to_one() {
        for plat in [
            Platform::server_a(),
            Platform::server_b(),
            Platform::server_c(),
        ] {
            for pat in generate_patterns(&plat) {
                for (i, row) in pat.read_frac.iter().enumerate() {
                    let s: f64 = row.iter().sum();
                    assert!(
                        (s - 1.0).abs() < 1e-9,
                        "{:?} row {i} sums to {s} on {}",
                        pat.kind,
                        plat.name
                    );
                }
            }
        }
    }

    #[test]
    fn full_replication_reads_locally() {
        let p = Platform::server_c();
        let pats = generate_patterns(&p);
        let rep = pats
            .iter()
            .find(|p| p.kind == PatternKind::RepK { k: 8 })
            .unwrap();
        for i in 0..8 {
            assert!((rep.read_frac[i][i] - 1.0).abs() < 1e-12);
            assert_eq!(rep.store_frac[i], 1.0);
        }
    }

    #[test]
    fn clique_patterns_never_cross_cliques() {
        let p = Platform::server_b();
        let pats = generate_patterns(&p);
        assert!(pats
            .iter()
            .any(|p| p.kind == PatternKind::CliqueRepK { k: 1 }));
        for pat in &pats {
            if pat.kind == PatternKind::Host {
                continue;
            }
            // GPU0 (clique {0,1,2,3}) must never read from 4..8.
            for j in 4..8 {
                assert_eq!(pat.read_frac[0][j], 0.0, "{:?}", pat.kind);
            }
        }
    }

    #[test]
    fn holders_respect_k_and_are_in_range() {
        let p = Platform::server_c();
        let pats = generate_patterns(&p);
        let rep3 = pats
            .iter()
            .find(|p| p.kind == PatternKind::RepK { k: 3 })
            .unwrap();
        for r in 0..32 {
            let h = rep3.holders(&p, r);
            assert_eq!(h.len(), 3);
            assert!(h.iter().all(|&x| x < 8));
        }
    }

    #[test]
    fn source_for_prefers_local_and_respects_topology() {
        let pb = Platform::server_b();
        let pats = generate_patterns(&pb);
        let c1 = pats
            .iter()
            .find(|p| p.kind == PatternKind::CliqueRepK { k: 1 })
            .unwrap();
        for r in 0..16 {
            let holders = c1.holders(&pb, r);
            for gpu in 0..8 {
                match c1.source_for(&pb, gpu, r, &holders) {
                    Some(src) => {
                        assert!(pb.connected(gpu, Location::Gpu(src)));
                        if holders.contains(&gpu) {
                            assert_eq!(src, gpu);
                        }
                    }
                    None => panic!("clique pattern must always find a source"),
                }
            }
        }
    }

    #[test]
    fn host_pattern_has_no_holders() {
        let p = Platform::server_a();
        let pats = generate_patterns(&p);
        assert!(pats[0].holders(&p, 5).is_empty());
        assert_eq!(pats[0].source_for(&p, 1, 5, &[]), None);
    }
}
