//! Core data types shared by all policies.

use gpu_platform::Location;

/// Compact source index: `0..G` are GPUs, `G` is host.
pub type SourceIdx = u8;

/// Per-entry access-frequency weights (the paper's hotness metric, §6.1).
///
/// Weights are relative; [`Hotness::normalized`] returns each entry's
/// share of total accesses. Applications may supply measured frequencies
/// (pre-sampling epoch counts, vertex degrees, Zipf masses) directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotness {
    /// Non-negative weight per entry.
    pub weights: Vec<f64>,
}

impl Hotness {
    /// Wraps raw weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "hotness weights must be finite and non-negative"
        );
        Hotness { weights }
    }

    /// Builds hotness from integer access counts.
    pub fn from_counts(counts: &[u64]) -> Self {
        Hotness {
            weights: counts.iter().map(|&c| c as f64).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Total weight.
    pub fn total(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Per-entry share of total accesses (all zeros if total is 0).
    pub fn normalized(&self) -> Vec<f64> {
        let t = self.total();
        if t <= 0.0 {
            return vec![0.0; self.len()];
        }
        self.weights.iter().map(|w| w / t).collect()
    }

    /// Adjusts hotness for per-batch key deduplication.
    ///
    /// Extraction serves each *distinct* key in a batch once, so the
    /// traffic an entry contributes is its probability of *appearing* in
    /// a batch, not its raw draw frequency — for hot entries those differ
    /// wildly once batches are large relative to the key domain.
    /// Poissonizing draws, the appearance probability is
    /// `1 − exp(−λ·p_e)` with `λ` calibrated (by bisection) so the
    /// expected number of distinct keys per batch equals
    /// `unique_per_batch`. The returned weights are those probabilities.
    ///
    /// Ranking is preserved; only magnitudes saturate.
    pub fn dedup_adjusted(&self, unique_per_batch: f64) -> Hotness {
        let e = self.len();
        let total = self.total();
        if e == 0 || total <= 0.0 || unique_per_batch <= 0.0 {
            return self.clone();
        }
        let target = unique_per_batch.min(e as f64 * 0.999_999);
        let p: Vec<f64> = self.weights.iter().map(|w| w / total).collect();
        let uniques = |lambda: f64| -> f64 { p.iter().map(|&pi| 1.0 - (-lambda * pi).exp()).sum() };
        // Bracket λ.
        let mut lo = 0.0f64;
        let mut hi = target.max(1.0);
        let mut guard = 0;
        while uniques(hi) < target {
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                break;
            }
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if uniques(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let lambda = 0.5 * (lo + hi);
        Hotness::new(p.iter().map(|&pi| 1.0 - (-lambda * pi).exp()).collect())
    }

    /// Entry indices sorted hottest-first (ties by index for determinism).
    pub fn ranking(&self) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            self.weights[b as usize]
                .partial_cmp(&self.weights[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        idx
    }
}

/// A complete cache layout: storage and access arrangement.
///
/// `access[i][e]` says where GPU `i` reads entry `e` (a [`SourceIdx`]);
/// `stored[j][e]` says whether GPU `j` holds a copy of `e`. The invariant
/// `access[i][e] = j (GPU) ⇒ stored[j][e]` corresponds to the paper's
/// `s_j^e ≥ a_{i←j}^e` constraint and is checked by
/// [`Placement::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Number of GPUs `G`.
    pub num_gpus: usize,
    /// Number of entries `E`.
    pub num_entries: usize,
    /// `access[i][e]`: source index GPU `i` reads entry `e` from.
    pub access: Vec<Vec<SourceIdx>>,
    /// `stored[j][e]`: whether GPU `j` caches entry `e`.
    pub stored: Vec<Vec<bool>>,
}

impl Placement {
    /// An all-host placement (nothing cached).
    pub fn all_host(num_gpus: usize, num_entries: usize) -> Self {
        Placement {
            num_gpus,
            num_entries,
            access: vec![vec![num_gpus as SourceIdx; num_entries]; num_gpus],
            stored: vec![vec![false; num_entries]; num_gpus],
        }
    }

    /// The host source index for this placement.
    pub fn host_idx(&self) -> SourceIdx {
        self.num_gpus as SourceIdx
    }

    /// Where GPU `i` reads entry `e` from, as a [`Location`].
    pub fn source_of(&self, gpu: usize, entry: u32) -> Location {
        let s = self.access[gpu][entry as usize];
        if s == self.host_idx() {
            Location::Host
        } else {
            Location::Gpu(s as usize)
        }
    }

    /// Number of entries cached on GPU `j`.
    pub fn cached_count(&self, gpu: usize) -> usize {
        self.stored[gpu].iter().filter(|&&s| s).count()
    }

    /// Validates the storage/access invariants; returns the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.access.len() != self.num_gpus || self.stored.len() != self.num_gpus {
            return Err("arity mismatch".into());
        }
        for i in 0..self.num_gpus {
            if self.access[i].len() != self.num_entries || self.stored[i].len() != self.num_entries
            {
                return Err(format!("GPU{i} vectors have wrong length"));
            }
            for e in 0..self.num_entries {
                let s = self.access[i][e];
                if s > self.host_idx() {
                    return Err(format!("GPU{i} entry {e}: bad source {s}"));
                }
                if s != self.host_idx() && !self.stored[s as usize][e] {
                    return Err(format!(
                        "GPU{i} reads entry {e} from GPU{s} which does not store it"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Splits a batch of keys by source for one GPU: returns
    /// `(location, key_count)` pairs, merged per source.
    pub fn split_keys(&self, gpu: usize, keys: &[u32]) -> Vec<(Location, u64)> {
        let mut counts = vec![0u64; self.num_gpus + 1];
        for &k in keys {
            counts[self.access[gpu][k as usize] as usize] += 1;
        }
        let mut out = Vec::new();
        for (j, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let loc = if j == self.num_gpus {
                Location::Host
            } else {
                Location::Gpu(j)
            };
            out.push((loc, c));
        }
        out
    }

    /// Hotness-weighted access split for one GPU:
    /// `(local, remote, host)` fractions — the series of Figure 14.
    pub fn access_split(&self, gpu: usize, hotness: &Hotness) -> (f64, f64, f64) {
        assert_eq!(hotness.len(), self.num_entries);
        let total = hotness.total();
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let (mut local, mut remote, mut host) = (0.0, 0.0, 0.0);
        for (e, &w) in hotness.weights.iter().enumerate() {
            let s = self.access[gpu][e];
            if s == self.host_idx() {
                host += w;
            } else if s as usize == gpu {
                local += w;
            } else {
                remote += w;
            }
        }
        (local / total, remote / total, host / total)
    }

    /// Hotness-weighted global hit rate: fraction of accesses served by
    /// *any* GPU cache (averaged over destination GPUs).
    pub fn global_hit_rate(&self, hotness: &Hotness) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.num_gpus {
            let (l, r, _) = self.access_split(i, hotness);
            acc += l + r;
        }
        acc / self.num_gpus as f64
    }

    /// Hotness-weighted local hit rate (averaged over destination GPUs).
    pub fn local_hit_rate(&self, hotness: &Hotness) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.num_gpus {
            let (l, _, _) = self.access_split(i, hotness);
            acc += l;
        }
        acc / self.num_gpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotness_basics() {
        let h = Hotness::new(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(h.len(), 4);
        assert_eq!(h.total(), 10.0);
        assert_eq!(h.ranking(), vec![0, 2, 3, 1]);
        let n = h.normalized();
        assert!((n[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn hotness_ties_are_deterministic() {
        let h = Hotness::new(vec![1.0; 5]);
        assert_eq!(h.ranking(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_hotness_panics() {
        let _ = Hotness::new(vec![1.0, -0.5]);
    }

    #[test]
    fn all_host_placement_is_valid() {
        let p = Placement::all_host(4, 100);
        p.validate().unwrap();
        assert_eq!(p.cached_count(0), 0);
        assert_eq!(p.source_of(2, 50), Location::Host);
    }

    #[test]
    fn validate_catches_phantom_source() {
        let mut p = Placement::all_host(2, 4);
        p.access[0][1] = 1; // reads from GPU1, which stores nothing
        assert!(p.validate().is_err());
        p.stored[1][1] = true;
        p.validate().unwrap();
    }

    #[test]
    fn split_keys_counts_per_source() {
        let mut p = Placement::all_host(2, 6);
        p.stored[0][0] = true;
        p.stored[1][1] = true;
        p.access[0][0] = 0;
        p.access[0][1] = 1;
        let split = p.split_keys(0, &[0, 0, 1, 5, 4]);
        assert!(split.contains(&(Location::Gpu(0), 2)));
        assert!(split.contains(&(Location::Gpu(1), 1)));
        assert!(split.contains(&(Location::Host, 2)));
    }

    #[test]
    fn access_split_and_hit_rates() {
        let mut p = Placement::all_host(2, 4);
        let h = Hotness::new(vec![4.0, 3.0, 2.0, 1.0]);
        // GPU0 stores entries 0,1; GPU1 stores 0.
        p.stored[0][0] = true;
        p.stored[0][1] = true;
        p.stored[1][0] = true;
        p.access[0][0] = 0;
        p.access[0][1] = 0;
        p.access[1][0] = 1;
        p.access[1][1] = 0; // remote for GPU1
        p.validate().unwrap();
        let (l0, r0, h0) = p.access_split(0, &h);
        assert!((l0 - 0.7).abs() < 1e-12);
        assert_eq!(r0, 0.0);
        assert!((h0 - 0.3).abs() < 1e-12);
        let (l1, r1, _) = p.access_split(1, &h);
        assert!((l1 - 0.4).abs() < 1e-12);
        assert!((r1 - 0.3).abs() < 1e-12);
        assert!((p.global_hit_rate(&h) - 0.7).abs() < 1e-12);
        assert!((p.local_hit_rate(&h) - 0.55).abs() < 1e-12);
    }
}
