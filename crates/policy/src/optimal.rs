//! The paper-faithful placement MILP (§6.2) and its solutions.
//!
//! This module builds exactly the optimization problem of the paper —
//! binary `a^e_{i←j}` access variables, binary `s^e_j` storage variables,
//! capacity and accessibility constraints, the `R`-weighted time bounds —
//! at a chosen unit granularity (entries, or blocks from §6.3), and
//! solves it with the in-repo branch-and-bound. It is exponential in the
//! worst case and meant for *small* instances: the Figure 16
//! "theoretically optimal" baseline and cross-validation of the fast
//! pattern-LP solver.

use crate::blocks::Block;
use crate::types::{Hotness, Placement, SourceIdx};
use gpu_platform::{Location, Platform, Profile};
use milp::{ConstraintSense, LinExpr, MilpOptions, MilpStatus, Model};

/// A placement unit: one or more interchangeable entries decided together.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitSpec {
    /// The entry ids in the unit.
    pub entries: Vec<u32>,
    /// Total normalized hotness of the unit.
    pub weight: f64,
}

impl UnitSpec {
    /// One unit per entry.
    pub fn per_entry(hotness: &Hotness) -> Vec<UnitSpec> {
        let norm = hotness.normalized();
        (0..hotness.len())
            .map(|e| UnitSpec {
                entries: vec![e as u32],
                weight: norm[e],
            })
            .collect()
    }

    /// Units from hotness blocks.
    pub fn from_blocks(blocks: &[Block]) -> Vec<UnitSpec> {
        blocks
            .iter()
            .map(|b| UnitSpec {
                entries: b.entries.clone(),
                weight: b.weight,
            })
            .collect()
    }
}

/// Solution of the paper MILP.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperSolution {
    /// `access[u][i]`: the source GPU `i` reads unit `u` from.
    pub access: Vec<Vec<SourceIdx>>,
    /// Objective value (estimated extraction seconds).
    pub objective: f64,
    /// Proven lower bound (equals objective when solved to optimality).
    pub bound: f64,
    /// Whether the branch-and-bound proved optimality.
    pub proven_optimal: bool,
}

/// Builds and solves the paper MILP.
///
/// With `integral = false` the binaries are relaxed to `[0,1]` and the
/// returned `objective`/`bound` is the LP lower bound (access is the
/// per-unit argmax and may not be capacity-exact — use it for bounds, not
/// placements).
///
/// # Errors
///
/// Returns an error when no integer-feasible solution is found within the
/// node budget or the LP fails numerically.
#[allow(clippy::too_many_arguments)]
pub fn solve_paper_milp(
    platform: &Platform,
    profile: &Profile,
    units: &[UnitSpec],
    cap_entries: &[usize],
    entry_bytes: usize,
    accesses_per_iter: f64,
    integral: bool,
    opts: &MilpOptions,
) -> Result<PaperSolution, String> {
    let g = platform.num_gpus();
    let host = g;
    // Normalize time so LP coefficients sit near 1 (see the solver's
    // `build_lp`): one unit = pulling the whole batch from host.
    let worst_t = (0..g)
        .map(|i| profile.sec_per_byte[i][host])
        .fold(0.0f64, f64::max);
    let time_unit = (accesses_per_iter * entry_bytes as f64 * worst_t).max(1e-300);
    let scale = accesses_per_iter * entry_bytes as f64 / time_unit;
    let mut m = Model::new();

    // a[u][i][j]: Some(var) only for reachable j.
    let mut a: Vec<Vec<Vec<Option<milp::VarId>>>> = Vec::with_capacity(units.len());
    let mut s: Vec<Vec<milp::VarId>> = Vec::with_capacity(units.len());
    for (u, _) in units.iter().enumerate() {
        let mut a_u = Vec::with_capacity(g);
        for i in 0..g {
            let mut row = Vec::with_capacity(host + 1);
            for j in 0..=host {
                let reachable = if j == host {
                    true
                } else {
                    j == i || platform.connected(i, Location::Gpu(j))
                };
                row.push(
                    reachable
                        .then(|| m.add_var(&format!("a_{u}_{i}_{j}"), 0.0, 1.0, 0.0, integral)),
                );
            }
            a_u.push(row);
        }
        a.push(a_u);
        s.push(
            (0..g)
                .map(|j| m.add_var(&format!("s_{u}_{j}"), 0.0, 1.0, 0.0, integral))
                .collect(),
        );
    }
    let tj: Vec<Vec<milp::VarId>> = (0..g)
        .map(|i| {
            (0..=host)
                .map(|j| m.add_nonneg(&format!("tj_{i}_{j}"), 0.0))
                .collect()
        })
        .collect();
    let t: Vec<milp::VarId> = (0..g)
        .map(|i| m.add_nonneg(&format!("t_{i}"), 0.0))
        .collect();
    let z = m.add_nonneg("z", 1.0);

    for (u, _) in units.iter().enumerate() {
        for i in 0..g {
            // Σ_j a = 1.
            let expr = LinExpr::from_terms(a[u][i].iter().flatten().map(|&v| (v, 1.0)));
            m.add_constraint(expr, ConstraintSense::Eq, 1.0);
            // s_j ≥ a_{i←j} for GPU sources.
            for j in 0..g {
                if let Some(v) = a[u][i][j] {
                    let expr = LinExpr::new().plus(s[u][j], 1.0).plus(v, -1.0);
                    m.add_constraint(expr, ConstraintSense::Ge, 0.0);
                }
            }
        }
    }
    // Capacity.
    for j in 0..g {
        let expr = LinExpr::from_terms(
            units
                .iter()
                .enumerate()
                .map(|(u, spec)| (s[u][j], spec.entries.len() as f64)),
        );
        m.add_constraint(expr, ConstraintSense::Le, cap_entries[j] as f64);
    }
    // tj definitions and time bounds.
    for i in 0..g {
        for j in 0..=host {
            let t_cost = profile.sec_per_byte[i][j];
            let mut expr = LinExpr::new().plus(tj[i][j], -1.0);
            for (u, spec) in units.iter().enumerate() {
                if let Some(v) = a[u][i][j] {
                    expr = expr.plus(v, spec.weight * scale * t_cost);
                }
            }
            m.add_constraint(expr, ConstraintSense::Eq, 0.0);
            let bound = LinExpr::new().plus(t[i], 1.0).plus(tj[i][j], -1.0);
            m.add_constraint(bound, ConstraintSense::Ge, 0.0);
        }
        let mut padded = LinExpr::new().plus(t[i], 1.0);
        for j in 0..=host {
            let r = profile.r[i][j];
            if r > 0.0 {
                padded = padded.plus(tj[i][j], -r);
            }
        }
        m.add_constraint(padded, ConstraintSense::Ge, 0.0);
        m.add_constraint(
            LinExpr::new().plus(z, 1.0).plus(t[i], -1.0),
            ConstraintSense::Ge,
            0.0,
        );
    }

    let (x, objective, bound, proven) = if integral {
        let r = milp::solve_milp(&m, opts);
        match r.status {
            MilpStatus::Optimal => (r.x, r.objective * time_unit, r.bound * time_unit, true),
            MilpStatus::Feasible => (r.x, r.objective * time_unit, r.bound * time_unit, false),
            other => return Err(format!("paper MILP failed: {other:?}")),
        }
    } else {
        let r = milp::solve_lp(&m).map_err(|e| format!("paper LP failed: {e:?}"))?;
        emb_telemetry::count("policy.lp.solves", 1.0);
        emb_telemetry::count("policy.lp.iterations", r.iterations as f64);
        emb_telemetry::observe("policy.lp.residual", r.max_residual);
        let obj = r.objective * time_unit;
        (r.x, obj, obj, true)
    };
    emb_telemetry::count("policy.paper_milp.solves", 1.0);

    // Per-unit access: argmax over a[u][i][·].
    let mut access = vec![vec![0 as SourceIdx; g]; units.len()];
    for (u, _) in units.iter().enumerate() {
        for i in 0..g {
            let mut best = (host, -1.0f64);
            for j in 0..=host {
                if let Some(v) = a[u][i][j] {
                    let val = x[v.index()];
                    if val > best.1 {
                        best = (j, val);
                    }
                }
            }
            access[u][i] = best.0 as SourceIdx;
        }
    }
    Ok(PaperSolution {
        access,
        objective,
        bound,
        proven_optimal: proven,
    })
}

/// Expands a per-unit solution into an entry-level [`Placement`].
pub fn realize_paper(
    units: &[UnitSpec],
    solution: &PaperSolution,
    num_gpus: usize,
    num_entries: usize,
) -> Placement {
    let mut p = Placement::all_host(num_gpus, num_entries);
    for (u, spec) in units.iter().enumerate() {
        for &e in &spec.entries {
            for i in 0..num_gpus {
                let src = solution.access[u][i];
                p.access[i][e as usize] = src;
                if (src as usize) < num_gpus {
                    p.stored[src as usize][e as usize] = true;
                }
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate_extraction_time;
    use crate::solver::{SolverConfig, UGacheSolver};
    use emb_util::zipf::powerlaw_hotness;
    use gpu_platform::DedicationConfig;

    fn tiny_platform() -> Platform {
        let mut p = Platform::server_a();
        p.gpus.truncate(2);
        if let gpu_platform::Interconnect::HardWired { pair_bw } = &mut p.interconnect {
            pair_bw.truncate(2);
            for row in pair_bw.iter_mut() {
                row.truncate(2);
            }
        }
        p
    }

    #[test]
    fn milp_respects_capacity_and_accessibility() {
        let plat = tiny_platform();
        let prof = Profile::new(&plat, DedicationConfig::default());
        let h = Hotness::new(powerlaw_hotness(10, 1.2));
        let units = UnitSpec::per_entry(&h);
        let sol = solve_paper_milp(
            &plat,
            &prof,
            &units,
            &[3, 3],
            512,
            1e5,
            true,
            &MilpOptions::default(),
        )
        .unwrap();
        assert!(sol.proven_optimal);
        let p = realize_paper(&units, &sol, 2, 10);
        p.validate().unwrap();
        assert!(p.cached_count(0) <= 3);
        assert!(p.cached_count(1) <= 3);
    }

    #[test]
    fn milp_objective_matches_realized_estimate() {
        let plat = tiny_platform();
        let prof = Profile::new(&plat, DedicationConfig::default());
        let h = Hotness::new(powerlaw_hotness(8, 1.4));
        let units = UnitSpec::per_entry(&h);
        let sol = solve_paper_milp(
            &plat,
            &prof,
            &units,
            &[2, 2],
            512,
            1e5,
            true,
            &MilpOptions::default(),
        )
        .unwrap();
        let p = realize_paper(&units, &sol, 2, 8);
        let est = estimate_extraction_time(&p, &h, &prof, 512, 1e5).makespan;
        // The MILP access arrangement is exactly the estimate model, so
        // objective and realized estimate agree.
        assert!(
            (est - sol.objective).abs() / sol.objective < 1e-6,
            "est {est} vs obj {}",
            sol.objective
        );
    }

    #[test]
    fn lp_relaxation_bounds_milp() {
        let plat = tiny_platform();
        let prof = Profile::new(&plat, DedicationConfig::default());
        let h = Hotness::new(powerlaw_hotness(10, 1.2));
        let units = UnitSpec::per_entry(&h);
        let lp = solve_paper_milp(
            &plat,
            &prof,
            &units,
            &[3, 3],
            512,
            1e5,
            false,
            &MilpOptions::default(),
        )
        .unwrap();
        let ip = solve_paper_milp(
            &plat,
            &prof,
            &units,
            &[3, 3],
            512,
            1e5,
            true,
            &MilpOptions::default(),
        )
        .unwrap();
        assert!(lp.objective <= ip.objective + 1e-9);
    }

    #[test]
    fn milp_prefers_replication_when_capacity_is_plentiful() {
        let plat = tiny_platform();
        let prof = Profile::new(&plat, DedicationConfig::default());
        let h = Hotness::new(powerlaw_hotness(6, 1.2));
        let units = UnitSpec::per_entry(&h);
        let sol = solve_paper_milp(
            &plat,
            &prof,
            &units,
            &[6, 6],
            512,
            1e5,
            true,
            &MilpOptions::default(),
        )
        .unwrap();
        let p = realize_paper(&units, &sol, 2, 6);
        // Everything fits everywhere → all local reads.
        assert!(p.local_hit_rate(&h) > 0.999);
    }

    #[test]
    fn pattern_lp_solver_is_near_optimal_on_tiny_instance() {
        let plat = tiny_platform();
        let prof = Profile::new(&plat, DedicationConfig::default());
        let h = Hotness::new(powerlaw_hotness(12, 1.2));
        let units = UnitSpec::per_entry(&h);
        let caps = [4usize, 4];
        let milp_sol = solve_paper_milp(
            &plat,
            &prof,
            &units,
            &caps,
            512,
            1e5,
            true,
            &MilpOptions {
                max_nodes: 50_000,
                ..Default::default()
            },
        )
        .unwrap();

        let solver = UGacheSolver::new(plat, DedicationConfig::default());
        let cfg = SolverConfig {
            blocks: crate::blocks::BlockConfig {
                coarse_cap: 0.1,
                min_splits: 2,
                max_blocks: 32,
            },
            entry_bytes: 512,
            accesses_per_iter: 1e5,
            dedup_adjust: false,
        };
        let sp = solver.solve(&h, &caps, &cfg).unwrap();
        let realized = estimate_extraction_time(&sp.placement, &h, &prof, 512, 1e5).makespan;
        // The paper reports <2% gap; on tiny instances allow 10% headroom
        // for block-granularity rounding.
        assert!(
            realized <= milp_sol.objective * 1.25 + 1e-12,
            "solver {realized} vs optimal {}",
            milp_sol.objective
        );
    }
}
