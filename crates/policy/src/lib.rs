//! Cache placement policies for multi-GPU embedding caches.
//!
//! This crate implements the paper's §6 (the Solver) plus every baseline
//! policy the evaluation compares against:
//!
//! * [`Placement`] — the ground truth both layers share: which entries
//!   each GPU stores and where each GPU reads each entry from (the
//!   `<GPU_i, Offset>` hashtable abstraction of §4);
//! * [`baselines`] — replication (HPS/GNNLab-style), partition
//!   (WholeGraph/SOK-style), clique partition (Quiver-style), CPU-only,
//!   and the hot-replicate/warm-partition heuristic of [Song & Jiang,
//!   ICS'22];
//! * [`blocks`] — log-scale hotness batching with coarse/fine size caps
//!   (§6.3, Figure 9);
//! * [`estimate`] — the extraction-time model of §6.2 (`T_{i←j}`, hotness
//!   weights, the `R`-weighted padding bound);
//! * [`solver`] — the UGache solver: a pattern LP over hotness blocks
//!   (fractional block placement is realizable by splitting blocks, so
//!   the LP relaxation is exact at block granularity);
//! * [`optimal`] — the paper's full MILP (binary `a`/`s` per block or per
//!   entry) via branch-and-bound, used for the Figure 16 "theoretically
//!   optimal" comparison and for cross-validating the solver.

#![deny(missing_docs)]

pub mod baselines;
pub mod blocks;
pub mod estimate;
pub mod optimal;
pub mod patterns;
pub mod solver;
pub mod types;

pub use blocks::{build_blocks, Block, BlockConfig};
pub use estimate::{estimate_extraction_time, TimeEstimate};
pub use solver::{SolverConfig, UGacheSolver};
pub use types::{Hotness, Placement, SourceIdx};
