//! Baseline cache policies from the paper's evaluation (§8.1).

use crate::estimate::estimate_extraction_time;
use crate::types::{Hotness, Placement};
use gpu_platform::{Location, Platform, Profile};

/// Replication cache (HPS / GNNLab / RepU): every GPU independently
/// caches the `cap_entries` hottest entries; misses go to host.
pub fn replication(platform: &Platform, hotness: &Hotness, cap_entries: usize) -> Placement {
    let g = platform.num_gpus();
    let e = hotness.len();
    let mut p = Placement::all_host(g, e);
    let ranking = hotness.ranking();
    for &id in ranking.iter().take(cap_entries.min(e)) {
        for i in 0..g {
            p.stored[i][id as usize] = true;
            p.access[i][id as usize] = i as u8;
        }
    }
    p
}

/// Partition cache (WholeGraph / SOK / PartU): the `G · cap_entries`
/// hottest entries are spread round-robin, one copy each; every GPU reads
/// a cached entry from its single holder.
///
/// # Errors
///
/// Fails when some GPU pair is unconnected — exactly the configuration
/// the paper reports WholeGraph cannot launch on (use
/// [`clique_partition`] there).
pub fn partition(
    platform: &Platform,
    hotness: &Hotness,
    cap_entries: usize,
) -> Result<Placement, String> {
    let g = platform.num_gpus();
    for i in 0..g {
        for j in 0..g {
            if i != j && !platform.connected(i, Location::Gpu(j)) {
                return Err(format!(
                    "partition cache requires full connectivity; GPU{i} and GPU{j} are unconnected"
                ));
            }
        }
    }
    let e = hotness.len();
    let mut p = Placement::all_host(g, e);
    let ranking = hotness.ranking();
    for (r, &id) in ranking.iter().take((g * cap_entries).min(e)).enumerate() {
        let holder = r % g;
        p.stored[holder][id as usize] = true;
        for i in 0..g {
            p.access[i][id as usize] = holder as u8;
        }
    }
    Ok(p)
}

/// Clique partition (Quiver / PartU on non-uniform platforms): GPUs are
/// grouped into fully-connected cliques; each clique independently
/// partitions the hottest `clique_size · cap_entries` entries.
pub fn clique_partition(platform: &Platform, hotness: &Hotness, cap_entries: usize) -> Placement {
    let g = platform.num_gpus();
    let e = hotness.len();
    let mut p = Placement::all_host(g, e);
    let ranking = hotness.ranking();
    for members in platform.fully_connected_groups() {
        let c = members.len();
        for (r, &id) in ranking.iter().take((c * cap_entries).min(e)).enumerate() {
            let holder = members[r % c];
            p.stored[holder][id as usize] = true;
            for &i in &members {
                p.access[i][id as usize] = holder as u8;
            }
        }
    }
    p
}

/// Table-level partition (RecShard-style, paper §9): whole embedding
/// tables are assigned to GPUs, balancing the tables' hotness mass with a
/// longest-processing-time greedy. Tables that do not fit in the
/// remaining capacity stay on host. DLR-specific: `table_offsets` and
/// `table_sizes` describe the concatenated key space.
///
/// # Panics
///
/// Panics if the table layout is inconsistent with the hotness length.
pub fn table_partition(
    platform: &Platform,
    hotness: &Hotness,
    cap_entries: usize,
    table_offsets: &[u64],
    table_sizes: &[u64],
) -> Placement {
    assert_eq!(
        table_offsets.len(),
        table_sizes.len(),
        "table layout mismatch"
    );
    let total: u64 = table_sizes.iter().sum();
    assert_eq!(
        total as usize,
        hotness.len(),
        "tables must cover the key space"
    );
    let g = platform.num_gpus();
    let mut p = Placement::all_host(g, hotness.len());

    // Hotness mass per table.
    let mut tables: Vec<(usize, f64)> = table_offsets
        .iter()
        .zip(table_sizes)
        .enumerate()
        .map(|(t, (&off, &size))| {
            let mass: f64 = (off..off + size).map(|e| hotness.weights[e as usize]).sum();
            (t, mass)
        })
        .collect();
    // Hottest-first greedy onto the least-loaded GPU with room.
    tables.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let mut load = vec![0.0f64; g];
    let mut used = vec![0usize; g];
    for (t, mass) in tables {
        let size = table_sizes[t] as usize;
        let target = (0..g)
            .filter(|&j| used[j] + size <= cap_entries)
            .min_by(|&a, &b| load[a].partial_cmp(&load[b]).unwrap());
        let Some(j) = target else { continue };
        load[j] += mass;
        used[j] += size;
        let off = table_offsets[t];
        for e in off..off + table_sizes[t] {
            let e = e as usize;
            p.stored[j][e] = true;
            for i in 0..g {
                if i == j || platform.connected(i, gpu_platform::Location::Gpu(j)) {
                    p.access[i][e] = j as u8;
                }
            }
        }
    }
    p
}

/// No GPU caching at all; every read goes to host over PCIe.
pub fn cpu_only(platform: &Platform, num_entries: usize) -> Placement {
    Placement::all_host(platform.num_gpus(), num_entries)
}

/// The hot-replicate / warm-partition heuristic of [Song & Jiang, ICS'22]:
/// the hottest `ρ · cap` entries are replicated everywhere, the remaining
/// capacity partitions the next-warm entries, the rest stays on host. `ρ`
/// is picked by sweeping a grid and keeping the best §6.2 time estimate.
///
/// Limited to uniform fully-connected platforms (as the paper notes); on
/// non-uniform platforms it degrades to per-clique behaviour via
/// [`clique_partition`] for the warm span.
pub fn hot_rep_warm_part(
    platform: &Platform,
    profile: &Profile,
    hotness: &Hotness,
    cap_entries: usize,
    entry_bytes: usize,
    accesses_per_iter: f64,
) -> Placement {
    let g = platform.num_gpus();
    let e = hotness.len();
    let ranking = hotness.ranking();
    let uniform = crate::patterns::is_uniform(platform);

    let build = |rho: f64| -> Placement {
        let rep_n = ((rho * cap_entries as f64) as usize).min(e);
        let mut p = Placement::all_host(g, e);
        for &id in ranking.iter().take(rep_n) {
            for i in 0..g {
                p.stored[i][id as usize] = true;
                p.access[i][id as usize] = i as u8;
            }
        }
        // Remaining per-GPU capacity partitions the warm span.
        let warm_cap = cap_entries - rep_n;
        if uniform {
            for (r, &id) in ranking
                .iter()
                .skip(rep_n)
                .take((g * warm_cap).min(e - rep_n))
                .enumerate()
            {
                let holder = r % g;
                p.stored[holder][id as usize] = true;
                for i in 0..g {
                    p.access[i][id as usize] = holder as u8;
                }
            }
        } else {
            let cliques = platform.fully_connected_groups();
            for members in &cliques {
                let c = members.len();
                for (r, &id) in ranking
                    .iter()
                    .skip(rep_n)
                    .take((c * warm_cap).min(e - rep_n))
                    .enumerate()
                {
                    let holder = members[r % c];
                    p.stored[holder][id as usize] = true;
                    for &i in members {
                        p.access[i][id as usize] = holder as u8;
                    }
                }
            }
        }
        p
    };

    let mut best: Option<(f64, Placement)> = None;
    for rho_pct in [0, 10, 25, 40, 50, 60, 75, 90, 100] {
        let p = build(rho_pct as f64 / 100.0);
        let t =
            estimate_extraction_time(&p, hotness, profile, entry_bytes, accesses_per_iter).makespan;
        if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
            best = Some((t, p));
        }
    }
    best.expect("grid is non-empty").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use emb_util::zipf::powerlaw_hotness;
    use gpu_platform::DedicationConfig;

    fn hotness(n: usize) -> Hotness {
        Hotness::new(powerlaw_hotness(n, 1.2))
    }

    #[test]
    fn replication_caches_same_entries_everywhere() {
        let plat = Platform::server_a();
        let h = hotness(1000);
        let p = replication(&plat, &h, 100);
        p.validate().unwrap();
        for i in 0..4 {
            assert_eq!(p.cached_count(i), 100);
        }
        // Hottest entry (rank 0 = entry 0 for powerlaw_hotness) is local
        // everywhere; a cold entry is host everywhere.
        for i in 0..4 {
            assert_eq!(p.access[i][0], i as u8);
            assert_eq!(p.access[i][999], p.host_idx());
        }
    }

    #[test]
    fn partition_spreads_one_copy_each() {
        let plat = Platform::server_c();
        let h = hotness(1000);
        let p = partition(&plat, &h, 50).unwrap();
        p.validate().unwrap();
        let total: usize = (0..8).map(|i| p.cached_count(i)).sum();
        assert_eq!(total, 400);
        // Every cached entry has exactly one holder.
        for e in 0..400usize {
            let holders = (0..8).filter(|&j| p.stored[j][e]).count();
            assert_eq!(holders, 1, "entry {e}");
        }
        // All GPUs agree on where to read a cached entry.
        for e in 0..400 {
            let s = p.access[0][e];
            for i in 1..8 {
                assert_eq!(p.access[i][e], s);
            }
        }
    }

    #[test]
    fn partition_rejects_unconnected_platforms() {
        let plat = Platform::server_b();
        let h = hotness(100);
        assert!(partition(&plat, &h, 10).is_err());
    }

    #[test]
    fn clique_partition_stays_within_cliques() {
        let plat = Platform::server_b();
        let h = hotness(1000);
        let p = clique_partition(&plat, &h, 50);
        p.validate().unwrap();
        // GPU0 must only read from GPUs 0..4 or host.
        for e in 0..1000 {
            let s = p.access[0][e];
            assert!(s == p.host_idx() || s < 4, "entry {e} from {s}");
        }
        // Both cliques cache the same hot span → global duplication across
        // cliques, single copies within.
        assert!(p.stored.iter().take(4).any(|s| s[0]) && p.stored.iter().skip(4).any(|s| s[0]));
    }

    #[test]
    fn replication_has_higher_local_but_lower_global_hit_rate_than_partition() {
        let plat = Platform::server_c();
        let h = hotness(10_000);
        let cap = 300;
        let rep = replication(&plat, &h, cap);
        let part = partition(&plat, &h, cap).unwrap();
        assert!(rep.local_hit_rate(&h) > part.local_hit_rate(&h));
        assert!(part.global_hit_rate(&h) > rep.global_hit_rate(&h));
    }

    #[test]
    fn cpu_only_has_zero_hit_rate() {
        let plat = Platform::server_a();
        let h = hotness(100);
        let p = cpu_only(&plat, 100);
        assert_eq!(p.global_hit_rate(&h), 0.0);
    }

    #[test]
    fn hot_rep_warm_part_is_valid_and_beats_pure_extremes_sometimes() {
        let plat = Platform::server_c();
        let prof = Profile::new(&plat, DedicationConfig::default());
        let h = hotness(20_000);
        let cap = 600;
        let p = hot_rep_warm_part(&plat, &prof, &h, cap, 512, 1e5);
        p.validate().unwrap();
        for i in 0..8 {
            assert!(p.cached_count(i) <= cap, "GPU{i} over capacity");
        }
        let t_mix = estimate_extraction_time(&p, &h, &prof, 512, 1e5).makespan;
        let t_rep =
            estimate_extraction_time(&replication(&plat, &h, cap), &h, &prof, 512, 1e5).makespan;
        let t_part =
            estimate_extraction_time(&partition(&plat, &h, cap).unwrap(), &h, &prof, 512, 1e5)
                .makespan;
        assert!(t_mix <= t_rep * 1.0001 && t_mix <= t_part * 1.0001);
    }

    #[test]
    fn hot_rep_warm_part_works_on_nonuniform() {
        let plat = Platform::server_b();
        let prof = Profile::new(&plat, DedicationConfig::default());
        let h = hotness(5_000);
        let p = hot_rep_warm_part(&plat, &prof, &h, 200, 512, 1e5);
        p.validate().unwrap();
    }

    #[test]
    fn table_partition_places_whole_tables() {
        let plat = Platform::server_a();
        // 4 tables of 100 entries, decreasing hotness per table.
        let mut w = Vec::new();
        for t in 0..4 {
            for _ in 0..100 {
                w.push(1.0 / (t + 1) as f64);
            }
        }
        let h = Hotness::new(w);
        let offsets = [0u64, 100, 200, 300];
        let sizes = [100u64; 4];
        let p = table_partition(&plat, &h, 150, &offsets, &sizes);
        p.validate().unwrap();
        // Each table is either fully resident on one GPU or fully on host.
        for t in 0..4usize {
            let off = offsets[t] as usize;
            let holders: Vec<usize> = (0..4).filter(|&j| p.stored[j][off]).collect();
            for e in off..off + 100 {
                let h2: Vec<usize> = (0..4).filter(|&j| p.stored[j][e]).collect();
                assert_eq!(holders, h2, "table {t} split across GPUs");
            }
            assert!(holders.len() <= 1);
        }
        // Capacity respected (150 fits one table per GPU).
        for j in 0..4 {
            assert!(p.cached_count(j) <= 150);
        }
        // All four tables fit (4 GPUs × 1 table each).
        let resident: usize = (0..4).map(|j| p.cached_count(j)).sum();
        assert_eq!(resident, 400);
    }

    #[test]
    fn table_partition_spills_oversized_tables_to_host() {
        let plat = Platform::server_a();
        let h = Hotness::new(vec![1.0; 400]);
        let offsets = [0u64, 100, 200, 300];
        let sizes = [100u64; 4];
        let p = table_partition(&plat, &h, 99, &offsets, &sizes);
        assert_eq!(p.global_hit_rate(&h), 0.0, "nothing fits");
    }

    #[test]
    fn capacity_is_respected_by_all_baselines() {
        let plat = Platform::server_c();
        let h = hotness(5_000);
        for cap in [0usize, 10, 500] {
            assert!(replication(&plat, &h, cap).cached_count(3) <= cap);
            let p = partition(&plat, &h, cap).unwrap();
            for i in 0..8 {
                assert!(p.cached_count(i) <= cap.max(1), "cap {cap}");
            }
        }
    }
}
