//! The extraction-time model of §6.2.
//!
//! Given a placement, hotness, and the platform profile, estimates each
//! GPU's extraction time per iteration exactly as the paper's MILP does:
//!
//! ```text
//! t_i^j  = Σ_e T_{i←j} · h_e · [access_i(e) = j] · bytes
//! t_i   ≥ t_i^j                       (a group is link-bound)
//! t_i   ≥ Σ_j R_{i←j} · t_i^j         (padded-area bound, R_{i←i} = 1)
//! ```
//!
//! `accesses_per_iter` scales normalized hotness to an expected number of
//! entry reads per GPU per iteration.

use crate::types::{Hotness, Placement};
use gpu_platform::Profile;

/// Per-GPU estimated times.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeEstimate {
    /// `per_source[i][j]`: seconds GPU `i` spends on source `j` at full
    /// link rate (the paper's `t_i^j`), `j` indexed `0..=G` (host last).
    pub per_source: Vec<Vec<f64>>,
    /// The per-GPU extraction-time bound `t_i`.
    pub per_gpu: Vec<f64>,
    /// `max_i t_i` — the value the solver minimizes.
    pub makespan: f64,
}

/// Estimates extraction time for a placement (see module docs).
///
/// # Panics
///
/// Panics if dimensions disagree or the placement routes a read over an
/// unreachable pair.
pub fn estimate_extraction_time(
    placement: &Placement,
    hotness: &Hotness,
    profile: &Profile,
    entry_bytes: usize,
    accesses_per_iter: f64,
) -> TimeEstimate {
    let g = placement.num_gpus;
    assert_eq!(profile.num_gpus, g, "profile/placement GPU count mismatch");
    assert_eq!(
        hotness.len(),
        placement.num_entries,
        "hotness length mismatch"
    );

    let norm = hotness.normalized();
    let scale = accesses_per_iter * entry_bytes as f64;
    let host = g;

    let mut per_source = vec![vec![0.0f64; g + 1]; g];
    for i in 0..g {
        let access = &placement.access[i];
        for (e, &w) in norm.iter().enumerate() {
            let j = access[e] as usize;
            per_source[i][j] += w;
        }
        for j in 0..=host {
            let t = profile.sec_per_byte[i][j];
            if per_source[i][j] > 0.0 {
                assert!(
                    t.is_finite(),
                    "placement routes GPU{i} to unreachable source {j}"
                );
                per_source[i][j] *= t * scale;
            }
        }
    }

    let mut per_gpu = vec![0.0f64; g];
    for i in 0..g {
        let mut t_i: f64 = 0.0;
        for j in 0..=host {
            t_i = t_i.max(per_source[i][j]);
        }
        let padded: f64 = (0..=host).map(|j| per_source[i][j] * profile.r[i][j]).sum();
        per_gpu[i] = t_i.max(padded);
    }
    let makespan = per_gpu.iter().copied().fold(0.0, f64::max);
    TimeEstimate {
        per_source,
        per_gpu,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_platform::{DedicationConfig, Platform, Profile};

    fn profile() -> Profile {
        Profile::new(&Platform::server_a(), DedicationConfig::default())
    }

    fn uniform_hotness(n: usize) -> Hotness {
        Hotness::new(vec![1.0; n])
    }

    #[test]
    fn all_host_time_is_pcie_bound() {
        let prof = profile();
        let p = Placement::all_host(4, 1000);
        let h = uniform_hotness(1000);
        let est = estimate_extraction_time(&p, &h, &prof, 512, 1e6);
        // 1e6 accesses × 512 B = 512 MB over 12 GB/s ≈ 42.7 ms.
        // Host rate is min(PCIe, dedicated host cores × per-core PCIe),
        // slightly under the nominal 12 GB/s.
        let expect = 1e6 * 512.0 / 12e9;
        assert!((est.makespan - expect).abs() / expect < 0.02);
    }

    #[test]
    fn full_replication_time_is_local_bound() {
        let prof = profile();
        let mut p = Placement::all_host(4, 100);
        for i in 0..4 {
            for e in 0..100 {
                p.stored[i][e] = true;
                p.access[i][e] = i as u8;
            }
        }
        let h = uniform_hotness(100);
        let est = estimate_extraction_time(&p, &h, &prof, 512, 1e6);
        let expect = 1e6 * 512.0 / 320e9;
        assert!((est.makespan - expect).abs() / expect < 1e-9);
        // Replication beats all-host by roughly the bandwidth ratio.
        let host = estimate_extraction_time(&Placement::all_host(4, 100), &h, &prof, 512, 1e6);
        assert!(host.makespan / est.makespan > 20.0);
    }

    #[test]
    fn padded_bound_kicks_in_for_mixed_access() {
        let prof = profile();
        // GPU0 reads half its (uniform) accesses locally, half from GPU1.
        let mut p = Placement::all_host(4, 100);
        for e in 0..100 {
            p.stored[0][e] = e < 50;
            p.stored[1][e] = e >= 50;
            p.access[0][e] = if e < 50 { 0 } else { 1 };
        }
        // Other GPUs read everything from the two holders as well.
        for i in 1..4 {
            for e in 0..100 {
                p.access[i][e] = if e < 50 { 0 } else { 1 };
            }
        }
        p.validate().unwrap();
        let h = uniform_hotness(100);
        let est = estimate_extraction_time(&p, &h, &prof, 512, 1e6);
        // t must be at least the remote-group time on the slowest GPU.
        let remote_secs = 0.5 * 1e6 * 512.0 / 50e9;
        assert!(est.makespan >= remote_secs - 1e-12);
        // And at least the R-weighted padded area for GPU2 (all remote).
        assert!(est.per_gpu[2] >= est.per_source[2][0].max(est.per_source[2][1]));
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn unreachable_access_panics() {
        let pb = Profile::new(&Platform::server_b(), DedicationConfig::default());
        let mut p = Placement::all_host(8, 10);
        p.stored[5][0] = true;
        p.access[0][0] = 5; // 0 and 5 are unconnected on Server B
        let h = uniform_hotness(10);
        let _ = estimate_extraction_time(&p, &h, &pb, 512, 1.0);
    }

    #[test]
    fn makespan_is_max_over_gpus() {
        let prof = profile();
        let mut p = Placement::all_host(4, 10);
        // Only GPU0 gets a local cache; others stay on host.
        for e in 0..10 {
            p.stored[0][e] = true;
            p.access[0][e] = 0;
        }
        let h = uniform_hotness(10);
        let est = estimate_extraction_time(&p, &h, &prof, 512, 1e6);
        assert!(est.per_gpu[0] < est.per_gpu[1]);
        assert_eq!(est.makespan, est.per_gpu[1]);
    }
}
