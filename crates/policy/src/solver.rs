//! The UGache cache-policy solver (§6).
//!
//! Pipeline: batch entries into hotness blocks (§6.3) → build a linear
//! program over *placement patterns* per block → solve → realize the
//! fractional solution by splitting blocks proportionally across
//! patterns. The LP objective is the paper's §6.2 extraction-time model
//! (`t_i ≥ t_i^j`, `t_i ≥ Σ_j R_{i←j} t_i^j`, minimize `max_i t_i`).
//!
//! Fractional pattern weights are *exactly* realizable (a block is a bag
//! of interchangeable entries), so no integrality gap exists at block
//! granularity; the paper's full binary MILP is kept in
//! [`crate::optimal`] for comparison.

use crate::blocks::{build_blocks, Block, BlockConfig};
use crate::patterns::{generate_patterns, Pattern};
use crate::types::{Hotness, Placement};
use gpu_platform::{DedicationConfig, Location, Platform, Profile};
use milp::{ConstraintSense, LinExpr, Model};

/// Solver tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Hotness-block batching parameters (§6.3).
    pub blocks: BlockConfig,
    /// Bytes per embedding entry.
    pub entry_bytes: usize,
    /// Expected entry reads per GPU per iteration (scales the estimate).
    pub accesses_per_iter: f64,
    /// Apply the per-batch deduplication adjustment
    /// ([`Hotness::dedup_adjusted`]) before solving. Enable when batches
    /// are deduplicated and large relative to the key domain (always true
    /// for the scaled datasets in this reproduction).
    pub dedup_adjust: bool,
}

impl SolverConfig {
    /// A config for the given entry size with default block batching.
    pub fn new(entry_bytes: usize, accesses_per_iter: f64) -> Self {
        SolverConfig {
            blocks: BlockConfig::default(),
            entry_bytes,
            accesses_per_iter,
            dedup_adjust: false,
        }
    }
}

/// A solved policy: the realized placement plus solver metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvedPolicy {
    /// The realized entry-level placement.
    pub placement: Placement,
    /// The LP's predicted extraction makespan in seconds.
    pub predicted_secs: f64,
    /// Number of hotness blocks in the LP.
    pub num_blocks: usize,
    /// Number of candidate patterns.
    pub num_patterns: usize,
}

/// The UGache Solver: owns the platform description and its profile.
#[derive(Debug, Clone)]
pub struct UGacheSolver {
    platform: Platform,
    profile: Profile,
}

impl UGacheSolver {
    /// Creates a solver for a platform (profiles it on construction).
    pub fn new(platform: Platform, dedication: DedicationConfig) -> Self {
        let profile = Profile::new(&platform, dedication);
        UGacheSolver { platform, profile }
    }

    /// The profiled `T`/`R` matrices.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The platform under management.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Solves for a placement under per-GPU capacities (in entries).
    ///
    /// # Errors
    ///
    /// Returns an error if the LP solver fails numerically (it cannot be
    /// infeasible: the all-host pattern always fits).
    pub fn solve(
        &self,
        hotness: &Hotness,
        cap_entries: &[usize],
        cfg: &SolverConfig,
    ) -> Result<SolvedPolicy, String> {
        let g = self.platform.num_gpus();
        assert_eq!(cap_entries.len(), g, "one capacity per GPU");
        let e = hotness.len();
        let adjusted;
        let hotness = if cfg.dedup_adjust && cfg.accesses_per_iter > 0.0 {
            adjusted = hotness.dedup_adjusted(cfg.accesses_per_iter);
            &adjusted
        } else {
            hotness
        };
        let mut bcfg = cfg.blocks;
        bcfg.min_splits = bcfg.min_splits.max(g);
        let blocks = build_blocks(hotness, &bcfg);
        let patterns = generate_patterns(&self.platform);
        if blocks.is_empty() {
            return Ok(SolvedPolicy {
                placement: Placement::all_host(g, e),
                predicted_secs: 0.0,
                num_blocks: 0,
                num_patterns: patterns.len(),
            });
        }

        let (model, y_ids, time_unit) = self.build_lp(&blocks, &patterns, cap_entries, cfg);
        let sol = milp::solve_lp(&model).map_err(|s| format!("policy LP failed: {s:?}"))?;

        emb_telemetry::count("policy.lp.solves", 1.0);
        emb_telemetry::count("policy.lp.iterations", sol.iterations as f64);
        emb_telemetry::observe("policy.lp.residual", sol.max_residual);
        emb_telemetry::count("policy.blocks", blocks.len() as f64);
        emb_telemetry::count("policy.patterns", patterns.len() as f64);
        emb_telemetry::event("policy.solve", || {
            vec![
                (
                    "blocks".to_string(),
                    emb_telemetry::EventValue::U64(blocks.len() as u64),
                ),
                (
                    "patterns".to_string(),
                    emb_telemetry::EventValue::U64(patterns.len() as u64),
                ),
                (
                    "lp_iterations".to_string(),
                    emb_telemetry::EventValue::U64(sol.iterations as u64),
                ),
                (
                    "lp_residual".to_string(),
                    emb_telemetry::EventValue::F64(sol.max_residual),
                ),
                (
                    "predicted_secs".to_string(),
                    emb_telemetry::EventValue::F64(sol.objective * time_unit),
                ),
            ]
        });

        // Extract y fractions.
        let y: Vec<Vec<f64>> = y_ids
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&v| sol.x[v.index()].clamp(0.0, 1.0))
                    .collect()
            })
            .collect();

        let mut placement = self.realize(&blocks, &patterns, &y, cap_entries, e);
        self.fill_spare_capacity(&mut placement, cap_entries, hotness);
        debug_assert!(placement.validate().is_ok());
        Ok(SolvedPolicy {
            placement,
            predicted_secs: sol.objective * time_unit,
            num_blocks: blocks.len(),
            num_patterns: patterns.len(),
        })
    }

    /// Solves for a placement by decomposing the pattern LP into one
    /// small, independent LP per hotness block, solved on the
    /// `emb_util::pool` worker pool (`--threads N`).
    ///
    /// Each GPU's capacity is pre-split across blocks by hotness weight
    /// (waterfilled, largest-remainder rounded), which makes the
    /// per-block LPs independent by construction: hot blocks get enough
    /// room to replicate, cold blocks spill to host — the same shape the
    /// joint LP converges to. The joint LP ([`UGacheSolver::solve`])
    /// remains the figure-quality path; decomposition trades a small
    /// amount of placement quality for solve time that drops with both
    /// the block count (simplex cost is superlinear in LP size) and the
    /// worker count.
    ///
    /// Per-block telemetry (`policy.lp.*`) is recorded inside each
    /// block's pool chunk and absorbed in block order, so counters and
    /// traces are identical at any thread count. The realized placement
    /// is bitwise-identical across thread counts: block solves are
    /// independent, and realization runs serially in block order.
    ///
    /// # Errors
    ///
    /// Returns an error if any per-block LP fails numerically.
    pub fn solve_decomposed(
        &self,
        hotness: &Hotness,
        cap_entries: &[usize],
        cfg: &SolverConfig,
    ) -> Result<SolvedPolicy, String> {
        let g = self.platform.num_gpus();
        assert_eq!(cap_entries.len(), g, "one capacity per GPU");
        let e = hotness.len();
        let adjusted;
        let hotness = if cfg.dedup_adjust && cfg.accesses_per_iter > 0.0 {
            adjusted = hotness.dedup_adjusted(cfg.accesses_per_iter);
            &adjusted
        } else {
            hotness
        };
        let mut bcfg = cfg.blocks;
        bcfg.min_splits = bcfg.min_splits.max(g);
        let blocks = build_blocks(hotness, &bcfg);
        let patterns = generate_patterns(&self.platform);
        if blocks.is_empty() {
            return Ok(SolvedPolicy {
                placement: Placement::all_host(g, e),
                predicted_secs: 0.0,
                num_blocks: 0,
                num_patterns: patterns.len(),
            });
        }

        let shares = block_capacity_shares(&blocks, cap_entries);
        let solved = emb_util::pool::par_indexed(blocks.len(), |b| {
            let (model, y_ids) = self.build_block_lp(&blocks[b], &patterns, &shares[b], cfg);
            let sol =
                milp::solve_lp(&model).map_err(|s| format!("policy block {b} LP failed: {s:?}"))?;
            emb_telemetry::count("policy.lp.solves", 1.0);
            emb_telemetry::count("policy.lp.iterations", sol.iterations as f64);
            emb_telemetry::observe("policy.lp.residual", sol.max_residual);
            emb_telemetry::event("policy.block_solve", || {
                vec![
                    (
                        "block".to_string(),
                        emb_telemetry::EventValue::U64(b as u64),
                    ),
                    (
                        "lp_iterations".to_string(),
                        emb_telemetry::EventValue::U64(sol.iterations as u64),
                    ),
                    (
                        "lp_residual".to_string(),
                        emb_telemetry::EventValue::F64(sol.max_residual),
                    ),
                ]
            });
            let y_row: Vec<f64> = y_ids
                .iter()
                .map(|&v| sol.x[v.index()].clamp(0.0, 1.0))
                .collect();
            Ok(y_row)
        });
        let y: Vec<Vec<f64>> = solved.into_iter().collect::<Result<_, String>>()?;

        emb_telemetry::count("policy.blocks", blocks.len() as f64);
        emb_telemetry::count("policy.patterns", patterns.len() as f64);

        let mut placement = self.realize(&blocks, &patterns, &y, cap_entries, e);
        self.fill_spare_capacity(&mut placement, cap_entries, hotness);
        debug_assert!(placement.validate().is_ok());
        let predicted_secs = crate::estimate::estimate_extraction_time(
            &placement,
            hotness,
            &self.profile,
            cfg.entry_bytes,
            cfg.accesses_per_iter,
        )
        .makespan;
        emb_telemetry::event("policy.solve_decomposed", || {
            vec![
                (
                    "blocks".to_string(),
                    emb_telemetry::EventValue::U64(blocks.len() as u64),
                ),
                (
                    "patterns".to_string(),
                    emb_telemetry::EventValue::U64(patterns.len() as u64),
                ),
                (
                    "predicted_secs".to_string(),
                    emb_telemetry::EventValue::F64(predicted_secs),
                ),
            ]
        });
        Ok(SolvedPolicy {
            placement,
            predicted_secs,
            num_blocks: blocks.len(),
            num_patterns: patterns.len(),
        })
    }

    /// Builds the pattern LP. Returns the model, the `y[b][p]` ids, and
    /// the time unit (seconds per LP time unit) the `t`/`z` variables are
    /// expressed in. Normalizing time keeps LP coefficients near 1
    /// regardless of batch scale, which dense-simplex tolerances need.
    fn build_lp(
        &self,
        blocks: &[Block],
        patterns: &[Pattern],
        cap_entries: &[usize],
        cfg: &SolverConfig,
    ) -> (Model, Vec<Vec<milp::VarId>>, f64) {
        let g = self.platform.num_gpus();
        let host = g;
        // One LP time unit = the time to pull the whole batch from host.
        let worst_t = (0..g)
            .map(|i| self.profile.sec_per_byte[i][host])
            .fold(0.0f64, f64::max);
        let time_unit = (cfg.accesses_per_iter * cfg.entry_bytes as f64 * worst_t).max(1e-300);
        let scale = cfg.accesses_per_iter * cfg.entry_bytes as f64 / time_unit;
        let mut m = Model::new();

        let y: Vec<Vec<milp::VarId>> = blocks
            .iter()
            .enumerate()
            .map(|(b, _)| {
                patterns
                    .iter()
                    .enumerate()
                    .map(|(p, _)| m.add_var(&format!("y_{b}_{p}"), 0.0, 1.0, 0.0, false))
                    .collect()
            })
            .collect();
        let tj: Vec<Vec<milp::VarId>> = (0..g)
            .map(|i| {
                (0..=host)
                    .map(|j| m.add_nonneg(&format!("tj_{i}_{j}"), 0.0))
                    .collect()
            })
            .collect();
        let t: Vec<milp::VarId> = (0..g)
            .map(|i| m.add_nonneg(&format!("t_{i}"), 0.0))
            .collect();
        let z = m.add_nonneg("z", 1.0);

        // Each block fully assigned.
        for row in &y {
            let expr = LinExpr::from_terms(row.iter().map(|&v| (v, 1.0)));
            m.add_constraint(expr, ConstraintSense::Eq, 1.0);
        }

        // Capacity per GPU.
        for j in 0..g {
            let mut expr = LinExpr::new();
            for (b, blk) in blocks.iter().enumerate() {
                for (p, pat) in patterns.iter().enumerate() {
                    let c = blk.size() as f64 * pat.store_frac[j];
                    if c > 0.0 {
                        expr = expr.plus(y[b][p], c);
                    }
                }
            }
            m.add_constraint(expr, ConstraintSense::Le, cap_entries[j] as f64);
        }

        // tj definitions: tj[i][j] = Σ_b Σ_p W_b·scale·T[i][j]·read·y.
        for i in 0..g {
            for j in 0..=host {
                let t_ij = self.profile.sec_per_byte[i][j];
                let mut expr = LinExpr::new().plus(tj[i][j], -1.0);
                let mut any = false;
                for (b, blk) in blocks.iter().enumerate() {
                    for (p, pat) in patterns.iter().enumerate() {
                        let read = pat.read_frac[i][j];
                        if read > 0.0 {
                            assert!(
                                t_ij.is_finite(),
                                "pattern routes GPU{i} to unreachable source {j}"
                            );
                            expr = expr.plus(y[b][p], blk.weight * scale * t_ij * read);
                            any = true;
                        }
                    }
                }
                let _ = any;
                m.add_constraint(expr, ConstraintSense::Eq, 0.0);
            }
        }

        // t_i ≥ tj[i][j]; t_i ≥ Σ_j R[i][j]·tj[i][j]; z ≥ t_i.
        for i in 0..g {
            for j in 0..=host {
                let expr = LinExpr::new().plus(t[i], 1.0).plus(tj[i][j], -1.0);
                m.add_constraint(expr, ConstraintSense::Ge, 0.0);
            }
            let mut padded = LinExpr::new().plus(t[i], 1.0);
            for j in 0..=host {
                let r = self.profile.r[i][j];
                if r > 0.0 {
                    padded = padded.plus(tj[i][j], -r);
                }
            }
            m.add_constraint(padded, ConstraintSense::Ge, 0.0);
            m.add_constraint(
                LinExpr::new().plus(z, 1.0).plus(t[i], -1.0),
                ConstraintSense::Ge,
                0.0,
            );
        }
        (m, y, time_unit)
    }

    /// Builds the reduced LP for a single block. Unlike [`Self::build_lp`]
    /// — which carries one `tj[i][j]` variable and one defining equality
    /// per GPU/source pair — the per-source extraction times of a single
    /// block are fixed linear functions of its `y` fractions, so they are
    /// substituted directly into the max/padding rows. That shrinks the
    /// model from ~90 variables and ~170 rows (mostly equalities needing
    /// phase-1 artificials) to `P + G + 1` variables and ~`G·(G+2)`
    /// inequalities with a trivial slack basis, which is what makes the
    /// decomposed solve cheaper than the joint LP per block.
    ///
    /// Returns the model and the block's `y[p]` ids; the time unit
    /// matches [`Self::build_lp`] (the objective is the block's makespan
    /// in that unit, unused by the decomposed path).
    fn build_block_lp(
        &self,
        block: &Block,
        patterns: &[Pattern],
        cap_entries: &[usize],
        cfg: &SolverConfig,
    ) -> (Model, Vec<milp::VarId>) {
        let g = self.platform.num_gpus();
        let host = g;
        let worst_t = (0..g)
            .map(|i| self.profile.sec_per_byte[i][host])
            .fold(0.0f64, f64::max);
        let time_unit = (cfg.accesses_per_iter * cfg.entry_bytes as f64 * worst_t).max(1e-300);
        let scale = cfg.accesses_per_iter * cfg.entry_bytes as f64 / time_unit;
        let mut m = Model::new();

        let y: Vec<milp::VarId> = (0..patterns.len())
            .map(|p| m.add_var(&format!("y_{p}"), 0.0, 1.0, 0.0, false))
            .collect();
        let t: Vec<milp::VarId> = (0..g)
            .map(|i| m.add_nonneg(&format!("t_{i}"), 0.0))
            .collect();
        let z = m.add_nonneg("z", 1.0);

        // The block fully assigned.
        let expr = LinExpr::from_terms(y.iter().map(|&v| (v, 1.0)));
        m.add_constraint(expr, ConstraintSense::Eq, 1.0);

        // Capacity per GPU (against this block's pre-split share).
        for j in 0..g {
            let mut expr = LinExpr::new();
            for (p, pat) in patterns.iter().enumerate() {
                let c = block.size() as f64 * pat.store_frac[j];
                if c > 0.0 {
                    expr = expr.plus(y[p], c);
                }
            }
            m.add_constraint(expr, ConstraintSense::Le, cap_entries[j] as f64);
        }

        // Substituted per-source times: coeff[j][p] is what tj[i][j]
        // contributes per unit of y[p].
        for i in 0..g {
            let mut padded = LinExpr::new().plus(t[i], 1.0);
            for j in 0..=host {
                let t_ij = self.profile.sec_per_byte[i][j];
                let mut row = LinExpr::new().plus(t[i], 1.0);
                let mut any = false;
                for (p, pat) in patterns.iter().enumerate() {
                    let read = pat.read_frac[i][j];
                    if read > 0.0 {
                        assert!(
                            t_ij.is_finite(),
                            "pattern routes GPU{i} to unreachable source {j}"
                        );
                        let coeff = block.weight * scale * t_ij * read;
                        row = row.plus(y[p], -coeff);
                        let r = self.profile.r[i][j];
                        if r > 0.0 {
                            padded = padded.plus(y[p], -r * coeff);
                        }
                        any = true;
                    }
                }
                // t_i ≥ tj[i][j]; all-zero rows reduce to t_i ≥ 0.
                if any {
                    m.add_constraint(row, ConstraintSense::Ge, 0.0);
                }
            }
            // t_i ≥ Σ_j R[i][j]·tj[i][j].
            m.add_constraint(padded, ConstraintSense::Ge, 0.0);
            // z ≥ t_i.
            m.add_constraint(
                LinExpr::new().plus(z, 1.0).plus(t[i], -1.0),
                ConstraintSense::Ge,
                0.0,
            );
        }
        (m, y)
    }

    /// Realizes fractional pattern weights into an entry-level placement.
    fn realize(
        &self,
        blocks: &[Block],
        patterns: &[Pattern],
        y: &[Vec<f64>],
        cap_entries: &[usize],
        num_entries: usize,
    ) -> Placement {
        let g = self.platform.num_gpus();
        let mut placement = Placement::all_host(g, num_entries);
        // Per-pattern running position for round-robin holder rotation.
        let mut pat_pos = vec![0usize; patterns.len()];

        for (b, blk) in blocks.iter().enumerate() {
            // Largest-remainder split of the block across patterns.
            let n = blk.size();
            let exact: Vec<f64> = y[b].iter().map(|&f| f * n as f64).collect();
            let mut counts: Vec<usize> = exact.iter().map(|&x| x.floor() as usize).collect();
            let mut short = n - counts.iter().sum::<usize>().min(n);
            let mut order: Vec<usize> = (0..patterns.len()).collect();
            order.sort_by(|&a, &bb| {
                let fa = exact[a] - exact[a].floor();
                let fb = exact[bb] - exact[bb].floor();
                fb.partial_cmp(&fa).unwrap()
            });
            let mut oi = 0usize;
            while short > 0 {
                counts[order[oi % order.len()]] += 1;
                short -= 1;
                oi += 1;
            }
            // Clamp any overshoot (floor sums can exceed n only via fp
            // pathologies; guard anyway).
            let mut assigned = 0usize;
            for c in counts.iter_mut() {
                if assigned + *c > n {
                    *c = n - assigned;
                }
                assigned += *c;
            }

            let mut cursor = 0usize;
            for (p, pat) in patterns.iter().enumerate() {
                for _ in 0..counts[p] {
                    if cursor >= n {
                        break;
                    }
                    let entry = blk.entries[cursor] as usize;
                    cursor += 1;
                    let r = pat_pos[p];
                    pat_pos[p] += 1;
                    let holders = pat.holders(&self.platform, r);
                    for &h in &holders {
                        placement.stored[h][entry] = true;
                    }
                    for i in 0..g {
                        match pat.source_for(&self.platform, i, r, &holders) {
                            Some(src) => placement.access[i][entry] = src as u8,
                            None => placement.access[i][entry] = placement.host_idx(),
                        }
                    }
                }
            }
        }

        self.trim_overflow(&mut placement, cap_entries);
        placement
    }

    /// Fills any leftover per-GPU capacity with extra replicas of that
    /// GPU's hottest non-resident entries, reading them locally — a
    /// strictly improving post-pass. The pattern LP places symmetrically
    /// (all paper testbeds have uniform HBM), so on heterogeneous-memory
    /// machines the larger GPUs would otherwise strand capacity.
    fn fill_spare_capacity(
        &self,
        placement: &mut Placement,
        cap_entries: &[usize],
        hotness: &Hotness,
    ) {
        let ranking = hotness.ranking();
        for j in 0..placement.num_gpus {
            let mut spare = cap_entries[j].saturating_sub(placement.cached_count(j));
            if spare == 0 {
                continue;
            }
            for &e in &ranking {
                if spare == 0 {
                    break;
                }
                let e = e as usize;
                if !placement.stored[j][e] {
                    placement.stored[j][e] = true;
                    placement.access[j][e] = j as u8;
                    spare -= 1;
                }
            }
        }
    }

    /// Evicts the coldest overflow entries on any over-capacity GPU and
    /// re-routes their readers (rounding can overshoot by ≤ one entry per
    /// block).
    fn trim_overflow(&self, placement: &mut Placement, cap_entries: &[usize]) {
        let g = placement.num_gpus;
        for j in 0..g {
            let mut held: Vec<usize> = (0..placement.num_entries)
                .filter(|&e| placement.stored[j][e])
                .collect();
            if held.len() <= cap_entries[j] {
                continue;
            }
            // Entries were laid out hottest-first, so the tail of `held`
            // (highest entry rank order not guaranteed) — evict by count
            // overflow from the end of the stored list.
            let evict = held.split_off(cap_entries[j]);
            for e in evict {
                placement.stored[j][e] = false;
                for i in 0..g {
                    if placement.access[i][e] as usize == j {
                        // Re-route: another reachable holder, else host.
                        let alt = (0..g).find(|&h| {
                            placement.stored[h][e]
                                && (h == i || self.platform.connected(i, Location::Gpu(h)))
                        });
                        placement.access[i][e] = alt.map_or(placement.host_idx(), |h| h as u8);
                    }
                }
            }
        }
    }
}

/// Splits each GPU's capacity across hotness blocks for the decomposed
/// solver: waterfilled proportional to block weight (hotness mass),
/// capped at block size, largest-remainder rounded. Hot blocks — high
/// weight per entry — reach their size cap first (full replication room)
/// and the leftover cascades to colder blocks. Returns `[block][gpu]`
/// shares with `Σ_b share[b][j] ≤ cap[j]`.
fn block_capacity_shares(blocks: &[Block], cap_entries: &[usize]) -> Vec<Vec<usize>> {
    let g = cap_entries.len();
    let mut shares = vec![vec![0usize; g]; blocks.len()];
    for (j, &cap) in cap_entries.iter().enumerate() {
        let mut rem = cap.min(blocks.iter().map(Block::size).sum());
        let mut active: Vec<usize> = (0..blocks.len()).collect();
        while rem > 0 && !active.is_empty() {
            let wsum: f64 = active.iter().map(|&b| blocks[b].weight).sum();
            // Largest-remainder allocation of `rem` units by weight.
            let quotas: Vec<f64> = active
                .iter()
                .map(|&b| {
                    if wsum > 0.0 {
                        rem as f64 * blocks[b].weight / wsum
                    } else {
                        rem as f64 / active.len() as f64
                    }
                })
                .collect();
            let mut alloc: Vec<usize> = quotas.iter().map(|&q| q.floor() as usize).collect();
            let mut short = rem.saturating_sub(alloc.iter().sum::<usize>());
            let mut order: Vec<usize> = (0..active.len()).collect();
            order.sort_by(|&a, &b| {
                let fa = quotas[a] - quotas[a].floor();
                let fb = quotas[b] - quotas[b].floor();
                fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
            });
            let mut oi = 0usize;
            while short > 0 {
                alloc[order[oi % order.len()]] += 1;
                short -= 1;
                oi += 1;
            }
            // Cap at block size; full blocks leave the active set and
            // their unused allocation cascades to the next round.
            let mut next_active = Vec::with_capacity(active.len());
            let mut progressed = false;
            for (k, &b) in active.iter().enumerate() {
                let room = blocks[b].size() - shares[b][j];
                let take = alloc[k].min(room);
                shares[b][j] += take;
                rem -= take;
                if take > 0 {
                    progressed = true;
                }
                if shares[b][j] < blocks[b].size() {
                    next_active.push(b);
                }
            }
            if !progressed {
                break;
            }
            active = next_active;
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines;
    use crate::estimate::estimate_extraction_time;
    use emb_util::zipf::powerlaw_hotness;

    fn solver(platform: Platform) -> UGacheSolver {
        UGacheSolver::new(platform, DedicationConfig::default())
    }

    fn hotness(n: usize, alpha: f64) -> Hotness {
        Hotness::new(powerlaw_hotness(n, alpha))
    }

    fn small_cfg() -> SolverConfig {
        SolverConfig {
            blocks: BlockConfig {
                coarse_cap: 0.01,
                min_splits: 4,
                max_blocks: 64,
            },
            entry_bytes: 512,
            accesses_per_iter: 1e5,
            dedup_adjust: false,
        }
    }

    #[test]
    fn solve_produces_valid_placement_within_capacity() {
        let s = solver(Platform::server_a());
        let h = hotness(10_000, 1.2);
        let caps = vec![500usize; 4];
        let sp = s.solve(&h, &caps, &small_cfg()).unwrap();
        sp.placement.validate().unwrap();
        for i in 0..4 {
            assert!(sp.placement.cached_count(i) <= 500, "GPU{i}");
        }
        assert!(sp.predicted_secs > 0.0);
        assert!(sp.num_blocks > 0);
    }

    #[test]
    fn beats_or_matches_replication_and_partition() {
        let plat = Platform::server_c();
        let s = solver(plat.clone());
        let h = hotness(40_000, 1.2);
        let cap = 1200usize;
        let caps = vec![cap; 8];
        let cfg = small_cfg();
        let sp = s.solve(&h, &caps, &cfg).unwrap();
        let t_u = estimate_extraction_time(
            &sp.placement,
            &h,
            s.profile(),
            cfg.entry_bytes,
            cfg.accesses_per_iter,
        )
        .makespan;
        let t_rep = estimate_extraction_time(
            &baselines::replication(&plat, &h, cap),
            &h,
            s.profile(),
            cfg.entry_bytes,
            cfg.accesses_per_iter,
        )
        .makespan;
        let t_part = estimate_extraction_time(
            &baselines::partition(&plat, &h, cap).unwrap(),
            &h,
            s.profile(),
            cfg.entry_bytes,
            cfg.accesses_per_iter,
        )
        .makespan;
        assert!(t_u <= t_rep * 1.05, "UGache {t_u} vs replication {t_rep}");
        assert!(t_u <= t_part * 1.05, "UGache {t_u} vs partition {t_part}");
    }

    #[test]
    fn realized_time_close_to_lp_prediction() {
        let s = solver(Platform::server_c());
        let h = hotness(40_000, 1.2);
        let caps = vec![1000usize; 8];
        let cfg = small_cfg();
        let sp = s.solve(&h, &caps, &cfg).unwrap();
        let realized = estimate_extraction_time(
            &sp.placement,
            &h,
            s.profile(),
            cfg.entry_bytes,
            cfg.accesses_per_iter,
        )
        .makespan;
        let rel = (realized - sp.predicted_secs).abs() / sp.predicted_secs;
        assert!(
            rel < 0.15,
            "LP {} vs realized {} ({:.1}%)",
            sp.predicted_secs,
            realized,
            rel * 100.0
        );
    }

    #[test]
    fn zero_capacity_goes_all_host() {
        let s = solver(Platform::server_a());
        let h = hotness(1000, 1.2);
        let sp = s.solve(&h, &[0, 0, 0, 0], &small_cfg()).unwrap();
        for i in 0..4 {
            assert_eq!(sp.placement.cached_count(i), 0);
        }
        assert_eq!(sp.placement.global_hit_rate(&h), 0.0);
    }

    #[test]
    fn huge_capacity_replicates_everything() {
        let s = solver(Platform::server_a());
        let h = hotness(2000, 1.2);
        let sp = s.solve(&h, &[2000; 4], &small_cfg()).unwrap();
        // With room for everything, full replication (all local) wins.
        let lhr = sp.placement.local_hit_rate(&h);
        assert!(lhr > 0.999, "local hit rate {lhr}");
    }

    #[test]
    fn low_capacity_prefers_partition_like_high_capacity_replication_like() {
        let plat = Platform::server_c();
        let s = solver(plat);
        let h = hotness(40_000, 1.05);
        let cfg = small_cfg();
        let low = s.solve(&h, &[200; 8], &cfg).unwrap();
        let high = s.solve(&h, &[5000; 8], &cfg).unwrap();
        // Paper Figure 14: at low ratios UGache ≈ partition (low local
        // hit rate), at high ratios it grows replicas (high local rate).
        assert!(
            high.placement.local_hit_rate(&h) > low.placement.local_hit_rate(&h) + 0.2,
            "low {} high {}",
            low.placement.local_hit_rate(&h),
            high.placement.local_hit_rate(&h)
        );
    }

    #[test]
    fn works_on_nonuniform_server_b() {
        let s = solver(Platform::server_b());
        let h = hotness(20_000, 1.2);
        let caps = vec![800usize; 8];
        let sp = s.solve(&h, &caps, &small_cfg()).unwrap();
        sp.placement.validate().unwrap();
        // No access may cross unconnected pairs (validate would catch the
        // storage side; check routing against the platform too).
        for i in 0..8 {
            for e in 0..20_000 {
                let src = sp.placement.access[i][e];
                if src != sp.placement.host_idx() && src as usize != i {
                    assert!(s.platform().connected(i, Location::Gpu(src as usize)));
                }
            }
        }
    }

    #[test]
    fn heterogeneous_capacities_are_respected_and_exploited() {
        // Mixed-memory machines (one big GPU, seven small) must still
        // produce valid placements, and the big GPU should carry more.
        let s = solver(Platform::server_c());
        let h = hotness(20_000, 1.2);
        let mut caps = vec![250usize; 8];
        caps[0] = 4_000;
        let sp = s.solve(&h, &caps, &small_cfg()).unwrap();
        sp.placement.validate().unwrap();
        for i in 0..8 {
            assert!(sp.placement.cached_count(i) <= caps[i], "GPU{i}");
        }
        assert!(
            sp.placement.cached_count(0) > sp.placement.cached_count(1),
            "the large GPU should hold more entries"
        );
    }

    #[test]
    fn decomposed_solve_is_valid_and_close_to_joint() {
        let s = solver(Platform::server_a());
        let h = hotness(10_000, 1.2);
        let caps = vec![500usize; 4];
        let cfg = small_cfg();
        let joint = s.solve(&h, &caps, &cfg).unwrap();
        let dec = s.solve_decomposed(&h, &caps, &cfg).unwrap();
        dec.placement.validate().unwrap();
        for i in 0..4 {
            assert!(dec.placement.cached_count(i) <= 500, "GPU{i}");
        }
        assert_eq!(dec.num_blocks, joint.num_blocks);
        assert_eq!(dec.num_patterns, joint.num_patterns);
        let t_joint = estimate_extraction_time(
            &joint.placement,
            &h,
            s.profile(),
            cfg.entry_bytes,
            cfg.accesses_per_iter,
        )
        .makespan;
        let t_dec = estimate_extraction_time(
            &dec.placement,
            &h,
            s.profile(),
            cfg.entry_bytes,
            cfg.accesses_per_iter,
        )
        .makespan;
        // The capacity pre-split costs some placement quality; the
        // decomposed path must stay within 2× of the joint LP's makespan
        // (and far below all-host, which is ~10× at this cache ratio).
        assert!(
            t_dec <= t_joint * 2.0,
            "decomposed {t_dec} vs joint {t_joint}"
        );
    }

    #[test]
    fn decomposed_solve_is_identical_at_any_thread_count() {
        let s = solver(Platform::server_a());
        let h = hotness(5_000, 1.2);
        let caps = vec![300usize; 4];
        let cfg = small_cfg();
        let run = |threads: usize| {
            emb_util::pool::with_threads(threads, || {
                emb_telemetry::collect(|| s.solve_decomposed(&h, &caps, &cfg).unwrap())
            })
        };
        let (base_sp, base_report) = run(1);
        for threads in [2, 8] {
            let (sp, report) = run(threads);
            assert_eq!(base_sp.placement, sp.placement, "threads {threads}");
            assert_eq!(
                base_sp.predicted_secs.to_bits(),
                sp.predicted_secs.to_bits(),
                "threads {threads}"
            );
            assert_eq!(base_report, report, "threads {threads}");
        }
    }

    #[test]
    fn decomposed_huge_capacity_replicates_everything() {
        let s = solver(Platform::server_a());
        let h = hotness(2000, 1.2);
        let sp = s.solve_decomposed(&h, &[2000; 4], &small_cfg()).unwrap();
        let lhr = sp.placement.local_hit_rate(&h);
        assert!(lhr > 0.999, "local hit rate {lhr}");
    }

    #[test]
    fn empty_hotness() {
        let s = solver(Platform::server_a());
        let sp = s
            .solve(&Hotness::new(vec![]), &[10; 4], &small_cfg())
            .unwrap();
        assert_eq!(sp.placement.num_entries, 0);
        assert_eq!(sp.num_blocks, 0);
    }
}
