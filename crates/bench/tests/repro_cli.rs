//! Tests for the `repro` CLI surface and the JSON artifact layer:
//! argument parsing (aliases, dedup, flag validation), artifact schema
//! round-trips, telemetry metrics/trace determinism, and
//! serial-vs-parallel determinism of the runner.

use ugache_bench::artifact::{
    check_dir_schema, diff_dirs, trace_header, trace_line, Artifact, TargetData, SCHEMA_VERSION,
};
use ugache_bench::cli::{self, Command};
use ugache_bench::runner::{run_units, units_for, Unit};
use ugache_bench::{json, Scenario};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn run_spec(list: &[&str]) -> cli::RunSpec {
    match cli::parse(&args(list)).expect("parse succeeds") {
        Command::Run(spec) => spec,
        other => panic!("expected Run, got {other:?}"),
    }
}

fn tiny() -> Scenario {
    Scenario {
        gnn_scale: 16_384,
        dlr_scale: 65_536,
        gnn_batch: 128,
        dlr_batch: 128,
        iters: 1,
        serve_users: 50_000,
        serve_requests: 48,
    }
}

#[test]
fn parse_dedups_targets_order_independently() {
    // Non-adjacent duplicates must collapse too (the old CLI used
    // `Vec::dedup`, which only removes adjacent ones).
    let spec = run_spec(&["fig2", "table1", "fig2", "fig9", "table1"]);
    assert_eq!(spec.targets, ["fig2", "table1", "fig9"]);
}

#[test]
fn parse_aliases_fig15_to_fig14_and_dedups_across_the_alias() {
    let spec = run_spec(&["fig15", "fig2", "fig14"]);
    assert_eq!(spec.targets, ["fig14", "fig2"]);
}

#[test]
fn parse_rejects_unknown_flags() {
    let err = cli::parse(&args(&["--frobnicate", "fig2"])).unwrap_err();
    assert!(err.contains("--frobnicate"), "{err}");
    let err = cli::parse(&args(&["--ful", "fig2"])).unwrap_err();
    assert!(err.contains("--ful"), "{err}");
}

#[test]
fn parse_rejects_unknown_targets() {
    let err = cli::parse(&args(&["fig3"])).unwrap_err();
    assert!(err.contains("fig3"), "{err}");
}

#[test]
fn parse_scale_flags_clamp_and_validate() {
    let spec = run_spec(&["--gnn-scale=0", "--dlr-scale", "9", "fig2"]);
    assert_eq!(spec.scenario.gnn_scale, 1, "scale 0 clamps to 1");
    assert_eq!(spec.scenario.dlr_scale, 9);
    // A malformed value is a hard error, not silently ignored (the old
    // CLI fell back to the default scenario).
    let err = cli::parse(&args(&["--gnn-scale=banana", "fig2"])).unwrap_err();
    assert!(err.contains("banana"), "{err}");
}

#[test]
fn parse_full_and_jobs() {
    let spec = run_spec(&["--full", "--jobs=4", "fig2"]);
    assert_eq!(spec.scenario, Scenario::full());
    assert_eq!(spec.jobs, 4);
    let spec = run_spec(&["--jobs", "0", "fig2"]);
    assert_eq!(spec.jobs, 1, "jobs clamps to at least 1");
    let err = cli::parse(&args(&["--jobs=two", "fig2"])).unwrap_err();
    assert!(err.contains("two"), "{err}");
}

#[test]
fn parse_threads_flag() {
    let spec = run_spec(&["fig2"]);
    assert_eq!(spec.threads, None, "flag absent leaves resolution to env");
    let spec = run_spec(&["--threads=8", "fig2"]);
    assert_eq!(spec.threads, Some(8));
    let spec = run_spec(&["--threads", "2", "fig2"]);
    assert_eq!(spec.threads, Some(2));
    // Unlike --jobs 0 (clamped), --threads 0 is a hard error: a zero-wide
    // pool cannot make progress and silently clamping would hide a typo.
    let err = cli::parse(&args(&["--threads", "0", "fig2"])).unwrap_err();
    assert!(err.contains("--threads"), "{err}");
    let err = cli::parse(&args(&["--threads=many", "fig2"])).unwrap_err();
    assert!(err.contains("many"), "{err}");
    let err = cli::parse(&args(&["fig2", "--threads"])).unwrap_err();
    assert!(err.contains("--threads"), "{err}");
}

#[test]
fn resolve_threads_prefers_flag_then_env_then_one() {
    assert_eq!(cli::resolve_threads(Some(4), Some("8")), Ok(4));
    assert_eq!(cli::resolve_threads(Some(1), None), Ok(1));
    assert_eq!(cli::resolve_threads(None, Some("8")), Ok(8));
    assert_eq!(cli::resolve_threads(None, None), Ok(1));
    // A malformed env var is a hard error naming the variable.
    let err = cli::resolve_threads(None, Some("zero")).unwrap_err();
    assert!(err.contains("REPRO_THREADS"), "{err}");
    let err = cli::resolve_threads(None, Some("0")).unwrap_err();
    assert!(err.contains("REPRO_THREADS"), "{err}");
}

#[test]
fn parse_json_requires_out_and_vice_versa() {
    let err = cli::parse(&args(&["--json", "fig2"])).unwrap_err();
    assert!(err.contains("--out"), "{err}");
    let err = cli::parse(&args(&["--out=d", "fig2"])).unwrap_err();
    assert!(err.contains("--json"), "{err}");
    let spec = run_spec(&["--json", "--out", "d", "fig2"]);
    assert!(spec.json);
    assert_eq!(spec.out.as_deref(), Some(std::path::Path::new("d")));
}

#[test]
fn parse_all_expands_and_dedups_the_alias_pair() {
    let spec = run_spec(&["all"]);
    assert!(spec.targets.contains(&"fig14".to_string()));
    assert!(!spec.targets.contains(&"fig15".to_string()));
    assert!(spec.targets.contains(&"fig10".to_string()));
    assert!(spec.targets.contains(&"fig11".to_string()));
    assert_eq!(spec.targets.len(), cli::TARGETS.len() - 1);
}

#[test]
fn parse_list_and_diff() {
    assert_eq!(cli::parse(&args(&[])).unwrap(), Command::List);
    assert_eq!(cli::parse(&args(&["list"])).unwrap(), Command::List);
    match cli::parse(&args(&["diff", "a", "b"])).unwrap() {
        Command::Diff { a, b } => {
            assert_eq!(a, std::path::PathBuf::from("a"));
            assert_eq!(b, std::path::PathBuf::from("b"));
        }
        other => panic!("expected Diff, got {other:?}"),
    }
    assert!(cli::parse(&args(&["diff", "a"])).is_err());
    assert!(cli::parse(&args(&["diff", "a", "b", "c"])).is_err());
    assert!(cli::parse(&args(&["diff", "--json", "a", "b"])).is_err());
}

#[test]
fn parse_bench_subcommand() {
    match cli::parse(&args(&["bench"])).unwrap() {
        Command::Bench {
            names,
            trials,
            warmup,
            out,
        } => {
            assert!(names.is_empty(), "empty names = all benches");
            assert_eq!(trials, ugache_bench::microbench::DEFAULT_TRIALS);
            assert_eq!(warmup, ugache_bench::microbench::DEFAULT_WARMUP);
            assert_eq!(out, None);
        }
        other => panic!("expected Bench, got {other:?}"),
    }
    match cli::parse(&args(&[
        "bench",
        "--trials=9",
        "--warmup",
        "0",
        "--out",
        "b.json",
        "gather",
        "simplex_pivot",
    ]))
    .unwrap()
    {
        Command::Bench {
            names,
            trials,
            warmup,
            out,
        } => {
            assert_eq!(names, ["gather", "simplex_pivot"]);
            assert_eq!(trials, 9);
            assert_eq!(warmup, 0);
            assert_eq!(out.as_deref(), Some(std::path::Path::new("b.json")));
        }
        other => panic!("expected Bench, got {other:?}"),
    }
    // Trials clamp to at least 1; warmup 0 is legitimate.
    match cli::parse(&args(&["bench", "--trials", "0"])).unwrap() {
        Command::Bench { trials, .. } => assert_eq!(trials, 1),
        other => panic!("expected Bench, got {other:?}"),
    }
    let err = cli::parse(&args(&["bench", "nope"])).unwrap_err();
    assert!(err.contains("nope"), "{err}");
    let err = cli::parse(&args(&["bench", "--json"])).unwrap_err();
    assert!(err.contains("--json"), "{err}");
}

#[test]
fn compare_exit_codes_distinguish_unusable_inputs_from_gate_failures() {
    let exe = env!("CARGO_BIN_EXE_repro");
    let dir = std::env::temp_dir().join(format!("repro-exit-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bench_json = |opt_min: f64, speedup: f64| {
        format!(
            "{{\"kind\": \"ugache-bench\", \"benches\": [{{\"name\": \"gather\", \
             \"opt_min_secs\": {opt_min}, \"speedup\": {speedup}}}]}}\n"
        )
    };
    let base = dir.join("base.json");
    std::fs::write(&base, bench_json(0.010, 3.0)).unwrap();
    let run = |a: &std::path::Path, b: &std::path::Path| {
        std::process::Command::new(exe)
            .arg("compare")
            .arg(a)
            .arg(b)
            .output()
            .expect("repro runs")
            .status
            .code()
    };

    // Unreadable input: exit 3, not a gate verdict.
    assert_eq!(run(&base, &dir.join("missing.json")), Some(3));
    // Valid JSON but not a bench report: still exit 3.
    let alien = dir.join("alien.json");
    std::fs::write(&alien, "{\"kind\": \"something-else\"}\n").unwrap();
    assert_eq!(run(&base, &alien), Some(3));
    // A genuine regression beyond the soft gate: exit 1.
    let slow = dir.join("slow.json");
    std::fs::write(&slow, bench_json(0.100, 0.3)).unwrap();
    assert_eq!(run(&base, &slow), Some(1));
    // Within tolerance: exit 0.
    let fine = dir.join("fine.json");
    std::fs::write(&fine, bench_json(0.011, 2.9)).unwrap();
    assert_eq!(run(&base, &fine), Some(0));
    // Directory mode with an unreadable side is exit 3 too.
    assert_eq!(run(&dir.join("no-dir-a"), &dir.join("no-dir-b")), Some(3));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn units_fold_fig10_and_fig11_into_one_computation() {
    let targets: Vec<String> = ["fig10", "fig11", "fig2"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let units = units_for(&targets);
    assert_eq!(units, [Unit::Fig10And11, Unit::Fig2]);
}

#[test]
fn artifact_schema_round_trips() {
    let s = tiny();
    let result = Unit::Fig9.compute_with_telemetry(&s);
    let artifact = Artifact::new(
        "fig9",
        &s,
        result.data,
        Some(result.telemetry.metrics),
        None,
    );
    let text = artifact.to_json();
    let v = json::parse(&text).expect("artifact parses");
    // Envelope fields, stable across runs and releases.
    assert_eq!(
        v.get("schema_version").unwrap(),
        &json::Value::Num(SCHEMA_VERSION.to_string())
    );
    assert_eq!(
        v.get("target").unwrap(),
        &json::Value::Str("fig9".to_string())
    );
    assert_eq!(
        v.get("seed").unwrap(),
        &json::Value::Num(ugache_bench::scenario::SEED.to_string())
    );
    let scenario = v.get("scenario").expect("scenario embedded");
    assert_eq!(
        scenario.get("gnn_scale").unwrap(),
        &json::Value::Num("16384".to_string())
    );
    let data = v.get("data").expect("data payload");
    assert!(data.get("rows").is_some(), "fig9 payload has rows");
    // The v2 envelope carries a populated metrics block.
    let metrics = v.get("metrics").expect("metrics block");
    let counters = metrics.get("counters").expect("counters map");
    assert!(
        counters.get("bench.computes").is_some(),
        "bench counter present"
    );
    // The parsed value renders back to the exact same bytes.
    assert_eq!(format!("{}\n", v.render_pretty()), text);
}

#[test]
fn serial_and_parallel_runs_produce_identical_artifacts() {
    let s = tiny();
    // Cheap units only — this is a determinism test, not a benchmark.
    let targets: Vec<String> = ["table1", "fig2", "fig9", "fig14"]
        .iter()
        .map(|t| t.to_string())
        .collect();
    let units = units_for(&targets);
    let serial = run_units(&s, &units, 1);
    let parallel = run_units(&s, &units, 4);
    assert_eq!(serial.len(), parallel.len());
    for ((t, a), b) in targets.iter().zip(&serial).zip(&parallel) {
        // Artifact bytes — payload plus metrics block — must match.
        let ja = Artifact::new(
            t,
            &s,
            a.data.clone(),
            Some(a.telemetry.metrics.clone()),
            Some(ugache_bench::timeline::from_report(&a.telemetry)),
        )
        .to_json();
        let jb = Artifact::new(
            t,
            &s,
            b.data.clone(),
            Some(b.telemetry.metrics.clone()),
            Some(ugache_bench::timeline::from_report(&b.telemetry)),
        )
        .to_json();
        assert_eq!(ja, jb, "{t}: serial and parallel artifacts diverge");
        // The event streams must match line for line too.
        let ta: Vec<String> = a
            .telemetry
            .events
            .iter()
            .map(|e| trace_line(t, e).render_compact())
            .collect();
        let tb: Vec<String> = b
            .telemetry
            .events
            .iter()
            .map(|e| trace_line(t, e).render_compact())
            .collect();
        assert_eq!(ta, tb, "{t}: serial and parallel traces diverge");
    }
}

#[test]
fn every_unit_reports_populated_metrics() {
    let s = tiny();
    let targets: Vec<String> = cli::TARGETS
        .iter()
        .filter(|t| **t != "fig15" && **t != "fig11") // aliases of fig14 / fig10
        .map(|t| t.to_string())
        .collect();
    let units = units_for(&targets);
    let results = run_units(&s, &units, 4);
    for (t, r) in targets.iter().zip(&results) {
        assert!(
            !r.telemetry.metrics.is_empty(),
            "{t}: metrics block is empty"
        );
    }
    // Memsim-backed figures must additionally carry a non-empty event
    // stream, so `repro --trace` has something to say about them.
    for (t, r) in targets.iter().zip(&results) {
        if *t == "fig6" || *t == "fig10" {
            assert!(!r.telemetry.events.is_empty(), "{t}: no trace events");
            let lines: Vec<String> = r
                .telemetry
                .events
                .iter()
                .map(|e| trace_line(t, e).render_compact())
                .collect();
            for line in &lines {
                assert!(!line.contains('\n'), "JSONL lines are single-line");
                json::parse(line).expect("trace line parses as JSON");
            }
        }
    }
}

#[test]
fn trace_header_embeds_schema_and_scenario() {
    let s = tiny();
    let header = trace_header(&s).render_compact();
    let v = json::parse(&header).unwrap();
    assert_eq!(
        v.get("schema_version").unwrap(),
        &json::Value::Num(SCHEMA_VERSION.to_string())
    );
    assert_eq!(
        v.get("kind").unwrap(),
        &json::Value::Str("ugache-repro-trace".to_string())
    );
    assert_eq!(
        v.get("scenario").unwrap().get("dlr_scale").unwrap(),
        &json::Value::Num("65536".to_string())
    );
}

#[test]
fn parse_trace_flag() {
    let spec = run_spec(&["--trace=t.jsonl", "fig2"]);
    assert_eq!(spec.trace.as_deref(), Some(std::path::Path::new("t.jsonl")));
    let spec = run_spec(&["--trace", "t.jsonl", "--json", "--out", "d", "fig2"]);
    assert_eq!(spec.trace.as_deref(), Some(std::path::Path::new("t.jsonl")));
    let err = cli::parse(&args(&["fig2", "--trace"])).unwrap_err();
    assert!(err.contains("--trace"), "{err}");
}

#[test]
fn parse_scenarios_record_and_replay_subcommands() {
    use ugache_bench::scenario::{PlatformId, PolicyId};

    match cli::parse(&args(&["scenarios"])).unwrap() {
        Command::Scenarios { md, check, .. } => {
            assert!(!md && !check);
        }
        other => panic!("expected Scenarios, got {other:?}"),
    }
    match cli::parse(&args(&["scenarios", "--check", "--file", "S.md"])).unwrap() {
        Command::Scenarios { check, file, .. } => {
            assert!(check);
            assert_eq!(file, std::path::PathBuf::from("S.md"));
        }
        other => panic!("expected Scenarios, got {other:?}"),
    }
    let err = cli::parse(&args(&["scenarios", "--md", "--check"])).unwrap_err();
    assert!(err.contains("--md"), "{err}");

    // Unknown scenario names are rejected at parse time with a pointer
    // to the catalog listing.
    let err = cli::parse(&args(&["record", "gnn/nope@server_c", "--out", "t"])).unwrap_err();
    assert!(err.contains("gnn/nope@server_c"), "{err}");
    assert!(err.contains("repro scenarios"), "{err}");
    let err = cli::parse(&args(&["record", "dlr/cr@server_a"])).unwrap_err();
    assert!(err.contains("--out"), "{err}");
    match cli::parse(&args(&[
        "record",
        "dlr/cr@server_a",
        "--out",
        "t",
        "--iters=3",
    ]))
    .unwrap()
    {
        Command::Record {
            scenario, iters, ..
        } => {
            assert_eq!(scenario, "dlr/cr@server_a");
            assert_eq!(iters, Some(3));
        }
        other => panic!("expected Record, got {other:?}"),
    }

    match cli::parse(&args(&["replay", "t.trace"])).unwrap() {
        Command::Replay {
            policy, platform, ..
        } => {
            assert_eq!(policy, PolicyId::UGache, "policy defaults to ugache");
            assert_eq!(platform, None);
        }
        other => panic!("expected Replay, got {other:?}"),
    }
    match cli::parse(&args(&[
        "replay",
        "t.trace",
        "--policy=hps",
        "--platform",
        "server_b",
    ]))
    .unwrap()
    {
        Command::Replay {
            policy, platform, ..
        } => {
            assert_eq!(policy, PolicyId::Hps);
            assert_eq!(platform, Some(PlatformId::ServerB));
        }
        other => panic!("expected Replay, got {other:?}"),
    }
    let err = cli::parse(&args(&["replay", "t.trace", "--policy", "lru"])).unwrap_err();
    assert!(err.contains("lru") && err.contains("ugache"), "{err}");
    let err = cli::parse(&args(&["replay", "t.trace", "--platform=server_z"])).unwrap_err();
    assert!(err.contains("server_z"), "{err}");
}

#[test]
fn scenarios_check_cli_gates_drift() {
    let exe = env!("CARGO_BIN_EXE_repro");
    let dir = std::env::temp_dir().join(format!("repro-scenarios-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let check = |file: &std::path::Path| {
        std::process::Command::new(exe)
            .args(["scenarios", "--check", "--file"])
            .arg(file)
            .output()
            .expect("repro runs")
            .status
            .code()
    };

    // A freshly rendered catalog passes the gate.
    let fresh = ugache_bench::catalog::render_markdown(ugache_bench::scenario::registry());
    let ok = dir.join("SCENARIOS.md");
    std::fs::write(&ok, &fresh).unwrap();
    assert_eq!(check(&ok), Some(0));
    // Any drift (here: a vandalized row) is a gate failure, exit 1.
    let drifted = dir.join("drifted.md");
    std::fs::write(&drifted, fresh.replace("`ugache`", "`lru`")).unwrap();
    assert_eq!(check(&drifted), Some(1));
    // An unreadable catalog is a usage/IO error, exit 2.
    assert_eq!(check(&dir.join("missing.md")), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn record_and_replay_cli_round_trip_end_to_end() {
    let exe = env!("CARGO_BIN_EXE_repro");
    let dir = std::env::temp_dir().join(format!("repro-trace-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Unknown scenario name: usage error, exit 2.
    let out = std::process::Command::new(exe)
        .args(["record", "dlr/nope@server_a", "--out"])
        .arg(dir.join("x.trace"))
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2));

    // Recording twice produces byte-identical traces.
    let t1 = dir.join("a.trace");
    let t2 = dir.join("b.trace");
    for t in [&t1, &t2] {
        let out = std::process::Command::new(exe)
            .args(["record", "dlr/cr@server_a", "--iters=1", "--out"])
            .arg(t)
            .output()
            .expect("repro runs");
        assert_eq!(out.status.code(), Some(0), "{:?}", out);
    }
    let bytes = std::fs::read(&t1).unwrap();
    assert_eq!(
        bytes,
        std::fs::read(&t2).unwrap(),
        "record is deterministic"
    );

    // Replaying the trace writes a report and exits 0.
    let report = dir.join("rep.json");
    let out = std::process::Command::new(exe)
        .arg("replay")
        .arg(&t1)
        .args(["--policy", "hps", "--out"])
        .arg(&report)
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let text = std::fs::read_to_string(&report).unwrap();
    let v = json::parse(&text).expect("report parses");
    assert_eq!(
        v.get("kind").unwrap(),
        &json::Value::Str("ugache-replay".to_string())
    );
    assert_eq!(
        v.get("scenario").unwrap(),
        &json::Value::Str("dlr/cr@server_a".to_string())
    );

    // A corrupt trace is unusable input: exit 3.
    let mut corrupt = bytes;
    corrupt[0] = b'X';
    let bad = dir.join("bad.trace");
    std::fs::write(&bad, corrupt).unwrap();
    let out = std::process::Command::new(exe)
        .arg("replay")
        .arg(&bad)
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(3));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_dir_schema_refuses_stale_artifacts() {
    let s = tiny();
    let dir = std::env::temp_dir().join(format!("repro-schema-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Missing and empty directories pass.
    assert!(check_dir_schema(&dir).is_ok());
    std::fs::create_dir_all(&dir).unwrap();
    assert!(check_dir_schema(&dir).is_ok());

    // A current-schema artifact passes; non-artifact JSON is ignored.
    let result = Unit::Fig9.compute_with_telemetry(&s);
    Artifact::new(
        "fig9",
        &s,
        result.data,
        Some(result.telemetry.metrics),
        None,
    )
    .write(&dir)
    .unwrap();
    std::fs::write(dir.join("notes.json"), "{\"hello\": 1}\n").unwrap();
    assert!(check_dir_schema(&dir).is_ok());

    // An artifact from another schema generation is a hard error that
    // names the file and points at the docs.
    let stale = std::fs::read_to_string(dir.join("fig9.json"))
        .unwrap()
        .replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 1",
        );
    std::fs::write(dir.join("fig9.json"), stale).unwrap();
    let err = check_dir_schema(&dir).unwrap_err();
    assert!(err.contains("fig9.json"), "{err}");
    assert!(err.contains("EXPERIMENTS.md"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Repo root, for tests that pin committed files (baselines, METRICS.md).
fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn explain_tail_golden_report_matches_committed_baseline() {
    let root = repo_root();
    let artifact =
        std::fs::read_to_string(root.join("baselines/quick/serve.json")).expect("baseline serve");
    let v = json::parse(&artifact).expect("baseline artifact parses");
    let report = ugache_bench::explain::report_from_artifact(&v).expect("baseline explains");
    let rendered = ugache_bench::explain::to_json(&report);
    let golden = std::fs::read_to_string(root.join("baselines/explain_tail_serve.json"))
        .expect("committed golden report");
    assert_eq!(
        rendered, golden,
        "explain-tail golden drifted; if intentional, regenerate with \
         `repro explain-tail baselines/quick/serve.json --out baselines/explain_tail_serve.json`"
    );
}

#[test]
fn explain_tail_exit_codes_distinguish_usage_from_unusable_input() {
    let exe = env!("CARGO_BIN_EXE_repro");
    let dir = std::env::temp_dir().join(format!("repro-explain-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let run = |input: &str| {
        std::process::Command::new(exe)
            .args(["explain-tail", input])
            .output()
            .expect("repro runs")
            .status
            .code()
    };

    // Missing artifact (and not a registered scenario name): usage/IO, exit 2.
    assert_eq!(run(dir.join("missing.json").to_str().unwrap()), Some(2));
    // A registered scenario that is not the serving scenario: usage, exit 2.
    assert_eq!(run("dlr/cr@server_a"), Some(2));
    // Invalid JSON: unusable input, exit 3.
    let garbled = dir.join("garbled.json");
    std::fs::write(&garbled, "{not json").unwrap();
    assert_eq!(run(garbled.to_str().unwrap()), Some(3));
    // A pre-exemplar (v4) artifact: unusable input, exit 3 — explain-tail
    // needs the v5 `exemplars` block.
    let serve = std::fs::read_to_string(repo_root().join("baselines/quick/serve.json")).unwrap();
    let stale = dir.join("v4.json");
    std::fs::write(
        &stale,
        serve.replace("\"schema_version\": 5", "\"schema_version\": 4"),
    )
    .unwrap();
    assert_eq!(run(stale.to_str().unwrap()), Some(3));
    // A non-serve artifact at the current schema: unusable input, exit 3.
    let fig9 = repo_root().join("baselines/quick/fig9.json");
    assert_eq!(run(fig9.to_str().unwrap()), Some(3));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_check_cli_gates_drift() {
    // The committed catalog matches the source of truth (the coverage
    // half of `repro metrics --check` runs the full quick evaluation and
    // is exercised by CI's docs job, not here).
    let committed = std::fs::read_to_string(repo_root().join("METRICS.md")).expect("METRICS.md");
    ugache_bench::metrics_catalog::check_file(&committed).expect("committed METRICS.md matches");

    let exe = env!("CARGO_BIN_EXE_repro");
    let dir = std::env::temp_dir().join(format!("repro-metrics-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let check = |file: &std::path::Path| {
        std::process::Command::new(exe)
            .args(["metrics", "--check", "--file"])
            .arg(file)
            .output()
            .expect("repro runs")
            .status
            .code()
    };
    // File drift fails fast (before the coverage run): exit 1.
    let drifted = dir.join("drifted.md");
    std::fs::write(&drifted, committed.replace("histogram", "histogrum")).unwrap();
    assert_eq!(check(&drifted), Some(1));
    // An unreadable catalog is a usage/IO error, exit 2.
    assert_eq!(check(&dir.join("missing.md")), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_dirs_reports_and_clears() {
    let s = tiny();
    let base = std::env::temp_dir().join(format!("repro-diff-test-{}", std::process::id()));
    let dir_a = base.join("a");
    let dir_b = base.join("b");
    let _ = std::fs::remove_dir_all(&base);

    let data = TargetData::Fig9(ugache_bench::figures::fig09::compute(&s));
    Artifact::new("fig9", &s, data.clone(), None, None)
        .write(&dir_a)
        .unwrap();
    Artifact::new("fig9", &s, data, None, None)
        .write(&dir_b)
        .unwrap();
    assert!(diff_dirs(&dir_a, &dir_b).unwrap().is_empty());

    // A scenario change shows up as a structural difference.
    let mut s2 = s;
    s2.iters = 2;
    let data2 = TargetData::Fig9(ugache_bench::figures::fig09::compute(&s2));
    Artifact::new("fig9", &s2, data2, None, None)
        .write(&dir_b)
        .unwrap();
    let diffs = diff_dirs(&dir_a, &dir_b).unwrap();
    assert!(
        diffs.iter().any(|d| d.contains("scenario.iters")),
        "{diffs:?}"
    );

    // A file present on one side only is reported.
    let extra = TargetData::Table1(ugache_bench::figures::table1::compute(&s));
    Artifact::new("table1", &s, extra, None, None)
        .write(&dir_a)
        .unwrap();
    let diffs = diff_dirs(&dir_a, &dir_b).unwrap();
    assert!(diffs.iter().any(|d| d.contains("table1.json")), "{diffs:?}");

    let _ = std::fs::remove_dir_all(&base);
}
