//! Thread-count determinism of the intra-target worker pool: JSON
//! artifacts (payload + telemetry metrics + timeline), `--trace` event
//! streams, and `--chrome-trace` output must be byte-identical whether
//! the pool runs 1, 2, or 8 workers. This is the `--threads N` analogue
//! of the serial-vs-`--jobs` determinism test in `repro_cli.rs`.

use ugache_bench::artifact::{trace_line, Artifact};
use ugache_bench::runner::{run_units, units_for, UnitResult};
use ugache_bench::{chrome, explain, timeline, Scenario};

fn tiny() -> Scenario {
    Scenario {
        gnn_scale: 16_384,
        dlr_scale: 65_536,
        gnn_batch: 128,
        dlr_batch: 128,
        iters: 1,
        serve_users: 50_000,
        serve_requests: 48,
    }
}

/// Cheap targets that walk the pooled paths: DLR and GNN workload
/// generation (`next_batch`, hotness profiling) feed every one of these.
const TARGETS: &[&str] = &["table1", "fig2", "fig9", "fig14", "serve"];

fn run_at(threads: usize) -> Vec<UnitResult> {
    let targets: Vec<String> = TARGETS.iter().map(|t| t.to_string()).collect();
    let units = units_for(&targets);
    emb_util::pool::with_threads(threads, || run_units(&tiny(), &units, 1))
}

#[test]
fn artifacts_traces_and_chrome_traces_are_identical_across_thread_counts() {
    let s = tiny();
    let render = |results: &[UnitResult]| -> (Vec<String>, Vec<String>, String) {
        let artifacts: Vec<String> = TARGETS
            .iter()
            .zip(results)
            .map(|(t, r)| {
                Artifact::new(
                    t,
                    &s,
                    r.data.clone(),
                    Some(r.telemetry.metrics.clone()),
                    Some(timeline::from_report(&r.telemetry)),
                )
                .to_json()
            })
            .collect();
        let trace: Vec<String> = TARGETS
            .iter()
            .zip(results)
            .flat_map(|(t, r)| {
                r.telemetry
                    .events
                    .iter()
                    .map(|e| trace_line(t, e).render_compact())
                    .collect::<Vec<_>>()
            })
            .collect();
        let per_target: Vec<(&str, &emb_telemetry::Report)> = TARGETS
            .iter()
            .zip(results)
            .map(|(t, r)| (*t, &r.telemetry))
            .collect();
        let chrome = chrome::chrome_trace(&per_target).render_compact();
        (artifacts, trace, chrome)
    };

    let baseline = render(&run_at(1));
    for threads in [2usize, 8] {
        let (artifacts, trace, chrome) = render(&run_at(threads));
        for (t, (a, b)) in TARGETS.iter().zip(baseline.0.iter().zip(&artifacts)) {
            assert_eq!(a, b, "{t}: artifact bytes diverge at --threads {threads}");
        }
        assert_eq!(
            baseline.1, trace,
            "trace stream diverges at --threads {threads}"
        );
        assert_eq!(
            baseline.2, chrome,
            "chrome trace diverges at --threads {threads}"
        );
    }
}

/// Exemplar selection is a pure function of the observation multiset, so
/// the `explain-tail` report — built entirely from exemplars — must come
/// out byte-identical at every pool width and job count. This is the
/// report-level analogue of the artifact-bytes test above (whose serve
/// artifact already embeds the `exemplars` block via the metrics
/// snapshot).
#[test]
fn explain_tail_reports_are_identical_across_thread_counts_and_jobs() {
    let units = units_for(&["serve".to_string()]);
    let report_at = |threads: usize, jobs: usize| -> String {
        let results = emb_util::pool::with_threads(threads, || run_units(&tiny(), &units, jobs));
        let report = explain::report_from_snapshot(&results[0].telemetry.metrics)
            .expect("serve snapshot yields a consistent tail report");
        explain::to_json(&report)
    };
    let baseline = report_at(1, 1);
    // The report reconstructs the full top-K (48 requests >= K = 8).
    let v = ugache_bench::json::parse(&baseline).unwrap();
    assert_eq!(
        v.get("summary").unwrap().get("requests").unwrap(),
        &ugache_bench::json::Value::Num(emb_telemetry::EXEMPLAR_K.to_string())
    );
    for (threads, jobs) in [(4usize, 1usize), (1, 4), (8, 2)] {
        assert_eq!(
            baseline,
            report_at(threads, jobs),
            "explain-tail report diverges at --threads {threads} --jobs {jobs}"
        );
    }
}
