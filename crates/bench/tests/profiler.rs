//! Integration tests for the span profiler surface: Chrome-trace
//! byte-determinism across `--jobs`, the artifact timeline block,
//! and the `repro compare` perf-regression gate.

use ugache_bench::artifact::{Artifact, SCHEMA_VERSION};
use ugache_bench::runner::{run_units, units_for, Unit};
use ugache_bench::{chrome, compare, json, timeline, Scenario};

fn tiny() -> Scenario {
    Scenario {
        gnn_scale: 16_384,
        dlr_scale: 65_536,
        gnn_batch: 128,
        dlr_batch: 128,
        iters: 1,
        serve_users: 50_000,
        serve_requests: 48,
    }
}

/// Mutable sibling of `json::Value::get`, for test-side perturbation.
fn get_mut<'a>(v: &'a mut json::Value, key: &str) -> &'a mut json::Value {
    match v {
        json::Value::Obj(fields) => fields
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("object has no key `{key}`")),
        _ => panic!("`{key}` looked up on a non-object"),
    }
}

#[test]
fn chrome_trace_is_byte_identical_serial_vs_parallel() {
    let s = tiny();
    // Memsim-backed figures carry link/stall spans; fig9 rides along to
    // prove multi-target pid assignment stays stable under --jobs.
    let targets: Vec<String> = ["fig6", "fig10", "fig9"]
        .iter()
        .map(|t| t.to_string())
        .collect();
    let units = units_for(&targets);
    let serial = run_units(&s, &units, 1);
    let parallel = run_units(&s, &units, 4);

    let trace_of = |results: &[ugache_bench::runner::UnitResult]| -> String {
        let per_target: Vec<(&str, &emb_telemetry::Report)> = targets
            .iter()
            .zip(results)
            .map(|(t, r)| (t.as_str(), &r.telemetry))
            .collect();
        let mut out = chrome::chrome_trace(&per_target).render_compact();
        out.push('\n');
        out
    };
    let a = trace_of(&serial);
    let b = trace_of(&parallel);
    assert_eq!(a, b, "chrome trace bytes diverge between --jobs 1 and 4");

    // The emitted trace is structurally valid and non-trivial: it names
    // at least one per-link track from the simulator.
    let v = json::parse(&a).expect("chrome trace parses");
    let errors = chrome::validate(&v);
    assert!(errors.is_empty(), "{errors:?}");
    assert!(a.contains("link:"), "no per-link track in the trace");
    assert!(a.contains("/cores"), "no stall track in the trace");
}

#[test]
fn artifacts_carry_populated_timeline_blocks() {
    let s = tiny();
    let result = Unit::Fig10And11.compute_with_telemetry(&s);
    let tl = timeline::from_report(&result.telemetry);
    let artifact = Artifact::new(
        "fig10",
        &s,
        result.data,
        Some(result.telemetry.metrics),
        Some(tl),
    );
    let v = json::parse(&artifact.to_json()).expect("artifact parses");
    assert_eq!(
        v.get("schema_version").unwrap(),
        &json::Value::Num(SCHEMA_VERSION.to_string())
    );
    let timeline = v.get("timeline").expect("timeline block present");
    let extent: u64 = match timeline.get("extent_ns").expect("extent_ns") {
        json::Value::Num(n) => n.parse().unwrap(),
        other => panic!("extent_ns not a number: {other:?}"),
    };
    assert!(extent > 0, "zero simulated extent");
    let tracks = match timeline.get("tracks").expect("tracks") {
        json::Value::Arr(items) => items,
        other => panic!("tracks not an array: {other:?}"),
    };
    assert!(
        tracks.iter().any(|t| matches!(
            t.get("track"),
            Some(json::Value::Str(name)) if name.contains("link:")
        )),
        "no per-link track in the timeline"
    );
}

#[test]
fn compare_gate_flags_perturbed_link_utilization() {
    let s = tiny();
    let base = std::env::temp_dir().join(format!("repro-compare-test-{}", std::process::id()));
    let dir_base = base.join("baseline");
    let dir_new = base.join("new");
    let _ = std::fs::remove_dir_all(&base);

    let result = Unit::Fig10And11.compute_with_telemetry(&s);
    let tl = timeline::from_report(&result.telemetry);
    let artifact = Artifact::new(
        "fig10",
        &s,
        result.data,
        Some(result.telemetry.metrics),
        Some(tl),
    );
    artifact.write(&dir_base).unwrap();
    artifact.write(&dir_new).unwrap();

    // Identical directories pass the gate.
    assert!(compare::compare_dirs(&dir_base, &dir_new)
        .unwrap()
        .is_empty());

    // Perturb one link track's utilization beyond its 5% tolerance.
    let path = dir_new.join("fig10.json");
    let mut v = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let tracks = get_mut(get_mut(&mut v, "timeline"), "tracks");
    let track = match tracks {
        json::Value::Arr(items) => items
            .iter_mut()
            .find(|t| {
                matches!(
                    t.get("track"),
                    Some(json::Value::Str(name)) if name.contains("link:")
                )
            })
            .expect("fig10 timeline has a link track"),
        other => panic!("tracks not an array: {other:?}"),
    };
    let util = get_mut(track, "utilization");
    let old: f64 = match &*util {
        json::Value::Num(n) => n.parse().unwrap(),
        other => panic!("utilization not a number: {other:?}"),
    };
    let perturbed = if old == 0.0 { 0.5 } else { old * 1.5 };
    *util = json::Value::Num(format!("{perturbed}"));
    std::fs::write(&path, format!("{}\n", v.render_pretty())).unwrap();

    let failures = compare::compare_dirs(&dir_base, &dir_new).unwrap();
    assert!(
        failures
            .iter()
            .any(|f| f.contains("utilization") && f.contains("link:")),
        "perturbed link utilization not flagged: {failures:?}"
    );

    let _ = std::fs::remove_dir_all(&base);
}
