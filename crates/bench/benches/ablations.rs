//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! Criterion measures wall time, but these benches also *print* the
//! simulated-extraction effect of each ablation once at startup, which is
//! the number the ablation is about:
//!
//! * congestion penalty κ (0 vs 0.5) — why naive peer looks deceptively
//!   good without stall modelling;
//! * host-first core dedication vs proportional-only;
//! * block granularity vs solve time and solution quality;
//! * dedup adjustment on/off in the solver.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cache_policy::{baselines, BlockConfig, Hotness, SolverConfig, UGacheSolver};
use emb_util::zipf::powerlaw_hotness;
use extractor::{Extractor, Mechanism};
use gpu_memsim::{CongestionModel, SimConfig};
use gpu_platform::{DedicationConfig, Platform};

const N: usize = 100_000;
const BYTES: usize = 512;

fn keys(plat: &Platform, per_gpu: usize) -> Vec<Vec<u32>> {
    let zipf = emb_util::ZipfSampler::new(N as u64, 1.2);
    (0..plat.num_gpus())
        .map(|g| {
            let mut rng = emb_util::seed_rng(100 + g as u64);
            let mut v: Vec<u32> = (0..per_gpu).map(|_| zipf.sample(&mut rng) as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect()
}

/// κ ablation: naive peer with and without stall modelling.
fn ablation_congestion(c: &mut Criterion) {
    let plat = Platform::server_c();
    let h = Hotness::new(powerlaw_hotness(N, 1.2));
    let placement = baselines::partition(&plat, &h, 2_000).unwrap();
    let ks = keys(&plat, 30_000);
    let run = |penalty: f64| {
        let sim = SimConfig {
            congestion: CongestionModel { penalty },
            ..SimConfig::default()
        };
        Extractor::new(plat.clone(), sim, Mechanism::PeerNaive { seed: 1 })
            .extract(&placement, &ks, BYTES)
            .makespan
            .as_secs_f64()
    };
    println!(
        "[ablation_congestion] naive peer: ideal {:.3}ms vs stall-modelled {:.3}ms",
        run(0.0) * 1e3,
        run(0.5) * 1e3
    );
    c.bench_function("ablation_congestion_sim", |b| {
        b.iter(|| black_box(run(0.5)))
    });
}

/// Host-first dedication vs starving the host group.
fn ablation_host_first(c: &mut Criterion) {
    let plat = Platform::server_a();
    let h = Hotness::new(powerlaw_hotness(N, 1.2));
    let placement = baselines::partition(&plat, &h, 2_000).unwrap();
    let ks = keys(&plat, 30_000);
    let run = |host_core_fraction: f64| {
        Extractor::new(
            plat.clone(),
            SimConfig::default(),
            Mechanism::Factored {
                dedication: DedicationConfig { host_core_fraction },
            },
        )
        .extract(&placement, &ks, BYTES)
        .makespan
        .as_secs_f64()
    };
    println!(
        "[ablation_host_first] host cores capped at 12% {:.3}ms vs 1 core {:.3}ms",
        run(0.12) * 1e3,
        run(1e-9) * 1e3
    );
    c.bench_function("ablation_host_first_sim", |b| {
        b.iter(|| black_box(run(0.12)))
    });
}

/// Block granularity: solve cost vs realized quality.
fn ablation_blocks(c: &mut Criterion) {
    let plat = Platform::server_c();
    let solver = UGacheSolver::new(plat.clone(), DedicationConfig::default());
    let h = Hotness::new(powerlaw_hotness(N, 1.2));
    let caps = vec![3_000usize; 8];
    let fem = Extractor::new(
        plat.clone(),
        SimConfig::default(),
        Mechanism::Factored {
            dedication: DedicationConfig::default(),
        },
    );
    let ks = keys(&plat, 30_000);
    let run = |max_blocks: usize| {
        let cfg = SolverConfig {
            blocks: BlockConfig {
                max_blocks,
                ..Default::default()
            },
            entry_bytes: BYTES,
            accesses_per_iter: ks[0].len() as f64,
            dedup_adjust: true,
        };
        let sp = solver.solve(&h, &caps, &cfg).unwrap();
        fem.extract(&sp.placement, &ks, BYTES)
            .makespan
            .as_secs_f64()
    };
    println!(
        "[ablation_blocks] 16 blocks {:.3}ms vs 256 blocks {:.3}ms simulated extraction",
        run(16) * 1e3,
        run(256) * 1e3
    );
    let mut g = c.benchmark_group("ablation_blocks_solve");
    for blocks in [16usize, 64, 256] {
        g.bench_function(format!("max_blocks_{blocks}"), |b| {
            b.iter(|| black_box(run(blocks)))
        });
    }
    g.finish();
}

/// Dedup adjustment on/off.
fn ablation_dedup_adjust(c: &mut Criterion) {
    let plat = Platform::server_c();
    let solver = UGacheSolver::new(plat.clone(), DedicationConfig::default());
    let h = Hotness::new(powerlaw_hotness(N, 1.2));
    let caps = vec![3_000usize; 8];
    let fem = Extractor::new(
        plat.clone(),
        SimConfig::default(),
        Mechanism::Factored {
            dedication: DedicationConfig::default(),
        },
    );
    let ks = keys(&plat, 30_000);
    let run = |dedup: bool| {
        let mut cfg = SolverConfig::new(BYTES, ks[0].len() as f64);
        cfg.dedup_adjust = dedup;
        let sp = solver.solve(&h, &caps, &cfg).unwrap();
        fem.extract(&sp.placement, &ks, BYTES)
            .makespan
            .as_secs_f64()
    };
    println!(
        "[ablation_dedup_adjust] raw hotness {:.3}ms vs dedup-adjusted {:.3}ms",
        run(false) * 1e3,
        run(true) * 1e3
    );
    c.bench_function("ablation_dedup_adjust_solve", |b| {
        b.iter(|| black_box(run(true)))
    });
}

/// Local-extraction padding (§5.3) vs a barrier local phase.
fn ablation_padding(c: &mut Criterion) {
    let plat = Platform::server_c();
    let h = Hotness::new(powerlaw_hotness(N, 1.2));
    // A replication-heavy placement has plenty of local work to pad with.
    let placement = baselines::replication(&plat, &h, 8_000);
    let ks = keys(&plat, 30_000);
    let run = |padding: bool| {
        let sim = SimConfig {
            factored_padding: padding,
            ..SimConfig::default()
        };
        Extractor::new(
            plat.clone(),
            sim,
            Mechanism::Factored {
                dedication: DedicationConfig::default(),
            },
        )
        .extract(&placement, &ks, BYTES)
        .makespan
        .as_secs_f64()
    };
    println!(
        "[ablation_padding] padded {:.3}ms vs barrier-local {:.3}ms",
        run(true) * 1e3,
        run(false) * 1e3
    );
    c.bench_function("ablation_padding_sim", |b| b.iter(|| black_box(run(true))));
}

/// Online LRU (HPS-style) vs a static top-hotness cache, under a stable
/// Zipf workload: the §7.2 argument that a static cache loses nothing.
fn ablation_lru_vs_static(c: &mut Criterion) {
    use emb_cache::LruCache;
    let n = 50_000u64;
    let cap = 2_000usize;
    let z = emb_util::ZipfSampler::new(n, 1.2);
    let mut rng = emb_util::seed_rng(4);
    let mut lru = LruCache::new(cap);
    for _ in 0..100_000 {
        lru.access(z.sample(&mut rng) as u32);
    }
    let mut lru_hits = 0u64;
    let mut static_hits = 0u64;
    let trials = 100_000u64;
    for _ in 0..trials {
        let k = z.sample(&mut rng) as u32;
        if lru.access(k).0 {
            lru_hits += 1;
        }
        if (k as usize) < cap {
            static_hits += 1;
        }
    }
    println!(
        "[ablation_lru_vs_static] LRU hit rate {:.1}% (with per-access bookkeeping) vs static top-k {:.1}% (none)",
        lru_hits as f64 / trials as f64 * 100.0,
        static_hits as f64 / trials as f64 * 100.0
    );
    let batch: Vec<u32> = (0..10_000).map(|_| z.sample(&mut rng) as u32).collect();
    c.bench_function("ablation_lru_access_10k", |b| {
        b.iter(|| {
            let mut l = LruCache::new(cap);
            black_box(l.access_batch(&batch))
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_congestion, ablation_host_first, ablation_blocks, ablation_dedup_adjust,
        ablation_padding, ablation_lru_vs_static,
}
criterion_main!(ablations);
