//! Criterion benches: wall-clock cost of the kernels behind each figure.
//!
//! One group per table/figure; each exercises the code path that
//! regenerates it (the printed figures themselves come from the `repro`
//! binary). Sample sizes are small: the kernels are deterministic.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ugache_bench::figures::*;
use ugache_bench::Scenario;

fn tiny() -> Scenario {
    Scenario {
        gnn_scale: 16_384,
        dlr_scale: 65_536,
        gnn_batch: 128,
        dlr_batch: 128,
        iters: 1,
        serve_users: 50_000,
        serve_requests: 48,
    }
}

fn bench_table1_breakdown(c: &mut Criterion) {
    let s = tiny();
    c.bench_function("table1_breakdown", |b| {
        b.iter(|| black_box(table1::compute(&s)))
    });
}

fn bench_fig02_policy_sweep(c: &mut Criterion) {
    let s = tiny();
    c.bench_function("fig02_policy_sweep", |b| {
        b.iter(|| black_box(fig02::compute(&s)))
    });
}

fn bench_fig04_mechanisms(c: &mut Criterion) {
    let s = tiny();
    c.bench_function("fig04_mechanisms", |b| {
        b.iter(|| black_box(fig04::compute(&s)))
    });
}

fn bench_fig06_bandwidth(c: &mut Criterion) {
    let s = tiny();
    c.bench_function("fig06_bandwidth", |b| {
        b.iter(|| black_box(fig06::compute(&s)))
    });
}

fn bench_fig09_blocks(c: &mut Criterion) {
    let s = tiny();
    c.bench_function("fig09_blocks", |b| b.iter(|| black_box(fig09::compute(&s))));
}

fn bench_fig10_gnn_cell(c: &mut Criterion) {
    use emb_workload::{GnnDatasetId, GnnModel};
    use gpu_platform::Platform;
    use ugache::apps::gnn::run_gnn_epoch;
    use ugache::apps::GnnAppConfig;
    let s = tiny();
    let plat = Platform::server_a();
    let (w, h) = s.gnn(GnnDatasetId::Pa, GnnModel::GraphSageSupervised, &plat);
    let cfg = GnnAppConfig {
        batch_size: s.gnn_batch,
        measure_iters: 1,
        ..Default::default()
    };
    c.bench_function("fig10_gnn_cell", |b| {
        b.iter(|| {
            let mut wk = w.clone();
            black_box(run_gnn_epoch(ugache::SystemKind::UGache, &plat, &mut wk, &h, &cfg).unwrap())
        })
    });
}

fn bench_fig10_dlr_cell(c: &mut Criterion) {
    use emb_workload::DlrDatasetId;
    use gpu_platform::Platform;
    use ugache::apps::dlr::run_dlr_iterations;
    use ugache::apps::DlrModel;
    let s = tiny();
    let plat = Platform::server_a();
    let (w, h) = s.dlr(DlrDatasetId::SynA, &plat);
    c.bench_function("fig10_dlr_cell", |b| {
        b.iter(|| {
            let mut wk = w.clone();
            black_box(
                run_dlr_iterations(
                    ugache::SystemKind::UGache,
                    &plat,
                    &mut wk,
                    &h,
                    DlrModel::Dlrm,
                    s.dlr_batch,
                    1,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_fig12_incremental(c: &mut Criterion) {
    let s = tiny();
    c.bench_function("fig12_incremental", |b| {
        b.iter(|| black_box(fig12::compute(&s)))
    });
}

fn bench_fig13_utilization(c: &mut Criterion) {
    let s = tiny();
    c.bench_function("fig13_utilization", |b| {
        b.iter(|| black_box(fig13::compute(&s)))
    });
}

fn bench_fig14_access_split(c: &mut Criterion) {
    let s = tiny();
    c.bench_function("fig14_access_split", |b| {
        b.iter(|| black_box(fig14::compute(&s)))
    });
}

fn bench_fig16_optimal_gap(c: &mut Criterion) {
    let s = tiny();
    c.bench_function("fig16_optimal_gap", |b| {
        b.iter(|| black_box(fig16::compute(&s)))
    });
}

fn bench_fig17_refresh_timeline(c: &mut Criterion) {
    let s = tiny();
    c.bench_function("fig17_refresh_timeline", |b| {
        b.iter(|| black_box(fig17::compute(&s)))
    });
}

fn bench_solver_kernel(c: &mut Criterion) {
    use cache_policy::{Hotness, SolverConfig, UGacheSolver};
    use emb_util::zipf::powerlaw_hotness;
    use gpu_platform::{DedicationConfig, Platform};
    let plat = Platform::server_c();
    let solver = UGacheSolver::new(plat, DedicationConfig::default());
    let h = Hotness::new(powerlaw_hotness(100_000, 1.2));
    let mut cfg = SolverConfig::new(512, 2e4);
    cfg.dedup_adjust = true;
    let caps = vec![3_000usize; 8];
    c.bench_function("solver_pattern_lp_100k_entries", |b| {
        b.iter(|| black_box(solver.solve(&h, &caps, &cfg).unwrap()))
    });
}

fn bench_extraction_sim_kernel(c: &mut Criterion) {
    use cache_policy::{baselines, Hotness};
    use emb_util::zipf::powerlaw_hotness;
    use extractor::{Extractor, Mechanism};
    use gpu_memsim::SimConfig;
    use gpu_platform::{DedicationConfig, Platform};
    let plat = Platform::server_c();
    let h = Hotness::new(powerlaw_hotness(100_000, 1.2));
    let placement = baselines::partition(&plat, &h, 3_000).unwrap();
    let fem = Extractor::new(
        plat,
        SimConfig::default(),
        Mechanism::Factored {
            dedication: DedicationConfig::default(),
        },
    );
    let zipf = emb_util::ZipfSampler::new(100_000, 1.2);
    let mut rng = emb_util::seed_rng(3);
    let keys: Vec<Vec<u32>> = (0..8)
        .map(|_| {
            let mut v: Vec<u32> = (0..30_000).map(|_| zipf.sample(&mut rng) as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    c.bench_function("extraction_sim_8gpu_30k_keys", |b| {
        b.iter(|| black_box(fem.extract(&placement, &keys, 512)))
    });
}

fn bench_functional_gather(c: &mut Criterion) {
    use cache_policy::{baselines, Hotness};
    use emb_cache::{HostTable, MultiGpuCache};
    use emb_util::zipf::powerlaw_hotness;
    use gpu_platform::Platform;
    let plat = Platform::server_a();
    let n = 50_000;
    let dim = 32;
    let h = Hotness::new(powerlaw_hotness(n, 1.2));
    let placement = baselines::partition(&plat, &h, 2_000).unwrap();
    let cache = MultiGpuCache::build(HostTable::dense(n, dim), &placement, &[2_000; 4]);
    let keys: Vec<u32> = (0..10_000u32).map(|i| (i * 7919) % n as u32).collect();
    let mut out = vec![0.0f32; keys.len() * dim];
    c.bench_function("functional_gather_10k_keys", |b| {
        b.iter(|| black_box(cache.gather(0, &keys, &mut out)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table1_breakdown,
        bench_fig02_policy_sweep,
        bench_fig04_mechanisms,
        bench_fig06_bandwidth,
        bench_fig09_blocks,
        bench_fig10_gnn_cell,
        bench_fig10_dlr_cell,
        bench_fig12_incremental,
        bench_fig13_utilization,
        bench_fig14_access_split,
        bench_fig16_optimal_gap,
        bench_fig17_refresh_timeline,
        bench_solver_kernel,
        bench_extraction_sim_kernel,
        bench_functional_gather,
}
criterion_main!(figures);
