//! Per-track timeline summaries derived from telemetry spans.
//!
//! A [`Timeline`] condenses the simulated-time spans of one repro unit's
//! [`emb_telemetry::Report`] into per-track occupancy: how long each
//! track (a link, a GPU's core pool, an extraction tier) was covered by
//! at least one span, what fraction of the unit's simulated extent that
//! is, and a fixed-resolution busy-fraction series for plotting. The
//! summary is embedded in schema-v3 artifacts as the `timeline` block
//! (see EXPERIMENTS.md) and consumed by `repro compare` and
//! `repro profile`.

use serde::Serialize;

/// Number of buckets in each track's busy-fraction series.
pub const SERIES_BUCKETS: usize = 16;

/// Occupancy summary of one span track.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrackSummary {
    /// Track id, e.g. `gpu0/link:nvlink->gpu1`.
    pub track: String,
    /// Number of spans recorded on the track.
    pub spans: u64,
    /// Nanoseconds covered by at least one span (interval union, so
    /// overlapping spans are not double-counted).
    pub busy_ns: u64,
    /// `busy_ns` over the timeline extent (0 when the extent is 0).
    pub utilization: f64,
    /// Busy fraction per bucket of the extent, [`SERIES_BUCKETS`] values
    /// in `[0, 1]`.
    pub series: Vec<f64>,
}

/// Per-track occupancy derived from one report's spans.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Timeline {
    /// Simulated extent of the unit in nanoseconds: the scope clock's
    /// final value, or the latest span end if that is later.
    pub extent_ns: u64,
    /// Track summaries, sorted by track id.
    pub tracks: Vec<TrackSummary>,
}

impl Timeline {
    /// True when no spans were recorded (the `timeline` block is omitted
    /// from artifacts in that case).
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// The summary for `track`, if present.
    pub fn track(&self, track: &str) -> Option<&TrackSummary> {
        self.tracks.iter().find(|t| t.track == track)
    }
}

/// Sorts and merges intervals into a disjoint union.
fn merge_intervals(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match merged.last_mut() {
            Some((_, me)) if s <= *me => *me = (*me).max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Builds the timeline summary of one report.
///
/// The extent is `max(report.clock_ns, latest span end)`; tracks come
/// back sorted by id, each with its interval-union busy time,
/// utilization fraction, and a [`SERIES_BUCKETS`]-bucket busy-fraction
/// series. Reports without spans produce an empty timeline.
pub fn from_report(report: &emb_telemetry::Report) -> Timeline {
    let extent_ns = report
        .spans
        .iter()
        .map(|s| s.end_ns)
        .max()
        .unwrap_or(0)
        .max(report.clock_ns);
    let mut names: Vec<&str> = report.spans.iter().map(|s| s.track.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    let tracks = names
        .into_iter()
        .map(|name| {
            let raw: Vec<(u64, u64)> = report
                .spans
                .iter()
                .filter(|s| s.track == name)
                .map(|s| (s.start_ns, s.end_ns))
                .collect();
            let spans = raw.len() as u64;
            let intervals = merge_intervals(raw);
            let busy_ns: u64 = intervals.iter().map(|(s, e)| e - s).sum();
            let utilization = if extent_ns > 0 {
                busy_ns as f64 / extent_ns as f64
            } else {
                0.0
            };
            TrackSummary {
                track: name.to_string(),
                spans,
                busy_ns,
                utilization,
                series: bucket_series(&intervals, extent_ns),
            }
        })
        .collect();
    Timeline { extent_ns, tracks }
}

/// Busy fraction of each extent bucket covered by the (merged, sorted)
/// intervals.
fn bucket_series(intervals: &[(u64, u64)], extent_ns: u64) -> Vec<f64> {
    let mut series = vec![0.0f64; SERIES_BUCKETS];
    if extent_ns == 0 {
        return series;
    }
    let bucket = extent_ns as f64 / SERIES_BUCKETS as f64;
    for (i, v) in series.iter_mut().enumerate() {
        let lo = i as f64 * bucket;
        let hi = lo + bucket;
        let mut covered = 0.0f64;
        for &(s, e) in intervals {
            let s = s as f64;
            let e = e as f64;
            if e > lo && s < hi {
                covered += e.min(hi) - s.max(lo);
            }
        }
        *v = (covered / bucket).clamp(0.0, 1.0);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(spans: Vec<(&str, u64, u64)>, clock_ns: u64) -> emb_telemetry::Report {
        emb_telemetry::collect(|| {
            for (track, s, e) in spans {
                emb_telemetry::span(track, "t", s, e, Vec::new);
            }
            emb_telemetry::advance_clock_ns(clock_ns);
        })
        .1
    }

    #[test]
    fn empty_report_empty_timeline() {
        let tl = from_report(&report_with(vec![], 0));
        assert!(tl.is_empty());
        assert_eq!(tl.extent_ns, 0);
    }

    #[test]
    fn overlaps_are_not_double_counted() {
        let tl = from_report(&report_with(vec![("a", 0, 60), ("a", 40, 100)], 100));
        let a = tl.track("a").unwrap();
        assert_eq!(a.spans, 2);
        assert_eq!(a.busy_ns, 100);
        assert!((a.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extent_covers_clock_and_latest_span() {
        let tl = from_report(&report_with(vec![("a", 0, 50)], 200));
        assert_eq!(tl.extent_ns, 200);
        let a = tl.track("a").unwrap();
        assert!((a.utilization - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tracks_sorted_and_series_localized() {
        let tl = from_report(&report_with(vec![("b", 160, 320), ("a", 0, 160)], 320));
        assert_eq!(tl.tracks[0].track, "a");
        assert_eq!(tl.tracks[1].track, "b");
        let a = tl.track("a").unwrap();
        // "a" covers exactly the first half: buckets 0..8 full, rest empty.
        for (i, v) in a.series.iter().enumerate() {
            let expect = if i < SERIES_BUCKETS / 2 { 1.0 } else { 0.0 };
            assert!((v - expect).abs() < 1e-9, "bucket {i}: {v}");
        }
    }

    #[test]
    fn disjoint_gap_counts_once() {
        let tl = from_report(&report_with(vec![("a", 0, 10), ("a", 90, 100)], 100));
        assert_eq!(tl.track("a").unwrap().busy_ns, 20);
    }
}
