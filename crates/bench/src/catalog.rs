//! The generated scenario catalog (`SCENARIOS.md`).
//!
//! `repro scenarios --md` renders the builtin registry to markdown and
//! `repro scenarios --check` compares the committed file against a
//! fresh render, failing (exit 1) on drift — the catalog can never go
//! stale. The rendering is pure string building (byte-deterministic),
//! so the check is an exact comparison, not a fuzzy one.

use crate::scenario::{Registry, ScenarioDef};

/// Renders the registry's catalog as the exact content of
/// `SCENARIOS.md`.
pub fn render_markdown(registry: &Registry) -> String {
    let mut out = String::new();
    out.push_str("# Scenario catalog\n\n");
    out.push_str(
        "<!-- GENERATED FILE — do not edit by hand. Regenerate with\n     \
         `cargo run --release -p ugache-bench --bin repro -- scenarios --md`\n     \
         (CI gates drift via `repro scenarios --check`). -->\n\n",
    );
    out.push_str(
        "Every workload × platform point the harness measures, as registered\n\
         in `emb_scenario::registry()`. Names follow\n\
         `<family>/<dataset>[/<model>]@<platform>` (see EXPERIMENTS.md,\n\
         \"Scenario registry and access traces\"). Any scenario below can be\n\
         recorded to an access trace (`repro record <name> --out TRACE`) and\n\
         replayed under any policy (`repro replay TRACE --policy <p>`).\n\n",
    );
    out.push_str("| Scenario | Workload | Platform | Policy | Seed | Consumed by |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for def in registry.defs() {
        out.push_str(&catalog_row(def));
    }
    out.push_str(
        "\nNotes:\n\n\
         * `Policy` is the default (reference) policy `repro replay` uses for\n  \
         the scenario's traces; figure targets sweep several policies over\n  \
         the same stream.\n\
         * `table3` (dataset statistics), `fig6` and `fig8` (platform\n  \
         microbenchmarks) consume no scenario: they measure datasets and\n  \
         platforms directly, so they do not appear in the table.\n\
         * `fig16` measures PA at every GNN scale but adds the CF/MAG rows\n  \
         only at `--gnn-scale <= 1024`; their `fig16` listing applies to\n  \
         full-scale runs.\n",
    );
    out
}

/// One `| ... |` table row for a scenario.
fn catalog_row(def: &ScenarioDef) -> String {
    format!(
        "| `{}` | {} | `{}` | `{}` | `{:#x}` | {} |\n",
        def.name,
        def.workload.label(),
        def.platform.name(),
        def.policy.name(),
        def.seed,
        def.consumers.join(" ")
    )
}

/// Compares the committed catalog text against a fresh render.
///
/// Returns `Ok(())` on an exact match and a drift description
/// otherwise (the caller exits 1).
///
/// # Errors
///
/// Returns the first differing line (or a length mismatch note) when
/// the texts differ.
pub fn check(registry: &Registry, committed: &str) -> Result<(), String> {
    let fresh = render_markdown(registry);
    if committed == fresh {
        return Ok(());
    }
    for (i, (a, b)) in fresh.lines().zip(committed.lines()).enumerate() {
        if a != b {
            return Err(format!(
                "SCENARIOS.md drifted from the registry at line {}:\n  registry:  {a}\n  committed: {b}\n\
                 regenerate with `repro scenarios --md`",
                i + 1
            ));
        }
    }
    Err(format!(
        "SCENARIOS.md drifted from the registry: {} committed line(s) vs {} generated; \
         regenerate with `repro scenarios --md`",
        committed.lines().count(),
        fresh.lines().count()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::registry;

    #[test]
    fn catalog_lists_every_scenario_once() {
        let md = render_markdown(registry());
        for def in registry().defs() {
            assert_eq!(
                md.matches(&format!("| `{}` |", def.name)).count(),
                1,
                "{} appears exactly once",
                def.name
            );
        }
        assert!(md.contains("GENERATED FILE"));
    }

    #[test]
    fn check_accepts_fresh_and_rejects_drift() {
        let fresh = render_markdown(registry());
        assert!(check(registry(), &fresh).is_ok());
        let drifted = fresh.replace("server_c", "server_x");
        let err = check(registry(), &drifted).unwrap_err();
        assert!(err.contains("drifted"), "{err}");
        let truncated: String = fresh.lines().take(5).map(|l| format!("{l}\n")).collect();
        assert!(check(registry(), &truncated).is_err());
    }
}
