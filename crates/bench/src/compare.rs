//! Perf-regression comparison of artifact directories.
//!
//! `repro compare BASELINE NEW` diffs the `metrics` and `timeline`
//! blocks of two artifact directories against per-metric relative
//! tolerances and reports every drift beyond tolerance. Unlike
//! `repro diff` (exact structural equality over whole artifacts), the
//! comparison is *tolerant by design*: it gates CI against a committed
//! baseline, where small intentional recalibrations should not fail the
//! build but a real behaviour change — a link utilization collapsing, a
//! stall window growing — should. The tolerance table is documented in
//! EXPERIMENTS.md ("Comparing against a baseline").

use crate::json::{self, Value};
use std::io;
use std::path::Path;

/// Per-metric relative tolerances, matched by longest prefix. Metric
/// names are `metrics.<block>.<name>` or `timeline.<field>` /
/// `timeline.tracks.<track>.<field>` paths as produced by
/// [`compare_dirs`].
pub const TOLERANCES: &[(&str, f64)] = &[
    // Simulator-derived times wobble with calibration tweaks; allow 5%.
    ("metrics.counters.memsim.", 0.05),
    ("metrics.counters.ugache.extract_secs", 0.05),
    ("metrics.counters.extract.", 0.02),
    ("metrics.histograms.", 0.05),
    // Span-derived occupancy: busy time and utilization per track.
    ("timeline.tracks.", 0.05),
    ("timeline.extent_ns", 0.05),
];

/// Fallback relative tolerance for metrics without a table entry.
pub const DEFAULT_TOLERANCE: f64 = 0.01;

/// The relative tolerance for a metric path: the longest matching prefix
/// from [`TOLERANCES`], or [`DEFAULT_TOLERANCE`].
pub fn tolerance_for(path: &str) -> f64 {
    TOLERANCES
        .iter()
        .filter(|(prefix, _)| path.starts_with(prefix))
        .max_by_key(|(prefix, _)| prefix.len())
        .map_or(DEFAULT_TOLERANCE, |(_, tol)| *tol)
}

/// Relative difference of two numbers: `|a - b| / max(|a|, |b|)`, with
/// exact equality (including both zero) reading as 0.
fn rel_diff(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    (a - b).abs() / a.abs().max(b.abs())
}

/// One numeric comparison point extracted from an artifact.
fn collect_numbers(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Num(raw) => {
            if let Ok(x) = raw.parse::<f64>() {
                out.push((prefix.to_string(), x));
            }
        }
        Value::Obj(fields) => {
            for (k, val) in fields {
                collect_numbers(&format!("{prefix}.{k}"), val, out);
            }
        }
        Value::Arr(items) => {
            for (i, val) in items.iter().enumerate() {
                collect_numbers(&format!("{prefix}[{i}]"), val, out);
            }
        }
        _ => {}
    }
}

/// Comparison points of one parsed artifact: every number under its
/// `metrics` block (except `exemplars` — individual tail observations
/// are forensic detail, gated by `repro diff` determinism checks rather
/// than by tolerance) plus the timeline extent and per-track occupancy
/// (`timeline.tracks.<track>.{spans,busy_ns,utilization}`; the bucket
/// series is plot detail and not gated).
fn comparison_points(artifact: &Value) -> Vec<(String, f64)> {
    let mut points = Vec::new();
    if let Some(Value::Obj(blocks)) = artifact.get("metrics") {
        for (block, v) in blocks {
            if block != "exemplars" {
                collect_numbers(&format!("metrics.{block}"), v, &mut points);
            }
        }
    }
    if let Some(timeline) = artifact.get("timeline") {
        if let Some(Value::Num(raw)) = timeline.get("extent_ns") {
            if let Ok(x) = raw.parse::<f64>() {
                points.push(("timeline.extent_ns".to_string(), x));
            }
        }
        if let Some(Value::Arr(tracks)) = timeline.get("tracks") {
            for t in tracks {
                let Some(Value::Str(name)) = t.get("track") else {
                    continue;
                };
                for field in ["spans", "busy_ns", "utilization"] {
                    if let Some(Value::Num(raw)) = t.get(field) {
                        if let Ok(x) = raw.parse::<f64>() {
                            points.push((format!("timeline.tracks.{name}.{field}"), x));
                        }
                    }
                }
            }
        }
    }
    points
}

/// Lists the `.json` artifact file stems in `dir`, sorted.
fn stems(dir: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                out.push(stem.to_string());
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Compares the metric/timeline blocks of two artifact directories.
///
/// Every artifact present in `baseline` must exist in `new`; each of its
/// comparison points must exist on both sides and agree within
/// [`tolerance_for`] its path. Artifacts only in `new` are ignored (new
/// targets are not regressions). Returns one human-readable line per
/// violation; empty means the comparison passes.
///
/// The scan never stops at the first offender: unreadable or
/// unparseable files and missing counterparts are reported as failure
/// lines alongside every out-of-tolerance metric of every other
/// artifact, so one CI run shows the complete damage.
///
/// # Errors
///
/// Returns an I/O error only when the baseline directory itself cannot
/// be listed (the comparison has no meaningful partial answer then);
/// per-file problems are reported in the failure lines instead.
pub fn compare_dirs(baseline: &Path, new: &Path) -> io::Result<Vec<String>> {
    let mut failures = Vec::new();
    for stem in stems(baseline)? {
        let file = format!("{stem}.json");
        let base_text = match std::fs::read_to_string(baseline.join(&file)) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("{file}: cannot read baseline: {e}"));
                continue;
            }
        };
        let Ok(base) = json::parse(&base_text) else {
            failures.push(format!("{file}: baseline unparseable"));
            continue;
        };
        if base.get("schema_version").is_none() {
            continue; // not an artifact envelope
        }
        let new_path = new.join(&file);
        let Ok(new_text) = std::fs::read_to_string(&new_path) else {
            failures.push(format!("{file}: missing from {}", new.display()));
            continue;
        };
        let Ok(fresh) = json::parse(&new_text) else {
            failures.push(format!("{file}: new side unparseable"));
            continue;
        };
        let base_points = comparison_points(&base);
        let new_points = comparison_points(&fresh);
        for (path, base_val) in &base_points {
            let Some((_, new_val)) = new_points.iter().find(|(p, _)| p == path) else {
                failures.push(format!("{file}: {path} missing from new run"));
                continue;
            };
            let tol = tolerance_for(path);
            let diff = rel_diff(*base_val, *new_val);
            if diff > tol {
                failures.push(format!(
                    "{file}: {path} drifted {:.2}% (baseline {base_val}, new {new_val}, \
                     tolerance {:.1}%)",
                    diff * 100.0,
                    tol * 100.0
                ));
            }
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_prefers_longest_prefix() {
        assert_eq!(tolerance_for("metrics.counters.memsim.extractions"), 0.05);
        assert_eq!(
            tolerance_for("metrics.counters.bench.computes"),
            DEFAULT_TOLERANCE
        );
        assert_eq!(
            tolerance_for("timeline.tracks.gpu0/link:pcie->host.utilization"),
            0.05
        );
    }

    #[test]
    fn rel_diff_handles_zero() {
        assert_eq!(rel_diff(0.0, 0.0), 0.0);
        assert!((rel_diff(1.0, 1.02) - 0.02 / 1.02).abs() < 1e-12);
    }

    #[test]
    fn compare_reports_every_offender_in_one_pass() {
        // Two drifting artifacts, one unparseable baseline, and one file
        // missing from the new side: a single compare_dirs call must
        // surface all of them instead of stopping at the first.
        let base = std::env::temp_dir().join(format!("repro-compare-all-{}", std::process::id()));
        let b = base.join("baseline");
        let n = base.join("new");
        std::fs::create_dir_all(&b).unwrap();
        std::fs::create_dir_all(&n).unwrap();
        let envelope = |v: f64| {
            format!(
                r#"{{"schema_version": 4, "metrics": {{"counters": {{"x": {v}}}, "gauges": {{}}, "histograms": {{}}}}}}"#
            )
        };
        std::fs::write(b.join("a.json"), envelope(1.0)).unwrap();
        std::fs::write(n.join("a.json"), envelope(2.0)).unwrap();
        std::fs::write(b.join("b.json"), envelope(1.0)).unwrap();
        std::fs::write(n.join("b.json"), envelope(3.0)).unwrap();
        std::fs::write(b.join("c.json"), "{ not json").unwrap();
        std::fs::write(b.join("d.json"), envelope(1.0)).unwrap();
        let failures = compare_dirs(&b, &n).unwrap();
        std::fs::remove_dir_all(&base).unwrap();
        assert!(
            failures.iter().any(|f| f.starts_with("a.json:")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.starts_with("b.json:")),
            "{failures:?}"
        );
        assert!(
            failures
                .iter()
                .any(|f| f.starts_with("c.json:") && f.contains("unparseable")),
            "{failures:?}"
        );
        assert!(
            failures
                .iter()
                .any(|f| f.starts_with("d.json:") && f.contains("missing from")),
            "{failures:?}"
        );
    }

    #[test]
    fn points_extracted_from_envelope() {
        let artifact = json::parse(
            r#"{
              "schema_version": 3,
              "metrics": {"counters": {"a.b": 2}, "gauges": {}, "histograms": {},
                          "exemplars": {"serve.latency_ns": [
                            {"value": 9.0, "req": 3, "fields": {"queue_ns": 4}}
                          ]}},
              "timeline": {
                "extent_ns": 100,
                "tracks": [
                  {"track": "gpu0", "spans": 1, "busy_ns": 50, "utilization": 0.5,
                   "series": [1, 0]}
                ]
              }
            }"#,
        )
        .unwrap();
        let points = comparison_points(&artifact);
        assert!(points
            .iter()
            .any(|(p, v)| p == "metrics.counters.a.b" && *v == 2.0));
        assert!(points.iter().any(|(p, _)| p == "timeline.extent_ns"));
        assert!(points
            .iter()
            .any(|(p, v)| p == "timeline.tracks.gpu0.utilization" && *v == 0.5));
        // The bucket series is not gated.
        assert!(!points.iter().any(|(p, _)| p.contains("series")));
        // Exemplars are forensic detail, not comparison points: a tail
        // request's exact latency would never fit a 1% tolerance.
        assert!(!points.iter().any(|(p, _)| p.contains("exemplars")));
    }
}
