//! One module per table/figure of the paper's evaluation.
//!
//! Every module is split into a pure computation layer and a rendering
//! layer:
//!
//! * `compute(&Scenario)` returns the figure's structured,
//!   serde-serializable result with no printing — this is the canonical
//!   API for shape tests, JSON artifacts, and the parallel runner;
//! * `render(..)` prints the paper-style rows from a precomputed result;
//! * `run(&Scenario)` = `compute` + `render`, kept for interactive use.
//!
//! Shape tests assert on the structured results (who wins, by roughly
//! what factor, where crossovers fall) — never on the rendered text.

pub mod fig02;
pub mod fig04;
pub mod fig06;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig16;
pub mod fig17;
pub mod hotness_sources;
pub mod serve;
pub mod table1;
pub mod table3;
