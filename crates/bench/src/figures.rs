//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes `run(&Scenario)` which prints the paper-style
//! rows and returns the structured series (so integration tests can
//! assert the *shape* of each result: who wins, by roughly what factor,
//! where crossovers fall).

pub mod fig02;
pub mod fig04;
pub mod fig06;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig16;
pub mod fig17;
pub mod hotness_sources;
pub mod table1;
pub mod table3;
