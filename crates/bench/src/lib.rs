//! Benchmark harness for the UGache reproduction.
//!
//! The [`figures`] modules regenerate every table and figure of the
//! paper's evaluation (§8) as printed rows/series; the `repro` binary
//! dispatches to them (`repro list` shows the menu). Criterion benches
//! under `benches/` measure the wall-clock cost of the implementation's
//! own kernels (solver, extraction simulation, gathers) and the ablation
//! sweeps called out in `DESIGN.md`.

pub mod figures;
pub mod scenario;

pub use scenario::Scenario;
