//! Benchmark harness for the UGache reproduction.
//!
//! The [`figures`] modules regenerate every table and figure of the
//! paper's evaluation (§8). Each exposes a pure `compute` API returning
//! serializable result structs and a separate `render` layer that
//! pretty-prints them; the `repro` binary dispatches to both
//! (`repro list` shows the menu) and can emit one stable-schema JSON
//! artifact per target via [`artifact`]. Criterion benches under
//! `benches/` measure the wall-clock cost of the implementation's own
//! kernels (solver, extraction simulation, gathers) and the ablation
//! sweeps called out in `DESIGN.md`; [`microbench`] (`repro bench`)
//! measures the optimized hot paths against their frozen reference
//! implementations and feeds the soft wall-clock gate.

#![deny(missing_docs)]

pub mod artifact;
pub mod catalog;
pub mod chrome;
pub mod cli;
pub mod compare;
pub mod explain;
pub mod figures;
pub mod json;
pub mod metrics_catalog;
pub mod microbench;
pub mod profile;
pub mod replay;
pub mod runner;
pub mod scenario;
pub mod timeline;

pub use scenario::Scenario;
