//! Parallel execution of repro targets.
//!
//! Targets are first folded into [`Unit`]s — fig10 and fig11 render
//! from the same computation, so they share one unit — then each unit's
//! pure `compute` runs on a scoped worker pool ([`std::thread::scope`],
//! no external dependencies). Computation never prints; rendering and
//! artifact writing happen afterwards, sequentially, in the caller's
//! requested order. Results are therefore identical for any `--jobs`
//! value: parallelism only changes wall-clock time.
//!
//! Each unit computes inside its own [`emb_telemetry::collect`] scope,
//! opened on whichever thread runs it. Telemetry is therefore attributed
//! per unit by construction — worker scheduling cannot leak one unit's
//! counters into another's — which is what keeps artifact `metrics`
//! blocks and `--trace` streams byte-identical across `--jobs` values.

use crate::artifact::TargetData;
use crate::figures::*;
use crate::scenario::Scenario;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A unit's computed payload together with the telemetry recorded while
/// computing it.
#[derive(Debug, Clone)]
pub struct UnitResult {
    /// The figure/table payload.
    pub data: TargetData,
    /// Metrics and events collected during this unit's compute only.
    pub telemetry: emb_telemetry::Report,
}

/// One unit of computation (a deduplicated repro target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Table 1.
    Table1,
    /// Table 3.
    Table3,
    /// Figure 2.
    Fig2,
    /// Figure 4.
    Fig4,
    /// Figure 6.
    Fig6,
    /// Figure 8.
    Fig8,
    /// Figure 9.
    Fig9,
    /// Figures 10 and 11 (one computation serves both).
    Fig10And11,
    /// Figure 12.
    Fig12,
    /// Figure 13.
    Fig13,
    /// Figures 14/15.
    Fig14,
    /// Figure 16.
    Fig16,
    /// Figure 17.
    Fig17,
    /// Hotness-source study.
    Hotness,
    /// Online serving sweep (throughput / latency tails).
    Serve,
}

impl Unit {
    /// The unit backing a CLI target name (aliases already resolved).
    ///
    /// Returns `None` for unknown names; the CLI layer validates targets
    /// before they reach the runner.
    pub fn for_target(target: &str) -> Option<Unit> {
        Some(match target {
            "table1" => Unit::Table1,
            "table3" => Unit::Table3,
            "fig2" => Unit::Fig2,
            "fig4" => Unit::Fig4,
            "fig6" => Unit::Fig6,
            "fig8" => Unit::Fig8,
            "fig9" => Unit::Fig9,
            "fig10" | "fig11" => Unit::Fig10And11,
            "fig12" => Unit::Fig12,
            "fig13" => Unit::Fig13,
            "fig14" | "fig15" => Unit::Fig14,
            "fig16" => Unit::Fig16,
            "fig17" => Unit::Fig17,
            "hotness" => Unit::Hotness,
            "serve" => Unit::Serve,
            _ => return None,
        })
    }

    /// Runs this unit's pure computation.
    pub fn compute(self, s: &Scenario) -> TargetData {
        match self {
            Unit::Table1 => TargetData::Table1(table1::compute(s)),
            Unit::Table3 => TargetData::Table3(table3::compute(s)),
            Unit::Fig2 => TargetData::Fig2(fig02::compute(s)),
            Unit::Fig4 => TargetData::Fig4(fig04::compute(s)),
            Unit::Fig6 => TargetData::Fig6(fig06::compute(s)),
            Unit::Fig8 => TargetData::Fig8(fig08::compute(s)),
            Unit::Fig9 => TargetData::Fig9(fig09::compute(s)),
            Unit::Fig10And11 => TargetData::Fig10(fig10::compute(s)),
            Unit::Fig12 => TargetData::Fig12(fig12::compute(s)),
            Unit::Fig13 => TargetData::Fig13(fig13::compute(s)),
            Unit::Fig14 => TargetData::Fig14(fig14::compute(s)),
            Unit::Fig16 => TargetData::Fig16(fig16::compute(s)),
            Unit::Fig17 => TargetData::Fig17(fig17::compute(s)),
            Unit::Hotness => TargetData::Hotness(hotness_sources::compute(s)),
            Unit::Serve => TargetData::Serve(serve::compute(s)),
        }
    }

    /// Runs [`Unit::compute`] inside a fresh telemetry scope and returns
    /// the payload plus everything recorded while computing it.
    ///
    /// Besides the subsystem hooks (memsim, cache, policy, ugache), the
    /// scope records a `bench.computes` counter and the scenario scale
    /// gauges, so every unit's metrics block is non-empty even for
    /// targets that never enter the simulator.
    pub fn compute_with_telemetry(self, s: &Scenario) -> UnitResult {
        let (data, telemetry) = emb_telemetry::collect(|| {
            emb_telemetry::count("bench.computes", 1.0);
            emb_telemetry::gauge("bench.scenario.gnn_scale", s.gnn_scale as f64);
            emb_telemetry::gauge("bench.scenario.dlr_scale", s.dlr_scale as f64);
            self.compute(s)
        });
        UnitResult { data, telemetry }
    }
}

/// Folds an ordered target list into the deduplicated unit list that
/// must be computed, preserving first-occurrence order.
pub fn units_for(targets: &[String]) -> Vec<Unit> {
    let mut units = Vec::new();
    for t in targets {
        if let Some(u) = Unit::for_target(t) {
            if !units.contains(&u) {
                units.push(u);
            }
        }
    }
    units
}

/// Computes every unit, using up to `jobs` worker threads.
///
/// Results come back in `units` order regardless of which worker
/// finished first, so downstream rendering and artifact writing are
/// deterministic. Each unit runs in its own telemetry scope (see
/// [`Unit::compute_with_telemetry`]), so the returned reports are also
/// independent of `jobs`.
///
/// # Panics
///
/// Propagates a panic from any unit's computation after all workers
/// finish.
pub fn run_units(s: &Scenario, units: &[Unit], jobs: usize) -> Vec<UnitResult> {
    if jobs <= 1 || units.len() <= 1 {
        return units.iter().map(|u| u.compute_with_telemetry(s)).collect();
    }
    let slots: Vec<Mutex<Option<UnitResult>>> = units.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(units.len()) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(unit) = units.get(idx) else { break };
                let result = unit.compute_with_telemetry(s);
                *slots[idx].lock().expect("slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every unit computed")
        })
        .collect()
}
