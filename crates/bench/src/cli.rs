//! Argument parsing for the `repro` binary.
//!
//! Kept in the library (rather than the binary) so CLI semantics —
//! alias resolution, order-independent dedup, flag validation — are
//! unit-testable without spawning processes.

use crate::scenario::{registry, PlatformId, PolicyId, Scenario};
use std::path::PathBuf;

/// Every target the `repro` CLI accepts, in canonical execution order.
pub const TARGETS: &[&str] = &[
    "table1", "table3", "fig2", "fig4", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "fig17", "hotness", "serve",
];

/// A validated `repro` run request.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Targets in requested order, aliases resolved, duplicates removed.
    pub targets: Vec<String>,
    /// Scenario after `--full` / explicit scale overrides.
    pub scenario: Scenario,
    /// Emit JSON artifacts instead of pretty-printed tables.
    pub json: bool,
    /// Artifact output directory (required with `--json`).
    pub out: Option<PathBuf>,
    /// Worker threads for computation (>= 1).
    pub jobs: usize,
    /// Intra-target worker-pool width (`--threads N`, >= 1). `None`
    /// means the flag was absent; the binary then falls back to the
    /// `REPRO_THREADS` env var via [`resolve_threads`], defaulting to 1.
    pub threads: Option<usize>,
    /// Telemetry event-trace output file (JSONL), if requested.
    pub trace: Option<PathBuf>,
    /// Chrome trace-event output file (JSON), if requested.
    pub chrome_trace: Option<PathBuf>,
    /// Render a span profile instead of the figure output (the
    /// `repro profile` subcommand).
    pub profile: bool,
}

/// A parsed `repro` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print the target menu and usage.
    List,
    /// Compare two artifact directories for exact structural equality.
    Diff {
        /// Left directory.
        a: PathBuf,
        /// Right directory.
        b: PathBuf,
    },
    /// Compare two artifact directories' metric/timeline blocks against
    /// the perf-regression tolerance table. When both paths are
    /// `BENCH_*.json` files, the binary applies the soft wall-clock gate
    /// ([`crate::microbench::compare_files`]) instead.
    Compare {
        /// Baseline directory (committed reference).
        baseline: PathBuf,
        /// Fresh directory to gate.
        new: PathBuf,
    },
    /// Structurally validate a Chrome trace-event file.
    CheckTrace {
        /// The trace file to validate.
        path: PathBuf,
    },
    /// Run the wall-clock microbenches (`repro bench`).
    Bench {
        /// Bench names in requested order (empty = all).
        names: Vec<String>,
        /// Timed trials per implementation.
        trials: usize,
        /// Untimed warmup runs per implementation.
        warmup: usize,
        /// Where to write the bench report, if requested.
        out: Option<PathBuf>,
    },
    /// List registered scenarios, render the catalog, or gate it
    /// (`repro scenarios [--md | --check [--file PATH]]`).
    Scenarios {
        /// Print the generated `SCENARIOS.md` content instead of the
        /// one-line-per-scenario listing.
        md: bool,
        /// Compare the committed catalog against the registry (exit 1
        /// on drift).
        check: bool,
        /// Catalog file `--check` reads (default `SCENARIOS.md`).
        file: PathBuf,
    },
    /// List the metric-name catalog, render it, or gate it against a
    /// full quick run (`repro metrics [--md | --check [--file PATH]]`).
    Metrics {
        /// Print the generated `METRICS.md` content instead of the
        /// one-line-per-name listing.
        md: bool,
        /// Compare the committed catalog against the table and a fresh
        /// quick run's recorded names (exit 1 on drift).
        check: bool,
        /// Catalog file `--check` reads (default `METRICS.md`).
        file: PathBuf,
    },
    /// Record a scenario's access stream to a UGTR trace file.
    Record {
        /// Registered scenario name (validated at parse time).
        scenario: String,
        /// Trace output path.
        out: PathBuf,
        /// Iteration (for `serve`: request) count override.
        iters: Option<usize>,
        /// Scenario scale knobs after `--full` / explicit overrides.
        knobs: Scenario,
        /// Worker-pool width (`--threads N`; see [`resolve_threads`]).
        threads: Option<usize>,
    },
    /// Replay a trace under a policy on a platform.
    Replay {
        /// Trace input path.
        trace: PathBuf,
        /// Policy to replay under (default `ugache`).
        policy: PolicyId,
        /// Platform override (default: matched to the trace's GPU
        /// count).
        platform: Option<PlatformId>,
        /// Replay-report output path, if requested.
        out: Option<PathBuf>,
        /// Worker-pool width (`--threads N`; see [`resolve_threads`]).
        threads: Option<usize>,
    },
    /// Reconstruct the tail requests of a serve run (`repro
    /// explain-tail <serve-artifact.json | scenario>`).
    ExplainTail {
        /// A schema-v5 `serve.json` artifact path, or a registered
        /// serving scenario name to compute fresh in-process (resolved
        /// at run time: registry names win over paths).
        input: String,
        /// Explain-report output path, if requested (the table renders
        /// to stdout either way).
        out: Option<PathBuf>,
        /// Scenario scale knobs for the in-process path (`--full` /
        /// explicit overrides; ignored for artifact inputs).
        knobs: Scenario,
        /// Worker-pool width (`--threads N`; see [`resolve_threads`]).
        threads: Option<usize>,
    },
    /// Compute (and render or serialize) targets.
    Run(RunSpec),
}

fn parse_scale(name: &str, value: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .map(|v| v.max(1))
        .map_err(|_| format!("--{name} expects an unsigned integer, got `{value}`"))
}

/// Parses `repro` arguments (without the program name).
///
/// Unknown `--flags` and unknown targets are hard errors. `fig15` is an
/// alias for `fig14` (one combined module); duplicate targets are
/// removed regardless of position, keeping the first occurrence.
/// `--trace FILE` requests the telemetry event stream (JSONL) and
/// `--chrome-trace FILE` the Chrome trace-event span export; both work
/// with the render and `--json` output modes. The `profile`, `compare`,
/// `check-trace`, and `bench` subcommands map to [`Command::Run`] with
/// `profile` set, [`Command::Compare`], [`Command::CheckTrace`], and
/// [`Command::Bench`] (`--trials N --warmup N --out FILE [NAME...]`).
/// The scenario-registry subcommands map to [`Command::Scenarios`]
/// (`scenarios [--md | --check [--file PATH]]`), [`Command::Metrics`]
/// (`metrics [--md | --check [--file PATH]]`), [`Command::Record`]
/// (`record <scenario> --out TRACE [--iters N]` plus the scale flags;
/// unknown scenario names are parse errors), and [`Command::Replay`]
/// (`replay TRACE [--policy P] [--platform PL] [--out FILE]`; unknown
/// policy/platform names are parse errors). `explain-tail` maps to
/// [`Command::ExplainTail`]
/// (`explain-tail <serve.json | scenario> [--out FILE]` plus the scale
/// flags; whether the input is a registered scenario or an artifact
/// path is resolved at run time).
///
/// # Errors
///
/// Returns a human-readable message when the invocation is invalid; the
/// binary prints it to stderr and exits non-zero.
pub fn parse(args: &[String]) -> Result<Command, String> {
    if args.first().map(String::as_str) == Some("diff") {
        let rest = &args[1..];
        if let Some(flag) = rest.iter().find(|a| a.starts_with("--")) {
            return Err(format!("`repro diff` takes no flags, got `{flag}`"));
        }
        if rest.len() != 2 {
            return Err(format!(
                "`repro diff` expects exactly two artifact directories, got {}",
                rest.len()
            ));
        }
        return Ok(Command::Diff {
            a: PathBuf::from(&rest[0]),
            b: PathBuf::from(&rest[1]),
        });
    }
    if args.first().map(String::as_str) == Some("compare") {
        let rest = &args[1..];
        if let Some(flag) = rest.iter().find(|a| a.starts_with("--")) {
            return Err(format!("`repro compare` takes no flags, got `{flag}`"));
        }
        if rest.len() != 2 {
            return Err(format!(
                "`repro compare` expects BASELINE_DIR and NEW_DIR, got {} arguments",
                rest.len()
            ));
        }
        return Ok(Command::Compare {
            baseline: PathBuf::from(&rest[0]),
            new: PathBuf::from(&rest[1]),
        });
    }
    if args.first().map(String::as_str) == Some("bench") {
        let rest = &args[1..];
        let mut trials = crate::microbench::DEFAULT_TRIALS;
        let mut warmup = crate::microbench::DEFAULT_WARMUP;
        let mut out: Option<PathBuf> = None;
        let mut names: Vec<String> = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let arg = &rest[i];
            let mut value_of = |name: &str| -> Result<String, String> {
                if let Some(v) = arg.strip_prefix(&format!("--{name}=")) {
                    return Ok(v.to_string());
                }
                i += 1;
                rest.get(i)
                    .cloned()
                    .ok_or_else(|| format!("--{name} expects a value"))
            };
            match arg.as_str() {
                a if a == "--trials" || a.starts_with("--trials=") => {
                    trials = parse_scale("trials", &value_of("trials")?)?;
                }
                a if a == "--warmup" || a.starts_with("--warmup=") => {
                    let v = value_of("warmup")?;
                    warmup = v
                        .parse::<usize>()
                        .map_err(|_| format!("--warmup expects an unsigned integer, got `{v}`"))?;
                }
                a if a == "--out" || a.starts_with("--out=") => {
                    out = Some(PathBuf::from(value_of("out")?));
                }
                a if a.starts_with("--") => {
                    return Err(format!("unknown flag `{a}` for `repro bench`"));
                }
                _ => names.push(arg.clone()),
            }
            i += 1;
        }
        for n in &names {
            if !crate::microbench::BENCH_NAMES.contains(&n.as_str()) {
                return Err(format!(
                    "unknown bench `{n}`; available: {}",
                    crate::microbench::BENCH_NAMES.join(" ")
                ));
            }
        }
        return Ok(Command::Bench {
            names,
            trials,
            warmup,
            out,
        });
    }
    if args.first().map(String::as_str) == Some("check-trace") {
        let rest = &args[1..];
        if rest.len() != 1 || rest[0].starts_with("--") {
            return Err("`repro check-trace` expects exactly one trace file".to_string());
        }
        return Ok(Command::CheckTrace {
            path: PathBuf::from(&rest[0]),
        });
    }
    if args.first().map(String::as_str) == Some("scenarios") {
        let rest = &args[1..];
        let mut md = false;
        let mut check = false;
        let mut file = PathBuf::from("SCENARIOS.md");
        let mut i = 0;
        while i < rest.len() {
            let arg = &rest[i];
            match arg.as_str() {
                "--md" => md = true,
                "--check" => check = true,
                a if a == "--file" || a.starts_with("--file=") => {
                    let v = if let Some(v) = arg.strip_prefix("--file=") {
                        v.to_string()
                    } else {
                        i += 1;
                        rest.get(i)
                            .cloned()
                            .ok_or_else(|| "--file expects a value".to_string())?
                    };
                    file = PathBuf::from(v);
                }
                a => {
                    return Err(format!("unknown argument `{a}` for `repro scenarios`"));
                }
            }
            i += 1;
        }
        if md && check {
            return Err("`repro scenarios` takes --md or --check, not both".to_string());
        }
        return Ok(Command::Scenarios { md, check, file });
    }
    if args.first().map(String::as_str) == Some("metrics") {
        let rest = &args[1..];
        let mut md = false;
        let mut check = false;
        let mut file = PathBuf::from("METRICS.md");
        let mut i = 0;
        while i < rest.len() {
            let arg = &rest[i];
            match arg.as_str() {
                "--md" => md = true,
                "--check" => check = true,
                a if a == "--file" || a.starts_with("--file=") => {
                    let v = if let Some(v) = arg.strip_prefix("--file=") {
                        v.to_string()
                    } else {
                        i += 1;
                        rest.get(i)
                            .cloned()
                            .ok_or_else(|| "--file expects a value".to_string())?
                    };
                    file = PathBuf::from(v);
                }
                a => {
                    return Err(format!("unknown argument `{a}` for `repro metrics`"));
                }
            }
            i += 1;
        }
        if md && check {
            return Err("`repro metrics` takes --md or --check, not both".to_string());
        }
        return Ok(Command::Metrics { md, check, file });
    }
    if args.first().map(String::as_str) == Some("record") {
        let rest = &args[1..];
        let mut full = false;
        let mut gnn_scale: Option<usize> = None;
        let mut dlr_scale: Option<usize> = None;
        let mut iters: Option<usize> = None;
        let mut out: Option<PathBuf> = None;
        let mut threads: Option<usize> = None;
        let mut names: Vec<String> = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let arg = &rest[i];
            let mut value_of = |name: &str| -> Result<String, String> {
                if let Some(v) = arg.strip_prefix(&format!("--{name}=")) {
                    return Ok(v.to_string());
                }
                i += 1;
                rest.get(i)
                    .cloned()
                    .ok_or_else(|| format!("--{name} expects a value"))
            };
            match arg.as_str() {
                "--full" => full = true,
                a if a == "--out" || a.starts_with("--out=") => {
                    out = Some(PathBuf::from(value_of("out")?));
                }
                a if a == "--iters" || a.starts_with("--iters=") => {
                    iters = Some(parse_scale("iters", &value_of("iters")?)?);
                }
                a if a == "--threads" || a.starts_with("--threads=") => {
                    threads = Some(parse_scale("threads", &value_of("threads")?)?);
                }
                a if a == "--gnn-scale" || a.starts_with("--gnn-scale=") => {
                    gnn_scale = Some(parse_scale("gnn-scale", &value_of("gnn-scale")?)?);
                }
                a if a == "--dlr-scale" || a.starts_with("--dlr-scale=") => {
                    dlr_scale = Some(parse_scale("dlr-scale", &value_of("dlr-scale")?)?);
                }
                a if a.starts_with("--") => {
                    return Err(format!("unknown flag `{a}` for `repro record`"));
                }
                _ => names.push(arg.clone()),
            }
            i += 1;
        }
        let [scenario] = names.as_slice() else {
            return Err(
                "`repro record` expects exactly one scenario name; see `repro scenarios`"
                    .to_string(),
            );
        };
        if registry().get(scenario).is_none() {
            return Err(format!(
                "unknown scenario `{scenario}`; see `repro scenarios`"
            ));
        }
        let Some(out) = out else {
            return Err("`repro record` requires --out <trace-file>".to_string());
        };
        let mut knobs = if full {
            Scenario::full()
        } else {
            Scenario::quick()
        };
        if let Some(g) = gnn_scale {
            knobs.gnn_scale = g;
        }
        if let Some(d) = dlr_scale {
            knobs.dlr_scale = d;
        }
        return Ok(Command::Record {
            scenario: scenario.clone(),
            out,
            iters,
            knobs,
            threads,
        });
    }
    if args.first().map(String::as_str) == Some("replay") {
        let rest = &args[1..];
        let mut policy = PolicyId::UGache;
        let mut platform: Option<PlatformId> = None;
        let mut out: Option<PathBuf> = None;
        let mut threads: Option<usize> = None;
        let mut paths: Vec<String> = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let arg = &rest[i];
            let mut value_of = |name: &str| -> Result<String, String> {
                if let Some(v) = arg.strip_prefix(&format!("--{name}=")) {
                    return Ok(v.to_string());
                }
                i += 1;
                rest.get(i)
                    .cloned()
                    .ok_or_else(|| format!("--{name} expects a value"))
            };
            match arg.as_str() {
                a if a == "--policy" || a.starts_with("--policy=") => {
                    let v = value_of("policy")?;
                    policy = PolicyId::parse(&v).ok_or_else(|| {
                        format!(
                            "unknown policy `{v}`; available: {}",
                            PolicyId::ALL.map(|p| p.name()).join(" ")
                        )
                    })?;
                }
                a if a == "--platform" || a.starts_with("--platform=") => {
                    let v = value_of("platform")?;
                    platform = Some(PlatformId::parse(&v).ok_or_else(|| {
                        format!(
                            "unknown platform `{v}`; available: {}",
                            PlatformId::ALL.map(|p| p.name()).join(" ")
                        )
                    })?);
                }
                a if a == "--out" || a.starts_with("--out=") => {
                    out = Some(PathBuf::from(value_of("out")?));
                }
                a if a == "--threads" || a.starts_with("--threads=") => {
                    threads = Some(parse_scale("threads", &value_of("threads")?)?);
                }
                a if a.starts_with("--") => {
                    return Err(format!("unknown flag `{a}` for `repro replay`"));
                }
                _ => paths.push(arg.clone()),
            }
            i += 1;
        }
        let [trace] = paths.as_slice() else {
            return Err("`repro replay` expects exactly one trace file".to_string());
        };
        return Ok(Command::Replay {
            trace: PathBuf::from(trace),
            policy,
            platform,
            out,
            threads,
        });
    }
    if args.first().map(String::as_str) == Some("explain-tail") {
        let rest = &args[1..];
        let mut full = false;
        let mut gnn_scale: Option<usize> = None;
        let mut dlr_scale: Option<usize> = None;
        let mut out: Option<PathBuf> = None;
        let mut threads: Option<usize> = None;
        let mut inputs: Vec<String> = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let arg = &rest[i];
            let mut value_of = |name: &str| -> Result<String, String> {
                if let Some(v) = arg.strip_prefix(&format!("--{name}=")) {
                    return Ok(v.to_string());
                }
                i += 1;
                rest.get(i)
                    .cloned()
                    .ok_or_else(|| format!("--{name} expects a value"))
            };
            match arg.as_str() {
                "--full" => full = true,
                a if a == "--out" || a.starts_with("--out=") => {
                    out = Some(PathBuf::from(value_of("out")?));
                }
                a if a == "--threads" || a.starts_with("--threads=") => {
                    threads = Some(parse_scale("threads", &value_of("threads")?)?);
                }
                a if a == "--gnn-scale" || a.starts_with("--gnn-scale=") => {
                    gnn_scale = Some(parse_scale("gnn-scale", &value_of("gnn-scale")?)?);
                }
                a if a == "--dlr-scale" || a.starts_with("--dlr-scale=") => {
                    dlr_scale = Some(parse_scale("dlr-scale", &value_of("dlr-scale")?)?);
                }
                a if a.starts_with("--") => {
                    return Err(format!("unknown flag `{a}` for `repro explain-tail`"));
                }
                _ => inputs.push(arg.clone()),
            }
            i += 1;
        }
        let [input] = inputs.as_slice() else {
            return Err(
                "`repro explain-tail` expects exactly one input: a serve artifact \
                 (serve.json) or a registered serving scenario name"
                    .to_string(),
            );
        };
        let mut knobs = if full {
            Scenario::full()
        } else {
            Scenario::quick()
        };
        if let Some(g) = gnn_scale {
            knobs.gnn_scale = g;
        }
        if let Some(d) = dlr_scale {
            knobs.dlr_scale = d;
        }
        return Ok(Command::ExplainTail {
            input: input.clone(),
            out,
            knobs,
            threads,
        });
    }
    let profile = args.first().map(String::as_str) == Some("profile");
    let args = if profile { &args[1..] } else { args };

    let mut full = false;
    let mut json = false;
    let mut out: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut chrome_trace: Option<PathBuf> = None;
    let mut jobs: usize = 1;
    let mut threads: Option<usize> = None;
    let mut gnn_scale: Option<usize> = None;
    let mut dlr_scale: Option<usize> = None;
    let mut targets: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        // A flag's value may come attached (`--out=d`) or as the next
        // argument (`--out d`).
        let mut value_of = |name: &str| -> Result<String, String> {
            if let Some(v) = arg.strip_prefix(&format!("--{name}=")) {
                return Ok(v.to_string());
            }
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("--{name} expects a value"))
        };
        match arg.as_str() {
            "--full" => full = true,
            "--json" => json = true,
            a if a == "--out" || a.starts_with("--out=") => {
                out = Some(PathBuf::from(value_of("out")?));
            }
            a if a == "--chrome-trace" || a.starts_with("--chrome-trace=") => {
                chrome_trace = Some(PathBuf::from(value_of("chrome-trace")?));
            }
            a if a == "--trace" || a.starts_with("--trace=") => {
                trace = Some(PathBuf::from(value_of("trace")?));
            }
            a if a == "--jobs" || a.starts_with("--jobs=") => {
                let v = value_of("jobs")?;
                jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs expects an unsigned integer, got `{v}`"))?
                    .max(1);
            }
            a if a == "--threads" || a.starts_with("--threads=") => {
                let v = value_of("threads")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("--threads expects an unsigned integer, got `{v}`"))?;
                if n == 0 {
                    // Unlike --jobs (which clamps), a zero-width worker
                    // pool is a contradiction — reject it loudly.
                    return Err("--threads must be >= 1, got `0`".to_string());
                }
                threads = Some(n);
            }
            a if a == "--gnn-scale" || a.starts_with("--gnn-scale=") => {
                gnn_scale = Some(parse_scale("gnn-scale", &value_of("gnn-scale")?)?);
            }
            a if a == "--dlr-scale" || a.starts_with("--dlr-scale=") => {
                dlr_scale = Some(parse_scale("dlr-scale", &value_of("dlr-scale")?)?);
            }
            a if a.starts_with("--") => {
                return Err(format!("unknown flag `{a}`; see `repro list`"));
            }
            _ => targets.push(arg.clone()),
        }
        i += 1;
    }

    if json && out.is_none() {
        return Err("--json requires --out <dir>".to_string());
    }
    if out.is_some() && !json {
        return Err("--out requires --json".to_string());
    }
    if profile && (json || trace.is_some() || chrome_trace.is_some()) {
        return Err("`repro profile` renders to stdout; it takes no output flags".to_string());
    }
    if profile && targets.is_empty() {
        return Err("`repro profile` expects at least one target".to_string());
    }

    if targets.is_empty() || targets.iter().any(|t| t == "list") {
        return Ok(Command::List);
    }
    if targets.iter().any(|t| t == "all") {
        targets = TARGETS.iter().map(|s| s.to_string()).collect();
    }
    for t in &targets {
        if !TARGETS.contains(&t.as_str()) {
            return Err(format!("unknown target `{t}`; see `repro list`"));
        }
    }
    // fig14 and fig15 are one combined module; run it once.
    for t in targets.iter_mut() {
        if t == "fig15" {
            *t = "fig14".to_string();
        }
    }
    // Order-independent dedup, keeping the first occurrence.
    let mut seen = std::collections::HashSet::new();
    targets.retain(|t| seen.insert(t.clone()));

    let mut scenario = if full {
        Scenario::full()
    } else {
        Scenario::quick()
    };
    if let Some(g) = gnn_scale {
        scenario.gnn_scale = g;
    }
    if let Some(d) = dlr_scale {
        scenario.dlr_scale = d;
    }

    Ok(Command::Run(RunSpec {
        targets,
        scenario,
        json,
        out,
        jobs,
        threads,
        trace,
        chrome_trace,
        profile,
    }))
}

/// Resolves the intra-target worker-pool width from the `--threads`
/// flag and the `REPRO_THREADS` environment variable (flag wins; default
/// 1). Pure so both sources are unit-testable; the binary passes
/// `std::env::var("REPRO_THREADS").ok()`.
///
/// # Errors
///
/// Returns a message when `REPRO_THREADS` is not a positive integer.
pub fn resolve_threads(flag: Option<usize>, env: Option<&str>) -> Result<usize, String> {
    if let Some(n) = flag {
        return Ok(n.max(1));
    }
    match env {
        None => Ok(1),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!(
                "REPRO_THREADS must be a positive integer, got `{v}`"
            )),
        },
    }
}
