//! Wall-clock microbenchmarks for the optimized hot paths, plus the
//! soft bench-file regression gate (`repro bench` / `repro compare A.json
//! B.json`).
//!
//! Each microbench runs a *frozen reference* implementation and the
//! optimized implementation on identical deterministic inputs (fixed
//! seeds, fixed sizes), asserts outside the timed region that both
//! produce the same answer, and then times repeated trials of each. The
//! report records per-trial wall-clock seconds and the min-based speedup
//! (`ref_min_secs / opt_min_secs`); minima are the standard robust
//! estimator for "how fast can this code go" under scheduler noise.
//!
//! This module is the repro harness's **only sanctioned wall-clock
//! surface**: simulated results stay byte-deterministic (the equality
//! asserts pin that), and the measured seconds go into a separate
//! `BENCH_*.json` file that is gated *softly* — `compare_files` fails
//! only on large regressions (see [`REGRESSION_FACTOR`] /
//! [`SPEEDUP_LOSS_FACTOR`]), because absolute wall-clock varies across
//! machines and CI runners. Library crates remain free of wall-clock
//! reads.

use crate::json::{self, Value};
use serde::Serialize;
use std::io;
use std::path::Path;
use std::time::Instant;

/// Schema version of the bench report file (independent of the artifact
/// schema; bump on shape changes). v2 added the per-entry `scaling`
/// thread-scaling points.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// The `kind` discriminator of bench report files.
pub const BENCH_KIND: &str = "ugache-bench";

/// Every microbench name, in canonical execution order.
pub const BENCH_NAMES: &[&str] = &[
    "gather",
    "memsim_step",
    "simplex_pivot",
    "gather_par",
    "lp_block",
];

/// Worker-pool widths measured by the thread-scaling benches.
pub const SCALING_THREADS: &[usize] = &[1, 2, 4, 8];

/// Default timed trials per implementation.
pub const DEFAULT_TRIALS: usize = 5;

/// Default untimed warmup runs per implementation.
pub const DEFAULT_WARMUP: usize = 2;

/// Hard-fail when the optimized path's best trial is this many times
/// slower than the committed baseline's.
pub const REGRESSION_FACTOR: f64 = 2.5;

/// Hard-fail when the measured speedup falls below `baseline / this`.
pub const SPEEDUP_LOSS_FACTOR: f64 = 2.5;

/// Print a (non-failing) warning when the optimized path's best trial is
/// this many times slower than the baseline's.
pub const WARN_FACTOR: f64 = 1.25;

/// One thread-scaling measurement of a parallelized path.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// Worker-pool width the measurement ran at.
    pub threads: usize,
    /// Fastest trial at that width.
    pub opt_min_secs: f64,
}

/// One microbench's timings.
#[derive(Debug, Clone, Serialize)]
pub struct BenchEntry {
    /// Microbench name (one of [`BENCH_NAMES`]).
    pub name: String,
    /// Per-trial wall-clock seconds of the frozen reference path.
    pub ref_secs: Vec<f64>,
    /// Per-trial wall-clock seconds of the optimized path.
    pub opt_secs: Vec<f64>,
    /// Fastest reference trial.
    pub ref_min_secs: f64,
    /// Fastest optimized trial.
    pub opt_min_secs: f64,
    /// `ref_min_secs / opt_min_secs`.
    pub speedup: f64,
    /// Optimized-path timings across [`SCALING_THREADS`] worker-pool
    /// widths (empty for benches without a parallel variant). Wall-clock
    /// scaling depends on the machine's core count; the committed
    /// baselines record what the baseline box measured.
    pub scaling: Vec<ScalePoint>,
}

/// The whole bench report (serialized to `BENCH_*.json`).
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// [`BENCH_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// [`BENCH_KIND`].
    pub kind: String,
    /// Timed trials per implementation.
    pub trials: usize,
    /// Untimed warmup runs per implementation.
    pub warmup: usize,
    /// One entry per requested microbench, in request order.
    pub benches: Vec<BenchEntry>,
}

/// Times `trials` runs of `f` after `warmup` untimed runs.
fn time_trials(trials: usize, warmup: usize, mut f: impl FnMut()) -> Vec<f64> {
    for _ in 0..warmup {
        f();
    }
    (0..trials)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

fn entry(name: &str, ref_secs: Vec<f64>, opt_secs: Vec<f64>) -> BenchEntry {
    let ref_min_secs = ref_secs.iter().copied().fold(f64::INFINITY, f64::min);
    let opt_min_secs = opt_secs.iter().copied().fold(f64::INFINITY, f64::min);
    BenchEntry {
        name: name.to_string(),
        ref_secs,
        opt_secs,
        ref_min_secs,
        opt_min_secs,
        speedup: ref_min_secs / opt_min_secs,
        scaling: Vec::new(),
    }
}

/// Times `f` across every [`SCALING_THREADS`] pool width.
fn scale_points(trials: usize, warmup: usize, mut f: impl FnMut()) -> Vec<ScalePoint> {
    SCALING_THREADS
        .iter()
        .map(|&threads| {
            let secs =
                emb_util::pool::with_threads(threads, || time_trials(trials, warmup, &mut f));
            ScalePoint {
                threads,
                opt_min_secs: secs.iter().copied().fold(f64::INFINITY, f64::min),
            }
        })
        .collect()
}

/// The shared gather fixture: a 4-GPU partition cache over 400k small
/// (DLR-style) rows and a 100k-key Zipf batch. Small rows keep the copy
/// cheap and the 160k-entry location maps spill out of fast cache
/// levels, so per-key lookup cost dominates the timing.
fn gather_fixture() -> (
    emb_cache::MultiGpuCache,
    emb_cache::ReferenceGatherer,
    Vec<u32>,
    usize,
) {
    use cache_policy::{baselines, Hotness};
    use emb_cache::{HostTable, MultiGpuCache, ReferenceGatherer};
    use emb_util::zipf::powerlaw_hotness;
    use gpu_platform::Platform;

    let plat = Platform::server_a();
    let n = 400_000usize;
    let dim = 8;
    let h = Hotness::new(powerlaw_hotness(n, 1.2));
    let placement = baselines::partition(&plat, &h, 40_000).expect("partition fits");
    let cache = MultiGpuCache::build(HostTable::dense(n, dim), &placement, &[40_000; 4]);
    let reference = ReferenceGatherer::new(&cache);

    let zipf = emb_util::ZipfSampler::new(n as u64, 0.9);
    let mut rng = emb_util::seed_rng(0x5EED);
    let keys: Vec<u32> = (0..100_000).map(|_| zipf.sample(&mut rng) as u32).collect();
    (cache, reference, keys, dim)
}

/// The f32 gather path: per-key `HashMap` probe + per-row copy
/// (reference) vs the two-pass plan-then-copy gather.
fn bench_gather(trials: usize, warmup: usize) -> BenchEntry {
    let (cache, reference, keys, dim) = gather_fixture();

    // Outside the timed region: both paths must agree exactly.
    let mut ref_out = vec![0.0f32; keys.len() * dim];
    let mut opt_out = vec![0.0f32; keys.len() * dim];
    for gpu in 0..4 {
        let ref_stats = reference.gather(&cache, gpu, &keys, &mut ref_out);
        let opt_stats = cache.gather(gpu, &keys, &mut opt_out);
        assert_eq!(ref_stats, opt_stats, "gather stats diverge on GPU{gpu}");
        assert_eq!(ref_out, opt_out, "gather values diverge on GPU{gpu}");
    }

    let ref_secs = time_trials(trials, warmup, || {
        for gpu in 0..4 {
            std::hint::black_box(reference.gather(&cache, gpu, &keys, &mut ref_out));
        }
    });
    let opt_secs = time_trials(trials, warmup, || {
        for gpu in 0..4 {
            std::hint::black_box(cache.gather(gpu, &keys, &mut opt_out));
        }
    });
    entry("gather", ref_secs, opt_secs)
}

/// The pooled two-pass gather: frozen per-key `HashMap` reference vs
/// the chunked plan+copy passes on an 8-wide worker pool. Output bytes
/// are asserted identical (the pool contract) outside the timed region;
/// `scaling` records the pooled path at every [`SCALING_THREADS`] width
/// (on a single-core box the widths time alike — the speedup over the
/// reference comes from the two-pass structure, and spreads across
/// cores on multicore machines).
fn bench_gather_par(trials: usize, warmup: usize) -> BenchEntry {
    let (cache, reference, keys, dim) = gather_fixture();

    let mut ref_out = vec![0.0f32; keys.len() * dim];
    let mut opt_out = vec![0.0f32; keys.len() * dim];
    for gpu in 0..4 {
        let ref_stats = reference.gather(&cache, gpu, &keys, &mut ref_out);
        let opt_stats = emb_util::pool::with_threads(8, || cache.gather(gpu, &keys, &mut opt_out));
        assert_eq!(ref_stats, opt_stats, "gather stats diverge on GPU{gpu}");
        assert_eq!(ref_out, opt_out, "gather values diverge on GPU{gpu}");
    }

    let ref_secs = time_trials(trials, warmup, || {
        for gpu in 0..4 {
            std::hint::black_box(reference.gather(&cache, gpu, &keys, &mut ref_out));
        }
    });
    let opt_secs = emb_util::pool::with_threads(8, || {
        time_trials(trials, warmup, || {
            for gpu in 0..4 {
                std::hint::black_box(cache.gather(gpu, &keys, &mut opt_out));
            }
        })
    });
    let mut e = entry("gather_par", ref_secs, opt_secs);
    e.scaling = scale_points(trials, warmup, || {
        for gpu in 0..4 {
            std::hint::black_box(cache.gather(gpu, &keys, &mut opt_out));
        }
    });
    e
}

/// Per-block LP decomposition: the joint pattern LP over all hotness
/// blocks (reference) vs independent per-block LPs on an 8-wide worker
/// pool. Unlike the other benches the two paths are different
/// *algorithms*, so instead of exact equality the fixture asserts
/// outside the timed region that the decomposed placement is valid and
/// its estimated makespan stays within 2× of the joint solution.
fn bench_lp_block(trials: usize, warmup: usize) -> BenchEntry {
    use cache_policy::{
        estimate_extraction_time, BlockConfig, Hotness, SolverConfig, UGacheSolver,
    };
    use emb_util::zipf::powerlaw_hotness;
    use gpu_platform::{DedicationConfig, Platform};

    let solver = UGacheSolver::new(Platform::server_c(), DedicationConfig::default());
    let h = Hotness::new(powerlaw_hotness(60_000, 1.2));
    let caps = vec![1_500usize; 8];
    let cfg = SolverConfig {
        blocks: BlockConfig {
            coarse_cap: 0.005,
            min_splits: 8,
            max_blocks: 128,
        },
        entry_bytes: 512,
        accesses_per_iter: 1e5,
        dedup_adjust: false,
    };

    // Outside the timed region: the decomposition must stay sane.
    let joint = solver.solve(&h, &caps, &cfg).expect("joint LP solves");
    let dec = emb_util::pool::with_threads(8, || {
        solver
            .solve_decomposed(&h, &caps, &cfg)
            .expect("block LPs solve")
    });
    dec.placement
        .validate()
        .expect("decomposed placement valid");
    let t_joint = estimate_extraction_time(
        &joint.placement,
        &h,
        solver.profile(),
        cfg.entry_bytes,
        cfg.accesses_per_iter,
    )
    .makespan;
    let t_dec = estimate_extraction_time(
        &dec.placement,
        &h,
        solver.profile(),
        cfg.entry_bytes,
        cfg.accesses_per_iter,
    )
    .makespan;
    assert!(
        t_dec <= t_joint * 2.0,
        "decomposed makespan {t_dec} vs joint {t_joint}"
    );

    let ref_secs = time_trials(trials, warmup, || {
        std::hint::black_box(solver.solve(&h, &caps, &cfg).expect("joint LP solves"));
    });
    let opt_secs = emb_util::pool::with_threads(8, || {
        time_trials(trials, warmup, || {
            std::hint::black_box(
                solver
                    .solve_decomposed(&h, &caps, &cfg)
                    .expect("block LPs solve"),
            );
        })
    });
    let mut e = entry("lp_block", ref_secs, opt_secs);
    e.scaling = scale_points(trials, warmup, || {
        std::hint::black_box(
            solver
                .solve_decomposed(&h, &caps, &cfg)
                .expect("block LPs solve"),
        );
    });
    e
}

/// The extraction event loop: per-step full rescans (reference) vs
/// incremental active-set bookkeeping.
fn bench_memsim_step(trials: usize, warmup: usize) -> BenchEntry {
    use gpu_memsim::{
        simulate, simulate_reference, DispatchMode, GpuWork, SimConfig, SourceDemand,
    };
    use gpu_platform::{DedicationConfig, Location, Platform};

    let plat = Platform::server_c();
    let cfg = SimConfig::default();
    let works: Vec<GpuWork> = (0..8)
        .map(|gpu| GpuWork {
            gpu,
            demands: vec![
                SourceDemand {
                    src: Location::Gpu(gpu),
                    bytes: 600e6,
                },
                SourceDemand {
                    src: Location::Gpu((gpu + 1) % 8),
                    bytes: 250e6,
                },
                SourceDemand {
                    src: Location::Host,
                    bytes: 80e6,
                },
            ],
        })
        .collect();
    let mode = DispatchMode::Factored {
        dedication: DedicationConfig::default(),
    };

    // Outside the timed region: identical results (no telemetry scope is
    // active here, so both paths skip span recording).
    let opt = simulate(&plat, &cfg, &works, mode);
    let refr = simulate_reference(&plat, &cfg, &works, mode);
    assert_eq!(opt, refr, "memsim results diverge");

    let ref_secs = time_trials(trials, warmup, || {
        std::hint::black_box(simulate_reference(&plat, &cfg, &works, mode));
    });
    let opt_secs = time_trials(trials, warmup, || {
        std::hint::black_box(simulate(&plat, &cfg, &works, mode));
    });
    entry("memsim_step", ref_secs, opt_secs)
}

/// The simplex tableau: full-width dense row operations (reference) vs
/// the sparsified per-row supports.
fn bench_simplex_pivot(trials: usize, warmup: usize) -> BenchEntry {
    use milp::{solve_lp, solve_lp_dense, ConstraintSense, LinExpr, Model};
    use rand::Rng;

    // A banded sparse LP: the shape block batching emits (each block's
    // constraints touch only its own few variables), where per-row
    // nonzero supports stay small through the whole solve.
    let n = 420;
    let rows = 280;
    let window = 5;
    let mut rng = emb_util::seed_rng(0x5EED);
    let mut m = Model::new();
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_var(&format!("x{i}"), 0.0, 1.0, rng.gen_range(-1.0..1.0), false))
        .collect();
    for r in 0..rows {
        let start = (r * 3) % (n - window);
        let e =
            LinExpr::from_terms((0..window).map(|k| (vars[start + k], rng.gen_range(0.2..1.0))));
        if r % 4 == 0 {
            m.add_constraint(e, ConstraintSense::Ge, rng.gen_range(0.1..0.8));
        } else {
            m.add_constraint(e, ConstraintSense::Le, rng.gen_range(1.0..3.0));
        }
    }

    // Outside the timed region: pivot-for-pivot identical solves.
    let sparse = solve_lp(&m).expect("feasible LP");
    let dense = solve_lp_dense(&m).expect("feasible LP");
    assert_eq!(
        sparse.iterations, dense.iterations,
        "pivot sequences diverge"
    );
    assert_eq!(
        sparse.objective.to_bits(),
        dense.objective.to_bits(),
        "objectives diverge"
    );

    let ref_secs = time_trials(trials, warmup, || {
        std::hint::black_box(solve_lp_dense(&m).expect("feasible LP"));
    });
    let opt_secs = time_trials(trials, warmup, || {
        std::hint::black_box(solve_lp(&m).expect("feasible LP"));
    });
    entry("simplex_pivot", ref_secs, opt_secs)
}

/// Runs the named microbenches (all of [`BENCH_NAMES`] when empty).
///
/// # Errors
///
/// Returns a message naming any unknown bench.
///
/// # Panics
///
/// Panics if an optimized path's output diverges from its reference —
/// a bench never silently times two implementations that disagree.
pub fn run_benches(names: &[String], trials: usize, warmup: usize) -> Result<BenchReport, String> {
    let selected: Vec<&str> = if names.is_empty() {
        BENCH_NAMES.to_vec()
    } else {
        for n in names {
            if !BENCH_NAMES.contains(&n.as_str()) {
                return Err(format!(
                    "unknown bench `{n}`; available: {}",
                    BENCH_NAMES.join(" ")
                ));
            }
        }
        names.iter().map(String::as_str).collect()
    };
    let benches = selected
        .iter()
        .map(|name| match *name {
            "gather" => bench_gather(trials, warmup),
            "memsim_step" => bench_memsim_step(trials, warmup),
            "simplex_pivot" => bench_simplex_pivot(trials, warmup),
            "gather_par" => bench_gather_par(trials, warmup),
            "lp_block" => bench_lp_block(trials, warmup),
            other => unreachable!("bench `{other}` validated above"),
        })
        .collect();
    Ok(BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        kind: BENCH_KIND.to_string(),
        trials,
        warmup,
        benches,
    })
}

/// Renders a one-line-per-bench summary to stdout.
pub fn render(report: &BenchReport) {
    println!(
        "bench: {} trials, {} warmup (wall clock; min-based speedup)",
        report.trials, report.warmup
    );
    for b in &report.benches {
        println!(
            "  {:<14} ref {:>9.3} ms   opt {:>9.3} ms   speedup {:>5.2}x",
            b.name,
            b.ref_min_secs * 1e3,
            b.opt_min_secs * 1e3,
            b.speedup
        );
        if !b.scaling.is_empty() {
            let points: Vec<String> = b
                .scaling
                .iter()
                .map(|p| format!("{}t {:.3} ms", p.threads, p.opt_min_secs * 1e3))
                .collect();
            println!("  {:<14}   scaling: {}", "", points.join("   "));
        }
    }
}

fn get_f64(v: &Value, key: &str) -> Option<f64> {
    match v.get(key) {
        Some(Value::Num(raw)) => raw.parse().ok(),
        _ => None,
    }
}

fn get_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.get(key) {
        Some(Value::Str(s)) => Some(s),
        _ => None,
    }
}

/// Parses a bench report file into `(name, opt_min_secs, speedup)` rows.
fn load_rows(path: &Path) -> io::Result<Vec<(String, f64, f64)>> {
    let text = std::fs::read_to_string(path)?;
    let v = json::parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })?;
    if get_str(&v, "kind") != Some(BENCH_KIND) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not a {BENCH_KIND} file", path.display()),
        ));
    }
    let Some(Value::Arr(benches)) = v.get("benches") else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: missing benches array", path.display()),
        ));
    };
    let mut rows = Vec::new();
    for b in benches {
        let (Some(name), Some(opt), Some(speedup)) = (
            get_str(b, "name"),
            get_f64(b, "opt_min_secs"),
            get_f64(b, "speedup"),
        ) else {
            continue;
        };
        rows.push((name.to_string(), opt, speedup));
    }
    Ok(rows)
}

/// Soft wall-clock gate: compares a fresh bench report against a
/// committed baseline report.
///
/// Returns `(warnings, failures)`. Absolute wall-clock varies across
/// machines, so the gate is deliberately generous: a bench fails only
/// when it is missing, its best optimized trial regressed beyond
/// [`REGRESSION_FACTOR`]×, or its speedup collapsed below
/// `baseline / `[`SPEEDUP_LOSS_FACTOR`]. Moderate drift (beyond
/// [`WARN_FACTOR`]×) is reported as a warning without failing.
///
/// # Errors
///
/// Returns any I/O or parse error from reading either file.
pub fn compare_files(baseline: &Path, new: &Path) -> io::Result<(Vec<String>, Vec<String>)> {
    let base = load_rows(baseline)?;
    let fresh = load_rows(new)?;
    let mut warnings = Vec::new();
    let mut failures = Vec::new();
    for (name, base_opt, base_speedup) in &base {
        let Some((_, new_opt, new_speedup)) = fresh.iter().find(|(n, _, _)| n == name) else {
            failures.push(format!("{name}: missing from {}", new.display()));
            continue;
        };
        if *new_opt > base_opt * REGRESSION_FACTOR {
            failures.push(format!(
                "{name}: optimized path regressed {:.2}x (baseline {:.3} ms, new {:.3} ms, \
                 limit {REGRESSION_FACTOR}x)",
                new_opt / base_opt,
                base_opt * 1e3,
                new_opt * 1e3
            ));
        } else if *new_opt > base_opt * WARN_FACTOR {
            warnings.push(format!(
                "warning: {name}: optimized path {:.2}x slower than baseline \
                 (within the {REGRESSION_FACTOR}x gate)",
                new_opt / base_opt
            ));
        }
        if *new_speedup < base_speedup / SPEEDUP_LOSS_FACTOR {
            failures.push(format!(
                "{name}: speedup collapsed to {new_speedup:.2}x (baseline {base_speedup:.2}x, \
                 floor {:.2}x)",
                base_speedup / SPEEDUP_LOSS_FACTOR
            ));
        }
    }
    Ok((warnings, failures))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_json(opt_min: f64, speedup: f64) -> String {
        let report = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            kind: BENCH_KIND.to_string(),
            trials: 1,
            warmup: 0,
            benches: vec![BenchEntry {
                name: "gather".to_string(),
                ref_secs: vec![opt_min * speedup],
                opt_secs: vec![opt_min],
                ref_min_secs: opt_min * speedup,
                opt_min_secs: opt_min,
                speedup,
                scaling: Vec::new(),
            }],
        };
        json::to_string_pretty(&report).unwrap()
    }

    #[test]
    fn compare_passes_on_identical_and_fails_on_collapse() {
        let dir = std::env::temp_dir().join("ugache-bench-compare-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let same = dir.join("same.json");
        let slow = dir.join("slow.json");
        std::fs::write(&base, report_json(1e-3, 4.0)).unwrap();
        std::fs::write(&same, report_json(1.2e-3, 3.5)).unwrap();
        std::fs::write(&slow, report_json(5e-3, 1.0)).unwrap();

        let (warnings, failures) = compare_files(&base, &same).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        assert!(warnings.is_empty(), "{warnings:?}");

        let (_, failures) = compare_files(&base, &slow).unwrap();
        assert_eq!(failures.len(), 2, "{failures:?}"); // regression + collapse
    }

    #[test]
    fn moderate_drift_warns_without_failing() {
        let dir = std::env::temp_dir().join("ugache-bench-warn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let drift = dir.join("drift.json");
        std::fs::write(&base, report_json(1e-3, 4.0)).unwrap();
        std::fs::write(&drift, report_json(1.8e-3, 3.0)).unwrap();
        let (warnings, failures) = compare_files(&base, &drift).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
    }

    #[test]
    fn unknown_bench_rejected() {
        assert!(run_benches(&["nope".to_string()], 1, 0).is_err());
    }

    #[test]
    fn quick_benches_agree_and_produce_speedups() {
        // One trial, no warmup: exercises the equality asserts inside
        // each bench and the report shape without taking bench-grade time.
        let report = run_benches(&[], 1, 0).unwrap();
        assert_eq!(report.benches.len(), BENCH_NAMES.len());
        for b in &report.benches {
            assert!(b.ref_min_secs > 0.0 && b.opt_min_secs > 0.0, "{}", b.name);
            assert!(b.speedup.is_finite(), "{}", b.name);
        }
    }
}
