//! `repro profile` rendering: top time consumers and stall breakdown.
//!
//! Renders a human-readable profile of one target's simulated-time
//! spans: the top-k tracks by busy time (with utilization over the
//! unit's extent) and a per-GPU stall table aggregated from the
//! simulator's `stall` spans. Pure rendering over [`crate::timeline`]
//! data — the numbers shown are exactly the ones artifacts carry.

use crate::timeline::{self, Timeline};

/// Tracks shown in the top-consumer table.
const TOP_K: usize = 10;

fn fmt_ns(ns: u64) -> String {
    format!("{}", emb_util::SimTime::from_nanos(ns))
}

/// Computes the profile's data: the timeline plus per-GPU stall rows
/// `(gpu track, windows, stalled_ns, idle_core_secs)`.
fn stall_rows(report: &emb_telemetry::Report, tl: &Timeline) -> Vec<(String, u64, u64, f64)> {
    tl.tracks
        .iter()
        .filter(|t| t.track.ends_with("/cores"))
        .map(|t| {
            let idle: f64 = report
                .spans
                .iter()
                .filter(|s| s.track == t.track && s.name == "stall")
                .flat_map(|s| s.fields.iter())
                .filter_map(|(k, v)| match (k.as_str(), v) {
                    ("idle_core_secs", emb_telemetry::EventValue::F64(x)) => Some(*x),
                    _ => None,
                })
                .sum();
            (t.track.clone(), t.spans, t.busy_ns, idle)
        })
        .collect()
}

/// Prints the profile of one target's telemetry report.
///
/// Shows the simulated extent, the top-10 tracks by busy time
/// with their utilization fraction, and the per-GPU stall breakdown
/// (partial-stall windows, stalled wall time, idle core-seconds). A
/// report without spans prints a note instead.
pub fn render_profile(target: &str, report: &emb_telemetry::Report) {
    let tl = timeline::from_report(report);
    println!("== profile: {target} ==");
    if tl.is_empty() {
        println!("  no spans recorded (target never enters instrumented code)");
        return;
    }
    println!("  simulated extent: {}", fmt_ns(tl.extent_ns));
    let mut by_busy: Vec<_> = tl.tracks.iter().collect();
    by_busy.sort_by(|a, b| b.busy_ns.cmp(&a.busy_ns).then(a.track.cmp(&b.track)));
    println!("  top time consumers:");
    println!(
        "    {:<4} {:<36} {:>12} {:>8} {:>7}",
        "#", "track", "busy", "util", "spans"
    );
    for (i, t) in by_busy.iter().take(TOP_K).enumerate() {
        println!(
            "    {:<4} {:<36} {:>12} {:>7.1}% {:>7}",
            i + 1,
            t.track,
            fmt_ns(t.busy_ns),
            t.utilization * 100.0,
            t.spans
        );
    }
    if by_busy.len() > TOP_K {
        println!("    ... {} more tracks", by_busy.len() - TOP_K);
    }
    let stalls = stall_rows(report, &tl);
    if !stalls.is_empty() {
        println!("  per-GPU stall breakdown:");
        println!(
            "    {:<14} {:>8} {:>12} {:>16}",
            "gpu", "windows", "stalled", "idle core-secs"
        );
        for (track, windows, stalled_ns, idle) in &stalls {
            let gpu = track.trim_end_matches("/cores");
            println!(
                "    {:<14} {:>8} {:>12} {:>16.6}",
                gpu,
                windows,
                fmt_ns(*stalled_ns),
                idle
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_rows_aggregate_idle_core_secs() {
        let ((), report) = emb_telemetry::collect(|| {
            emb_telemetry::span("gpu0/cores", "stall", 0, 100, || {
                vec![(
                    "idle_core_secs".to_string(),
                    emb_telemetry::EventValue::F64(0.25),
                )]
            });
            emb_telemetry::span("gpu0/cores", "stall", 200, 300, || {
                vec![(
                    "idle_core_secs".to_string(),
                    emb_telemetry::EventValue::F64(0.5),
                )]
            });
            emb_telemetry::span("gpu0/link:pcie->host", "xfer", 0, 300, Vec::new);
            emb_telemetry::advance_clock_ns(300);
        });
        let tl = timeline::from_report(&report);
        let rows = stall_rows(&report, &tl);
        assert_eq!(rows.len(), 1);
        let (track, windows, stalled_ns, idle) = &rows[0];
        assert_eq!(track, "gpu0/cores");
        assert_eq!(*windows, 2);
        assert_eq!(*stalled_ns, 200);
        assert!((idle - 0.75).abs() < 1e-12);
    }
}
