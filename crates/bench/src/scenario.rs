//! Shared scenario plumbing for the figure harness.

use cache_policy::Hotness;
use emb_workload::dlr::DlrHotness;
use emb_workload::{
    dlr_preset, gnn_preset, DlrDatasetId, DlrWorkload, GnnDatasetId, GnnModel, GnnWorkload,
};
use gpu_platform::Platform;
use serde::Serialize;

/// Workspace-wide RNG seed for the harness.
pub const SEED: u64 = 0x5EED;

/// Scale and batch knobs for a harness run.
///
/// `quick()` keeps every figure under a few seconds of wall time on a
/// laptop core; `full()` uses larger domains for smoother curves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Scenario {
    /// Divisor applied to paper-scale GNN vertex counts.
    pub gnn_scale: usize,
    /// Divisor applied to paper-scale DLR table sizes.
    pub dlr_scale: usize,
    /// GNN seeds per GPU per iteration.
    pub gnn_batch: usize,
    /// DLR requests per GPU per iteration.
    pub dlr_batch: usize,
    /// Iterations measured per data point.
    pub iters: usize,
    /// Simulated client population of the serving sweep.
    pub serve_users: usize,
    /// Requests served per offered-load level of the serving sweep.
    pub serve_requests: usize,
}

impl Scenario {
    /// Fast settings for CI and the default `repro` run.
    pub fn quick() -> Self {
        Scenario {
            gnn_scale: 4096,
            dlr_scale: 8192,
            gnn_batch: 512,
            dlr_batch: 512,
            iters: 2,
            serve_users: 200_000,
            serve_requests: 160,
        }
    }

    /// Larger settings for smoother series.
    pub fn full() -> Self {
        Scenario {
            gnn_scale: 1024,
            dlr_scale: 2048,
            gnn_batch: 1024,
            dlr_batch: 1024,
            iters: 3,
            serve_users: 2_000_000,
            serve_requests: 512,
        }
    }

    /// The three testbeds of §8.1.
    pub fn servers() -> [Platform; 3] {
        [
            Platform::server_a(),
            Platform::server_b(),
            Platform::server_c(),
        ]
    }

    /// Builds a GNN workload plus profiled hotness.
    pub fn gnn(
        &self,
        id: GnnDatasetId,
        model: GnnModel,
        platform: &Platform,
    ) -> (GnnWorkload, Hotness) {
        let d = gnn_preset(id, self.gnn_scale, SEED);
        let mut w = GnnWorkload::new(d, model, self.gnn_batch, platform.num_gpus(), SEED);
        let h = w.profile_hotness(2);
        (w, h)
    }

    /// Builds a DLR workload plus analytic hotness.
    pub fn dlr(&self, id: DlrDatasetId, platform: &Platform) -> (DlrWorkload, Hotness) {
        let d = dlr_preset(id, self.dlr_scale);
        let mut w = DlrWorkload::new(d, self.dlr_batch, platform.num_gpus(), SEED);
        let h = w.hotness(DlrHotness::Analytic);
        (w, h)
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats seconds as milliseconds with 3 decimals.
pub fn ms(secs: f64) -> String {
    format!("{:.3}", secs * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_builds_workloads() {
        let s = Scenario::quick();
        let plat = Platform::server_a();
        let (mut w, h) = s.gnn(GnnDatasetId::Pa, GnnModel::GraphSageSupervised, &plat);
        assert!(h.total() > 0.0);
        assert_eq!(w.next_batch().len(), 4);
        let (mut d, hd) = s.dlr(DlrDatasetId::SynA, &plat);
        assert!(hd.total() > 0.0);
        assert_eq!(d.next_batch().len(), 4);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(0.001234), "1.234");
    }
}
