//! Shared scenario plumbing for the figure harness.
//!
//! The `Scenario` knobs and the scenario registry moved to the
//! `emb-scenario` crate (so the trace tooling and future consumers can
//! reach them without depending on the bench stack); this module
//! re-exports them under the old paths and keeps the bench-local
//! rendering helpers. Figure modules resolve their platforms and
//! workloads through [`registry`] — see EXPERIMENTS.md ("Scenario
//! registry and access traces") for the naming scheme.

pub use emb_scenario::{
    registry, PlatformId, PolicyId, Registry, Scenario, ScenarioDef, WorkloadSpec, SEED,
};

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats seconds as milliseconds with 3 decimals.
pub fn ms(secs: f64) -> String {
    format!("{:.3}", secs * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_formats() {
        assert_eq!(ms(0.001234), "1.234");
    }

    #[test]
    fn every_consumer_is_a_cli_target() {
        // The registry lives below the CLI layer; pin its consumer
        // metadata to the actual target list here.
        for def in registry().defs() {
            for c in &def.consumers {
                assert!(
                    crate::cli::TARGETS.contains(c),
                    "scenario `{}` lists unknown target `{c}`",
                    def.name
                );
            }
        }
    }
}
