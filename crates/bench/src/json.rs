//! Dependency-free JSON emission and parsing for repro artifacts.
//!
//! The harness must build offline, so instead of `serde_json` this module
//! provides a minimal [`serde::Serializer`] that renders any
//! `#[derive(Serialize)]` result struct as pretty-printed JSON, plus a
//! small [`Value`] parser used by `repro diff` and the round-trip tests.
//!
//! Output is deterministic by construction: struct fields serialize in
//! declaration order, indentation is fixed at two spaces, and numbers use
//! Rust's shortest round-trip `Display` formatting. Non-finite floats
//! serialize as `null` (they never appear in figure data).

use serde::ser::{self, Serialize};
use std::fmt;

/// Error type for serialization and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Renders `value` as pretty-printed JSON (two-space indent, trailing
/// newline omitted).
///
/// # Errors
///
/// Returns an error for shapes JSON cannot represent (non-string map
/// keys, bytes).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut ser = Serializer {
        out: String::new(),
        indent: 0,
    };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Serializer {
    out: String,
    indent: usize,
}

impl Serializer {
    fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn write_f64(&mut self, v: f64) {
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
    }
}

/// Shared implementation for sequence-like serializers (arrays).
struct SeqSer<'a> {
    ser: &'a mut Serializer,
    first: bool,
}

impl SeqSer<'_> {
    fn element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
        self.ser.newline();
        value.serialize(&mut *self.ser)
    }

    fn finish(self) -> Result<(), Error> {
        self.ser.indent -= 1;
        if !self.first {
            self.ser.newline();
        }
        self.ser.out.push(']');
        Ok(())
    }
}

/// Shared implementation for map-like serializers (objects).
struct MapSer<'a> {
    ser: &'a mut Serializer,
    first: bool,
}

impl MapSer<'_> {
    fn entry<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) -> Result<(), Error> {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
        self.ser.newline();
        escape_into(&mut self.ser.out, key);
        self.ser.out.push_str(": ");
        value.serialize(&mut *self.ser)
    }

    fn finish(self) -> Result<(), Error> {
        self.ser.indent -= 1;
        if !self.first {
            self.ser.newline();
        }
        self.ser.out.push('}');
        Ok(())
    }
}

macro_rules! forward_int {
    ($($m:ident: $t:ty),*) => {
        $(fn $m(self, v: $t) -> Result<(), Error> {
            self.out.push_str(&format!("{v}"));
            Ok(())
        })*
    };
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = SeqSer<'a>;
    type SerializeTuple = SeqSer<'a>;
    type SerializeTupleStruct = SeqSer<'a>;
    type SerializeTupleVariant = SeqSer<'a>;
    type SerializeMap = MapSer<'a>;
    type SerializeStruct = MapSer<'a>;
    type SerializeStructVariant = MapSer<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    forward_int!(
        serialize_i8: i8, serialize_i16: i16, serialize_i32: i32, serialize_i64: i64,
        serialize_u8: u8, serialize_u16: u16, serialize_u32: u32, serialize_u64: u64
    );

    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        self.write_f64(f64::from(v));
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        self.write_f64(v);
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), Error> {
        escape_into(&mut self.out, &v.to_string());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        escape_into(&mut self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, _v: &[u8]) -> Result<(), Error> {
        Err(ser::Error::custom("bytes are not supported"))
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        self.indent += 1;
        self.newline();
        escape_into(&mut self.out, variant);
        self.out.push_str(": ");
        value.serialize(&mut *self)?;
        self.indent -= 1;
        self.newline();
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<SeqSer<'a>, Error> {
        self.out.push('[');
        self.indent += 1;
        Ok(SeqSer {
            ser: self,
            first: true,
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<SeqSer<'a>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(self, _name: &'static str, len: usize) -> Result<SeqSer<'a>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        _variant: &'static str,
        len: usize,
    ) -> Result<SeqSer<'a>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<MapSer<'a>, Error> {
        self.out.push('{');
        self.indent += 1;
        Ok(MapSer {
            ser: self,
            first: true,
        })
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<MapSer<'a>, Error> {
        self.serialize_map(Some(len))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        _variant: &'static str,
        len: usize,
    ) -> Result<MapSer<'a>, Error> {
        self.serialize_map(Some(len))
    }
}

impl ser::SerializeSeq for SeqSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.element(value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeTuple for SeqSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.element(value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeTupleStruct for SeqSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.element(value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeTupleVariant for SeqSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.element(value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeMap for MapSer<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
        // Keys must be strings; render through a throwaway serializer and
        // reject anything that does not come out as a JSON string.
        let rendered = to_string_pretty(key)?;
        if !rendered.starts_with('"') {
            return Err(ser::Error::custom("map keys must be strings"));
        }
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
        self.ser.newline();
        self.ser.out.push_str(&rendered);
        self.ser.out.push_str(": ");
        Ok(())
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeStruct for MapSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entry(key, value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeStructVariant for MapSer<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entry(key, value)
    }
    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

/// A parsed JSON document.
///
/// Numbers keep their source token (`Num("0.125")`) so a parse →
/// [`Value::render_pretty`] round trip reproduces the serializer's bytes
/// exactly and `repro diff` can report values verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders the value exactly as [`to_string_pretty`] would.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out
    }

    /// Renders the value on a single line with no whitespace — the JSONL
    /// form used by `repro --trace` (one event per line).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_flat(&mut out);
        out
    }

    fn render_flat(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => escape_into(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_flat(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.render_flat(out);
                }
                out.push('}');
            }
        }
    }

    fn render(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => escape_into(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    item.render(out, indent + 1);
                }
                if !items.is_empty() {
                    pad(out, indent);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    escape_into(out, k);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                }
                if !fields.is_empty() {
                    pad(out, indent);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns an error describing the first malformed construct, with a
/// byte offset.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        raw.parse::<f64>()
            .map_err(|_| Error(format!("invalid number at byte {start}")))?;
        Ok(Value::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Decode from a
                    // bounded window — validating the whole remaining
                    // input per character would make parsing quadratic.
                    let window = &self.bytes[self.pos..(self.pos + 4).min(self.bytes.len())];
                    let c = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next().expect("non-empty"),
                        // The window may cut a *following* scalar short;
                        // the first one is whole because the input is a
                        // valid &str.
                        Err(e) => std::str::from_utf8(&window[..e.valid_up_to()])
                            .expect("validated prefix")
                            .chars()
                            .next()
                            .expect("non-empty"),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Demo {
        name: String,
        ratio: f64,
        count: u64,
        missing: Option<f64>,
        tags: Vec<&'static str>,
    }

    fn demo() -> Demo {
        Demo {
            name: "fig \"2\"".into(),
            ratio: 0.125,
            count: 42,
            missing: None,
            tags: vec!["a", "b"],
        }
    }

    #[test]
    fn serializes_structs_pretty() {
        let s = to_string_pretty(&demo()).unwrap();
        assert_eq!(
            s,
            "{\n  \"name\": \"fig \\\"2\\\"\",\n  \"ratio\": 0.125,\n  \"count\": 42,\n  \"missing\": null,\n  \"tags\": [\n    \"a\",\n    \"b\"\n  ]\n}"
        );
    }

    #[test]
    fn empty_containers_stay_compact() {
        #[derive(Serialize)]
        struct E {
            xs: Vec<u32>,
        }
        assert_eq!(
            to_string_pretty(&E { xs: vec![] }).unwrap(),
            "{\n  \"xs\": []\n}"
        );
        let v: Vec<u32> = vec![];
        assert_eq!(to_string_pretty(&v).unwrap(), "[]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string_pretty(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string_pretty(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parse_round_trips_serializer_bytes() {
        let s = to_string_pretty(&demo()).unwrap();
        let v = parse(&s).unwrap();
        assert_eq!(v.render_pretty(), s);
        assert_eq!(v.get("count"), Some(&Value::Num("42".into())));
        assert_eq!(v.get("missing"), Some(&Value::Null));
    }

    #[test]
    fn render_compact_is_single_line() {
        let s = to_string_pretty(&demo()).unwrap();
        let v = parse(&s).unwrap();
        let c = v.render_compact();
        assert!(!c.contains('\n'));
        assert_eq!(
            c,
            "{\"name\":\"fig \\\"2\\\"\",\"ratio\":0.125,\"count\":42,\"missing\":null,\"tags\":[\"a\",\"b\"]}"
        );
        // Compact output re-parses to the same value.
        assert_eq!(parse(&c).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = parse("\"a\\u0041\\n\\\"é\"").unwrap();
        assert_eq!(v, Value::Str("aA\n\"é".into()));
    }
}
