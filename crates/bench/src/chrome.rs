//! Chrome trace-event export of telemetry spans.
//!
//! [`chrome_trace`] renders the simulated-time spans of a repro run as a
//! Chrome trace-event JSON object (the `{"traceEvents": [...]}` format
//! that `chrome://tracing` and Perfetto load directly): each target is a
//! process, each span track a thread, and every span a complete (`"X"`)
//! event with `ts`/`dur` in simulated microseconds. The rendering is a
//! pure function of the per-target reports, so serial and `--jobs N`
//! runs produce byte-identical files (CI diffs them).
//!
//! [`validate`] is the structural check behind `repro check-trace`:
//! every `ts`/`dur` must be finite and non-negative and the events of
//! each `(pid, tid)` must nest properly when swept in time order.

use crate::json::Value;

/// Nanoseconds → trace microseconds (Chrome's native unit).
fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn num(v: f64) -> Value {
    Value::Num(format!("{v}"))
}

fn metadata_event(name: &str, pid: usize, tid: Option<usize>, label: &str) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::Num(pid.to_string())),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), Value::Num(tid.to_string())));
    }
    fields.push((
        "args".to_string(),
        Value::Obj(vec![("name".to_string(), Value::Str(label.to_string()))]),
    ));
    Value::Obj(fields)
}

fn event_value(v: &emb_telemetry::EventValue) -> Value {
    use emb_telemetry::EventValue;
    match v {
        EventValue::U64(n) => Value::Num(n.to_string()),
        EventValue::F64(x) => {
            if x.is_finite() {
                num(*x)
            } else {
                Value::Null
            }
        }
        EventValue::Str(s) => Value::Str(s.clone()),
    }
}

/// Renders the spans of a run as one Chrome trace-event JSON value.
///
/// `per_target` lists `(target, report)` in the run's requested-target
/// order. Targets map to processes (`pid` = position + 1) and each
/// target's tracks to threads (`tid` = first-encounter order + 1, which
/// is span record order and therefore deterministic); process/thread
/// `"M"` metadata events carry the human-readable names. Span fields
/// become the `args` object of their `"X"` event.
pub fn chrome_trace(per_target: &[(&str, &emb_telemetry::Report)]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (t_idx, (target, report)) in per_target.iter().enumerate() {
        let pid = t_idx + 1;
        events.push(metadata_event("process_name", pid, None, target));
        let mut tracks: Vec<&str> = Vec::new();
        for span in &report.spans {
            if !tracks.contains(&span.track.as_str()) {
                tracks.push(&span.track);
            }
        }
        for (k, track) in tracks.iter().enumerate() {
            events.push(metadata_event("thread_name", pid, Some(k + 1), track));
        }
        for span in &report.spans {
            let tid = tracks.iter().position(|t| *t == span.track).expect("seen") + 1;
            let args = span
                .fields
                .iter()
                .map(|(k, v)| (k.clone(), event_value(v)))
                .collect();
            events.push(Value::Obj(vec![
                ("name".to_string(), Value::Str(span.name.clone())),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("pid".to_string(), Value::Num(pid.to_string())),
                ("tid".to_string(), Value::Num(tid.to_string())),
                ("ts".to_string(), num(ns_to_us(span.start_ns))),
                ("dur".to_string(), num(ns_to_us(span.dur_ns()))),
                ("args".to_string(), Value::Obj(args)),
            ]));
        }
    }
    Value::Obj(vec![("traceEvents".to_string(), Value::Arr(events))])
}

/// Tolerance for float comparisons in [`validate`]: 1 ns expressed in
/// trace microseconds, absorbing the ns→µs division rounding.
const EPS_US: f64 = 1e-3;

fn as_f64(v: Option<&Value>) -> Option<f64> {
    match v {
        Some(Value::Num(raw)) => raw.parse::<f64>().ok(),
        _ => None,
    }
}

/// Structurally validates a Chrome trace-event value.
///
/// Checks that `traceEvents` exists, every event carries a `ph`, every
/// `"X"` event has finite non-negative `ts`/`dur`, and the `"X"` events
/// of each `(pid, tid)` pair nest properly (an event starting inside
/// another must end inside it). Returns one message per violation; an
/// empty vector means the trace is well-formed.
pub fn validate(trace: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    let Some(Value::Arr(events)) = trace.get("traceEvents") else {
        return vec!["missing `traceEvents` array".to_string()];
    };
    // (pid, tid) -> [(ts, end)]
    type Lane = ((String, String), Vec<(f64, f64)>);
    let mut lanes: Vec<Lane> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let Value::Obj(_) = ev else {
            errors.push(format!("event {i}: not an object"));
            continue;
        };
        let ph = match ev.get("ph") {
            Some(Value::Str(s)) => s.clone(),
            _ => {
                errors.push(format!("event {i}: missing `ph`"));
                continue;
            }
        };
        if ph != "X" {
            continue;
        }
        let (Some(Value::Num(pid)), Some(Value::Num(tid))) = (ev.get("pid"), ev.get("tid")) else {
            errors.push(format!("event {i}: X event without pid/tid"));
            continue;
        };
        let (Some(ts), Some(dur)) = (as_f64(ev.get("ts")), as_f64(ev.get("dur"))) else {
            errors.push(format!("event {i}: X event without numeric ts/dur"));
            continue;
        };
        if !ts.is_finite() || ts < 0.0 {
            errors.push(format!("event {i}: ts {ts} not finite and non-negative"));
            continue;
        }
        if !dur.is_finite() || dur < 0.0 {
            errors.push(format!("event {i}: dur {dur} not finite and non-negative"));
            continue;
        }
        let key = (pid.clone(), tid.clone());
        match lanes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, spans)) => spans.push((ts, ts + dur)),
            None => lanes.push((key, vec![(ts, ts + dur)])),
        }
    }
    // Nesting check per lane: sweep in (start, -end) order with a stack
    // of enclosing end times.
    for ((pid, tid), mut spans) in lanes {
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<f64> = Vec::new();
        for (ts, end) in spans {
            while stack.last().is_some_and(|&top| top <= ts + EPS_US) {
                stack.pop();
            }
            if let Some(&top) = stack.last() {
                if end > top + EPS_US {
                    errors.push(format!(
                        "pid {pid} tid {tid}: span [{ts}, {end}] straddles \
                         enclosing span ending at {top}"
                    ));
                }
            }
            stack.push(end);
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(spans: Vec<(&str, &str, u64, u64)>) -> emb_telemetry::Report {
        emb_telemetry::collect(|| {
            for (track, name, s, e) in spans {
                emb_telemetry::span(track, name, s, e, Vec::new);
            }
        })
        .1
    }

    #[test]
    fn trace_has_metadata_and_events() {
        let r = report(vec![
            ("gpu0", "extract", 0, 100),
            ("gpu0/cores", "stall", 10, 40),
        ]);
        let trace = chrome_trace(&[("fig6", &r)]);
        let Some(Value::Arr(events)) = trace.get("traceEvents") else {
            panic!("no traceEvents");
        };
        // 1 process_name + 2 thread_name + 2 X events.
        assert_eq!(events.len(), 5);
        assert!(validate(&trace).is_empty());
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = report(vec![("a", "x", 0, 5), ("b", "y", 2, 9)]);
        let t1 = chrome_trace(&[("fig2", &r)]).render_compact();
        let t2 = chrome_trace(&[("fig2", &r)]).render_compact();
        assert_eq!(t1, t2);
    }

    #[test]
    fn validate_flags_straddling_spans() {
        let trace = Value::Obj(vec![(
            "traceEvents".to_string(),
            Value::Arr(vec![
                Value::Obj(vec![
                    ("name".to_string(), Value::Str("outer".to_string())),
                    ("ph".to_string(), Value::Str("X".to_string())),
                    ("pid".to_string(), Value::Num("1".to_string())),
                    ("tid".to_string(), Value::Num("1".to_string())),
                    ("ts".to_string(), Value::Num("0".to_string())),
                    ("dur".to_string(), Value::Num("10".to_string())),
                ]),
                Value::Obj(vec![
                    ("name".to_string(), Value::Str("straddler".to_string())),
                    ("ph".to_string(), Value::Str("X".to_string())),
                    ("pid".to_string(), Value::Num("1".to_string())),
                    ("tid".to_string(), Value::Num("1".to_string())),
                    ("ts".to_string(), Value::Num("5".to_string())),
                    ("dur".to_string(), Value::Num("10".to_string())),
                ]),
            ]),
        )]);
        let errors = validate(&trace);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("straddles"));
    }

    #[test]
    fn validate_flags_negative_dur() {
        let trace = Value::Obj(vec![(
            "traceEvents".to_string(),
            Value::Arr(vec![Value::Obj(vec![
                ("ph".to_string(), Value::Str("X".to_string())),
                ("pid".to_string(), Value::Num("1".to_string())),
                ("tid".to_string(), Value::Num("1".to_string())),
                ("ts".to_string(), Value::Num("0".to_string())),
                ("dur".to_string(), Value::Num("-1".to_string())),
            ])]),
        )]);
        assert_eq!(validate(&trace).len(), 1);
    }

    #[test]
    fn nested_spans_pass() {
        let r = report(vec![("t", "outer", 0, 100), ("t", "inner", 20, 60)]);
        assert!(validate(&chrome_trace(&[("x", &r)])).is_empty());
    }
}
