//! Tail-latency forensics: `repro explain-tail`.
//!
//! The serving engine tags every request with a correlation id and
//! attaches its exact-nanosecond latency decomposition to the
//! `serve.latency_ns` histogram's exemplars (schema v5 artifacts carry
//! them in `metrics.exemplars`). This module reconstructs those top-K
//! tail requests into a deterministic report: each row attributes the
//! request's latency exactly — `queue_ns + batch_wait_ns + extract_ns
//! == latency_ns`, with the extract share further split across the
//! local/remote/host tiers proportionally to the batch's per-tier key
//! counts (integer split, remainder to the largest tier, so the three
//! tier values sum exactly to `extract_ns`). The report is a pure
//! function of the exemplar set, so it is byte-identical however the
//! input artifact was produced (`--jobs`/`--threads` at any width).
//!
//! Input is either a schema-v5 `serve.json` artifact or a fresh
//! in-process run of the serving scenario; mis-schema'd or non-serve
//! artifacts are rejected with a message the binary maps to exit 3 (see
//! EXPERIMENTS.md, "Explaining the latency tail").

use crate::artifact::SCHEMA_VERSION;
use crate::figures::serve::MAX_BATCH;
use crate::json::{self, Value};
use serde::Serialize;
use std::collections::BTreeMap;

/// Explain-tail report schema version (bump on any field change).
pub const EXPLAIN_SCHEMA_VERSION: u32 = 1;

/// The histogram whose exemplars the report reconstructs.
pub const TAIL_HISTOGRAM: &str = "serve.latency_ns";

/// Attribution labels in tie-break order: when two components of a
/// request's latency are exactly equal, the earlier label wins.
pub const COMPONENTS: [&str; 5] = [
    "queue",
    "batch-wait",
    "extract:local",
    "extract:remote",
    "extract:host",
];

/// One reconstructed tail request, worst first.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TailRequest {
    /// 1-based rank by latency (1 = slowest request of the run).
    pub rank: usize,
    /// Correlation id (`point << 32 | request_index`).
    pub req: u64,
    /// Load-point index within the sweep.
    pub point: u64,
    /// Request index within the load point.
    pub request_index: u64,
    /// Offered load of the request's point (requests per second).
    pub offered_rps: f64,
    /// End-to-end latency (ns); equals the sum of the next three.
    pub latency_ns: u64,
    /// Waiting for the server to free up (ns).
    pub queue_ns: u64,
    /// Waiting for the batch to fill or time out (ns).
    pub batch_wait_ns: u64,
    /// The coalesced extraction's makespan (ns).
    pub extract_ns: u64,
    /// Extract share attributed to local-tier keys (ns).
    pub extract_local_ns: u64,
    /// Extract share attributed to remote-tier keys (ns).
    pub extract_remote_ns: u64,
    /// Extract share attributed to host-tier keys (ns).
    pub extract_host_ns: u64,
    /// Requests coalesced into this request's batch.
    pub batch_requests: u64,
    /// Whether the batch dispatched below `max_batch` (window timeout).
    pub underfull: bool,
    /// Largest latency component ([`COMPONENTS`] order breaks ties).
    pub dominant: String,
}

/// Aggregate view of the tail rows.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExplainSummary {
    /// Tail requests reconstructed (the exemplar top-K).
    pub requests: usize,
    /// Most common dominant component across the rows.
    pub dominant: String,
    /// How many rows that component dominates.
    pub dominant_count: usize,
    /// Rows served by underfull batches.
    pub underfull: usize,
    /// One-line diagnosis rendered from the fields above.
    pub headline: String,
}

/// The deterministic JSON report (`repro explain-tail --out`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExplainReport {
    /// [`EXPLAIN_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Always `"ugache-explain-tail"`.
    pub kind: String,
    /// The target the exemplars came from (always `"serve"`).
    pub target: String,
    /// [`TAIL_HISTOGRAM`].
    pub histogram: String,
    /// The serving layer's batch-size cap (underfull threshold).
    pub max_batch: u64,
    /// Tail rows, rank order (slowest first).
    pub requests: Vec<TailRequest>,
    /// Aggregate diagnosis.
    pub summary: ExplainSummary,
}

/// One exemplar's context fields, split by numeric kind. `u64` fields
/// mirror into the `f64` map too, so both sources (a live telemetry
/// snapshot and a parsed artifact, where integer-rendered floats are
/// indistinguishable from integers) resolve lookups identically.
#[derive(Default)]
struct Fields {
    u: BTreeMap<String, u64>,
    f: BTreeMap<String, f64>,
}

impl Fields {
    fn get_u64(&self, req: u64, name: &str) -> Result<u64, String> {
        self.u
            .get(name)
            .copied()
            .ok_or_else(|| format!("exemplar req {req}: missing u64 context field `{name}`"))
    }

    fn get_f64(&self, req: u64, name: &str) -> Result<f64, String> {
        self.f
            .get(name)
            .copied()
            .ok_or_else(|| format!("exemplar req {req}: missing numeric context field `{name}`"))
    }
}

/// Splits `extract_ns` across the three tiers proportionally to the
/// batch's per-tier key counts. Integer floors, remainder assigned to
/// the tier with the most keys (first in local/remote/host order on a
/// tie), so the parts always sum exactly to `extract_ns`.
fn split_extract(extract_ns: u64, keys: [f64; 3]) -> [u64; 3] {
    let total: f64 = keys.iter().sum();
    if total <= 0.0 {
        // A batch with no extracted keys has nothing to attribute; keep
        // the identity by leaving the whole share on the local tier.
        return [extract_ns, 0, 0];
    }
    let mut parts = [0u64; 3];
    for t in 0..3 {
        parts[t] = (extract_ns as f64 * (keys[t] / total)).floor() as u64;
    }
    let assigned: u64 = parts.iter().sum();
    let biggest = (0..3).fold(0, |best, t| if keys[t] > keys[best] { t } else { best });
    parts[biggest] += extract_ns - assigned;
    parts
}

/// Builds one tail row from an exemplar's (value, req, fields) triple.
///
/// Fails when the decomposition fields are missing, disagree with the
/// recorded histogram value, or do not sum exactly to the latency —
/// such an exemplar set is unusable, not merely surprising.
fn tail_request(rank: usize, value: f64, req: u64, fields: &Fields) -> Result<TailRequest, String> {
    let latency_ns = fields.get_u64(req, "latency_ns")?;
    let queue_ns = fields.get_u64(req, "queue_ns")?;
    let batch_wait_ns = fields.get_u64(req, "batch_wait_ns")?;
    let extract_ns = fields.get_u64(req, "extract_ns")?;
    if queue_ns + batch_wait_ns + extract_ns != latency_ns {
        return Err(format!(
            "exemplar req {req}: components sum to {} ns but latency_ns is {latency_ns}",
            queue_ns + batch_wait_ns + extract_ns
        ));
    }
    if value != latency_ns as f64 {
        return Err(format!(
            "exemplar req {req}: histogram value {value} disagrees with latency_ns {latency_ns}"
        ));
    }
    let keys = [
        fields.get_f64(req, "batch_keys_local")?,
        fields.get_f64(req, "batch_keys_remote")?,
        fields.get_f64(req, "batch_keys_host")?,
    ];
    let [extract_local_ns, extract_remote_ns, extract_host_ns] = split_extract(extract_ns, keys);
    let parts = [
        queue_ns,
        batch_wait_ns,
        extract_local_ns,
        extract_remote_ns,
        extract_host_ns,
    ];
    let dominant =
        (0..COMPONENTS.len()).fold(0, |best, i| if parts[i] > parts[best] { i } else { best });
    let batch_requests = fields.get_u64(req, "batch_requests")?;
    Ok(TailRequest {
        rank,
        req,
        point: fields.get_u64(req, "point")?,
        request_index: req & 0xFFFF_FFFF,
        offered_rps: fields.get_f64(req, "offered_rps")?,
        latency_ns,
        queue_ns,
        batch_wait_ns,
        extract_ns,
        extract_local_ns,
        extract_remote_ns,
        extract_host_ns,
        batch_requests,
        underfull: batch_requests < MAX_BATCH as u64,
        dominant: COMPONENTS[dominant].to_string(),
    })
}

/// Wraps finished rows in the report envelope with the aggregate
/// summary.
fn assemble(rows: Vec<TailRequest>) -> Result<ExplainReport, String> {
    if rows.is_empty() {
        return Err(format!(
            "no `{TAIL_HISTOGRAM}` exemplars to explain (did the run serve any requests?)"
        ));
    }
    let mut by_component: Vec<usize> = vec![0; COMPONENTS.len()];
    let mut underfull = 0;
    for row in &rows {
        let i = COMPONENTS
            .iter()
            .position(|c| *c == row.dominant)
            .expect("dominant comes from COMPONENTS");
        by_component[i] += 1;
        underfull += usize::from(row.underfull);
    }
    let top = (0..COMPONENTS.len()).fold(0, |best, i| {
        if by_component[i] > by_component[best] {
            i
        } else {
            best
        }
    });
    let headline = format!(
        "tail dominated by {} ({}/{} requests; {}/{} in underfull batches)",
        COMPONENTS[top],
        by_component[top],
        rows.len(),
        underfull,
        rows.len()
    );
    Ok(ExplainReport {
        schema_version: EXPLAIN_SCHEMA_VERSION,
        kind: "ugache-explain-tail".to_string(),
        target: "serve".to_string(),
        histogram: TAIL_HISTOGRAM.to_string(),
        max_batch: MAX_BATCH as u64,
        summary: ExplainSummary {
            requests: rows.len(),
            dominant: COMPONENTS[top].to_string(),
            dominant_count: by_component[top],
            underfull,
            headline,
        },
        requests: rows,
    })
}

/// Builds the report from a live telemetry snapshot (the in-process
/// scenario path of `repro explain-tail`).
///
/// # Errors
///
/// Returns a message when the snapshot has no [`TAIL_HISTOGRAM`]
/// exemplars or a row's decomposition is inconsistent.
pub fn report_from_snapshot(ms: &emb_telemetry::MetricsSnapshot) -> Result<ExplainReport, String> {
    let list = ms
        .exemplars
        .iter()
        .find(|(name, _)| name == TAIL_HISTOGRAM)
        .map(|(_, l)| l.as_slice())
        .unwrap_or(&[]);
    let rows = list
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let mut fields = Fields::default();
            for (k, v) in &x.fields {
                match v {
                    emb_telemetry::EventValue::U64(n) => {
                        fields.u.insert(k.clone(), *n);
                        fields.f.insert(k.clone(), *n as f64);
                    }
                    emb_telemetry::EventValue::F64(f) => {
                        fields.f.insert(k.clone(), *f);
                    }
                    emb_telemetry::EventValue::Str(_) => {}
                }
            }
            tail_request(i + 1, x.value, x.req, &fields)
        })
        .collect::<Result<Vec<_>, _>>()?;
    assemble(rows)
}

/// Builds the report from a parsed artifact envelope (the
/// `serve.json`-file path of `repro explain-tail`).
///
/// # Errors
///
/// Returns a message (the binary exits 3) when the envelope is not a
/// schema-[`SCHEMA_VERSION`] `serve` artifact with a usable
/// `metrics.exemplars` block.
pub fn report_from_artifact(artifact: &Value) -> Result<ExplainReport, String> {
    match artifact.get("schema_version") {
        Some(Value::Num(raw)) if raw.parse::<u64>() == Ok(SCHEMA_VERSION) => {}
        Some(Value::Num(raw)) => {
            return Err(format!(
                "artifact has schema_version {raw}, but explain-tail needs \
                 schema_version {SCHEMA_VERSION} (regenerate with this binary's \
                 `repro serve --json`)"
            ));
        }
        _ => return Err("not an artifact envelope (no schema_version field)".to_string()),
    }
    match artifact.get("target") {
        Some(Value::Str(t)) if t == "serve" => {}
        Some(Value::Str(t)) => {
            return Err(format!(
                "artifact is for target `{t}`; explain-tail reads the `serve` target"
            ));
        }
        _ => return Err("artifact envelope has no target field".to_string()),
    }
    let exemplars = artifact
        .get("metrics")
        .and_then(|m| m.get("exemplars"))
        .ok_or_else(|| "artifact metrics block has no exemplars".to_string())?;
    let list = match exemplars.get(TAIL_HISTOGRAM) {
        Some(Value::Arr(items)) => items.as_slice(),
        _ => &[],
    };
    let rows = list
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let num_f64 = |v: &Value| -> Option<f64> {
                match v {
                    Value::Num(raw) => raw.parse::<f64>().ok(),
                    _ => None,
                }
            };
            let value = x
                .get("value")
                .and_then(&num_f64)
                .ok_or_else(|| format!("exemplar {i}: missing numeric value"))?;
            let req = match x.get("req") {
                Some(Value::Num(raw)) => raw
                    .parse::<u64>()
                    .map_err(|_| format!("exemplar {i}: non-u64 req"))?,
                _ => return Err(format!("exemplar {i}: missing req id")),
            };
            let mut fields = Fields::default();
            if let Some(Value::Obj(kvs)) = x.get("fields") {
                for (k, v) in kvs {
                    if let Value::Num(raw) = v {
                        if let Ok(n) = raw.parse::<u64>() {
                            fields.u.insert(k.clone(), n);
                        }
                        if let Ok(f) = raw.parse::<f64>() {
                            fields.f.insert(k.clone(), f);
                        }
                    }
                }
            }
            tail_request(i + 1, value, req, &fields)
        })
        .collect::<Result<Vec<_>, _>>()?;
    assemble(rows)
}

/// Renders the report as the human-readable tail-driver table.
pub fn render(report: &ExplainReport) {
    println!(
        "explain-tail: top {} requests of `{}` (max_batch {})",
        report.summary.requests, report.histogram, report.max_batch
    );
    println!("  {}", report.summary.headline);
    println!(
        "{:>4} {:>12} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6} {:<14}",
        "rank",
        "req",
        "point",
        "lat(ms)",
        "queue(ms)",
        "batch(ms)",
        "xloc(ms)",
        "xrem(ms)",
        "xhost(ms)",
        "batch",
        "dominant"
    );
    for r in &report.requests {
        let ms = |ns: u64| ns as f64 / 1e6;
        println!(
            "{:>4} {:>12} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>5}{} {:<14}",
            r.rank,
            format!("{}.{}", r.point, r.request_index),
            r.point,
            ms(r.latency_ns),
            ms(r.queue_ns),
            ms(r.batch_wait_ns),
            ms(r.extract_local_ns),
            ms(r.extract_remote_ns),
            ms(r.extract_host_ns),
            r.batch_requests,
            if r.underfull { "*" } else { " " },
            r.dominant
        );
    }
    println!("  (* = underfull batch, dispatched by window timeout below max_batch)");
}

/// Serializes the report as deterministic pretty JSON (trailing newline
/// included).
///
/// # Panics
///
/// Panics if serialization fails, which would indicate a bug in the
/// report structs (plain named fields only).
pub fn to_json(report: &ExplainReport) -> String {
    let mut s = json::to_string_pretty(report).expect("explain report serializes");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_request(req: u64, queue: u64, batch_wait: u64, extract: u64, keys: [f64; 3]) {
        let latency = queue + batch_wait + extract;
        emb_telemetry::observe_with_exemplar(
            TAIL_HISTOGRAM,
            latency as f64,
            emb_telemetry::ReqId(req),
            || {
                vec![
                    (
                        "point".to_string(),
                        emb_telemetry::EventValue::U64(req >> 32),
                    ),
                    (
                        "offered_rps".to_string(),
                        emb_telemetry::EventValue::F64(1000.0),
                    ),
                    (
                        "queue_ns".to_string(),
                        emb_telemetry::EventValue::U64(queue),
                    ),
                    (
                        "batch_wait_ns".to_string(),
                        emb_telemetry::EventValue::U64(batch_wait),
                    ),
                    (
                        "extract_ns".to_string(),
                        emb_telemetry::EventValue::U64(extract),
                    ),
                    (
                        "latency_ns".to_string(),
                        emb_telemetry::EventValue::U64(latency),
                    ),
                    (
                        "batch_requests".to_string(),
                        emb_telemetry::EventValue::U64(4),
                    ),
                    (
                        "batch_keys_local".to_string(),
                        emb_telemetry::EventValue::F64(keys[0]),
                    ),
                    (
                        "batch_keys_remote".to_string(),
                        emb_telemetry::EventValue::F64(keys[1]),
                    ),
                    (
                        "batch_keys_host".to_string(),
                        emb_telemetry::EventValue::F64(keys[2]),
                    ),
                ]
            },
        );
    }

    #[test]
    fn split_extract_sums_exactly_for_awkward_ratios() {
        for extract in [0u64, 1, 7, 1_000_003] {
            for keys in [[1.0, 1.0, 1.0], [0.0, 0.0, 5.0], [3.0, 2.0, 2.0], [0.0; 3]] {
                let parts = split_extract(extract, keys);
                assert_eq!(parts.iter().sum::<u64>(), extract, "{extract} {keys:?}");
            }
        }
        // Remainder lands on the largest tier.
        let parts = split_extract(10, [1.0, 1.0, 1.0]);
        assert_eq!(parts, [4, 3, 3]);
    }

    #[test]
    fn snapshot_report_attributes_and_ranks() {
        let ((), report) = emb_telemetry::collect(|| {
            record_request(1, 50, 10, 40, [8.0, 0.0, 0.0]);
            record_request((1 << 32) | 2, 10, 20, 170, [1.0, 1.0, 6.0]);
            record_request(3, 30, 80, 40, [0.0, 9.0, 1.0]);
        });
        let explain = report_from_snapshot(&report.metrics).unwrap();
        assert_eq!(explain.schema_version, EXPLAIN_SCHEMA_VERSION);
        assert_eq!(explain.summary.requests, 3);
        // Rank order is latency-descending: 200, 150, 100.
        let rows = &explain.requests;
        assert_eq!(rows[0].latency_ns, 200);
        assert_eq!(rows[0].point, 1);
        assert_eq!(rows[0].request_index, 2);
        assert_eq!(rows[0].dominant, "extract:host");
        assert_eq!(rows[1].dominant, "batch-wait");
        assert_eq!(rows[2].dominant, "queue");
        for r in rows {
            assert_eq!(r.queue_ns + r.batch_wait_ns + r.extract_ns, r.latency_ns);
            assert_eq!(
                r.extract_local_ns + r.extract_remote_ns + r.extract_host_ns,
                r.extract_ns
            );
            assert!(r.underfull, "batch_requests 4 < MAX_BATCH");
        }
    }

    #[test]
    fn artifact_and_snapshot_paths_agree() {
        let ((), report) = emb_telemetry::collect(|| {
            record_request(7, 100, 250, 650, [2.0, 3.0, 5.0]);
            record_request(8, 0, 400, 100, [10.0, 0.0, 0.0]);
        });
        let from_snapshot = report_from_snapshot(&report.metrics).unwrap();
        // Wrap the snapshot in a minimal envelope and take the JSON path.
        let metrics_json = json::to_string_pretty(&report.metrics).unwrap();
        let envelope = format!(
            r#"{{"schema_version": {SCHEMA_VERSION}, "target": "serve", "metrics": {metrics_json}}}"#
        );
        let from_artifact = report_from_artifact(&json::parse(&envelope).unwrap()).unwrap();
        assert_eq!(from_snapshot, from_artifact);
        assert_eq!(to_json(&from_snapshot), to_json(&from_artifact));
    }

    #[test]
    fn inconsistent_decomposition_is_rejected() {
        let ((), report) = emb_telemetry::collect(|| {
            emb_telemetry::observe_with_exemplar(
                TAIL_HISTOGRAM,
                100.0,
                emb_telemetry::ReqId(1),
                || {
                    vec![
                        ("point".to_string(), emb_telemetry::EventValue::U64(0)),
                        (
                            "offered_rps".to_string(),
                            emb_telemetry::EventValue::F64(1.0),
                        ),
                        ("queue_ns".to_string(), emb_telemetry::EventValue::U64(90)),
                        (
                            "batch_wait_ns".to_string(),
                            emb_telemetry::EventValue::U64(0),
                        ),
                        ("extract_ns".to_string(), emb_telemetry::EventValue::U64(5)),
                        (
                            "latency_ns".to_string(),
                            emb_telemetry::EventValue::U64(100),
                        ),
                        (
                            "batch_requests".to_string(),
                            emb_telemetry::EventValue::U64(1),
                        ),
                        (
                            "batch_keys_local".to_string(),
                            emb_telemetry::EventValue::F64(1.0),
                        ),
                        (
                            "batch_keys_remote".to_string(),
                            emb_telemetry::EventValue::F64(0.0),
                        ),
                        (
                            "batch_keys_host".to_string(),
                            emb_telemetry::EventValue::F64(0.0),
                        ),
                    ]
                },
            );
        });
        let err = report_from_snapshot(&report.metrics).unwrap_err();
        assert!(err.contains("components sum to 95"), "{err}");
    }

    #[test]
    fn wrong_schema_and_wrong_target_are_rejected() {
        let v4 = json::parse(r#"{"schema_version": 4, "target": "serve"}"#).unwrap();
        let err = report_from_artifact(&v4).unwrap_err();
        assert!(err.contains("schema_version 4"), "{err}");
        let fig = json::parse(&format!(
            r#"{{"schema_version": {SCHEMA_VERSION}, "target": "fig12"}}"#
        ))
        .unwrap();
        let err = report_from_artifact(&fig).unwrap_err();
        assert!(err.contains("fig12"), "{err}");
        let empty = json::parse(&format!(
            r#"{{"schema_version": {SCHEMA_VERSION}, "target": "serve",
                "metrics": {{"counters": {{}}, "gauges": {{}}, "histograms": {{}},
                             "exemplars": {{}}}}}}"#
        ))
        .unwrap();
        let err = report_from_artifact(&empty).unwrap_err();
        assert!(err.contains("no `serve.latency_ns` exemplars"), "{err}");
    }
}
