//! Stable-schema JSON artifacts for `repro` targets.
//!
//! Every target serializes to one `<target>.json` file with the same
//! envelope:
//!
//! ```json
//! {
//!   "schema_version": 3,
//!   "target": "fig12",
//!   "seed": 24301,
//!   "scenario": { ... },
//!   "data": <target-specific payload>,
//!   "metrics": { "counters": { ... }, "gauges": { ... },
//!                "histograms": { ... }, "exemplars": { ... } },
//!   "timeline": { "extent_ns": ..., "tracks": [ ... ] }
//! }
//! ```
//!
//! The payload is the figure module's `compute` result, serialized
//! untagged (the `target` field already identifies its shape). The
//! `metrics` block is the [`emb_telemetry::MetricsSnapshot`] collected
//! while computing the payload; the `timeline` block is the
//! span-derived per-track occupancy summary ([`crate::timeline`]), or
//! `null` for units that record no spans (see EXPERIMENTS.md for the
//! field-level schema). Artifacts are rendered with
//! [`crate::json::to_string_pretty`], which is deterministic: two runs
//! of the same target at the same scenario produce byte-identical
//! files. [`diff_dirs`] compares two artifact directories structurally,
//! for `repro diff`; [`check_dir_schema`] refuses to mix schema
//! versions within one output directory.

use crate::figures::*;
use crate::json;
use crate::scenario::{Scenario, SEED};
use serde::{Serialize, Serializer};
use std::io;
use std::path::{Path, PathBuf};

/// Version of the artifact envelope; bump on any breaking schema change.
///
/// History: v1 had no `metrics` block; v2 added `metrics` (telemetry
/// snapshot per target) and the `repro --trace` event stream; v3 added
/// the span-derived `timeline` block and the `repro --chrome-trace` /
/// `repro compare` surfaces; v4 added the `serve` target (online
/// serving sweep payload) and the serving knobs (`serve_users`,
/// `serve_requests`) to every artifact's `scenario` block; v5 added the
/// `exemplars` block to `metrics` (deterministic top-K histogram
/// exemplars with request-id context — the input `repro explain-tail`
/// reconstructs tail requests from) and the per-request
/// `serve.latency_ns` histogram.
pub const SCHEMA_VERSION: u64 = 5;

/// The computed result of one repro unit, ready for rendering or
/// serialization.
#[derive(Debug, Clone)]
pub enum TargetData {
    /// Table 1 breakdown.
    Table1(table1::Breakdown),
    /// Table 3 rows.
    Table3(Vec<table3::Row>),
    /// Figure 2 points.
    Fig2(Vec<fig02::Point>),
    /// Figure 4 bar groups.
    Fig4(Vec<fig04::Bars>),
    /// Figure 6 series.
    Fig6(Vec<fig06::Series>),
    /// Figure 8 dedication sweep.
    Fig8(Vec<fig08::Dedication>),
    /// Figure 9 block-count study.
    Fig9(fig09::Fig09Data),
    /// Figures 10 and 11 share one computation.
    Fig10(fig10::Data),
    /// Figure 12 points.
    Fig12(Vec<fig12::Point>),
    /// Figure 13 utilizations.
    Fig13(Vec<fig13::Util>),
    /// Figures 14/15 access splits.
    Fig14(Vec<fig14::Split>),
    /// Figure 16 gaps.
    Fig16(Vec<fig16::Gap>),
    /// Figure 17 refresh timeline.
    Fig17(fig17::Fig17Data),
    /// Hotness-source study rows.
    Hotness(Vec<hotness_sources::SourceRow>),
    /// Online serving sweep.
    Serve(serve::ServeData),
}

// Untagged: the envelope's `target` field already names the variant, so
// the payload serializes as the inner value directly. (The derive shim
// only handles named-field structs, hence the manual impl.)
impl Serialize for TargetData {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            TargetData::Table1(v) => v.serialize(serializer),
            TargetData::Table3(v) => v.serialize(serializer),
            TargetData::Fig2(v) => v.serialize(serializer),
            TargetData::Fig4(v) => v.serialize(serializer),
            TargetData::Fig6(v) => v.serialize(serializer),
            TargetData::Fig8(v) => v.serialize(serializer),
            TargetData::Fig9(v) => v.serialize(serializer),
            TargetData::Fig10(v) => v.serialize(serializer),
            TargetData::Fig12(v) => v.serialize(serializer),
            TargetData::Fig13(v) => v.serialize(serializer),
            TargetData::Fig14(v) => v.serialize(serializer),
            TargetData::Fig16(v) => v.serialize(serializer),
            TargetData::Fig17(v) => v.serialize(serializer),
            TargetData::Hotness(v) => v.serialize(serializer),
            TargetData::Serve(v) => v.serialize(serializer),
        }
    }
}

/// The artifact envelope written for each target.
#[derive(Debug, Clone, Serialize)]
pub struct Artifact {
    /// Envelope schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Target name as accepted by the `repro` CLI.
    pub target: String,
    /// The global deterministic seed the run used.
    pub seed: u64,
    /// Full scenario configuration the data was computed under.
    pub scenario: Scenario,
    /// Target-specific payload (untagged).
    pub data: TargetData,
    /// Telemetry collected while computing `data`; `None` serializes as
    /// `null` (a compute run without a telemetry scope).
    pub metrics: Option<emb_telemetry::MetricsSnapshot>,
    /// Span-derived per-track occupancy summary; `None` serializes as
    /// `null` (the unit recorded no spans).
    pub timeline: Option<crate::timeline::Timeline>,
}

impl Artifact {
    /// Wraps a computed result in the envelope.
    pub fn new(
        target: &str,
        scenario: &Scenario,
        data: TargetData,
        metrics: Option<emb_telemetry::MetricsSnapshot>,
        timeline: Option<crate::timeline::Timeline>,
    ) -> Self {
        Artifact {
            schema_version: SCHEMA_VERSION,
            target: target.to_string(),
            seed: SEED,
            scenario: *scenario,
            data,
            metrics,
            timeline: timeline.filter(|t| !t.is_empty()),
        }
    }

    /// Renders the artifact as deterministic pretty JSON (trailing
    /// newline included).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which would indicate a bug in the
    /// figure structs (they contain no maps with non-string keys).
    pub fn to_json(&self) -> String {
        let mut s = json::to_string_pretty(self).expect("artifact serializes");
        s.push('\n');
        s
    }

    /// Writes the artifact to `dir/<target>.json`, creating `dir` if
    /// needed. Returns the written path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing the
    /// file.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.target));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Checks that `dir` holds no artifact written under a different
/// [`SCHEMA_VERSION`] before `repro --json --out` writes into it.
///
/// A missing or empty directory passes; so do `.json` files that are not
/// artifact envelopes (no `schema_version` field). The check prevents a
/// directory from silently mixing envelope generations, which would make
/// `repro diff` results meaningless.
///
/// # Errors
///
/// Returns `Err` with a human-readable message (pointing at
/// EXPERIMENTS.md) naming the first mismatching file, or any I/O error
/// from reading the directory, formatted into the message.
pub fn check_dir_schema(dir: &Path) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let stems = artifact_stems(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for stem in stems {
        let path = dir.join(format!("{stem}.json"));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let Ok(value) = json::parse(&text) else {
            continue; // not an artifact; leave it alone
        };
        let Some(json::Value::Num(raw)) = value.get("schema_version") else {
            continue;
        };
        if raw.parse::<u64>() != Ok(SCHEMA_VERSION) {
            return Err(format!(
                "{} was written with artifact schema_version {raw}, but this \
                 binary writes schema_version {SCHEMA_VERSION}; refusing to mix \
                 schema versions in one directory. Use a fresh --out directory, \
                 or delete the stale artifacts. See EXPERIMENTS.md \
                 (\"Artifact schema\") for the version history.",
                path.display()
            ));
        }
    }
    Ok(())
}

/// Converts a telemetry event value to a JSON value using the same
/// number formatting as the artifact serializer (non-finite floats
/// become `null`).
fn event_value_to_json(v: &emb_telemetry::EventValue) -> json::Value {
    use emb_telemetry::EventValue;
    match v {
        EventValue::U64(n) => json::Value::Num(n.to_string()),
        EventValue::F64(x) => {
            if x.is_finite() {
                json::Value::Num(format!("{x}"))
            } else {
                json::Value::Null
            }
        }
        EventValue::Str(s) => json::Value::Str(s.clone()),
    }
}

/// Builds the header line of a `repro --trace` JSONL stream.
///
/// # Panics
///
/// Panics if the scenario fails to serialize (a bug: it contains only
/// plain numeric fields).
pub fn trace_header(scenario: &Scenario) -> json::Value {
    let rendered = json::to_string_pretty(scenario).expect("scenario serializes");
    let scenario_value = json::parse(&rendered).expect("serializer output parses");
    json::Value::Obj(vec![
        (
            "schema_version".to_string(),
            json::Value::Num(SCHEMA_VERSION.to_string()),
        ),
        (
            "kind".to_string(),
            json::Value::Str("ugache-repro-trace".to_string()),
        ),
        ("seed".to_string(), json::Value::Num(SEED.to_string())),
        ("scenario".to_string(), scenario_value),
    ])
}

/// Builds one `repro --trace` JSONL line for an event recorded while
/// computing `target`.
pub fn trace_line(target: &str, event: &emb_telemetry::Event) -> json::Value {
    let fields = event
        .fields
        .iter()
        .map(|(k, v)| (k.clone(), event_value_to_json(v)))
        .collect();
    json::Value::Obj(vec![
        ("target".to_string(), json::Value::Str(target.to_string())),
        ("seq".to_string(), json::Value::Num(event.seq.to_string())),
        ("event".to_string(), json::Value::Str(event.name.clone())),
        ("fields".to_string(), json::Value::Obj(fields)),
    ])
}

/// Lists the `.json` artifact file stems in `dir`, sorted.
fn artifact_stems(dir: &Path) -> io::Result<Vec<String>> {
    let mut stems = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                stems.push(stem.to_string());
            }
        }
    }
    stems.sort();
    Ok(stems)
}

/// Recursively records structural differences between two JSON values.
fn diff_values(path: &str, a: &json::Value, b: &json::Value, out: &mut Vec<String>) {
    use json::Value;
    match (a, b) {
        (Value::Obj(ka), Value::Obj(kb)) => {
            for (k, va) in ka {
                match kb.iter().find(|(k2, _)| k2 == k) {
                    Some((_, vb)) => diff_values(&format!("{path}.{k}"), va, vb, out),
                    None => out.push(format!("{path}.{k}: missing on right")),
                }
            }
            for (k, _) in kb {
                if !ka.iter().any(|(k2, _)| k2 == k) {
                    out.push(format!("{path}.{k}: missing on left"));
                }
            }
        }
        (Value::Arr(va), Value::Arr(vb)) => {
            if va.len() != vb.len() {
                out.push(format!("{path}: array length {} vs {}", va.len(), vb.len()));
            }
            for (i, (x, y)) in va.iter().zip(vb.iter()).enumerate() {
                diff_values(&format!("{path}[{i}]"), x, y, out);
            }
        }
        _ => {
            if a != b {
                out.push(format!(
                    "{path}: {} vs {}",
                    a.render_pretty().replace('\n', " "),
                    b.render_pretty().replace('\n', " ")
                ));
            }
        }
    }
}

/// Structurally compares two artifact directories.
///
/// Returns one human-readable line per difference (missing files, parse
/// failures, diverging values); an empty vector means the directories
/// hold identical artifacts.
///
/// # Errors
///
/// Returns any I/O error from listing the directories or reading files.
pub fn diff_dirs(a: &Path, b: &Path) -> io::Result<Vec<String>> {
    let stems_a = artifact_stems(a)?;
    let stems_b = artifact_stems(b)?;
    let mut out = Vec::new();
    for stem in &stems_a {
        if !stems_b.contains(stem) {
            out.push(format!("{stem}.json: only in {}", a.display()));
        }
    }
    for stem in &stems_b {
        if !stems_a.contains(stem) {
            out.push(format!("{stem}.json: only in {}", b.display()));
        }
    }
    for stem in stems_a.iter().filter(|s| stems_b.contains(s)) {
        let file = format!("{stem}.json");
        let ta = std::fs::read_to_string(a.join(&file))?;
        let tb = std::fs::read_to_string(b.join(&file))?;
        match (json::parse(&ta), json::parse(&tb)) {
            (Ok(va), Ok(vb)) => diff_values(&file, &va, &vb, &mut out),
            (ra, rb) => {
                if let Err(e) = ra {
                    out.push(format!("{file}: unparseable in {}: {e}", a.display()));
                }
                if let Err(e) = rb {
                    out.push(format!("{file}: unparseable in {}: {e}", b.display()));
                }
            }
        }
    }
    Ok(out)
}
