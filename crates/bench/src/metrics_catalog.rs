//! The central metric-name catalog (`METRICS.md`).
//!
//! Every counter, gauge, histogram, and event name the workspace
//! records is declared once in [`CATALOG`]. `repro metrics --md`
//! renders the catalog to markdown and `repro metrics --check` gates it
//! two ways, mirroring `repro scenarios --check`: the committed file
//! must match a fresh render exactly, and the names recorded by a full
//! quick run of every target must equal the catalog's quick-gated
//! entries (recorded ⊆ catalogued and quick-catalogued ⊆ recorded), so
//! the table can neither go stale nor accumulate dead entries. Names
//! exercised only by library consumers or full-scale runs are
//! catalogued with `quick: false` and gated one way.
//!
//! Dynamic names (the per-flow link counters) are catalogued as
//! patterns where `*` matches exactly one dotted segment:
//! `memsim.link.*.*.bytes` covers `memsim.link.gpu0.host.bytes` but not
//! `memsim.link.gpu0.bytes`.

use crate::cli::TARGETS;
use crate::runner::{run_units, units_for};
use crate::scenario::Scenario;
use std::collections::BTreeSet;

/// The kind of telemetry record a name belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// Monotonic `count` totals.
    Counter,
    /// Last-value `gauge`s.
    Gauge,
    /// `observe`d distributions (including exemplar-carrying ones).
    Histogram,
    /// Structured `event` records.
    Event,
}

impl MetricKind {
    /// The kind's lowercase label, as used in `METRICS.md`.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Event => "event",
        }
    }
}

/// One catalogued name (or `*`-pattern) with its kind and meaning.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// The recorded name; `*` matches one dotted segment.
    pub name: &'static str,
    /// What the name records.
    pub kind: MetricKind,
    /// One-line description for the generated table.
    pub description: &'static str,
    /// Whether a quick `repro all` run records the name. Quick-gated
    /// entries are checked in both directions; the rest (library paths
    /// and full-scale-only code) are only protected against collisions
    /// (a recorded name must still match some entry of its kind).
    pub quick: bool,
}

const fn def(name: &'static str, kind: MetricKind, description: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind,
        description,
        quick: true,
    }
}

/// A catalogued name no quick `repro all` run records (exercised only
/// by library consumers or full-scale runs).
const fn def_deep(name: &'static str, kind: MetricKind, description: &'static str) -> MetricDef {
    MetricDef {
        quick: false,
        ..def(name, kind, description)
    }
}

use MetricKind::{Counter, Event, Gauge, Histogram};

/// Every telemetry name the workspace records, sorted by kind then
/// name. Names used only by unit tests (the `pool.*` fixtures) are
/// deliberately absent: the catalog covers what `repro` runs record.
pub const CATALOG: &[MetricDef] = &[
    def(
        "bench.computes",
        Counter,
        "Repro units computed (one per unit scope)",
    ),
    def_deep(
        "cache.gathers",
        Counter,
        "Batch gathers served by the multi-GPU cache",
    ),
    def_deep(
        "cache.host_misses",
        Counter,
        "Keys that fell through to the host table",
    ),
    def_deep(
        "cache.local_hits",
        Counter,
        "Keys served from the destination GPU's own arena",
    ),
    def_deep(
        "cache.remote_hits",
        Counter,
        "Keys served from a peer GPU's arena",
    ),
    def(
        "extract.bytes.host",
        Counter,
        "Bytes extracted from host memory",
    ),
    def(
        "extract.bytes.local",
        Counter,
        "Bytes extracted from the local arena",
    ),
    def(
        "extract.bytes.remote",
        Counter,
        "Bytes extracted from peer GPU arenas",
    ),
    def("extract.calls", Counter, "Extraction-mechanism invocations"),
    def(
        "memsim.congestion.egress_capped",
        Counter,
        "Flows clamped by source egress capacity",
    ),
    def(
        "memsim.congestion.link_activations",
        Counter,
        "Flows whose bandwidth was congestion-degraded",
    ),
    def("memsim.extractions", Counter, "Extractions simulated"),
    def(
        "memsim.link.*.*.busy_secs",
        Counter,
        "Simulated seconds the (dst GPU, src) flow was transferring",
    ),
    def(
        "memsim.link.*.*.bytes",
        Counter,
        "Bytes moved over the (dst GPU, src) flow",
    ),
    def(
        "memsim.link.*.*.stall_secs",
        Counter,
        "Simulated seconds the dst GPU extracted while the flow idled",
    ),
    def(
        "memsim.microbench.samples",
        Counter,
        "Bandwidth microbench samples taken",
    ),
    def(
        "memsim.stall_core_secs",
        Counter,
        "Core-seconds idle while an extraction was in flight",
    ),
    def(
        "policy.blocks",
        Counter,
        "Hotness blocks placed by the solver",
    ),
    def(
        "policy.lp.iterations",
        Counter,
        "Simplex iterations across all LP solves",
    ),
    def(
        "policy.lp.solves",
        Counter,
        "LP solves (monolithic or per-block)",
    ),
    def_deep(
        "policy.paper_milp.solves",
        Counter,
        "Reference MILP solves (paper formulation)",
    ),
    def(
        "policy.patterns",
        Counter,
        "Placement patterns considered by the solver",
    ),
    def(
        "serve.batches",
        Counter,
        "Extraction batches dispatched by the serving engine",
    ),
    def(
        "serve.keys.host",
        Counter,
        "Served keys extracted from the host tier",
    ),
    def(
        "serve.keys.local",
        Counter,
        "Served keys extracted from the local tier",
    ),
    def(
        "serve.keys.remote",
        Counter,
        "Served keys extracted from the remote tier",
    ),
    def("serve.requests", Counter, "Requests served"),
    def(
        "ugache.extract_secs",
        Counter,
        "Simulated seconds spent extracting",
    ),
    def(
        "ugache.iterations",
        Counter,
        "End-to-end iterations processed",
    ),
    def("ugache.refreshes", Counter, "Cache refreshes performed"),
    def(
        "bench.scenario.dlr_scale",
        Gauge,
        "DLR scale divisor of the run",
    ),
    def(
        "bench.scenario.gnn_scale",
        Gauge,
        "GNN scale divisor of the run",
    ),
    def(
        "memsim.core_util",
        Histogram,
        "Per-extraction GPU core utilization",
    ),
    def(
        "memsim.microbench.bytes_per_sec",
        Histogram,
        "Measured link-bandwidth samples",
    ),
    def("policy.lp.residual", Histogram, "LP primal residuals"),
    def(
        "serve.batch_size",
        Histogram,
        "Requests coalesced per dispatched batch",
    ),
    def(
        "serve.latency_ms",
        Histogram,
        "Request latency (float milliseconds; carries tail exemplars)",
    ),
    def(
        "serve.latency_ns",
        Histogram,
        "Request latency (exact nanoseconds; carries tail exemplars)",
    ),
    def(
        "serve.queue_ms",
        Histogram,
        "Request queueing delay (milliseconds)",
    ),
    def(
        "memsim.extract",
        Event,
        "One simulated extraction (mode, bytes, makespan)",
    ),
    def("memsim.microbench", Event, "One link-bandwidth probe"),
    def_deep("policy.block_solve", Event, "One per-block LP solve"),
    def("policy.solve", Event, "One monolithic placement solve"),
    def_deep(
        "policy.solve_decomposed",
        Event,
        "One decomposed (blocked) solve summary",
    ),
    def(
        "serve.capacity",
        Event,
        "Saturation-throughput probe result",
    ),
    def(
        "serve.load_point",
        Event,
        "One offered-load level's throughput/latency summary",
    ),
    def(
        "serve.request",
        Event,
        "One served request's exact latency decomposition (by req id)",
    ),
    def("ugache.iteration", Event, "One processed iteration"),
    def(
        "ugache.refresh_started",
        Event,
        "A cache refresh kicked off",
    ),
];

/// Whether `name` matches the catalog pattern `pattern` (`*` matches
/// exactly one dotted segment).
pub fn pattern_matches(pattern: &str, name: &str) -> bool {
    let ps: Vec<&str> = pattern.split('.').collect();
    let ns: Vec<&str> = name.split('.').collect();
    ps.len() == ns.len() && ps.iter().zip(&ns).all(|(p, n)| *p == "*" || p == n)
}

/// Renders the catalog as the exact content of `METRICS.md`.
pub fn render_markdown() -> String {
    let mut out = String::new();
    out.push_str("# Metric catalog\n\n");
    out.push_str(
        "<!-- GENERATED FILE — do not edit by hand. Regenerate with\n     \
         `cargo run --release -p ugache-bench --bin repro -- metrics --md`\n     \
         (CI gates drift via `repro metrics --check`). -->\n\n",
    );
    out.push_str(
        "Every telemetry name the harness records, as declared in\n\
         `ugache_bench::metrics_catalog::CATALOG`. `*` matches exactly one\n\
         dotted segment (the per-flow link counters are per destination GPU\n\
         and source). Counter/gauge/histogram values appear in every\n\
         artifact's `metrics` block; events stream through `repro --trace`;\n\
         the two `serve.latency_*` histograms additionally carry top-K\n\
         request exemplars (see EXPERIMENTS.md, \"Telemetry\" and\n\
         \"Explaining the latency tail\").\n\n",
    );
    out.push_str("| Name | Kind | Quick | Records |\n");
    out.push_str("|---|---|---|---|\n");
    for d in CATALOG {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            d.name,
            d.kind.label(),
            if d.quick { "yes" } else { "—" },
            d.description
        ));
    }
    out.push_str(
        "\nNotes:\n\n\
         * `Quick` = recorded by a quick `repro all` run. Those names are\n  \
         gated in both directions: a recorded name missing here fails\n  \
         `repro metrics --check`, and so does a quick-marked entry the run\n  \
         never records. Entries marked `—` are recorded only by library\n  \
         consumers or full-scale runs (e.g. the `emb-cache` gather counters\n  \
         and the decomposed-solver events) and are gated one way: a\n  \
         recorded name must still match some entry of its kind.\n\
         * `pool.*` names exist only in `emb-util`'s worker-pool unit tests\n  \
         and are intentionally uncatalogued.\n",
    );
    out
}

/// Compares the committed catalog text against a fresh render.
///
/// # Errors
///
/// Returns the first differing line (or a length mismatch note) when
/// the texts differ.
pub fn check_file(committed: &str) -> Result<(), String> {
    let fresh = render_markdown();
    if committed == fresh {
        return Ok(());
    }
    for (i, (a, b)) in fresh.lines().zip(committed.lines()).enumerate() {
        if a != b {
            return Err(format!(
                "METRICS.md drifted from the catalog at line {}:\n  catalog:   {a}\n  committed: {b}\n\
                 regenerate with `repro metrics --md`",
                i + 1
            ));
        }
    }
    Err(format!(
        "METRICS.md drifted from the catalog: {} committed line(s) vs {} generated; \
         regenerate with `repro metrics --md`",
        committed.lines().count(),
        fresh.lines().count()
    ))
}

/// Runs every target at quick scale (serially, in-process) and returns
/// the distinct `(kind, name)` pairs the run recorded.
pub fn recorded_names() -> BTreeSet<(MetricKind, String)> {
    let targets: Vec<String> = TARGETS.iter().map(|t| t.to_string()).collect();
    let units = units_for(&targets);
    let results = run_units(&Scenario::quick(), &units, 1);
    let mut names = BTreeSet::new();
    for r in &results {
        let m = &r.telemetry.metrics;
        for (n, _) in &m.counters {
            names.insert((MetricKind::Counter, n.clone()));
        }
        for (n, _) in &m.gauges {
            names.insert((MetricKind::Gauge, n.clone()));
        }
        for (n, _) in &m.histograms {
            names.insert((MetricKind::Histogram, n.clone()));
        }
        for e in &r.telemetry.events {
            names.insert((MetricKind::Event, e.name.clone()));
        }
    }
    names
}

/// Checks the recorded names against the catalog in both directions.
///
/// Returns one line per drift: a recorded `(kind, name)` no catalog
/// entry of that kind matches, or a catalog entry no recorded name
/// matched. Empty means full coverage.
pub fn check_coverage(recorded: &BTreeSet<(MetricKind, String)>) -> Vec<String> {
    let mut drift = Vec::new();
    for (kind, name) in recorded {
        let catalogued = CATALOG
            .iter()
            .any(|d| d.kind == *kind && pattern_matches(d.name, name));
        if !catalogued {
            drift.push(format!(
                "recorded {} `{name}` is not in the catalog; add it to \
                 metrics_catalog::CATALOG and regenerate METRICS.md",
                kind.label()
            ));
        }
    }
    for d in CATALOG {
        if !d.quick {
            continue;
        }
        let seen = recorded
            .iter()
            .any(|(kind, name)| *kind == d.kind && pattern_matches(d.name, name));
        if !seen {
            drift.push(format!(
                "catalogued {} `{}` was not recorded by a quick run of every \
                 target; remove it or fix the recording site",
                d.kind.label(),
                d.name
            ));
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_match_one_segment_per_star() {
        assert!(pattern_matches(
            "memsim.link.*.*.bytes",
            "memsim.link.gpu0.host.bytes"
        ));
        assert!(pattern_matches(
            "memsim.link.*.*.bytes",
            "memsim.link.gpu3.gpu1.bytes"
        ));
        assert!(!pattern_matches(
            "memsim.link.*.*.bytes",
            "memsim.link.gpu0.bytes"
        ));
        assert!(!pattern_matches(
            "memsim.link.*.*.bytes",
            "memsim.link.gpu0.host.busy_secs"
        ));
        assert!(pattern_matches("serve.requests", "serve.requests"));
        assert!(!pattern_matches("serve.requests", "serve.batches"));
    }

    #[test]
    fn catalog_is_sorted_by_kind_then_name_without_duplicates() {
        for pair in CATALOG.windows(2) {
            let a = (pair[0].kind, pair[0].name);
            let b = (pair[1].kind, pair[1].name);
            assert!(a < b, "{a:?} must precede {b:?}");
        }
    }

    #[test]
    fn markdown_lists_every_entry_once() {
        let md = render_markdown();
        for d in CATALOG {
            assert_eq!(
                md.matches(&format!("| `{}` |", d.name)).count(),
                1,
                "{} appears exactly once",
                d.name
            );
        }
        assert!(md.contains("GENERATED FILE"));
    }

    #[test]
    fn check_file_accepts_fresh_and_rejects_drift() {
        let fresh = render_markdown();
        assert!(check_file(&fresh).is_ok());
        let drifted = fresh.replace("serve.requests", "serve.reqs");
        assert!(check_file(&drifted).unwrap_err().contains("drifted"));
        let truncated: String = fresh.lines().take(5).map(|l| format!("{l}\n")).collect();
        assert!(check_file(&truncated).is_err());
    }

    #[test]
    fn coverage_flags_both_directions() {
        let mut recorded: BTreeSet<(MetricKind, String)> = CATALOG
            .iter()
            .map(|d| (d.kind, d.name.replace('*', "x")))
            .collect();
        assert!(check_coverage(&recorded).is_empty());
        recorded.insert((MetricKind::Counter, "rogue.counter".to_string()));
        let drift = check_coverage(&recorded);
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("rogue.counter"));
        recorded.remove(&(MetricKind::Counter, "rogue.counter".to_string()));
        recorded.remove(&(MetricKind::Counter, "serve.requests".to_string()));
        let drift = check_coverage(&recorded);
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("serve.requests"), "{drift:?}");
    }
}
