//! `repro` — regenerates every table and figure of the UGache paper.
//!
//! Usage:
//! ```text
//! repro [--full] [--jobs N] <target>...
//! repro [--full] [--jobs N] --json --out DIR <target>...
//! repro diff <dir-a> <dir-b>
//! repro list
//! repro all
//! ```
//!
//! Targets: table1 table3 fig2 fig4 fig6 fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 hotness. `--full` uses larger scaled
//! datasets (slower, smoother series); `--gnn-scale=N` / `--dlr-scale=N`
//! override the dataset scale divisors explicitly. `--jobs N` computes
//! targets on N worker threads; output order and artifact bytes are
//! identical to a serial run. `--json --out DIR` writes one
//! stable-schema JSON artifact per target instead of pretty-printing;
//! `repro diff` structurally compares two artifact directories.

use ugache_bench::artifact::{diff_dirs, Artifact, TargetData};
use ugache_bench::cli::{self, Command, RunSpec};
use ugache_bench::figures::*;
use ugache_bench::runner::{run_units, units_for, Unit};
use ugache_bench::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match cmd {
        Command::List => {
            println!("targets: {} | all", cli::TARGETS.join(" "));
            println!(
                "usage: repro [--full] [--jobs N] [--json --out DIR] <target>... (or: repro all)"
            );
            println!("       repro diff <dir-a> <dir-b>");
        }
        Command::Diff { a, b } => {
            let diffs = match diff_dirs(&a, &b) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("diff failed: {e}");
                    std::process::exit(2);
                }
            };
            if diffs.is_empty() {
                println!("artifact directories are identical");
            } else {
                for d in &diffs {
                    println!("{d}");
                }
                std::process::exit(1);
            }
        }
        Command::Run(spec) => run(&spec),
    }
}

fn run(spec: &RunSpec) {
    let units = units_for(&spec.targets);
    let results = run_units(&spec.scenario, &units, spec.jobs);
    let data_for = |target: &str| -> &TargetData {
        let unit = Unit::for_target(target).expect("targets validated by the CLI");
        let idx = units
            .iter()
            .position(|u| *u == unit)
            .expect("unit computed");
        &results[idx]
    };
    for target in &spec.targets {
        let data = data_for(target);
        if spec.json {
            let dir = spec.out.as_ref().expect("--json implies --out");
            let artifact = Artifact::new(target, &spec.scenario, data.clone());
            match artifact.write(dir) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write artifact for {target}: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            render(target, &spec.scenario, data);
        }
    }
}

fn render(target: &str, s: &Scenario, data: &TargetData) {
    match (target, data) {
        ("table1", TargetData::Table1(v)) => table1::render(v),
        ("table3", TargetData::Table3(v)) => table3::render(s, v),
        ("fig2", TargetData::Fig2(v)) => fig02::render(v),
        ("fig4", TargetData::Fig4(v)) => fig04::render(v),
        ("fig6", TargetData::Fig6(v)) => fig06::render(v),
        ("fig8", TargetData::Fig8(v)) => fig08::render(v),
        ("fig9", TargetData::Fig9(v)) => fig09::render(v),
        ("fig10", TargetData::Fig10(v)) => fig10::render_fig10(v),
        ("fig11", TargetData::Fig10(v)) => fig10::render_fig11(v),
        ("fig12", TargetData::Fig12(v)) => fig12::render(v),
        ("fig13", TargetData::Fig13(v)) => fig13::render(v),
        ("fig14", TargetData::Fig14(v)) => fig14::render(v),
        ("fig16", TargetData::Fig16(v)) => fig16::render(v),
        ("fig17", TargetData::Fig17(v)) => fig17::render(v),
        ("hotness", TargetData::Hotness(v)) => hotness_sources::render(v),
        (t, _) => unreachable!("target `{t}` paired with wrong data variant"),
    }
}
