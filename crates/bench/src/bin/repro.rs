//! `repro` — regenerates every table and figure of the UGache paper.
//!
//! Usage:
//! ```text
//! repro [--full] [--jobs N] [--threads N] [--trace OUT.jsonl] [--chrome-trace OUT.json] <target>...
//! repro [--full] [--jobs N] [--threads N] [...] --json --out DIR <target>...
//! repro profile [--full] [--jobs N] [--threads N] <target>...
//! repro diff <dir-a> <dir-b>
//! repro compare <baseline-dir> <new-dir>
//! repro compare <baseline-bench.json> <new-bench.json>
//! repro bench [--trials N] [--warmup N] [--out FILE] [NAME...]
//! repro check-trace <trace.json>
//! repro scenarios [--md | --check [--file PATH]]
//! repro metrics [--md | --check [--file PATH]]
//! repro record <scenario> --out TRACE [--iters N] [--full] [--threads N]
//! repro replay TRACE [--policy P] [--platform PL] [--out FILE] [--threads N]
//! repro explain-tail <serve.json | scenario> [--out FILE] [--full] [--threads N]
//! repro list
//! repro all
//! ```
//!
//! Targets: table1 table3 fig2 fig4 fig6 fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 hotness serve. `--full` uses larger scaled
//! datasets (slower, smoother series); `--gnn-scale=N` / `--dlr-scale=N`
//! override the dataset scale divisors explicitly. `--jobs N` computes
//! targets on N worker threads; output order and artifact bytes are
//! identical to a serial run. `--threads N` sets the intra-target
//! worker-pool width (gather passes, workload generation, per-block LP
//! solves); artifacts, traces, and chrome traces are byte-identical at
//! every width (defaults to 1, or the `REPRO_THREADS` env var when the
//! flag is absent). `--json --out DIR` writes one
//! stable-schema JSON artifact per target instead of pretty-printing
//! (each carries telemetry `metrics` and span-derived `timeline`
//! blocks); `--trace OUT.jsonl` additionally writes the ordered
//! telemetry event stream, one JSON object per line, and
//! `--chrome-trace OUT.json` the simulated-time spans in Chrome
//! trace-event format (load in `chrome://tracing` or Perfetto; see
//! EXPERIMENTS.md for both schemas). `repro profile` prints each
//! target's top time consumers and per-GPU stall breakdown instead of
//! the figure. `repro diff` structurally compares two artifact
//! directories; `repro compare` gates a fresh directory against a
//! baseline using per-metric tolerances (non-zero exit on regression);
//! `repro check-trace` validates a Chrome trace file structurally.
//! `repro scenarios` lists the scenario registry (`--md` renders the
//! SCENARIOS.md catalog, `--check` gates the committed file against the
//! registry); `repro record` captures a registered scenario's access
//! stream to a UGTR trace and `repro replay` replays a trace under any
//! policy on any platform (see EXPERIMENTS.md, "Scenario registry and
//! access traces", for the wire format and exit codes).
//! `repro metrics` lists the central metric-name catalog (`--md`
//! renders the METRICS.md content, `--check` gates the committed file
//! and the catalog's two-direction coverage against a fresh quick run
//! of every target). `repro explain-tail` reconstructs the top-K tail
//! requests of a serve run — from a schema-v5 `serve.json` artifact or
//! a fresh in-process run of the serving scenario — attributing each
//! latency exactly across queue/batch-wait/extract-tier, and writes the
//! deterministic JSON report with `--out` (exit 3 on unusable input;
//! see EXPERIMENTS.md, "Explaining the latency tail").
//! `repro bench` times the optimized hot paths against their frozen
//! reference implementations (wall clock; simulated results are
//! asserted identical) and writes a `BENCH_*.json` report with `--out`;
//! pointing `repro compare` at two such `.json` files applies the soft
//! wall-clock gate instead of the artifact tolerance table.

use ugache_bench::artifact::{
    check_dir_schema, diff_dirs, trace_header, trace_line, Artifact, TargetData,
};
use ugache_bench::cli::{self, Command, RunSpec};
use ugache_bench::figures::*;
use ugache_bench::runner::{run_units, units_for, Unit, UnitResult};
use ugache_bench::scenario::{registry, WorkloadSpec};
use ugache_bench::{
    catalog, chrome, compare, explain, json, metrics_catalog, microbench, profile, replay,
    timeline, Scenario,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match cmd {
        Command::List => {
            println!("targets: {} | all", cli::TARGETS.join(" "));
            println!(
                "usage: repro [--full] [--jobs N] [--threads N] [--trace OUT.jsonl] \
                 [--chrome-trace OUT.json] [--json --out DIR] <target>... (or: repro all)"
            );
            println!("       repro profile [--full] [--jobs N] [--threads N] <target>...");
            println!("       repro diff <dir-a> <dir-b>");
            println!("       repro compare <baseline-dir> <new-dir>");
            println!("       repro compare <baseline-bench.json> <new-bench.json>");
            println!(
                "       repro bench [--trials N] [--warmup N] [--out FILE] [{}]",
                microbench::BENCH_NAMES.join("|")
            );
            println!("       repro check-trace <trace.json>");
            println!("       repro scenarios [--md | --check [--file PATH]]");
            println!(
                "       repro record <scenario> --out TRACE [--iters N] [--full] [--threads N]"
            );
            println!(
                "       repro replay TRACE [--policy P] [--platform PL] [--out FILE] [--threads N]"
            );
            println!("       repro metrics [--md | --check [--file PATH]]");
            println!(
                "       repro explain-tail <serve.json | scenario> [--out FILE] [--full] \
                 [--threads N]"
            );
        }
        Command::Diff { a, b } => {
            let diffs = match diff_dirs(&a, &b) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("diff failed: {e}");
                    std::process::exit(2);
                }
            };
            if diffs.is_empty() {
                println!("artifact directories are identical");
            } else {
                for d in &diffs {
                    println!("{d}");
                }
                std::process::exit(1);
            }
        }
        Command::Compare { baseline, new } => {
            // Two `.json` files = bench reports (soft wall-clock gate);
            // anything else = artifact directories (tolerance table).
            let bench_mode = baseline.extension().is_some_and(|e| e == "json")
                && new.extension().is_some_and(|e| e == "json");
            if bench_mode {
                let (warnings, failures) = match microbench::compare_files(&baseline, &new) {
                    Ok(r) => r,
                    Err(e) => {
                        // Exit 3: the inputs could not be compared at all
                        // (unreadable file, bad JSON, wrong kind/schema) —
                        // distinct from exit 1, a genuine gate failure.
                        eprintln!("bench compare inputs unusable: {e}");
                        std::process::exit(3);
                    }
                };
                for w in &warnings {
                    println!("{w}");
                }
                if failures.is_empty() {
                    println!(
                        "no large wall-clock regressions against {} (soft gate; \
                         see EXPERIMENTS.md)",
                        baseline.display()
                    );
                } else {
                    for f in &failures {
                        println!("{f}");
                    }
                    eprintln!("{} large wall-clock regression(s)", failures.len());
                    std::process::exit(1);
                }
                return;
            }
            let failures = match compare::compare_dirs(&baseline, &new) {
                Ok(f) => f,
                Err(e) => {
                    // Exit 3: inputs unusable (see the bench branch above).
                    eprintln!("compare inputs unusable: {e}");
                    std::process::exit(3);
                }
            };
            if failures.is_empty() {
                println!(
                    "no regressions against {} (tolerances in EXPERIMENTS.md)",
                    baseline.display()
                );
            } else {
                for f in &failures {
                    println!("{f}");
                }
                eprintln!("{} regression(s) beyond tolerance", failures.len());
                std::process::exit(1);
            }
        }
        Command::CheckTrace { path } => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            let value = match json::parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("{} is not valid JSON: {e}", path.display());
                    std::process::exit(2);
                }
            };
            let errors = chrome::validate(&value);
            if errors.is_empty() {
                println!("{}: structurally valid chrome trace", path.display());
            } else {
                for e in &errors {
                    println!("{e}");
                }
                eprintln!("{} structural error(s)", errors.len());
                std::process::exit(1);
            }
        }
        Command::Bench {
            names,
            trials,
            warmup,
            out,
        } => {
            let report = match microbench::run_benches(&names, trials, warmup) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
            microbench::render(&report);
            if let Some(path) = out.as_deref() {
                let mut text = json::to_string_pretty(&report).expect("bench report serializes");
                text.push('\n');
                match std::fs::write(path, text) {
                    Ok(()) => println!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("failed to write bench report {}: {e}", path.display());
                        std::process::exit(2);
                    }
                }
            }
        }
        Command::Scenarios { md, check, file } => {
            if md {
                print!("{}", catalog::render_markdown(registry()));
            } else if check {
                let committed = match std::fs::read_to_string(&file) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {}: {e}", file.display());
                        std::process::exit(2);
                    }
                };
                if let Err(drift) = catalog::check(registry(), &committed) {
                    eprintln!("{drift}");
                    std::process::exit(1);
                }
                println!("{} matches the registry", file.display());
            } else {
                for def in registry().defs() {
                    println!(
                        "{:<28} {:<28} [{}]",
                        def.name,
                        def.workload.label(),
                        def.consumers.join(" ")
                    );
                }
                println!(
                    "{} scenarios; `repro record <name> --out TRACE` captures one \
                     (catalog: SCENARIOS.md)",
                    registry().defs().len()
                );
            }
        }
        Command::Metrics { md, check, file } => {
            if md {
                print!("{}", metrics_catalog::render_markdown());
            } else if check {
                let committed = match std::fs::read_to_string(&file) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {}: {e}", file.display());
                        std::process::exit(2);
                    }
                };
                if let Err(drift) = metrics_catalog::check_file(&committed) {
                    eprintln!("{drift}");
                    std::process::exit(1);
                }
                let recorded = metrics_catalog::recorded_names();
                let drift = metrics_catalog::check_coverage(&recorded);
                if !drift.is_empty() {
                    for d in &drift {
                        eprintln!("{d}");
                    }
                    std::process::exit(1);
                }
                println!(
                    "{} matches the catalog; {} recorded names covered",
                    file.display(),
                    recorded.len()
                );
            } else {
                for d in metrics_catalog::CATALOG {
                    println!("{:<36} {:<9} {}", d.name, d.kind.label(), d.description);
                }
                println!(
                    "{} catalogued names (catalog: METRICS.md; `repro metrics --check` \
                     gates drift against a full quick run)",
                    metrics_catalog::CATALOG.len()
                );
            }
        }
        Command::ExplainTail {
            input,
            out,
            knobs,
            threads,
        } => {
            if let Err(msg) = set_pool_width(threads) {
                eprintln!("{msg}");
                std::process::exit(2);
            }
            let report = if let Some(def) = registry().get(&input) {
                // Registered scenario: compute the serve target fresh
                // in-process and read the exemplars off the live
                // telemetry snapshot.
                if !matches!(def.workload, WorkloadSpec::ServeZipf) {
                    eprintln!(
                        "scenario `{input}` is not the serving scenario; explain-tail \
                         reconstructs serve runs (see `repro scenarios`)"
                    );
                    std::process::exit(2);
                }
                let unit = Unit::for_target("serve").expect("serve is a target");
                let result = unit.compute_with_telemetry(&knobs);
                match explain::report_from_snapshot(&result.telemetry.metrics) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("explain-tail failed for scenario {input}: {e}");
                        std::process::exit(3);
                    }
                }
            } else {
                let text = match std::fs::read_to_string(&input) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!(
                            "cannot read {input}: {e} (pass a serve artifact or a \
                             registered scenario name; see `repro scenarios`)"
                        );
                        std::process::exit(2);
                    }
                };
                let value = match json::parse(&text) {
                    Ok(v) => v,
                    Err(e) => {
                        // Exit 3: the artifact itself is unusable,
                        // distinct from exit 2 usage/IO errors.
                        eprintln!("{input} is not valid JSON: {e}");
                        std::process::exit(3);
                    }
                };
                match explain::report_from_artifact(&value) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("{input}: {e}");
                        std::process::exit(3);
                    }
                }
            };
            explain::render(&report);
            if let Some(path) = out.as_deref() {
                match std::fs::write(path, explain::to_json(&report)) {
                    Ok(()) => println!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("failed to write explain report {}: {e}", path.display());
                        std::process::exit(2);
                    }
                }
            }
        }
        Command::Record {
            scenario,
            out,
            iters,
            knobs,
            threads,
        } => {
            if let Err(msg) = set_pool_width(threads) {
                eprintln!("{msg}");
                std::process::exit(2);
            }
            let def = registry().get(&scenario).expect("validated by the CLI");
            let trace = replay::record_trace(def, &knobs, iters);
            match std::fs::write(&out, trace.to_bytes()) {
                Ok(()) => println!(
                    "wrote {} ({} records, {} GPUs, {} keys of {})",
                    out.display(),
                    trace.records.len(),
                    trace.num_gpus,
                    trace.total_keys(),
                    trace.num_keys
                ),
                Err(e) => {
                    eprintln!("failed to write trace {}: {e}", out.display());
                    std::process::exit(2);
                }
            }
        }
        Command::Replay {
            trace,
            policy,
            platform,
            out,
            threads,
        } => {
            if let Err(msg) = set_pool_width(threads) {
                eprintln!("{msg}");
                std::process::exit(2);
            }
            let bytes = match std::fs::read(&trace) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", trace.display());
                    std::process::exit(2);
                }
            };
            let decoded = match emb_workload::Trace::from_bytes(&bytes) {
                Ok(t) => t,
                Err(e) => {
                    // Exit 3: the trace itself is unusable (bad magic,
                    // version mismatch, truncation, ...), distinct from
                    // exit 2 usage/IO errors — see EXPERIMENTS.md.
                    eprintln!("{}: {e}", trace.display());
                    std::process::exit(3);
                }
            };
            let report = match replay::replay_trace(&decoded, policy, platform) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("replay failed: {e}");
                    std::process::exit(2);
                }
            };
            println!(
                "replayed {}: {}, {} records on {} under {}",
                trace.display(),
                report.scenario,
                report.records,
                report.platform,
                report.policy
            );
            println!(
                "  totals: local {} | remote {} | host {}",
                report.totals.local, report.totals.remote, report.totals.host
            );
            if let Some(path) = out.as_deref() {
                let mut text = json::to_string_pretty(&report).expect("replay report serializes");
                text.push('\n');
                match std::fs::write(path, text) {
                    Ok(()) => println!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("failed to write replay report {}: {e}", path.display());
                        std::process::exit(2);
                    }
                }
            }
        }
        Command::Run(spec) => {
            if let Err(msg) = set_pool_width(spec.threads) {
                eprintln!("{msg}");
                std::process::exit(2);
            }
            run(&spec);
        }
    }
}

/// Resolves the worker-pool width from the `--threads` flag and the
/// `REPRO_THREADS` env var, then configures the pool.
fn set_pool_width(flag: Option<usize>) -> Result<(), String> {
    let env = std::env::var("REPRO_THREADS").ok();
    let threads = cli::resolve_threads(flag, env.as_deref())?;
    emb_util::pool::set_threads(threads);
    Ok(())
}

fn run(spec: &RunSpec) {
    if let Some(dir) = spec.out.as_deref() {
        if let Err(msg) = check_dir_schema(dir) {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
    let units = units_for(&spec.targets);
    let results = run_units(&spec.scenario, &units, spec.jobs);
    let result_for = |target: &str| -> &UnitResult {
        let unit = Unit::for_target(target).expect("targets validated by the CLI");
        let idx = units
            .iter()
            .position(|u| *u == unit)
            .expect("unit computed");
        &results[idx]
    };
    for target in &spec.targets {
        let result = result_for(target);
        if spec.profile {
            profile::render_profile(target, &result.telemetry);
        } else if spec.json {
            let dir = spec.out.as_ref().expect("--json implies --out");
            let artifact = Artifact::new(
                target,
                &spec.scenario,
                result.data.clone(),
                Some(result.telemetry.metrics.clone()),
                Some(timeline::from_report(&result.telemetry)),
            );
            match artifact.write(dir) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write artifact for {target}: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            render(target, &spec.scenario, &result.data);
        }
    }
    if let Some(path) = spec.trace.as_deref() {
        let per_target: Vec<(&str, &UnitResult)> = spec
            .targets
            .iter()
            .map(|t| (t.as_str(), result_for(t)))
            .collect();
        match write_trace(path, &spec.scenario, &per_target) {
            Ok(lines) => println!("wrote {} ({lines} trace lines)", path.display()),
            Err(e) => {
                eprintln!("failed to write trace {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = spec.chrome_trace.as_deref() {
        let per_target: Vec<(&str, &emb_telemetry::Report)> = spec
            .targets
            .iter()
            .map(|t| (t.as_str(), &result_for(t).telemetry))
            .collect();
        let mut rendered = chrome::chrome_trace(&per_target).render_compact();
        rendered.push('\n');
        match std::fs::write(path, rendered) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write chrome trace {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
}

/// Writes the JSONL telemetry trace: a header line describing the run,
/// then each target's events in requested-target order. Returns the
/// number of event lines written.
fn write_trace(
    path: &std::path::Path,
    scenario: &Scenario,
    per_target: &[(&str, &UnitResult)],
) -> std::io::Result<usize> {
    let mut out = String::new();
    out.push_str(&trace_header(scenario).render_compact());
    out.push('\n');
    let mut lines = 0;
    for (target, result) in per_target {
        for event in &result.telemetry.events {
            out.push_str(&trace_line(target, event).render_compact());
            out.push('\n');
            lines += 1;
        }
    }
    std::fs::write(path, out)?;
    Ok(lines)
}

fn render(target: &str, s: &Scenario, data: &TargetData) {
    match (target, data) {
        ("table1", TargetData::Table1(v)) => table1::render(v),
        ("table3", TargetData::Table3(v)) => table3::render(s, v),
        ("fig2", TargetData::Fig2(v)) => fig02::render(v),
        ("fig4", TargetData::Fig4(v)) => fig04::render(v),
        ("fig6", TargetData::Fig6(v)) => fig06::render(v),
        ("fig8", TargetData::Fig8(v)) => fig08::render(v),
        ("fig9", TargetData::Fig9(v)) => fig09::render(v),
        ("fig10", TargetData::Fig10(v)) => fig10::render_fig10(v),
        ("fig11", TargetData::Fig10(v)) => fig10::render_fig11(v),
        ("fig12", TargetData::Fig12(v)) => fig12::render(v),
        ("fig13", TargetData::Fig13(v)) => fig13::render(v),
        ("fig14", TargetData::Fig14(v)) => fig14::render(v),
        ("fig16", TargetData::Fig16(v)) => fig16::render(v),
        ("fig17", TargetData::Fig17(v)) => fig17::render(v),
        ("hotness", TargetData::Hotness(v)) => hotness_sources::render(v),
        ("serve", TargetData::Serve(v)) => serve::render(v),
        (t, _) => unreachable!("target `{t}` paired with wrong data variant"),
    }
}
