//! `repro` — regenerates every table and figure of the UGache paper.
//!
//! Usage:
//! ```text
//! repro [--full] <target>...
//! repro list
//! repro all
//! ```
//! Targets: table1 table3 fig2 fig4 fig6 fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17. `--full` uses larger scaled datasets
//! (slower, smoother series); `--gnn-scale=N` / `--dlr-scale=N` override
//! the dataset scale divisors explicitly.

use ugache_bench::figures::*;
use ugache_bench::Scenario;

const TARGETS: &[&str] = &[
    "table1", "table3", "fig2", "fig4", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "fig17", "hotness",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let flag = |name: &str| -> Option<usize> {
        args.iter()
            .find_map(|a| a.strip_prefix(&format!("--{name}=")))
            .and_then(|v| v.parse().ok())
    };
    let gnn_scale = flag("gnn-scale");
    let dlr_scale = flag("dlr-scale");
    let mut targets: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if targets.is_empty() || targets.iter().any(|t| t == "list") {
        println!("targets: {} | all", TARGETS.join(" "));
        if targets.is_empty() {
            println!("usage: repro [--full] <target>... (or: repro all)");
        }
        return;
    }
    if targets.iter().any(|t| t == "all") {
        targets = TARGETS.iter().map(|s| s.to_string()).collect();
    }
    // fig14 and fig15 are one combined module; run it once.
    for t in targets.iter_mut() {
        if t == "fig15" {
            *t = "fig14".to_string();
        }
    }
    targets.dedup();
    let mut s = if full {
        Scenario::full()
    } else {
        Scenario::quick()
    };
    if let Some(g) = gnn_scale {
        s.gnn_scale = g.max(1);
    }
    if let Some(d) = dlr_scale {
        s.dlr_scale = d.max(1);
    }

    // fig10 and fig11 share their runs.
    let mut fig10_cache: Option<(Vec<fig10::GnnCell>, Vec<fig10::DlrCell>)> = None;
    for t in &targets {
        match t.as_str() {
            "table1" => {
                table1::run(&s);
            }
            "table3" => {
                table3::run(&s);
            }
            "fig2" => {
                fig02::run(&s);
            }
            "fig4" => {
                fig04::run(&s);
            }
            "fig6" => {
                fig06::run(&s);
            }
            "fig8" => {
                fig08::run(&s);
            }
            "fig9" => {
                fig09::run(&s);
            }
            "fig10" => {
                let gnn = fig10::run_gnn(&s);
                let dlr = fig10::run_dlr(&s);
                fig10_cache = Some((gnn, dlr));
            }
            "fig11" => {
                if fig10_cache.is_none() {
                    let gnn = fig10::run_gnn(&s);
                    let dlr = fig10::run_dlr(&s);
                    fig10_cache = Some((gnn, dlr));
                }
                let (gnn, dlr) = fig10_cache.as_ref().unwrap();
                fig10::print_fig11(gnn, dlr);
            }
            "fig12" => {
                fig12::run(&s);
            }
            "fig13" => {
                fig13::run(&s);
            }
            "fig14" | "fig15" => {
                fig14::run(&s);
            }
            "fig16" => {
                fig16::run(&s);
            }
            "fig17" => {
                fig17::run(&s);
            }
            "hotness" => {
                hotness_sources::run(&s);
            }
            other => {
                eprintln!("unknown target `{other}`; see `repro list`");
                std::process::exit(2);
            }
        }
    }
}
