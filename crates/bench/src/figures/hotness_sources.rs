//! Hotness-source study (§6.1): UGache lets applications supply hotness
//! from whichever semantic source they have — a pre-sampling profile
//! (GNNLab-style), graph degree (PaGraph-style), or online counting.
//! This target quantifies what each source costs relative to an oracle.

use crate::scenario::{header, registry, PlatformId, Scenario};
use cache_policy::Hotness;
use emb_workload::{GnnDatasetId, GnnModel};
use serde::Serialize;
use ugache::baselines::{build_system, SystemKind};

/// Result for one hotness source.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SourceRow {
    /// Source label.
    pub source: String,
    /// Measured extraction ms with a placement solved from this source.
    pub extract_ms: f64,
    /// Top-1000 overlap with the long-profile oracle (0–1).
    pub oracle_overlap: f64,
}

/// Computes the study rows (no printing).
pub fn compute(s: &Scenario) -> Vec<SourceRow> {
    let def = registry()
        .gnn_def(
            GnnDatasetId::Pa,
            GnnModel::GraphSageSupervised,
            PlatformId::ServerC,
        )
        .expect("the hotness study's scenario is registered");
    let plat = def.resolve_platform();
    let (w, _) = def.gnn(s);
    let entry_bytes = w.dataset().entry_bytes;
    let cap = ugache::apps::gnn_cache_capacity(&plat, w.dataset(), SystemKind::UGache);

    // Oracle: a long profiling run.
    let mut oracle_w = w.clone();
    let oracle = oracle_w.profile_hotness(8);
    let top_oracle: std::collections::HashSet<u32> =
        oracle.ranking().into_iter().take(1000).collect();

    let mut sources: Vec<(String, Hotness)> = Vec::new();
    let mut short_w = w.clone();
    sources.push(("pre-sampling (1 iter)".into(), short_w.profile_hotness(1)));
    let mut med_w = w.clone();
    sources.push(("pre-sampling (4 iters)".into(), med_w.profile_hotness(4)));
    sources.push(("vertex degree".into(), w.degree_hotness()));
    sources.push(("oracle (8 iters)".into(), oracle.clone()));

    let mut probe = w.clone();
    let accesses = probe.measure_accesses_per_iter(2);
    let mut eval_w = w.clone();
    // A common evaluation batch, unseen by any profile.
    for _ in 0..10 {
        let _ = eval_w.next_batch();
    }
    let keys = eval_w.next_batch();

    let mut out = Vec::new();
    for (label, hotness) in sources {
        let sys = build_system(
            SystemKind::UGache,
            &plat,
            &hotness,
            cap,
            entry_bytes,
            accesses,
            8,
        )
        .expect("ugache builds");
        let extract_ms = sys.extract(&keys).makespan.as_secs_f64() * 1e3;
        let top: std::collections::HashSet<u32> =
            hotness.ranking().into_iter().take(1000).collect();
        let overlap = top.intersection(&top_oracle).count() as f64 / 1000.0;
        out.push(SourceRow {
            source: label,
            extract_ms,
            oracle_overlap: overlap,
        });
    }
    out
}

/// Prints the study from precomputed rows.
pub fn render(rows: &[SourceRow]) {
    header("Hotness sources (§6.1): pre-sampling vs degree vs short profile");
    println!(
        "{:<24} {:>12} {:>16}",
        "source", "extract(ms)", "top-1k overlap"
    );
    for r in rows {
        println!(
            "{:<24} {:>12.3} {:>15.1}%",
            r.source,
            r.extract_ms,
            r.oracle_overlap * 100.0
        );
    }
}

/// Computes and prints the study, returning its rows.
pub fn run(s: &Scenario) -> Vec<SourceRow> {
    let rows = compute(s);
    render(&rows);
    rows
}
