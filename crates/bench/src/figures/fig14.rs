//! Figures 14 and 15: where accesses are served from (local GPU / remote
//! GPU / host) and how long each source takes, vs cache ratio —
//! PartU / UGache / RepU on PA (high skew) and CF (low skew), Server C.
//!
//! As in the paper's Figure 15, all three policies use UGache's factored
//! extraction so the comparison isolates the *policy*.

use crate::scenario::{header, registry, PlatformId, Scenario};
use cache_policy::Placement;
use emb_workload::{GnnDatasetId, GnnModel};
use extractor::{Extractor, Mechanism};
use gpu_memsim::SimConfig;
use gpu_platform::{DedicationConfig, Location};
use serde::Serialize;
use ugache::baselines::{build_system, SystemKind};

/// One (dataset, ratio, system) measurement.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Split {
    /// Dataset name.
    pub dataset: String,
    /// Cache ratio per GPU (percent).
    pub ratio_pct: f64,
    /// System name.
    pub system: String,
    /// Fraction of keys served locally.
    pub local: f64,
    /// Fraction served from remote GPUs.
    pub remote: f64,
    /// Fraction served from host.
    pub host: f64,
    /// Extraction ms under factored extraction.
    pub extract_ms: f64,
}

fn batch_split(placement: &Placement, keys_per_gpu: &[Vec<u32>]) -> (f64, f64, f64) {
    let (mut local, mut remote, mut host, mut total) = (0u64, 0u64, 0u64, 0u64);
    for (gpu, keys) in keys_per_gpu.iter().enumerate() {
        for (loc, c) in placement.split_keys(gpu, keys) {
            total += c;
            match loc {
                Location::Gpu(j) if j == gpu => local += c,
                Location::Gpu(_) => remote += c,
                Location::Host => host += c,
            }
        }
    }
    let t = total.max(1) as f64;
    (local as f64 / t, remote as f64 / t, host as f64 / t)
}

/// Computes the Figures 14/15 measurements (no printing).
pub fn compute(s: &Scenario) -> Vec<Split> {
    let plat = PlatformId::ServerC.resolve();
    let fem = Extractor::new(
        plat.clone(),
        SimConfig::default(),
        Mechanism::Factored {
            dedication: DedicationConfig::default(),
        },
    );
    let mut out = Vec::new();
    for ds in [GnnDatasetId::Pa, GnnDatasetId::Cf] {
        let def = registry()
            .gnn_def(ds, GnnModel::GraphSageSupervised, PlatformId::ServerC)
            .expect("fig14's scenarios are registered");
        let (mut w, hotness) = def.gnn(s);
        let e = hotness.len();
        let entry_bytes = w.dataset().entry_bytes;
        let mut probe = w.clone();
        let accesses = probe.measure_accesses_per_iter(2);
        for ratio_pct in [2.0, 4.0, 6.0, 8.0, 10.0, 12.0] {
            let cap = ((ratio_pct / 100.0) * e as f64) as usize;
            let keys = w.next_batch();
            for kind in [SystemKind::PartU, SystemKind::UGache, SystemKind::RepU] {
                let sys =
                    build_system(kind, &plat, &hotness, cap, entry_bytes, accesses, 7).unwrap();
                let (local, remote, host) = batch_split(&sys.placement, &keys);
                let extract_ms = fem
                    .extract(&sys.placement, &keys, entry_bytes)
                    .makespan
                    .as_secs_f64()
                    * 1e3;
                out.push(Split {
                    dataset: ds.name().to_string(),
                    ratio_pct,
                    system: kind.name().to_string(),
                    local,
                    remote,
                    host,
                    extract_ms,
                });
            }
        }
    }
    out
}

/// Prints Figures 14/15 from precomputed measurements.
pub fn render(splits: &[Split]) {
    header("Figures 14/15: access split and per-source time vs cache ratio (Server C)");
    println!(
        "{:<5} {:>6} {:<7} {:>8} {:>8} {:>8} {:>12}",
        "data", "ratio", "system", "local", "remote", "host", "extract(ms)"
    );
    for sp in splits {
        println!(
            "{:<5} {:>5}% {:<7} {:>7.1}% {:>7.1}% {:>7.1}% {:>12.3}",
            sp.dataset,
            sp.ratio_pct,
            sp.system,
            sp.local * 100.0,
            sp.remote * 100.0,
            sp.host * 100.0,
            sp.extract_ms
        );
    }
}

/// Computes and prints Figures 14/15.
pub fn run(s: &Scenario) -> Vec<Split> {
    let splits = compute(s);
    render(&splits);
    splits
}
