//! Figures 10 and 11: end-to-end times and their embedding-extraction
//! component, for every (server × model × dataset × system) cell.
//!
//! Figure 10 reports GNN epoch seconds and DLR iteration milliseconds;
//! Figure 11 isolates the extraction component (adding RepU/PartU to the
//! DLR comparison, as the paper does). Both figures render from the same
//! [`Data`], so one `compute` pass serves both targets.

use crate::scenario::{header, registry, PlatformId, Scenario};
use emb_workload::{DlrDatasetId, GnnDatasetId, GnnModel};
use serde::Serialize;
use ugache::apps::dlr::run_dlr_iterations;
use ugache::apps::gnn::run_gnn_epoch;
use ugache::apps::{DlrModel, GnnAppConfig};
use ugache::SystemKind;

/// One GNN cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GnnCell {
    /// Server name.
    pub server: String,
    /// GNN model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// System name.
    pub system: String,
    /// Epoch seconds (`None` when the system cannot launch).
    pub epoch_secs: Option<f64>,
    /// Extraction seconds per iteration.
    pub extract_per_iter_secs: Option<f64>,
}

/// One DLR cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DlrCell {
    /// Server name.
    pub server: String,
    /// DLR model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// System name.
    pub system: String,
    /// Iteration milliseconds.
    pub iter_ms: f64,
    /// Extraction milliseconds per iteration.
    pub extract_ms: f64,
}

/// The combined Figure 10/11 result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Data {
    /// All GNN cells, in (server, model, dataset, system) order.
    pub gnn: Vec<GnnCell>,
    /// All DLR cells, in (server, dataset, model, system) order.
    pub dlr: Vec<DlrCell>,
}

const GNN_SYSTEMS: [SystemKind; 3] = [SystemKind::GnnLab, SystemKind::PartU, SystemKind::UGache];
const DLR_SYSTEMS: [SystemKind; 5] = [
    SystemKind::Hps,
    SystemKind::Sok,
    SystemKind::RepU,
    SystemKind::PartU,
    SystemKind::UGache,
];

/// Computes the GNN half of Figure 10 (no printing).
pub fn compute_gnn(s: &Scenario) -> Vec<GnnCell> {
    let mut cells = Vec::new();
    let cfg = GnnAppConfig {
        batch_size: s.gnn_batch,
        measure_iters: s.iters,
        ..Default::default()
    };
    for p in PlatformId::SERVERS {
        for model in GnnModel::ALL {
            for ds in GnnDatasetId::ALL {
                let def = registry()
                    .gnn_def(ds, model, p)
                    .expect("fig10's GNN scenarios are registered");
                let plat = def.resolve_platform();
                let (w, hotness) = def.gnn(s);
                for kind in GNN_SYSTEMS {
                    let mut wk = w.clone();
                    let timings = run_gnn_epoch(kind, &plat, &mut wk, &hotness, &cfg)
                        .ok()
                        .map(|r| (r.epoch_secs, r.extract_per_iter_secs));
                    cells.push(GnnCell {
                        server: plat.name.clone(),
                        model: model.name().to_string(),
                        dataset: ds.name().to_string(),
                        system: kind.name().to_string(),
                        epoch_secs: timings.map(|t| t.0),
                        extract_per_iter_secs: timings.map(|t| t.1),
                    });
                }
            }
        }
    }
    cells
}

/// Computes the DLR half of Figure 10 (no printing).
pub fn compute_dlr(s: &Scenario) -> Vec<DlrCell> {
    let mut cells = Vec::new();
    for p in PlatformId::SERVERS {
        for ds in DlrDatasetId::ALL {
            let def = registry()
                .dlr_def(ds, p)
                .expect("fig10's DLR scenarios are registered");
            let plat = def.resolve_platform();
            let (w, hotness) = def.dlr(s);
            for model in DlrModel::ALL {
                for kind in DLR_SYSTEMS {
                    let mut wk = w.clone();
                    let r = run_dlr_iterations(
                        kind,
                        &plat,
                        &mut wk,
                        &hotness,
                        model,
                        s.dlr_batch,
                        s.iters,
                    )
                    .expect("all DLR systems launch");
                    cells.push(DlrCell {
                        server: plat.name.clone(),
                        model: model.name().to_string(),
                        dataset: ds.name().to_string(),
                        system: kind.name().to_string(),
                        iter_ms: r.iteration_secs * 1e3,
                        extract_ms: r.extract_secs * 1e3,
                    });
                }
            }
        }
    }
    cells
}

/// Computes both halves of Figures 10/11 (no printing).
pub fn compute(s: &Scenario) -> Data {
    Data {
        gnn: compute_gnn(s),
        dlr: compute_dlr(s),
    }
}

/// Distinct (server, model, dataset) keys in first-seen order.
fn gnn_keys(cells: &[GnnCell]) -> Vec<(String, String, String)> {
    let mut keys: Vec<(String, String, String)> = cells
        .iter()
        .map(|c| (c.server.clone(), c.model.clone(), c.dataset.clone()))
        .collect();
    keys.dedup();
    keys
}

/// Prints Figure 10 from precomputed data.
pub fn render_fig10(data: &Data) {
    header("Figure 10 (GNN): end-to-end epoch milliseconds (scaled datasets)");
    println!(
        "{:<16} {:<12} {:<5} {:>10} {:>10} {:>10}",
        "server", "model", "data", "GNNLab", "PartU", "UGache"
    );
    for (srv, model, ds) in gnn_keys(&data.gnn) {
        let get = |sys: &str| {
            data.gnn
                .iter()
                .find(|c| c.server == srv && c.model == model && c.dataset == ds && c.system == sys)
                .and_then(|c| c.epoch_secs)
                .map_or("n/a".to_string(), |x| format!("{:.3}", x * 1e3))
        };
        println!(
            "{:<16} {:<12} {:<5} {:>10} {:>10} {:>10}",
            srv,
            model,
            ds,
            get("GNNLab"),
            get("PartU"),
            get("UGache")
        );
    }

    header("Figure 10 (DLR): end-to-end iteration milliseconds");
    println!(
        "{:<16} {:<6} {:<6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "server", "model", "data", "HPS", "SOK", "RepU", "PartU", "UGache"
    );
    let mut keys: Vec<(String, String, String)> = data
        .dlr
        .iter()
        .map(|c| (c.server.clone(), c.model.clone(), c.dataset.clone()))
        .collect();
    keys.dedup();
    for (srv, model, ds) in keys {
        let get = |sys: &str| {
            data.dlr
                .iter()
                .find(|c| c.server == srv && c.model == model && c.dataset == ds && c.system == sys)
                .map_or("n/a".to_string(), |c| format!("{:.3}", c.iter_ms))
        };
        println!(
            "{:<16} {:<6} {:<6} {:>9} {:>9} {:>9} {:>9} {:>9}",
            srv,
            model,
            ds,
            get("HPS"),
            get("SOK"),
            get("RepU"),
            get("PartU"),
            get("UGache")
        );
    }
}

/// Prints Figure 11 from the same precomputed data.
pub fn render_fig11(data: &Data) {
    header("Figure 11 (GNN): embedding extraction ms per iteration");
    println!(
        "{:<16} {:<12} {:<5} {:>10} {:>10} {:>10}",
        "server", "model", "data", "GNNLab", "PartU", "UGache"
    );
    for (srv, model, ds) in gnn_keys(&data.gnn) {
        let get = |sys: &str| {
            data.gnn
                .iter()
                .find(|c| c.server == srv && c.model == model && c.dataset == ds && c.system == sys)
                .and_then(|c| c.extract_per_iter_secs)
                .map_or("n/a".to_string(), |x| format!("{:.3}", x * 1e3))
        };
        println!(
            "{:<16} {:<12} {:<5} {:>10} {:>10} {:>10}",
            srv,
            model,
            ds,
            get("GNNLab"),
            get("PartU"),
            get("UGache")
        );
    }

    header("Figure 11 (DLR): embedding extraction ms per iteration");
    println!(
        "{:<16} {:<6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "server", "data", "HPS", "SOK", "RepU", "PartU", "UGache"
    );
    let mut dkeys: Vec<(String, String)> = data
        .dlr
        .iter()
        .map(|c| (c.server.clone(), c.dataset.clone()))
        .collect();
    dkeys.dedup();
    for (srv, ds) in dkeys {
        let get = |sys: &str| {
            data.dlr
                .iter()
                .find(|c| c.server == srv && c.dataset == ds && c.system == sys)
                .map_or("n/a".to_string(), |c| format!("{:.3}", c.extract_ms))
        };
        println!(
            "{:<16} {:<6} {:>9} {:>9} {:>9} {:>9} {:>9}",
            srv,
            ds,
            get("HPS"),
            get("SOK"),
            get("RepU"),
            get("PartU"),
            get("UGache")
        );
    }
}

/// Computes both halves and prints Figure 10.
pub fn run(s: &Scenario) -> Data {
    let data = compute(s);
    render_fig10(&data);
    data
}
