//! The `serve` target: throughput-vs-offered-load and latency tail
//! curves of the online inference serving layer.
//!
//! A UGache instance over a power-law table on Server A is put behind
//! `emb-serve`'s micro-batching admission queue and driven by Poisson
//! request traffic from a simulated client population. The engine's
//! saturation throughput is probed once, then the offered load sweeps
//! fixed multiples of it; each level reports achieved throughput, the
//! p50/p99/p999 latency tail, the latency breakdown (queueing, batch
//! wait, extraction), and the extraction tier mix. All timing flows
//! through the simulated clock, so the curves are exact functions of
//! the scenario and the global seed.

use crate::scenario::{header, registry, Scenario, SEED};
use cache_policy::Hotness;
use emb_cache::HostTable;
use emb_serve::{estimate_capacity_rps, run_load_point, ClientPopulation, LoadSample, ServeConfig};
use emb_util::zipf::powerlaw_hotness;
use emb_util::{split_seed, SimTime};
use serde::Serialize;
use ugache::{UGache, UGacheConfig};

/// Offered-load multiples of the probed capacity, low to overload.
pub const LOAD_FACTORS: [f64; 5] = [0.25, 0.5, 0.75, 1.0, 1.5];

/// Zipf exponent shared by the client draws and the solved hotness.
const ALPHA: f64 = 1.05;
/// Embedding dimension of the served table.
const DIM: usize = 32;
/// Keys per request.
const KEYS_PER_REQUEST: usize = 32;
/// Requests coalesced per extraction at most (public so
/// `repro explain-tail` can classify tail batches as underfull).
pub const MAX_BATCH: usize = 16;
/// Micro-batching window.
const BATCH_WINDOW: SimTime = SimTime::from_micros(250);

/// One offered-load level of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Point {
    /// Offered load as a multiple of the probed capacity.
    pub factor: f64,
    /// The engine's throughput/latency summary at this level.
    pub sample: LoadSample,
}

/// The full serving sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeData {
    /// Probed saturation throughput (requests per second).
    pub capacity_rps: f64,
    /// Served key domain size.
    pub num_keys: usize,
    /// Simulated client population size.
    pub num_users: usize,
    /// Sweep levels in [`LOAD_FACTORS`] order.
    pub points: Vec<Point>,
}

/// Number of served embedding keys at a given DLR scale divisor.
fn key_domain(dlr_scale: usize) -> usize {
    (40_000_000 / dlr_scale.max(1)).max(2_048)
}

/// The serving engine's configuration at the given knobs — shared by
/// the figure sweep and `repro record` for `serve/zipf@server_a`
/// traces, so recorded request streams match the live sweep's draws.
pub fn serve_config(s: &Scenario) -> ServeConfig {
    ServeConfig {
        seed: split_seed(SEED, 0x5E12E),
        num_users: s.serve_users as u64,
        num_keys: key_domain(s.dlr_scale) as u64,
        user_alpha: ALPHA,
        keys_per_request: KEYS_PER_REQUEST,
        entry_bytes: DIM * 4,
        max_batch: MAX_BATCH,
        batch_window: BATCH_WINDOW,
        requests: s.serve_requests,
    }
}

/// Computes the serving sweep (no printing).
pub fn compute(s: &Scenario) -> ServeData {
    let plat = registry()
        .serve_def()
        .expect("serving scenario is registered")
        .resolve_platform();
    let n = key_domain(s.dlr_scale);
    let entry_bytes = DIM * 4;
    let hotness = Hotness::new(powerlaw_hotness(n, ALPHA));
    // Expected unique keys per coalesced batch (dedup discounts the raw
    // draw count; the exact value only shapes the solver's time model).
    let accesses = (MAX_BATCH * KEYS_PER_REQUEST) as f64 * 0.7;
    let mut cfg = UGacheConfig::new(entry_bytes, accesses);
    cfg.solver.blocks.max_blocks = 32;
    cfg.solver.blocks.min_splits = plat.num_gpus();
    cfg.sample_stride = 4;
    let host = HostTable::procedural(n, DIM);
    let cap = (n / 8).max(64);
    let mut u = UGache::build(
        plat.clone(),
        host,
        &hotness,
        vec![cap; plat.num_gpus()],
        cfg,
    )
    .expect("ugache builds");

    let serve_cfg = serve_config(s);
    let mut clients = ClientPopulation::new(
        serve_cfg.seed,
        serve_cfg.num_users,
        serve_cfg.num_keys,
        serve_cfg.user_alpha,
        serve_cfg.keys_per_request,
    );
    let capacity_rps = estimate_capacity_rps(&mut u, &serve_cfg, &mut clients);
    let points = LOAD_FACTORS
        .iter()
        .enumerate()
        .map(|(i, &factor)| Point {
            factor,
            sample: run_load_point(
                &mut u,
                &serve_cfg,
                &mut clients,
                i as u64,
                capacity_rps * factor,
            ),
        })
        .collect();
    ServeData {
        capacity_rps,
        num_keys: n,
        num_users: s.serve_users,
        points,
    }
}

/// Prints the sweep from precomputed data.
pub fn render(data: &ServeData) {
    header("Serving: throughput and latency tail vs offered load (Server A)");
    println!(
        "{} keys, {} users, capacity ~{:.0} req/s",
        data.num_keys, data.num_users, data.capacity_rps
    );
    println!(
        "{:>6} {:>12} {:>12} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "load", "offered/s", "achieved/s", "batch", "p50(ms)", "p99(ms)", "p999(ms)", "host%"
    );
    for p in &data.points {
        let s = &p.sample;
        println!(
            "{:>5.2}x {:>12.0} {:>12.0} {:>7.1} {:>9.3} {:>9.3} {:>9.3} {:>8.1}",
            p.factor,
            s.offered_rps,
            s.achieved_rps,
            s.mean_batch,
            s.p50_ms,
            s.p99_ms,
            s.p999_ms,
            s.host_frac * 100.0
        );
    }
}

/// Computes and prints the sweep, returning the data.
pub fn run(s: &Scenario) -> ServeData {
    let data = compute(s);
    render(&data);
    data
}
