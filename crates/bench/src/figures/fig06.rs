//! Figure 6: achieved bandwidth vs concurrent cores per source, on the
//! hard-wired 4×V100 and the switch-based 8×A100 (including the
//! NVSwitch egress-collision series).

use crate::scenario::{header, Scenario};
use gpu_memsim::{microbench, CongestionModel};
use gpu_platform::{Location, Platform};
use serde::Serialize;

/// Number of Server A series at the head of the result (the remainder
/// belong to Server C).
pub const SERVER_A_SERIES: usize = 3;

/// One bandwidth series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Series {
    /// Label ("CPU", "Local", "Remote", "Remote (contended)").
    pub label: String,
    /// `(cores, GB/s)` points.
    pub points: Vec<(usize, f64)>,
}

fn print_series(series: &[Series]) {
    print!("{:>6}", "cores");
    for s in series {
        print!(" {:>20}", s.label);
    }
    println!();
    for (i, &(c, _)) in series[0].points.iter().enumerate() {
        print!("{c:>6}");
        for s in series {
            print!(" {:>20.1}", s.points[i].1 / 1e9);
        }
        println!();
    }
}

/// Computes all Figure 6 series (no printing): Server A first
/// ([`SERVER_A_SERIES`] entries), then Server C.
pub fn compute(_s: &Scenario) -> Vec<Series> {
    let model = CongestionModel::default();
    let mut out = Vec::new();

    let a = Platform::server_a();
    let cores_a: Vec<usize> = [1, 2, 4, 8, 12, 16, 20, 27, 40, 60, 80].to_vec();
    let mk = |plat: &Platform,
              label: &str,
              src,
              interf: &[(usize, Location, usize)],
              cores: &[usize]| {
        Series {
            label: label.to_string(),
            points: cores
                .iter()
                .map(|&c| {
                    (
                        c,
                        microbench::bandwidth_with_cores(plat, 0, src, c, interf, model),
                    )
                })
                .collect(),
        }
    };
    out.push(mk(&a, "CPU", Location::Host, &[], &cores_a));
    out.push(mk(&a, "Local", Location::Gpu(0), &[], &cores_a));
    out.push(mk(&a, "Remote", Location::Gpu(1), &[], &cores_a));

    let c = Platform::server_c();
    let cores_c: Vec<usize> = [1, 2, 4, 8, 13, 20, 32, 50, 70, 90, 108].to_vec();
    let contended: Vec<(usize, Location, usize)> = vec![(3, Location::Gpu(4), 60)];
    out.push(mk(&c, "CPU", Location::Host, &[], &cores_c));
    out.push(mk(&c, "Local", Location::Gpu(0), &[], &cores_c));
    out.push(mk(&c, "Remote", Location::Gpu(4), &[], &cores_c));
    out.push(Series {
        label: "Remote (G3 collides)".to_string(),
        points: cores_c
            .iter()
            .map(|&n| {
                (
                    n,
                    microbench::bandwidth_with_cores(&c, 2, Location::Gpu(4), n, &contended, model),
                )
            })
            .collect(),
    });
    out
}

/// Prints Figure 6 from precomputed series.
pub fn render(series: &[Series]) {
    header("Figure 6a: bandwidth vs cores (Server A, 4×V100, hard-wired)");
    print_series(&series[..SERVER_A_SERIES]);
    header("Figure 6b: bandwidth vs cores (Server C, 8×A100, NVSwitch)");
    print_series(&series[SERVER_A_SERIES..]);
}

/// Computes and prints Figure 6.
pub fn run(s: &Scenario) -> Vec<Series> {
    let series = compute(s);
    render(&series);
    series
}
