//! Figure 4: extraction time under message-based, naive peer, and
//! UGache's factored mechanisms — DLR inference, Servers A and C,
//! Criteo-TB and the α=1.2 synthetic dataset.

use crate::scenario::{header, ms, registry, PlatformId, Scenario};
use emb_workload::DlrDatasetId;
use serde::Serialize;
use ugache::apps::dlr::dlr_cache_capacity;
use ugache::baselines::{build_system, SystemKind};

/// One (server, dataset) group of bars.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Bars {
    /// Server name.
    pub server: String,
    /// Dataset name.
    pub dataset: String,
    /// Message-based extraction ms (SOK-style).
    pub message_ms: f64,
    /// Naive peer extraction ms (WholeGraph-style).
    pub peer_ms: f64,
    /// UGache factored extraction ms.
    pub ugache_ms: f64,
}

/// Computes the Figure 4 bar groups (no printing).
pub fn compute(s: &Scenario) -> Vec<Bars> {
    let mut out = Vec::new();
    for p in [PlatformId::ServerA, PlatformId::ServerC] {
        for id in [DlrDatasetId::Cr, DlrDatasetId::SynA] {
            let def = registry()
                .dlr_def(id, p)
                .expect("fig4's scenarios are registered");
            let plat = def.resolve_platform();
            let (mut w, hotness) = def.dlr(s);
            let dataset = w.dataset().clone();
            let cap = dlr_cache_capacity(&plat, &dataset);
            let mut probe = w.clone();
            let accesses = probe.measure_accesses_per_iter(2);
            let keys = w.next_batch();
            let t = |kind: SystemKind| {
                build_system(kind, &plat, &hotness, cap, dataset.entry_bytes, accesses, 4)
                    .unwrap()
                    .extract(&keys)
                    .makespan
                    .as_secs_f64()
                    * 1e3
            };
            out.push(Bars {
                server: plat.name.clone(),
                dataset: dataset.name.clone(),
                message_ms: t(SystemKind::Sok),
                peer_ms: t(SystemKind::PartU),
                ugache_ms: t(SystemKind::UGache),
            });
        }
    }
    out
}

/// Prints Figure 4 from precomputed bars.
pub fn render(bars: &[Bars]) {
    header("Figure 4: extraction mechanism comparison (DLR inference)");
    println!(
        "{:<16} {:<8} {:>12} {:>10} {:>12}",
        "server", "dataset", "message(ms)", "peer(ms)", "ugache(ms)"
    );
    for b in bars {
        println!(
            "{:<16} {:<8} {:>12} {:>10} {:>12}",
            b.server,
            b.dataset,
            ms(b.message_ms / 1e3),
            ms(b.peer_ms / 1e3),
            ms(b.ugache_ms / 1e3)
        );
    }
}

/// Computes and prints Figure 4.
pub fn run(s: &Scenario) -> Vec<Bars> {
    let bars = compute(s);
    render(&bars);
    bars
}
