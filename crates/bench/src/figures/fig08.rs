//! Figures 7/8 (illustrative): the factored-extraction core dedication.
//!
//! Prints, per destination GPU, how many SMs the factored mechanism
//! dedicates to each source and what each path tolerates — the schedule
//! sketched in the paper's Figure 8.

use crate::scenario::{header, Scenario};
use gpu_platform::{DedicationConfig, Location, Platform, Profile};
use serde::Serialize;

/// Dedication summary for one destination GPU.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Dedication {
    /// Platform name.
    pub server: String,
    /// Destination GPU.
    pub gpu: usize,
    /// SMs on the destination GPU.
    pub sm_count: usize,
    /// `(source label, dedicated cores, path tolerance)` rows.
    pub groups: Vec<(String, usize, usize)>,
}

/// Computes the dedication tables (no printing).
pub fn compute(_s: &Scenario) -> Vec<Dedication> {
    let mut out = Vec::new();
    for plat in [
        Platform::server_a(),
        Platform::server_b(),
        Platform::server_c(),
    ] {
        let prof = Profile::new(&plat, DedicationConfig::default());
        // GPU 0 is representative; on Server B also show GPU 4 (other clique).
        let gpus: Vec<usize> = if plat.name.contains("ServerB") {
            vec![0, 4]
        } else {
            vec![0]
        };
        for gpu in gpus {
            let mut groups = Vec::new();
            for j in 0..plat.num_gpus() {
                if j == gpu {
                    continue;
                }
                let cores = prof.cores[gpu][j];
                if cores == 0 {
                    continue;
                }
                let tol = plat.path(gpu, Location::Gpu(j)).tolerance();
                groups.push((format!("G{j}"), cores, tol));
            }
            let host_cores = prof.cores[gpu][prof.host_index()];
            let host_tol = plat.path(gpu, Location::Host).tolerance();
            groups.push(("Host".to_string(), host_cores, host_tol));
            out.push(Dedication {
                server: plat.name.clone(),
                gpu,
                sm_count: plat.gpus[gpu].sm_count,
                groups,
            });
        }
    }
    out
}

/// Prints the dedication tables from precomputed data.
pub fn render(dedications: &[Dedication]) {
    let mut last_server: Option<&str> = None;
    for d in dedications {
        if last_server != Some(d.server.as_str()) {
            header(&format!(
                "Figure 8: factored core dedication on {}",
                d.server
            ));
            last_server = Some(d.server.as_str());
        }
        println!("GPU{} ({} SMs):", d.gpu, d.sm_count);
        for (label, cores, tol) in &d.groups {
            if label == "Host" {
                println!("  ← Host: {cores:>2} cores (PCIe tolerates ~{tol})");
                println!("  local extraction pads all cores at low priority");
            } else {
                println!("  ← {label}: {cores:>3} cores (link tolerates ~{tol})");
            }
        }
    }
}

/// Computes and prints the dedication tables.
pub fn run(s: &Scenario) -> Vec<Dedication> {
    let out = compute(s);
    render(&out);
    out
}
