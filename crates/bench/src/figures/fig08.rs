//! Figures 7/8 (illustrative): the factored-extraction core dedication.
//!
//! Prints, per destination GPU, how many SMs the factored mechanism
//! dedicates to each source and what each path tolerates — the schedule
//! sketched in the paper's Figure 8.

use crate::scenario::{header, Scenario};
use gpu_platform::{DedicationConfig, Location, Platform, Profile};

/// Dedication summary for one destination GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct Dedication {
    /// Platform name.
    pub server: String,
    /// Destination GPU.
    pub gpu: usize,
    /// `(source label, dedicated cores, path tolerance)` rows.
    pub groups: Vec<(String, usize, usize)>,
}

/// Prints the dedication tables and returns them.
pub fn run(_s: &Scenario) -> Vec<Dedication> {
    let mut out = Vec::new();
    for plat in [
        Platform::server_a(),
        Platform::server_b(),
        Platform::server_c(),
    ] {
        header(&format!(
            "Figure 8: factored core dedication on {}",
            plat.name
        ));
        let prof = Profile::new(&plat, DedicationConfig::default());
        // GPU 0 is representative; on Server B also show GPU 4 (other clique).
        let gpus: Vec<usize> = if plat.name.contains("ServerB") {
            vec![0, 4]
        } else {
            vec![0]
        };
        for gpu in gpus {
            let mut groups = Vec::new();
            println!("GPU{gpu} ({} SMs):", plat.gpus[gpu].sm_count);
            for j in 0..plat.num_gpus() {
                if j == gpu {
                    continue;
                }
                let cores = prof.cores[gpu][j];
                if cores == 0 {
                    continue;
                }
                let tol = plat.path(gpu, Location::Gpu(j)).tolerance();
                println!("  ← G{j}: {cores:>3} cores (link tolerates ~{tol})");
                groups.push((format!("G{j}"), cores, tol));
            }
            let host_cores = prof.cores[gpu][prof.host_index()];
            let host_tol = plat.path(gpu, Location::Host).tolerance();
            println!("  ← Host: {host_cores:>2} cores (PCIe tolerates ~{host_tol})");
            println!("  local extraction pads all cores at low priority");
            groups.push(("Host".to_string(), host_cores, host_tol));
            out.push(Dedication {
                server: plat.name.clone(),
                gpu,
                groups,
            });
        }
    }
    out
}
