//! Table 3: dataset statistics at reproduction scale.

use crate::scenario::{header, Scenario, SEED};
use emb_util::fmt;
use emb_workload::{dlr_preset, gnn_preset, DlrDatasetId, GnnDatasetId};

/// One row of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Dataset short name.
    pub name: String,
    /// Vertices (GNN) or entries (DLR).
    pub entities: u64,
    /// Edges (GNN) or tables (DLR).
    pub secondary: u64,
    /// Embedding dimension.
    pub dim: usize,
    /// Embedding volume in bytes.
    pub volume_e: u64,
    /// Topology volume in bytes (GNN only).
    pub volume_g: Option<u64>,
}

/// Prints Table 3 and returns its rows.
pub fn run(s: &Scenario) -> Vec<Row> {
    header(&format!(
        "Table 3: datasets (GNN scale 1/{}, DLR scale 1/{})",
        s.gnn_scale, s.dlr_scale
    ));
    let mut rows = Vec::new();
    println!(
        "{:<8} {:>12} {:>14} {:>6} {:>10} {:>10}",
        "Dataset", "#Vertex", "#Edge", "Dim", "VolumeG", "VolumeE"
    );
    for id in GnnDatasetId::ALL {
        let d = gnn_preset(id, s.gnn_scale, SEED);
        let row = Row {
            name: d.name.clone(),
            entities: d.num_entries() as u64,
            secondary: d.graph.num_edges(),
            dim: d.dim,
            volume_e: d.volume_bytes(),
            volume_g: Some(d.graph.topology_bytes()),
        };
        println!(
            "{:<8} {:>12} {:>14} {:>6} {:>10} {:>10}",
            row.name,
            fmt::count(row.entities),
            fmt::count(row.secondary),
            row.dim,
            fmt::bytes(row.volume_g.unwrap()),
            fmt::bytes(row.volume_e)
        );
        rows.push(row);
    }
    println!(
        "{:<8} {:>12} {:>14} {:>6} {:>10} {:>10}",
        "Dataset", "#Entry", "#Table", "Dim", "Skew", "VolumeE"
    );
    for id in DlrDatasetId::ALL {
        let d = dlr_preset(id, s.dlr_scale);
        let row = Row {
            name: d.name.clone(),
            entities: d.num_entries() as u64,
            secondary: d.num_tables() as u64,
            dim: d.dim,
            volume_e: d.volume_bytes(),
            volume_g: None,
        };
        println!(
            "{:<8} {:>12} {:>14} {:>6} {:>10} {:>10}",
            row.name,
            fmt::count(row.entities),
            row.secondary,
            row.dim,
            format!("{:.1}", d.alpha),
            fmt::bytes(row.volume_e)
        );
        rows.push(row);
    }
    rows
}
