//! Table 3: dataset statistics at reproduction scale.

use crate::scenario::{header, Scenario, SEED};
use emb_util::fmt;
use emb_workload::{dlr_preset, gnn_preset, DlrDatasetId, GnnDatasetId};
use serde::Serialize;

/// One row of the table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Row {
    /// Dataset short name.
    pub name: String,
    /// Vertices (GNN) or entries (DLR).
    pub entities: u64,
    /// Edges (GNN) or tables (DLR).
    pub secondary: u64,
    /// Embedding dimension.
    pub dim: usize,
    /// Embedding volume in bytes.
    pub volume_e: u64,
    /// Topology volume in bytes (GNN only).
    pub volume_g: Option<u64>,
    /// Zipf skew α (DLR only).
    pub alpha: Option<f64>,
}

/// Computes the Table 3 rows (no printing): GNN datasets first, then DLR.
pub fn compute(s: &Scenario) -> Vec<Row> {
    let mut rows = Vec::new();
    for id in GnnDatasetId::ALL {
        let d = gnn_preset(id, s.gnn_scale, SEED);
        rows.push(Row {
            name: d.name.clone(),
            entities: d.num_entries() as u64,
            secondary: d.graph.num_edges(),
            dim: d.dim,
            volume_e: d.volume_bytes(),
            volume_g: Some(d.graph.topology_bytes()),
            alpha: None,
        });
    }
    for id in DlrDatasetId::ALL {
        let d = dlr_preset(id, s.dlr_scale);
        rows.push(Row {
            name: d.name.clone(),
            entities: d.num_entries() as u64,
            secondary: d.num_tables() as u64,
            dim: d.dim,
            volume_e: d.volume_bytes(),
            volume_g: None,
            alpha: Some(d.alpha),
        });
    }
    rows
}

/// Prints Table 3 from precomputed rows.
pub fn render(s: &Scenario, rows: &[Row]) {
    header(&format!(
        "Table 3: datasets (GNN scale 1/{}, DLR scale 1/{})",
        s.gnn_scale, s.dlr_scale
    ));
    println!(
        "{:<8} {:>12} {:>14} {:>6} {:>10} {:>10}",
        "Dataset", "#Vertex", "#Edge", "Dim", "VolumeG", "VolumeE"
    );
    for row in rows.iter().filter(|r| r.volume_g.is_some()) {
        println!(
            "{:<8} {:>12} {:>14} {:>6} {:>10} {:>10}",
            row.name,
            fmt::count(row.entities),
            fmt::count(row.secondary),
            row.dim,
            fmt::bytes(row.volume_g.unwrap()),
            fmt::bytes(row.volume_e)
        );
    }
    println!(
        "{:<8} {:>12} {:>14} {:>6} {:>10} {:>10}",
        "Dataset", "#Entry", "#Table", "Dim", "Skew", "VolumeE"
    );
    for row in rows.iter().filter(|r| r.volume_g.is_none()) {
        println!(
            "{:<8} {:>12} {:>14} {:>6} {:>10} {:>10}",
            row.name,
            fmt::count(row.entities),
            row.secondary,
            row.dim,
            format!("{:.1}", row.alpha.unwrap_or(0.0)),
            fmt::bytes(row.volume_e)
        );
    }
}

/// Computes and prints Table 3.
pub fn run(s: &Scenario) -> Vec<Row> {
    let rows = compute(s);
    render(s, &rows);
    rows
}
