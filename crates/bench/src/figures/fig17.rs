//! Figure 17: the inference timeline across background cache refreshes.
//!
//! DLRM inference with CR on Server C; a hotness drift is injected and a
//! refresh is (manually) triggered around t≈40 s and t≈150 s of virtual
//! time, as in the paper. Reported inference times rise by the bounded
//! foreground impact while the refresher solves and migrates, then drop
//! back — ideally below the pre-refresh level after the drift.

use crate::scenario::{header, registry, PlatformId, Scenario};
use emb_cache::HostTable;
use emb_workload::DlrDatasetId;
use serde::Serialize;
use ugache::apps::dlr::dlr_cache_capacity;
use ugache::{UGache, UGacheConfig};

/// One timeline sample.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Sample {
    /// Virtual time (seconds).
    pub t: f64,
    /// Inference (extract + MLP) ms at this point.
    pub inference_ms: f64,
    /// Whether a refresh was active.
    pub refresh_active: bool,
}

/// The full Figure 17 result: the timeline plus refresh durations.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig17Data {
    /// Timeline samples in virtual-time order.
    pub samples: Vec<Sample>,
    /// Virtual-time seconds each completed refresh took.
    pub refresh_durations: Vec<f64>,
}

/// Rotates every key half-way around its table's id space: the hot set
/// changes completely while the skew shape stays — a daily-trace drift.
fn drift_keys(dataset: &emb_workload::DlrDataset, keys_per_gpu: &mut [Vec<u32>]) {
    for keys in keys_per_gpu.iter_mut() {
        for k in keys.iter_mut() {
            let t = match dataset.table_offsets.binary_search(&(*k as u64)) {
                Ok(t) => t,
                Err(ins) => ins - 1,
            };
            let off = dataset.table_offsets[t];
            let size = dataset.table_sizes[t];
            let local = *k as u64 - off;
            *k = (off + (local + size / 2) % size) as u32;
        }
        keys.sort_unstable();
        keys.dedup();
    }
}

/// Computes the Figure 17 timeline (no printing).
pub fn compute(s: &Scenario) -> Fig17Data {
    let def = registry()
        .dlr_def(DlrDatasetId::Cr, PlatformId::ServerC)
        .expect("fig17's scenario is registered");
    let plat = def.resolve_platform();
    let (mut w, hotness) = def.dlr(s);
    let dataset = w.dataset().clone();
    let entry_bytes = dataset.entry_bytes;
    let cap = dlr_cache_capacity(&plat, &dataset);

    let mut probe = w.clone();
    let accesses = probe.measure_accesses_per_iter(1);
    let mut cfg = UGacheConfig::new(entry_bytes, accesses);
    cfg.sample_stride = 4;
    cfg.refresh.solve_secs = 10.0;
    cfg.refresh.entries_per_batch = (cap / 8).max(64);
    cfg.refresh.batch_interval_secs = 0.25;
    let host = HostTable::procedural(dataset.num_entries(), dataset.dim);
    let mut u = UGache::build(
        plat.clone(),
        host,
        &hotness,
        vec![cap; plat.num_gpus()],
        cfg,
    )
    .expect("ugache builds");

    // MLP time per iteration (constant).
    let mlp = ugache::apps::MlpCostModel::default().dlr_infer_secs(
        &plat.gpus[0],
        s.dlr_batch,
        ugache::apps::DlrModel::Dlrm,
    );

    let window = 2.0f64; // seconds of virtual time per sample
    let mut samples = Vec::new();
    let mut triggered = [false, false];
    while u.clock() < 200.0 {
        let now = u.clock();
        // Inject drift shortly before the first trigger point.
        let mut keys = w.next_batch();
        if now >= 35.0 {
            drift_keys(&dataset, &mut keys);
        }
        let r = u.process_iteration(&keys);
        let iter_secs = r.extract.makespan.as_secs_f64() + mlp;
        // Trigger refreshes at ~40 s and ~150 s (manual, per the paper).
        if now >= 40.0 && !triggered[0] {
            triggered[0] = true;
            let _ = u.consider_refresh(true);
        }
        if now >= 150.0 && !triggered[1] {
            triggered[1] = true;
            let _ = u.consider_refresh(true);
        }
        let sample = Sample {
            t: now,
            inference_ms: iter_secs * 1e3,
            refresh_active: u.refresh_active(),
        };
        if samples.last().is_none_or(|p: &Sample| now - p.t >= window) {
            samples.push(sample);
        }
        // The measured iteration stands for a window of identical ones.
        u.advance_clock(window - iter_secs.min(window));
    }
    Fig17Data {
        samples,
        refresh_durations: u.refresh_history().to_vec(),
    }
}

/// Prints the timeline from precomputed data.
pub fn render(data: &Fig17Data) {
    header("Figure 17: inference timeline across cache refreshes (DLRM, CR, Server C)");
    println!("{:>8} {:>14} {:>9}", "t(s)", "inference(ms)", "refresh");
    for sample in &data.samples {
        println!(
            "{:>8.1} {:>14.3} {:>9}",
            sample.t,
            sample.inference_ms,
            if sample.refresh_active { "ACTIVE" } else { "-" }
        );
    }
    for (i, d) in data.refresh_durations.iter().enumerate() {
        println!("refresh {} took {:.2}s of virtual time", i + 1, d);
    }
}

/// Computes and prints the timeline, returning its samples.
pub fn run(s: &Scenario) -> Vec<Sample> {
    let data = compute(s);
    render(&data);
    data.samples
}
