//! Figure 12: extraction time as UGache's techniques are applied
//! incrementally (RepU → PartU → +Policy → UGache), vs cache ratio,
//! supervised GraphSAGE on PA and CF, Server C.

use crate::scenario::{header, registry, PlatformId, Scenario};
use cache_policy::{SolverConfig, UGacheSolver};
use emb_workload::{GnnDatasetId, GnnModel};
use extractor::{Extractor, Mechanism};
use gpu_memsim::SimConfig;
use gpu_platform::DedicationConfig;
use serde::Serialize;
use ugache::baselines::{build_system, SystemKind};

/// One (dataset, ratio) data point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Point {
    /// Dataset name.
    pub dataset: String,
    /// Cache ratio per GPU (percent of entries).
    pub ratio_pct: f64,
    /// Replication + naive peer.
    pub repu_ms: f64,
    /// Partition + naive peer.
    pub partu_ms: f64,
    /// UGache policy + naive peer ("+Policy").
    pub policy_ms: f64,
    /// UGache policy + factored extraction (full UGache).
    pub ugache_ms: f64,
}

/// Computes the Figure 12 series (no printing).
pub fn compute(s: &Scenario) -> Vec<Point> {
    let mut out = Vec::new();
    for ds in [GnnDatasetId::Pa, GnnDatasetId::Cf] {
        let def = registry()
            .gnn_def(ds, GnnModel::GraphSageSupervised, PlatformId::ServerC)
            .expect("fig12's scenarios are registered");
        let plat = def.resolve_platform();
        let (mut w, hotness) = def.gnn(s);
        let e = hotness.len();
        let entry_bytes = w.dataset().entry_bytes;
        let mut probe = w.clone();
        let accesses = probe.measure_accesses_per_iter(2);
        for ratio_pct in [2.0, 5.0, 8.0, 12.0, 18.0, 25.0] {
            let cap = ((ratio_pct / 100.0) * e as f64) as usize;
            let keys = w.next_batch();
            let t = |kind: SystemKind| {
                build_system(kind, &plat, &hotness, cap, entry_bytes, accesses, 5)
                    .unwrap()
                    .extract(&keys)
                    .makespan
                    .as_secs_f64()
                    * 1e3
            };
            // "+Policy": the UGache placement extracted with naive peer.
            let solver = UGacheSolver::new(plat.clone(), DedicationConfig::default());
            let mut scfg = SolverConfig::new(entry_bytes, accesses);
            scfg.dedup_adjust = true;
            let solved = solver
                .solve(&hotness, &vec![cap; plat.num_gpus()], &scfg)
                .unwrap();
            let naive = Extractor::new(
                plat.clone(),
                SimConfig::default(),
                Mechanism::PeerNaive { seed: 5 },
            );
            let policy_ms = naive
                .extract(&solved.placement, &keys, entry_bytes)
                .makespan
                .as_secs_f64()
                * 1e3;

            out.push(Point {
                dataset: ds.name().to_string(),
                ratio_pct,
                repu_ms: t(SystemKind::RepU),
                partu_ms: t(SystemKind::PartU),
                policy_ms,
                ugache_ms: t(SystemKind::UGache),
            });
        }
    }
    out
}

/// Prints Figure 12 from precomputed points.
pub fn render(points: &[Point]) {
    header("Figure 12: techniques applied incrementally (SAGE sup., Server C)");
    println!(
        "{:<5} {:>6} {:>10} {:>10} {:>11} {:>11}",
        "data", "ratio", "RepU(ms)", "PartU(ms)", "+Policy(ms)", "UGache(ms)"
    );
    for p in points {
        println!(
            "{:<5} {:>5}% {:>10.3} {:>10.3} {:>11.3} {:>11.3}",
            p.dataset, p.ratio_pct, p.repu_ms, p.partu_ms, p.policy_ms, p.ugache_ms
        );
    }
}

/// Computes and prints Figure 12.
pub fn run(s: &Scenario) -> Vec<Point> {
    let points = compute(s);
    render(&points);
    points
}
