//! Figure 2: hit rate and extraction time vs cache ratio, replication vs
//! partition (vs UGache), supervised GraphSAGE on PA, Server C.

use crate::scenario::{header, ms, registry, PlatformId, Scenario};
use cache_policy::baselines;
use emb_workload::{GnnDatasetId, GnnModel};
use serde::Serialize;
use ugache::baselines::{build_system, SystemKind};

/// One cache-ratio data point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Point {
    /// Per-GPU cache ratio in percent of total entries.
    pub ratio_pct: f64,
    /// Replication local (= global) hit rate on the measured batches.
    pub rep_local: f64,
    /// Partition local hit rate.
    pub part_local: f64,
    /// Partition global hit rate.
    pub part_global: f64,
    /// Replication extraction ms (naive peer, like the motivating study).
    pub rep_ms: f64,
    /// Partition extraction ms.
    pub part_ms: f64,
    /// UGache extraction ms.
    pub ugache_ms: f64,
}

/// Empirical hit split of a placement over measured batches.
fn hit_rates(placement: &cache_policy::Placement, keys_per_gpu: &[Vec<u32>]) -> (f64, f64) {
    let mut local = 0u64;
    let mut cached = 0u64;
    let mut total = 0u64;
    for (gpu, keys) in keys_per_gpu.iter().enumerate() {
        for (loc, count) in placement.split_keys(gpu, keys) {
            total += count;
            match loc {
                gpu_platform::Location::Gpu(j) if j == gpu => {
                    local += count;
                    cached += count;
                }
                gpu_platform::Location::Gpu(_) => cached += count,
                gpu_platform::Location::Host => {}
            }
        }
    }
    (
        local as f64 / total.max(1) as f64,
        cached as f64 / total.max(1) as f64,
    )
}

/// Computes the Figure 2 series (no printing).
pub fn compute(s: &Scenario) -> Vec<Point> {
    let def = registry()
        .gnn_def(
            GnnDatasetId::Pa,
            GnnModel::GraphSageSupervised,
            PlatformId::ServerC,
        )
        .expect("fig2's scenario is registered");
    let plat = def.resolve_platform();
    let (mut w, hotness) = def.gnn(s);
    let e = hotness.len();
    let mut probe = w.clone();
    let accesses = probe.measure_accesses_per_iter(2);

    let mut out = Vec::new();
    for ratio_pct in [2.0, 4.0, 8.0, 12.0, 16.0, 20.0, 25.0] {
        let cap = ((ratio_pct / 100.0) * e as f64) as usize;
        let keys: Vec<Vec<u32>> = w.next_batch();

        let rep = baselines::replication(&plat, &hotness, cap);
        let part = baselines::partition(&plat, &hotness, cap).expect("Server C is uniform");
        let (rep_local, _) = hit_rates(&rep, &keys);
        let (part_local, part_global) = hit_rates(&part, &keys);

        let t = |kind: SystemKind| {
            build_system(
                kind,
                &plat,
                &hotness,
                cap,
                w.dataset().entry_bytes,
                accesses,
                3,
            )
            .unwrap()
            .extract(&keys)
            .makespan
            .as_secs_f64()
        };
        out.push(Point {
            ratio_pct,
            rep_local,
            part_local,
            part_global,
            rep_ms: t(SystemKind::RepU) * 1e3,
            part_ms: t(SystemKind::PartU) * 1e3,
            ugache_ms: t(SystemKind::UGache) * 1e3,
        });
    }
    out
}

/// Prints Figure 2 from precomputed points.
pub fn render(points: &[Point]) {
    header("Figure 2: hit rate & extraction time vs cache ratio (SAGE sup., PA, Server C)");
    println!(
        "{:>6} {:>10} {:>11} {:>12} {:>9} {:>9} {:>10}",
        "ratio", "rep.local", "part.local", "part.global", "rep(ms)", "part(ms)", "ugache(ms)"
    );
    for p in points {
        println!(
            "{:>5}% {:>9.1}% {:>10.1}% {:>11.1}% {:>9} {:>9} {:>10}",
            p.ratio_pct,
            p.rep_local * 100.0,
            p.part_local * 100.0,
            p.part_global * 100.0,
            ms(p.rep_ms / 1e3),
            ms(p.part_ms / 1e3),
            ms(p.ugache_ms / 1e3)
        );
    }
}

/// Computes and prints Figure 2.
pub fn run(s: &Scenario) -> Vec<Point> {
    let points = compute(s);
    render(&points);
    points
}
