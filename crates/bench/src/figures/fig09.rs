//! Figure 9: log-scale hotness blocking with coarse/fine size caps.

use crate::scenario::{header, Scenario};
use cache_policy::{build_blocks, BlockConfig};
use emb_workload::GnnDatasetId;
use gpu_platform::Platform;

/// Per-hotness-level blocking statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelRow {
    /// Log2 hotness level (0 = hottest).
    pub level: u32,
    /// Entries at this level.
    pub entries: usize,
    /// Blocks the level was split into.
    pub blocks: usize,
    /// Largest block at this level.
    pub max_block: usize,
}

/// Prints Figure 9 and returns per-level rows.
pub fn run(s: &Scenario) -> Vec<LevelRow> {
    header("Figure 9: hotness-block batching (PA profile, log-scale levels)");
    let plat = Platform::server_c();
    let (_, hotness) = s.gnn(
        GnnDatasetId::Pa,
        emb_workload::GnnModel::GraphSageSupervised,
        &plat,
    );
    let cfg = BlockConfig {
        min_splits: plat.num_gpus(),
        max_blocks: 4096,
        ..Default::default()
    };
    let blocks = build_blocks(&hotness, &cfg);

    let mut rows: Vec<LevelRow> = Vec::new();
    for b in &blocks {
        match rows.iter_mut().find(|r| r.level == b.level) {
            Some(r) => {
                r.entries += b.size();
                r.blocks += 1;
                r.max_block = r.max_block.max(b.size());
            }
            None => rows.push(LevelRow {
                level: b.level,
                entries: b.size(),
                blocks: 1,
                max_block: b.size(),
            }),
        }
    }
    let coarse_cap = ((cfg.coarse_cap * hotness.len() as f64).ceil()) as usize;
    println!(
        "coarse cap: {coarse_cap} entries/block; fine: ≥{} blocks/level",
        cfg.min_splits
    );
    println!(
        "{:>6} {:>10} {:>8} {:>10}",
        "level", "entries", "blocks", "max.block"
    );
    for r in rows.iter().take(14) {
        println!(
            "{:>6} {:>10} {:>8} {:>10}",
            r.level, r.entries, r.blocks, r.max_block
        );
    }
    if rows.len() > 14 {
        println!(
            "  ... {} more levels, {} blocks total",
            rows.len() - 14,
            blocks.len()
        );
    }
    rows
}
