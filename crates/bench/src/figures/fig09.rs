//! Figure 9: log-scale hotness blocking with coarse/fine size caps.

use crate::scenario::{header, registry, PlatformId, Scenario};
use cache_policy::{build_blocks, BlockConfig};
use emb_workload::GnnDatasetId;
use serde::Serialize;

/// Per-hotness-level blocking statistics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LevelRow {
    /// Log2 hotness level (0 = hottest).
    pub level: u32,
    /// Entries at this level.
    pub entries: usize,
    /// Blocks the level was split into.
    pub blocks: usize,
    /// Largest block at this level.
    pub max_block: usize,
}

/// The full Figure 9 result: per-level rows plus the blocking knobs the
/// printout reports.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig09Data {
    /// Coarse size cap, in entries per block.
    pub coarse_cap_entries: usize,
    /// Minimum splits per level (fine cap).
    pub min_splits: usize,
    /// Total blocks over all levels.
    pub total_blocks: usize,
    /// Per-level statistics, hottest first.
    pub rows: Vec<LevelRow>,
}

/// Computes the Figure 9 blocking statistics (no printing).
pub fn compute(s: &Scenario) -> Fig09Data {
    let def = registry()
        .gnn_def(
            GnnDatasetId::Pa,
            emb_workload::GnnModel::GraphSageSupervised,
            PlatformId::ServerC,
        )
        .expect("fig9's scenario is registered");
    let plat = def.resolve_platform();
    let (_, hotness) = def.gnn(s);
    let cfg = BlockConfig {
        min_splits: plat.num_gpus(),
        max_blocks: 4096,
        ..Default::default()
    };
    let blocks = build_blocks(&hotness, &cfg);

    let mut rows: Vec<LevelRow> = Vec::new();
    for b in &blocks {
        match rows.iter_mut().find(|r| r.level == b.level) {
            Some(r) => {
                r.entries += b.size();
                r.blocks += 1;
                r.max_block = r.max_block.max(b.size());
            }
            None => rows.push(LevelRow {
                level: b.level,
                entries: b.size(),
                blocks: 1,
                max_block: b.size(),
            }),
        }
    }
    Fig09Data {
        coarse_cap_entries: ((cfg.coarse_cap * hotness.len() as f64).ceil()) as usize,
        min_splits: cfg.min_splits,
        total_blocks: blocks.len(),
        rows,
    }
}

/// Prints Figure 9 from precomputed data.
pub fn render(data: &Fig09Data) {
    header("Figure 9: hotness-block batching (PA profile, log-scale levels)");
    println!(
        "coarse cap: {} entries/block; fine: ≥{} blocks/level",
        data.coarse_cap_entries, data.min_splits
    );
    println!(
        "{:>6} {:>10} {:>8} {:>10}",
        "level", "entries", "blocks", "max.block"
    );
    for r in data.rows.iter().take(14) {
        println!(
            "{:>6} {:>10} {:>8} {:>10}",
            r.level, r.entries, r.blocks, r.max_block
        );
    }
    if data.rows.len() > 14 {
        println!(
            "  ... {} more levels, {} blocks total",
            data.rows.len() - 14,
            data.total_blocks
        );
    }
}

/// Computes and prints Figure 9, returning the per-level rows.
pub fn run(s: &Scenario) -> Vec<LevelRow> {
    let data = compute(s);
    render(&data);
    data.rows
}
