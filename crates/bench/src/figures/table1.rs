//! Table 1: single-GPU runtime/data breakdown for a typical EmbDL app.
//!
//! Unsupervised GraphSAGE training on MAG, one A100-80GB: how much of the
//! end-to-end time the embedding layer takes with and without a cache.

use crate::scenario::{header, ms, registry, PlatformId, Scenario};
use cache_policy::baselines;
use emb_util::fmt;
use emb_workload::{GnnDatasetId, GnnModel};
use extractor::{Extractor, Mechanism};
use gpu_memsim::SimConfig;
use gpu_platform::DedicationConfig;
use serde::Serialize;
use ugache::apps::MlpCostModel;

/// The breakdown the table reports.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Breakdown {
    /// Dense-layer ms per iteration.
    pub mlp_ms: f64,
    /// Embedding extraction ms per iteration, no cache.
    pub emt_ms: f64,
    /// Embedding extraction ms per iteration, with cache.
    pub emt_cached_ms: f64,
    /// Embedding volume bytes.
    pub volume_e: u64,
    /// Bytes held in the cache.
    pub cached_bytes: u64,
    /// GPU-memory share of embedding reads with the cache on.
    pub gmem_ratio: f64,
}

/// Computes the Table 1 breakdown (no printing).
pub fn compute(s: &Scenario) -> Breakdown {
    let def = registry()
        .gnn_def(
            GnnDatasetId::Mag,
            GnnModel::GraphSageUnsupervised,
            PlatformId::SingleA100,
        )
        .expect("table1's scenario is registered");
    let platform = def.resolve_platform();
    let (mut w, hotness) = def.gnn(s);
    let dataset = w.dataset().clone();
    let entry_bytes = dataset.entry_bytes;
    let volume_e = dataset.volume_bytes();

    // Cache capacity: the paper's single-GPU cache (GNNLab-style
    // replication) under the scaled memory budget.
    let cap = ugache::apps::gnn_cache_capacity(&platform, &dataset, ugache::SystemKind::GnnLab);
    let cap = cap.min(dataset.num_entries());
    let cached = baselines::replication(&platform, &hotness, cap);
    let uncached = baselines::cpu_only(&platform, dataset.num_entries());

    let fem = Extractor::new(
        platform.clone(),
        SimConfig::default(),
        Mechanism::Factored {
            dedication: DedicationConfig::default(),
        },
    );

    let mut emt = 0.0;
    let mut emt_cached = 0.0;
    let mut gmem_bytes = 0.0;
    let mut total_bytes = 0.0;
    let mut keys_mean = 0.0;
    for _ in 0..s.iters {
        let keys = w.next_batch();
        keys_mean += keys[0].len() as f64 / s.iters as f64;
        emt += fem
            .extract(&uncached, &keys, entry_bytes)
            .makespan
            .as_secs_f64();
        let out = fem.extract(&cached, &keys, entry_bytes);
        emt_cached += out.makespan.as_secs_f64();
        let g0 = &out.per_gpu[0];
        let host = g0.bytes_from(gpu_platform::Location::Host);
        let all: f64 = g0.per_src.iter().map(|u| u.bytes).sum();
        gmem_bytes += all - host;
        total_bytes += all;
    }
    let n = s.iters as f64;
    let mlp = MlpCostModel::default().gnn_train_secs(
        &platform.gpus[0],
        keys_mean as usize,
        dataset.dim,
        GnnModel::GraphSageUnsupervised.mlp_layers(),
    );

    Breakdown {
        mlp_ms: mlp * 1e3,
        emt_ms: emt / n * 1e3,
        emt_cached_ms: emt_cached / n * 1e3,
        volume_e,
        cached_bytes: cap as u64 * entry_bytes as u64,
        gmem_ratio: if total_bytes > 0.0 {
            gmem_bytes / total_bytes
        } else {
            0.0
        },
    }
}

/// Prints Table 1 from a precomputed breakdown.
pub fn render(b: &Breakdown) {
    header("Table 1: single-GPU breakdown (unsup. GraphSAGE, MAG, 1×A100-80GB)");
    println!(
        "{:<26} {:>10} {:>16} {:>16}",
        "", "MLP", "EMT (w/ $)", "Total (w/ $)"
    );
    println!(
        "{:<26} {:>10} {:>16} {:>16}",
        "Execution Time (ms)",
        ms(b.mlp_ms / 1e3),
        format!("{} ({})", ms(b.emt_ms / 1e3), ms(b.emt_cached_ms / 1e3)),
        format!(
            "{} ({})",
            ms((b.mlp_ms + b.emt_ms) / 1e3),
            ms((b.mlp_ms + b.emt_cached_ms) / 1e3)
        )
    );
    println!(
        "{:<26} {:>10} {:>16} {:>16}",
        "Data Size",
        "~0",
        format!(
            "{} ({} in $)",
            fmt::bytes(b.volume_e),
            fmt::bytes(b.cached_bytes)
        ),
        fmt::bytes(b.volume_e)
    );
    println!(
        "{:<26} {:>10} {:>16} {:>16}",
        "Access Gmem Ratio",
        "100%",
        format!("0% ({})", fmt::pct(b.gmem_ratio)),
        format!("0% ({})", fmt::pct(b.gmem_ratio))
    );
}

/// Computes and prints Table 1.
pub fn run(s: &Scenario) -> Breakdown {
    let b = compute(s);
    render(&b);
    b
}
