//! Figure 13: PCIe and NVLink utilization during extraction with and
//! without the factored extraction mechanism, Server C.
//!
//! As in the paper, locally hit keys are removed in advance so only
//! remote-GPU and host traffic remains.

use crate::scenario::{header, registry, PlatformId, Scenario};
use cache_policy::Placement;
use emb_workload::{DlrDatasetId, GnnDatasetId, GnnModel};
use extractor::{Extractor, Mechanism};
use gpu_memsim::SimConfig;
use gpu_platform::{DedicationConfig, Location, Platform};
use serde::Serialize;
use ugache::baselines::{build_system, SystemKind};

/// One workload's utilization numbers.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Util {
    /// Workload label ("GCN/CF" etc.).
    pub workload: String,
    /// PCIe utilization without FEM (naive peer).
    pub pcie_naive: f64,
    /// PCIe utilization with FEM.
    pub pcie_fem: f64,
    /// NVLink/NVSwitch utilization without FEM.
    pub nvlink_naive: f64,
    /// NVLink/NVSwitch utilization with FEM.
    pub nvlink_fem: f64,
}

fn strip_local(placement: &Placement, keys_per_gpu: &[Vec<u32>]) -> Vec<Vec<u32>> {
    keys_per_gpu
        .iter()
        .enumerate()
        .map(|(gpu, keys)| {
            keys.iter()
                .copied()
                .filter(|&k| placement.access[gpu][k as usize] as usize != gpu)
                .collect()
        })
        .collect()
}

fn measure(
    plat: &Platform,
    placement: &Placement,
    keys: &[Vec<u32>],
    entry_bytes: usize,
    mech: Mechanism,
) -> (f64, f64) {
    let ex = Extractor::new(plat.clone(), SimConfig::default(), mech);
    let out = ex.extract(placement, keys, entry_bytes);
    // Nsight-style utilization: traffic carried over the extraction
    // period, relative to the port's capacity. Congestion lowers it both
    // by slowing the transfers and by stretching the makespan.
    let span = out.makespan.as_secs_f64().max(1e-12);
    let mut pcie = 0.0;
    let mut nv = 0.0;
    let mut n = 0usize;
    for g in &out.per_gpu {
        let host_bytes: f64 = g
            .per_src
            .iter()
            .filter(|u| u.src == Location::Host)
            .map(|u| u.bytes)
            .sum();
        let remote_bytes: f64 = g
            .per_src
            .iter()
            .filter(|u| matches!(u.src, Location::Gpu(j) if j != g.gpu))
            .map(|u| u.bytes)
            .sum();
        pcie += (host_bytes / span / plat.gpus[g.gpu].pcie_bw).min(1.0);
        nv += (remote_bytes / span / plat.outbound_bw(Location::Gpu(g.gpu))).min(1.0);
        n += 1;
    }
    (pcie / n.max(1) as f64, nv / n.max(1) as f64)
}

/// Computes the Figure 13 utilizations (no printing).
pub fn compute(s: &Scenario) -> Vec<Util> {
    let plat = PlatformId::ServerC.resolve();
    let mut out = Vec::new();

    let mut cases: Vec<(String, Placement, Vec<Vec<u32>>, usize)> = Vec::new();
    for ds in [GnnDatasetId::Cf, GnnDatasetId::Mag] {
        let def = registry()
            .gnn_def(ds, GnnModel::Gcn, PlatformId::ServerC)
            .expect("fig13's GNN scenarios are registered");
        let (mut w, hotness) = def.gnn(s);
        let entry_bytes = w.dataset().entry_bytes;
        let cap = ugache::apps::gnn_cache_capacity(&plat, w.dataset(), SystemKind::UGache);
        let mut probe = w.clone();
        let accesses = probe.measure_accesses_per_iter(1);
        let sys = build_system(
            SystemKind::UGache,
            &plat,
            &hotness,
            cap,
            entry_bytes,
            accesses,
            6,
        )
        .unwrap();
        let keys = w.next_batch();
        cases.push((
            format!("GCN/{}", ds.name()),
            sys.placement,
            keys,
            entry_bytes,
        ));
    }
    for ds in [DlrDatasetId::Cr, DlrDatasetId::SynA] {
        let def = registry()
            .dlr_def(ds, PlatformId::ServerC)
            .expect("fig13's DLR scenarios are registered");
        let (mut w, hotness) = def.dlr(s);
        let entry_bytes = w.dataset().entry_bytes;
        let cap = ugache::apps::dlr::dlr_cache_capacity(&plat, w.dataset());
        let mut probe = w.clone();
        let accesses = probe.measure_accesses_per_iter(1);
        let sys = build_system(
            SystemKind::UGache,
            &plat,
            &hotness,
            cap,
            entry_bytes,
            accesses,
            6,
        )
        .unwrap();
        let keys = w.next_batch();
        cases.push((
            format!("DLRM/{}", ds.name()),
            sys.placement,
            keys,
            entry_bytes,
        ));
    }

    for (label, placement, keys, entry_bytes) in cases {
        let remote_keys = strip_local(&placement, &keys);
        let (p0, n0) = measure(
            &plat,
            &placement,
            &remote_keys,
            entry_bytes,
            Mechanism::PeerNaive { seed: 6 },
        );
        let (p1, n1) = measure(
            &plat,
            &placement,
            &remote_keys,
            entry_bytes,
            Mechanism::Factored {
                dedication: DedicationConfig::default(),
            },
        );
        out.push(Util {
            workload: label,
            pcie_naive: p0,
            pcie_fem: p1,
            nvlink_naive: n0,
            nvlink_fem: n1,
        });
    }
    out
}

/// Prints Figure 13 from precomputed utilizations.
pub fn render(utils: &[Util]) {
    header("Figure 13: link utilization w/ and w/o FEM (Server C, local hits removed)");
    println!(
        "{:<12} {:>11} {:>10} {:>13} {:>12}",
        "workload", "PCIe w/o", "PCIe w/", "NVLink w/o", "NVLink w/"
    );
    for u in utils {
        println!(
            "{:<12} {:>10.1}% {:>9.1}% {:>12.1}% {:>11.1}%",
            u.workload,
            u.pcie_naive * 100.0,
            u.pcie_fem * 100.0,
            u.nvlink_naive * 100.0,
            u.nvlink_fem * 100.0
        );
    }
}

/// Computes and prints Figure 13.
pub fn run(s: &Scenario) -> Vec<Util> {
    let utils = compute(s);
    render(&utils);
    utils
}
