//! Figure 16: UGache's approximate (block-batched) policy vs the
//! theoretically optimal policy.
//!
//! "Optimal" is the same LP solved at much finer block granularity — the
//! approximation under test is exactly the §6.3 batching, mirroring how
//! the paper shrinks instances until an exact solve is feasible. Both
//! placements are evaluated with UGache's extraction (as in the paper).

use crate::scenario::{header, registry, PlatformId, Scenario};
use cache_policy::{BlockConfig, SolverConfig, UGacheSolver};
use emb_workload::{DlrDatasetId, GnnDatasetId, GnnModel};
use extractor::{Extractor, Mechanism};
use gpu_memsim::SimConfig;
use gpu_platform::{DedicationConfig, Platform};
use serde::Serialize;

/// One comparison row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Gap {
    /// Workload label.
    pub workload: String,
    /// Extraction ms under the default (coarse-block) UGache policy.
    pub ugache_ms: f64,
    /// Extraction ms under the fine-block "optimal" policy.
    pub optimal_ms: f64,
}

impl Gap {
    /// Relative gap `ugache / optimal − 1`.
    pub fn rel_gap(&self) -> f64 {
        self.ugache_ms / self.optimal_ms - 1.0
    }
}

fn compare(
    plat: &Platform,
    hotness: &cache_policy::Hotness,
    cap: usize,
    entry_bytes: usize,
    accesses: f64,
    keys: &[Vec<u32>],
) -> (f64, f64) {
    let solver = UGacheSolver::new(plat.clone(), DedicationConfig::default());
    let fem = Extractor::new(
        plat.clone(),
        SimConfig::default(),
        Mechanism::Factored {
            dedication: DedicationConfig::default(),
        },
    );
    let caps = vec![cap; plat.num_gpus()];
    let solve = |blocks: BlockConfig| {
        let cfg = SolverConfig {
            blocks,
            entry_bytes,
            accesses_per_iter: accesses,
            dedup_adjust: true,
        };
        let sp = solver.solve(hotness, &caps, &cfg).expect("solver");
        fem.extract(&sp.placement, keys, entry_bytes)
            .makespan
            .as_secs_f64()
            * 1e3
    };
    // Default (coarse) vs fine-grained batching.
    let coarse = solve(BlockConfig {
        max_blocks: 64,
        ..Default::default()
    });
    let fine = solve(BlockConfig {
        coarse_cap: 0.001,
        min_splits: 2 * plat.num_gpus(),
        max_blocks: 384,
    });
    (coarse, fine)
}

/// Computes the Figure 16 gaps (no printing).
pub fn compute(s: &Scenario) -> Vec<Gap> {
    let mut out = Vec::new();

    // Server A: DLRM with CR / SYN-A / SYN-B.
    let plat_a = PlatformId::ServerA.resolve();
    for ds in DlrDatasetId::ALL {
        let def = registry()
            .dlr_def(ds, PlatformId::ServerA)
            .expect("fig16's Server A scenarios are registered");
        let (mut w, hotness) = def.dlr(s);
        let entry_bytes = w.dataset().entry_bytes;
        let cap = ugache::apps::dlr::dlr_cache_capacity(&plat_a, w.dataset());
        let mut probe = w.clone();
        let accesses = probe.measure_accesses_per_iter(1);
        let keys = w.next_batch();
        let (u, o) = compare(&plat_a, &hotness, cap, entry_bytes, accesses, &keys);
        out.push(Gap {
            workload: format!("ServerA DLRM {}", ds.name()),
            ugache_ms: u,
            optimal_ms: o,
        });
    }

    // Server B: reduced synthetic datasets (SYN-As / SYN-Bs).
    let plat_b = PlatformId::ServerB.resolve();
    for ds in [DlrDatasetId::SynA, DlrDatasetId::SynB] {
        let mut small = *s;
        small.dlr_scale = s.dlr_scale * 4; // the paper's reduced tables
        let def = registry()
            .dlr_def(ds, PlatformId::ServerB)
            .expect("fig16's Server B scenarios are registered");
        let (mut w, hotness) = def.dlr(&small);
        let entry_bytes = w.dataset().entry_bytes;
        let cap = ugache::apps::dlr::dlr_cache_capacity(&plat_b, w.dataset());
        let mut probe = w.clone();
        let accesses = probe.measure_accesses_per_iter(1);
        let keys = w.next_batch();
        let (u, o) = compare(&plat_b, &hotness, cap, entry_bytes, accesses, &keys);
        out.push(Gap {
            workload: format!("ServerB DLRM {}s", ds.name()),
            ugache_ms: u,
            optimal_ms: o,
        });
    }

    // Server C: all three GNN models on PA (representative; add CF/MAG in
    // full mode).
    let plat_c = PlatformId::ServerC.resolve();
    let gnn_sets: &[GnnDatasetId] = if s.gnn_scale <= 1024 {
        &[GnnDatasetId::Pa, GnnDatasetId::Cf, GnnDatasetId::Mag]
    } else {
        &[GnnDatasetId::Pa]
    };
    for model in GnnModel::ALL {
        for &ds in gnn_sets {
            let def = registry()
                .gnn_def(ds, model, PlatformId::ServerC)
                .expect("fig16's Server C scenarios are registered");
            let (mut w, hotness) = def.gnn(s);
            let entry_bytes = w.dataset().entry_bytes;
            let cap =
                ugache::apps::gnn_cache_capacity(&plat_c, w.dataset(), ugache::SystemKind::UGache);
            let mut probe = w.clone();
            let accesses = probe.measure_accesses_per_iter(1);
            let keys = w.next_batch();
            let (u, o) = compare(&plat_c, &hotness, cap, entry_bytes, accesses, &keys);
            out.push(Gap {
                workload: format!("ServerC {} {}", model.name(), ds.name()),
                ugache_ms: u,
                optimal_ms: o,
            });
        }
    }
    out
}

/// Prints Figure 16 from precomputed gaps.
pub fn render(gaps: &[Gap]) {
    header("Figure 16: UGache vs theoretically-optimal cache policy");
    println!(
        "{:<28} {:>11} {:>12} {:>7}",
        "workload", "ugache(ms)", "optimal(ms)", "gap"
    );
    for g in gaps {
        println!(
            "{:<28} {:>11.3} {:>12.3} {:>6.1}%",
            g.workload,
            g.ugache_ms,
            g.optimal_ms,
            g.rel_gap() * 100.0
        );
    }
    let mean_gap: f64 = gaps.iter().map(Gap::rel_gap).sum::<f64>() / gaps.len().max(1) as f64;
    println!("mean gap: {:.1}%", mean_gap * 100.0);
}

/// Computes and prints Figure 16.
pub fn run(s: &Scenario) -> Vec<Gap> {
    let gaps = compute(s);
    render(&gaps);
    gaps
}
