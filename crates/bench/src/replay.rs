//! Record/replay driver: captures a registered scenario's access
//! stream to a UGTR trace and replays traces against any policy on any
//! platform.
//!
//! The wire format and CLI semantics are specified in EXPERIMENTS.md
//! ("Access-trace format"); this module implements the spec. Replay
//! derives everything it needs — hotness, cache sizing, the access
//! volume the solver's time model sees — from the trace itself, so a
//! replay is a pure function of (trace bytes, policy, platform) and two
//! replays write byte-identical reports at any worker-pool width.

use crate::figures::serve;
use crate::scenario::{PlatformId, PolicyId, Scenario, ScenarioDef, WorkloadSpec};
use cache_policy::Hotness;
use emb_cache::GatherStats;
use emb_serve::{draw_request_keys, ClientPopulation};
use emb_workload::Trace;
use serde::Serialize;
use ugache::baselines::{build_system, SystemKind};

/// Replay-report schema version (bump on any field change).
pub const REPLAY_SCHEMA_VERSION: u32 = 1;

/// Bytes per embedding entry assumed when replaying (the trace carries
/// keys, not geometry; a fixed value keeps reports comparable across
/// traces).
pub const REPLAY_ENTRY_BYTES: usize = 128;

/// Per-iteration unique-key hit counters plus the extraction makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct IterationStats {
    /// Keys served from the destination GPU's own arena.
    pub local: u64,
    /// Keys served from a remote GPU's arena.
    pub remote: u64,
    /// Keys served from the host table.
    pub host: u64,
    /// Extraction makespan (simulated nanoseconds).
    pub makespan_ns: u64,
}

/// Summed tier counters over a whole replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TierTotals {
    /// Total local-tier keys.
    pub local: u64,
    /// Total remote-tier keys.
    pub remote: u64,
    /// Total host-tier keys.
    pub host: u64,
}

/// The deterministic JSON report a replay writes (`repro replay --out`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplayReport {
    /// [`REPLAY_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Always `"ugache-replay"`.
    pub kind: String,
    /// The trace's stamped scenario name.
    pub scenario: String,
    /// The trace's stamped root seed.
    pub seed: u64,
    /// Number of replayed records.
    pub records: usize,
    /// Registry name of the replayed policy.
    pub policy: String,
    /// Registry name of the replay platform.
    pub platform: String,
    /// Key-domain size from the trace header.
    pub num_keys: u64,
    /// Derived per-GPU cache capacity (entries).
    pub cap_entries: usize,
    /// [`REPLAY_ENTRY_BYTES`].
    pub entry_bytes: usize,
    /// Mean keys per record fed to the solver's time model.
    pub accesses_per_iter: f64,
    /// One row per record, in trace order.
    pub iterations: Vec<IterationStats>,
    /// [`IterationStats`] summed over all records.
    pub totals: TierTotals,
}

/// Maps a registry policy name to the simulator's system kind.
pub fn system_kind(policy: PolicyId) -> SystemKind {
    match policy {
        PolicyId::UGache => SystemKind::UGache,
        PolicyId::GnnLab => SystemKind::GnnLab,
        PolicyId::WholeGraph => SystemKind::WholeGraph,
        PolicyId::PartU => SystemKind::PartU,
        PolicyId::RepU => SystemKind::RepU,
        PolicyId::Quiver => SystemKind::Quiver,
        PolicyId::Hps => SystemKind::Hps,
        PolicyId::Sok => SystemKind::Sok,
    }
}

/// Records `iters` iterations (for `serve`: requests) of the named
/// scenario's access stream, exactly as the live figures would draw it.
///
/// `iters` defaults to the knobs' `iters` (`serve_requests` for the
/// serving scenario) when `None`.
pub fn record_trace(def: &ScenarioDef, knobs: &Scenario, iters: Option<usize>) -> Trace {
    match def.workload {
        WorkloadSpec::Gnn { .. } => {
            let (mut w, _) = def.gnn(knobs);
            let n = w.dataset().num_entries() as u64;
            Trace::capture(&mut w, iters.unwrap_or(knobs.iters), def.seed, n, &def.name)
        }
        WorkloadSpec::Dlr { .. } => {
            let (mut w, _) = def.dlr(knobs);
            let n = w.dataset().num_entries() as u64;
            Trace::capture(&mut w, iters.unwrap_or(knobs.iters), def.seed, n, &def.name)
        }
        WorkloadSpec::ServeZipf => {
            let mut cfg = serve::serve_config(knobs);
            cfg.requests = iters.unwrap_or(knobs.serve_requests);
            let mut clients = ClientPopulation::new(
                cfg.seed,
                cfg.num_users,
                cfg.num_keys,
                cfg.user_alpha,
                cfg.keys_per_request,
            );
            // One record per request, raw draw order and duplicates
            // preserved (the serving path shards and dedups at batch
            // time, not at draw time).
            let records: Vec<Vec<Vec<u32>>> = draw_request_keys(&cfg, &mut clients, 0)
                .into_iter()
                .map(|keys| vec![keys])
                .collect();
            Trace {
                seed: def.seed,
                num_gpus: 1,
                num_keys: cfg.num_keys,
                scenario: def.name.clone(),
                records,
            }
        }
    }
}

/// Defaults the replay platform to the one whose GPU count matches the
/// trace header (4 → `server_a`, 8 → `server_c`, 1 → `a100_80`).
pub fn default_platform(trace_gpus: u32) -> Option<PlatformId> {
    match trace_gpus {
        4 => Some(PlatformId::ServerA),
        8 => Some(PlatformId::ServerC),
        1 => Some(PlatformId::SingleA100),
        _ => None,
    }
}

/// Re-shards one record onto `g` GPUs when the trace's GPU count
/// differs from the replay platform's: keys are merged, dealt
/// `key % g`, sorted, and deduplicated — exactly like the serving
/// path's batch sharding. With matching counts the record is fed
/// through unchanged.
fn normalize(record: &[Vec<u32>], g: usize) -> Vec<Vec<u32>> {
    if record.len() == g {
        return record.to_vec();
    }
    let mut shards = vec![Vec::new(); g];
    for keys in record {
        for &k in keys {
            shards[k as usize % g].push(k);
        }
    }
    for shard in &mut shards {
        shard.sort_unstable();
        shard.dedup();
    }
    shards
}

/// Replays a decoded trace under `policy` on `platform` (or the
/// trace-matched default) and returns the per-iteration hit counters.
///
/// # Errors
///
/// Returns a message when no platform matches the trace's GPU count and
/// none was given, or when the system cannot be built on the chosen
/// platform (e.g. WholeGraph's launch constraints).
pub fn replay_trace(
    trace: &Trace,
    policy: PolicyId,
    platform: Option<PlatformId>,
) -> Result<ReplayReport, String> {
    let platform_id = platform
        .or_else(|| default_platform(trace.num_gpus))
        .ok_or_else(|| {
            format!(
                "no builtin platform has {} GPUs; pass --platform",
                trace.num_gpus
            )
        })?;
    let plat = platform_id.resolve();
    let g = plat.num_gpus();

    // Hotness comes from the trace's own key frequencies: the replay
    // needs no dataset, only the stream.
    let mut counts = vec![0u64; trace.num_keys as usize];
    for record in &trace.records {
        for keys in record {
            for &k in keys {
                counts[k as usize] += 1;
            }
        }
    }
    let hotness = Hotness::from_counts(&counts);

    let shards_per_record: Vec<Vec<Vec<u32>>> =
        trace.records.iter().map(|r| normalize(r, g)).collect();
    let total_keys: usize = shards_per_record
        .iter()
        .flat_map(|r| r.iter())
        .map(Vec::len)
        .sum();
    let accesses_per_iter = total_keys as f64 / shards_per_record.len().max(1) as f64;
    let cap_entries = (trace.num_keys as usize / (8 * g)).max(64);

    let sys = build_system(
        system_kind(policy),
        &plat,
        &hotness,
        cap_entries,
        REPLAY_ENTRY_BYTES,
        accesses_per_iter,
        trace.seed,
    )?;

    let host_idx = g as u8;
    let mut iterations = Vec::with_capacity(shards_per_record.len());
    let mut totals = GatherStats::default();
    for shards in &shards_per_record {
        let out = sys.extract(shards);
        let mut stats = GatherStats::default();
        for (dst, keys) in shards.iter().enumerate() {
            for &k in keys {
                let src = sys.placement.access[dst][k as usize];
                if src == dst as u8 {
                    stats.local += 1;
                } else if src == host_idx {
                    stats.host += 1;
                } else {
                    stats.remote += 1;
                }
            }
        }
        totals.merge(&stats);
        iterations.push(IterationStats {
            local: stats.local,
            remote: stats.remote,
            host: stats.host,
            makespan_ns: out.makespan.as_nanos(),
        });
    }

    Ok(ReplayReport {
        schema_version: REPLAY_SCHEMA_VERSION,
        kind: "ugache-replay".to_string(),
        scenario: trace.scenario.clone(),
        seed: trace.seed,
        records: trace.records.len(),
        policy: policy.name().to_string(),
        platform: platform_id.name().to_string(),
        num_keys: trace.num_keys,
        cap_entries,
        entry_bytes: REPLAY_ENTRY_BYTES,
        accesses_per_iter,
        iterations,
        totals: TierTotals {
            local: totals.local,
            remote: totals.remote,
            host: totals.host,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::registry;

    fn tiny_knobs() -> Scenario {
        Scenario {
            gnn_scale: 16_384,
            dlr_scale: 65_536,
            gnn_batch: 64,
            dlr_batch: 64,
            iters: 2,
            serve_users: 10_000,
            serve_requests: 8,
        }
    }

    #[test]
    fn record_replay_is_deterministic() {
        let def = registry()
            .get("dlr/syn_a@server_a")
            .expect("registered")
            .clone();
        let knobs = tiny_knobs();
        let t1 = record_trace(&def, &knobs, None);
        let t2 = record_trace(&def, &knobs, None);
        assert_eq!(t1.to_bytes(), t2.to_bytes());
        let r1 = replay_trace(&t1, PolicyId::UGache, None).unwrap();
        let r2 = replay_trace(&t2, PolicyId::UGache, None).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1.platform, "server_a");
        assert_eq!(r1.records, 2);
        let sum: u64 = r1
            .iterations
            .iter()
            .map(|i| i.local + i.remote + i.host)
            .sum();
        assert_eq!(
            sum,
            r1.totals.local + r1.totals.remote + r1.totals.host,
            "totals are the iteration sum"
        );
        assert!(sum > 0, "the replay touched keys");
    }

    #[test]
    fn serve_traces_reshard_onto_multi_gpu_platforms() {
        let def = registry().serve_def().expect("registered").clone();
        let knobs = tiny_knobs();
        let t = record_trace(&def, &knobs, Some(4));
        assert_eq!(t.num_gpus, 1);
        assert_eq!(t.records.len(), 4);
        // 1-GPU trace defaults to the single A100 and can be re-sharded
        // onto Server A explicitly.
        let single = replay_trace(&t, PolicyId::Hps, None).unwrap();
        assert_eq!(single.platform, "a100_80");
        let quad = replay_trace(&t, PolicyId::Hps, Some(PlatformId::ServerA)).unwrap();
        assert_eq!(quad.platform, "server_a");
        assert!(quad.totals.local + quad.totals.remote + quad.totals.host > 0);
    }

    #[test]
    fn unmatched_gpu_count_requires_explicit_platform() {
        let t = Trace {
            seed: 1,
            num_gpus: 3,
            num_keys: 10,
            scenario: "x".to_string(),
            records: vec![vec![vec![1], vec![2], vec![3]]],
        };
        let err = replay_trace(&t, PolicyId::UGache, None).unwrap_err();
        assert!(err.contains("--platform"), "{err}");
    }
}
