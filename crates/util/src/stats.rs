//! Lightweight statistics used by the benchmark harness.

/// Streaming mean / variance / extrema (Welford's algorithm).
///
/// # Examples
///
/// ```
/// let mut s = emb_util::OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A fixed-bucket histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of recorded observations, including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Bucket counts (in-range only).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (0.0–1.0) by linear scan of buckets.
    ///
    /// Returns `None` when the histogram is empty. Out-of-range counts clamp
    /// to the range ends.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + w * (i as f64 + 1.0));
            }
        }
        Some(self.hi)
    }
}

/// Computes an exact percentile of a slice via quickselect (O(n) expected
/// instead of sorting the whole copy; same nearest-rank answer).
///
/// Returns `None` for an empty slice. `p` is in `[0, 100]`.
///
/// # Panics
///
/// Panics if the input contains a NaN.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    let rank = (p.clamp(0.0, 100.0) / 100.0 * (v.len() - 1) as f64).round() as usize;
    let (_, kth, _) = v.select_nth_unstable_by(rank, |a, b| {
        a.partial_cmp(b).expect("NaN in percentile input")
    });
    Some(*kth)
}

/// Geometric mean of positive values; `None` if empty or any value <= 0.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn histogram_buckets_and_ranges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let q50 = h.quantile(0.5).unwrap();
        assert!((q50 - 50.0).abs() <= 1.0, "got {q50}");
        assert_eq!(h.quantile(0.0).unwrap(), 1.0);
        assert!(Histogram::new(0.0, 1.0, 2).quantile(0.5).is_none());
    }

    #[test]
    fn percentile_exact() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_matches_full_sort() {
        // The quickselect path must agree with the original sort-based
        // implementation at every rank, including ties and duplicates.
        let sorted_impl = |xs: &[f64], p: f64| -> Option<f64> {
            if xs.is_empty() {
                return None;
            }
            let mut v: Vec<f64> = xs.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
            let rank = (p.clamp(0.0, 100.0) / 100.0 * (v.len() - 1) as f64).round() as usize;
            Some(v[rank])
        };
        use rand::Rng;
        let mut rng = crate::seed_rng(0x5EED);
        for len in [1usize, 2, 3, 7, 100, 501] {
            let xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let mut with_ties = xs.clone();
            with_ties.extend(xs.iter().take(len / 2).copied());
            for p in [-5.0, 0.0, 1.0, 25.0, 50.0, 75.0, 99.0, 100.0, 250.0] {
                assert_eq!(percentile(&xs, p), sorted_impl(&xs, p), "len {len} p {p}");
                assert_eq!(
                    percentile(&with_ties, p),
                    sorted_impl(&with_ties, p),
                    "ties len {len} p {p}"
                );
            }
        }
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
    }
}
