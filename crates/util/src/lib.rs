//! Shared utilities for the UGache reproduction.
//!
//! Everything stochastic in this workspace flows through [`rng`], so a
//! single `u64` seed fully determines a run. [`zipf`] implements the
//! power-law samplers that drive skewed embedding access, [`stats`]
//! provides the histogram/percentile machinery the benchmark harness
//! reports with, [`time`] defines the fixed-point simulated-time type
//! used by the platform simulator, and [`pool`] is the deterministic
//! chunk-based worker pool behind the `--threads N` flag.

#![deny(missing_docs)]

pub mod fmt;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;
pub mod zipf;

pub use rng::{seed_rng, split_seed};
pub use stats::{Histogram, OnlineStats};
pub use time::SimTime;
pub use zipf::ZipfSampler;
