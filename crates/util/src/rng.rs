//! Deterministic RNG plumbing.
//!
//! Every stochastic component in the workspace accepts an explicit `u64`
//! seed and derives its generator through [`seed_rng`]. Sub-components
//! derive statistically independent child seeds with [`split_seed`], so
//! adding a new consumer of randomness never perturbs existing streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a [`StdRng`] from a bare `u64` seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = emb_util::seed_rng(7);
/// let mut b = emb_util::seed_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seed_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Uses the SplitMix64 finalizer, which is a bijection on `u64` with good
/// avalanche properties, so distinct `(seed, label)` pairs map to
/// well-separated child seeds.
///
/// # Examples
///
/// ```
/// let a = emb_util::split_seed(42, 0);
/// let b = emb_util::split_seed(42, 1);
/// assert_ne!(a, b);
/// ```
pub fn split_seed(seed: u64, label: u64) -> u64 {
    let mut z = seed ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seed_rng_is_deterministic() {
        let xs: Vec<u32> = (0..16).map(|_| 0u32).collect();
        let mut r1 = seed_rng(123);
        let mut r2 = seed_rng(123);
        let a: Vec<u32> = xs.iter().map(|_| r1.gen()).collect();
        let b: Vec<u32> = xs.iter().map(|_| r2.gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = seed_rng(1);
        let mut r2 = seed_rng(2);
        let a: u64 = r1.gen();
        let b: u64 = r2.gen();
        assert_ne!(a, b);
    }

    #[test]
    fn split_seed_labels_are_distinct() {
        let parent = 0xDEAD_BEEF;
        let children: Vec<u64> = (0..64).map(|l| split_seed(parent, l)).collect();
        let mut sorted = children.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), children.len());
    }

    #[test]
    fn split_seed_is_stable_across_calls() {
        assert_eq!(split_seed(5, 9), split_seed(5, 9));
    }
}
