//! Deterministic intra-target parallelism: a scoped, chunk-based worker
//! pool.
//!
//! The repro harness already parallelizes *across* targets (`--jobs N`);
//! this module parallelizes *inside* a target — the gather copy loops,
//! workload trace generation, and per-block LP solves are all
//! embarrassingly parallel — without giving up the byte-determinism the
//! harness is built on. Three rules make that possible:
//!
//! 1. **Fixed chunk boundaries.** Work is cut into chunks whose
//!    boundaries depend only on the input size (and a caller-chosen
//!    chunk length), never on the worker count. Workers *claim* chunks
//!    dynamically, but chunk `i` is the same work at `--threads 1` and
//!    `--threads 8`.
//! 2. **Results land by chunk index.** Each chunk's result is written
//!    into slot `i` of the output; callers always see chunk order, never
//!    completion order.
//! 3. **Telemetry merges in chunk order.** When the calling thread has
//!    an [`emb_telemetry`] scope active, every chunk — on any worker, at
//!    any thread count, *including one* — runs inside its own child
//!    scope, and the child reports are [`emb_telemetry::absorb`]ed into
//!    the caller's scope in chunk-index order after all chunks finish.
//!    Counter totals (f64 sums!), event sequences, and span timelines
//!    are therefore bit-identical across thread counts by construction,
//!    not by accident of scheduling.
//!
//! The worker count is process-global ([`set_threads`], default 1, set
//! once by the `repro --threads N` flag) with a thread-local override
//! ([`with_threads`]) for tests and benches. Worker threads run their
//! chunks with an override of 1, so nested `par_*` calls degrade to
//! serial execution instead of oversubscribing.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-global worker count (see [`set_threads`]); 1 = serial.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Per-thread override; 0 means "no override, use the global".
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Sets the process-global worker count used by the `par_*` functions.
///
/// Intended to be called once at startup (the `repro` binary wires the
/// `--threads N` flag / `REPRO_THREADS` env var here) before any
/// parallel region runs. Scoped callers (tests, benches) should prefer
/// [`with_threads`].
///
/// # Panics
///
/// Panics if `n == 0`; a pool with no workers cannot make progress, and
/// the CLI layer rejects `--threads 0` before it gets here.
pub fn set_threads(n: usize) {
    assert!(n >= 1, "worker count must be >= 1, got 0");
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The worker count the next `par_*` call on this thread will use: the
/// innermost [`with_threads`] override if one is active, else the
/// [`set_threads`] global (default 1).
pub fn current_threads() -> usize {
    let o = THREAD_OVERRIDE.with(Cell::get);
    if o != 0 {
        o
    } else {
        GLOBAL_THREADS.load(Ordering::Relaxed)
    }
}

/// Restores the previous thread-local override even if `f` panics.
struct OverrideGuard(usize);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|o| o.set(self.0));
    }
}

/// Runs `f` with the worker count overridden to `n` on this thread only.
///
/// Overrides nest (the innermost wins) and are restored on unwind, so
/// concurrently running tests can pick their own thread counts without
/// touching the process global.
///
/// # Panics
///
/// Panics if `n == 0`; propagates any panic from `f`.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "worker count must be >= 1, got 0");
    let prev = THREAD_OVERRIDE.with(|o| {
        let prev = o.get();
        o.set(n);
        prev
    });
    let _guard = OverrideGuard(prev);
    f()
}

/// The deterministic chunk boundaries for `len` items in chunks of
/// `chunk_len`: `[i*chunk_len, min((i+1)*chunk_len, len))`, a function
/// of the input size only — never of the worker count.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn chunk_bounds(len: usize, chunk_len: usize) -> Vec<(usize, usize)> {
    assert!(chunk_len >= 1, "chunk length must be >= 1");
    (0..len.div_ceil(chunk_len))
        .map(|i| (i * chunk_len, ((i + 1) * chunk_len).min(len)))
        .collect()
}

/// One chunk's outcome: the payload plus the telemetry recorded while
/// computing it (present only when the caller had a scope active).
type ChunkOutcome<R> = (R, Option<emb_telemetry::Report>);

/// Runs `f(i)` inside a child telemetry scope when requested.
fn run_chunk<W, R>(scoped: bool, i: usize, work: W, f: &impl Fn(usize, W) -> R) -> ChunkOutcome<R> {
    if scoped {
        let (r, report) = emb_telemetry::collect(|| f(i, work));
        (r, Some(report))
    } else {
        (f(i, work), None)
    }
}

/// The shared executor: runs `f(i, work[i])` for every work item,
/// returning results in item order and absorbing per-chunk telemetry in
/// item order. `W` is whatever a chunk needs to own (`usize`, `&T`,
/// `&mut [T]`, …).
fn execute<W: Send, R: Send>(work: Vec<W>, f: impl Fn(usize, W) -> R + Sync) -> Vec<R> {
    let n = work.len();
    if n == 0 {
        return Vec::new();
    }
    // Telemetry scoping is decided by the *caller's* thread: if a scope
    // is active here, every chunk must record into a child scope — even
    // when run inline — so the merged stream is identical at any worker
    // count (see the module docs).
    let scoped = emb_telemetry::enabled();
    let workers = current_threads().min(n);

    let outcomes: Vec<ChunkOutcome<R>> = if workers <= 1 {
        work.into_iter()
            .enumerate()
            .map(|(i, w)| run_chunk(scoped, i, w, &f))
            .collect()
    } else {
        let pending: Vec<Mutex<Option<W>>> =
            work.into_iter().map(|w| Mutex::new(Some(w))).collect();
        let slots: Vec<Mutex<Option<ChunkOutcome<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Workers run their chunks serially: a nested par_*
                    // call inside a chunk must not spawn another layer.
                    with_threads(1, || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let w = pending[i]
                            .lock()
                            .expect("work lock")
                            .take()
                            .expect("chunk claimed once");
                        let outcome = run_chunk(scoped, i, w, &f);
                        *slots[i].lock().expect("slot lock") = Some(outcome);
                    })
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("slot lock").expect("chunk computed"))
            .collect()
    };

    outcomes
        .into_iter()
        .map(|(r, report)| {
            if let Some(report) = report {
                emb_telemetry::absorb(&report);
            }
            r
        })
        .collect()
}

/// Runs `f(0), f(1), …, f(n-1)` on the pool and returns the results in
/// index order. Each index is one chunk.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f` after all workers
/// finish.
pub fn par_indexed<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    execute((0..n).collect(), |_, i| f(i))
}

/// Applies `f` to every item of `items` on the pool and returns the
/// results in item order. Each item is one chunk; use for coarse-grained
/// items (an LP solve, a per-GPU trace draw), not per-element work.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f` after all workers
/// finish.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    execute(items.iter().collect(), f)
}

/// Cuts `data` into disjoint mutable chunks of `chunk_len` (boundaries
/// per [`chunk_bounds`]) and runs `f(chunk_index, chunk)` for each on
/// the pool, returning the results in chunk order. This is the writer
/// side of the two-pass gather: chunks own disjoint output slices, so no
/// synchronization is needed inside `f`.
///
/// # Panics
///
/// Panics if `chunk_len == 0`; propagates a panic from any invocation of
/// `f` after all workers finish.
pub fn par_chunks_mut<T: Send, R: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    assert!(chunk_len >= 1, "chunk length must be >= 1");
    execute(data.chunks_mut(chunk_len).collect(), f)
}

/// Like [`par_map`], but each item is taken by value, so chunks can own
/// mutable state (per-chunk RNGs, scratch buffers) without aliasing.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f` after all workers
/// finish.
pub fn par_map_owned<W: Send, R: Send>(work: Vec<W>, f: impl Fn(usize, W) -> R + Sync) -> Vec<R> {
    execute(work, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_chunk_order() {
        let out = with_threads(4, || par_indexed(64, |i| i * i));
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_bounds_ignore_worker_count() {
        assert_eq!(chunk_bounds(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(chunk_bounds(8, 4), vec![(0, 4), (4, 8)]);
        assert_eq!(chunk_bounds(0, 4), Vec::new());
        assert_eq!(chunk_bounds(3, 100), vec![(0, 3)]);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_slices() {
        for threads in [1, 2, 8] {
            let mut data = vec![0u64; 1000];
            let counts = with_threads(threads, || {
                par_chunks_mut(&mut data, 128, |ci, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (ci * 128 + k) as u64;
                    }
                    chunk.len()
                })
            });
            assert_eq!(data, (0..1000).collect::<Vec<u64>>());
            assert_eq!(counts, vec![128, 128, 128, 128, 128, 128, 128, 104]);
        }
    }

    #[test]
    fn telemetry_is_identical_across_thread_counts() {
        let run = |threads: usize| {
            emb_telemetry::collect(|| {
                with_threads(threads, || {
                    par_indexed(16, |i| {
                        emb_telemetry::count("pool.work", 0.1 * (i + 1) as f64);
                        emb_telemetry::observe("pool.size", i as f64);
                        emb_telemetry::event("pool.chunk", || {
                            vec![("i".to_string(), emb_telemetry::EventValue::U64(i as u64))]
                        });
                    })
                });
            })
            .1
        };
        let base = run(1);
        for threads in [2, 3, 8] {
            let r = run(threads);
            assert_eq!(base, r, "threads={threads}");
            // f64 counter totals must match bitwise, not just approximately.
            assert_eq!(
                base.metrics.counters[0].1.to_bits(),
                r.metrics.counters[0].1.to_bits()
            );
        }
        // Events arrive in chunk order with contiguous seqs.
        assert_eq!(base.events.len(), 16);
        for (k, e) in base.events.iter().enumerate() {
            assert_eq!(e.seq, k as u64);
            assert_eq!(e.fields[0].1, emb_telemetry::EventValue::U64(k as u64));
        }
    }

    #[test]
    fn no_scope_means_no_reports() {
        // Recording inside a pool chunk while the caller has no scope is
        // a no-op, same as serial code.
        let out = with_threads(4, || {
            par_indexed(8, |i| {
                emb_telemetry::count("pool.leak", 1.0);
                i
            })
        });
        assert_eq!(out.len(), 8);
        let ((), report) = emb_telemetry::collect(|| {});
        assert!(report.is_empty(), "chunk records must not leak");
    }

    #[test]
    fn override_nests_and_restores() {
        assert_eq!(current_threads(), 1);
        with_threads(4, || {
            assert_eq!(current_threads(), 4);
            with_threads(2, || assert_eq!(current_threads(), 2));
            assert_eq!(current_threads(), 4);
        });
        assert_eq!(current_threads(), 1);
    }

    #[test]
    fn override_restored_after_panic() {
        let caught = std::panic::catch_unwind(|| with_threads(6, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_threads(), 1);
    }

    #[test]
    #[should_panic(expected = "worker count must be >= 1")]
    fn zero_threads_rejected() {
        with_threads(0, || {});
    }

    #[test]
    fn par_map_and_owned_work() {
        let items = vec![10u64, 20, 30];
        let doubled = with_threads(2, || par_map(&items, |_, &x| x * 2));
        assert_eq!(doubled, vec![20, 40, 60]);
        let rngs: Vec<u64> = (0..4).map(|g| crate::split_seed(7, g)).collect();
        let out = with_threads(3, || {
            par_map_owned(rngs.clone(), |i, seed| (i as u64, seed))
        });
        assert_eq!(out.len(), 4);
        for (i, (idx, seed)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*seed, crate::split_seed(7, i as u64));
        }
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(par_indexed(0, |i| i).is_empty());
        let mut empty: [u8; 0] = [];
        assert!(par_chunks_mut(&mut empty, 4, |_, _| ()).is_empty());
    }
}
