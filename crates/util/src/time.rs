//! Fixed-point simulated time.
//!
//! The platform simulator advances a virtual clock; using a `u64`
//! nanosecond representation keeps arithmetic exact and `Ord`-comparable
//! (floating point time drifts and breaks event-queue ordering).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, saturating at the range ends.
    ///
    /// Negative or NaN inputs map to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies a span by a non-negative scale factor.
    pub fn mul_f64(self, k: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(SimTime::MAX + b, SimTime::MAX);
    }

    #[test]
    fn from_secs_f64_handles_junk() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(12)), "12.000s");
    }

    #[test]
    fn ordering_and_sum() {
        let xs = [SimTime::from_nanos(3), SimTime::from_nanos(1)];
        assert!(xs[0] > xs[1]);
        let total: SimTime = xs.iter().copied().sum();
        assert_eq!(total, SimTime::from_nanos(4));
    }
}
