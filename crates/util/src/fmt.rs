//! Human-readable formatting helpers for the report harness.

/// Formats a byte count with a binary-prefix unit (B, KiB, MiB, GiB, TiB).
///
/// # Examples
///
/// ```
/// assert_eq!(emb_util::fmt::bytes(512), "512B");
/// assert_eq!(emb_util::fmt::bytes(2 * 1024 * 1024), "2.00MiB");
/// ```
pub fn bytes(n: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{n}B")
    } else {
        format!("{v:.2}{}", UNITS[unit])
    }
}

/// Formats a count with thousands separators.
///
/// # Examples
///
/// ```
/// assert_eq!(emb_util::fmt::count(1234567), "1,234,567");
/// ```
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_units() {
        assert_eq!(bytes(0), "0B");
        assert_eq!(bytes(1023), "1023B");
        assert_eq!(bytes(1024), "1.00KiB");
        assert_eq!(bytes(1536), "1.50KiB");
        assert_eq!(bytes(3 * 1024 * 1024 * 1024), "3.00GiB");
    }

    #[test]
    fn count_separators() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1000), "1,000");
        assert_eq!(count(1000000), "1,000,000");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
