//! Zipfian / power-law sampling.
//!
//! Embedding access in EmbDL workloads is skewed: DLR keys follow user
//! preference power laws, and GNN neighbour expansion follows graph degree
//! power laws (paper §2). This module provides an exact-inverse-CDF Zipf
//! sampler for small domains and an O(1) rejection-inversion sampler
//! (Hörmann & Derflinger) for the multi-million-entry domains the paper
//! evaluates.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1 / (rank+1)^alpha`.
///
/// Uses rejection-inversion, which needs no per-rank tables, so a sampler
/// over a billion-entry domain costs O(1) memory.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = emb_util::ZipfSampler::new(1_000_000, 1.2);
/// let k = z.sample(&mut rng);
/// assert!(k < 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    alpha: f64,
    /// `H(0.5) - 1`: lower bound of the inverted integral domain.
    h_x0: f64,
    /// `H(n + 0.5)`: upper bound of the inverted integral domain.
    h_n: f64,
    /// Acceptance shortcut threshold for rank 1.
    s: f64,
}

impl ZipfSampler {
    /// Creates a sampler over ranks `0..n` with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is not finite and positive.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "Zipf exponent must be a positive finite number"
        );
        // The closed-form antiderivative below is only valid for alpha != 1;
        // nudge alpha by an epsilon (the distributions are indistinguishable).
        let alpha = if (alpha - 1.0).abs() < 1e-9 {
            1.0 + 1e-9
        } else {
            alpha
        };
        let h = |x: f64| x.powf(1.0 - alpha) / (1.0 - alpha);
        let h_inv = |x: f64| (x * (1.0 - alpha)).powf(1.0 / (1.0 - alpha));
        let h_x0 = h(0.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let s = 1.0 - h_inv(h(1.5) - 2.0_f64.powf(-alpha));
        Self {
            n,
            alpha,
            h_x0,
            h_n,
            s,
        }
    }

    fn h(&self, x: f64) -> f64 {
        // `H(x) = x^(1-alpha) / (1-alpha)`, the antiderivative of `x^-alpha`.
        x.powf(1.0 - self.alpha) / (1.0 - self.alpha)
    }

    fn h_inv(&self, x: f64) -> f64 {
        (x * (1.0 - self.alpha)).powf(1.0 / (1.0 - self.alpha))
    }

    /// Draws one rank in `0..n` (0 is the hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let v: f64 = rng.gen();
            let u = self.h_n + v * (self.h_x0 - self.h_n);
            let x = self.h_inv(u);
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= self.h(k + 0.5) - k.powf(-self.alpha) {
                return k as u64 - 1;
            }
        }
    }

    /// Returns the domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Returns the unnormalized probability mass of a rank.
    pub fn mass(&self, rank: u64) -> f64 {
        ((rank + 1) as f64).powf(-self.alpha)
    }

    /// Computes the exact probabilities of the first `k` ranks.
    ///
    /// Normalization uses a full `O(n)` pass; intended for tests and for
    /// generating hotness ground truth on scaled-down domains.
    pub fn head_probabilities(&self, k: usize) -> Vec<f64> {
        let norm: f64 = (1..=self.n).map(|r| (r as f64).powf(-self.alpha)).sum();
        (0..k.min(self.n as usize))
            .map(|r| ((r + 1) as f64).powf(-self.alpha) / norm)
            .collect()
    }
}

/// Generates a normalized power-law hotness vector over `n` entries.
///
/// Entry `e` receives mass proportional to `(e+1)^-alpha`; the result sums
/// to 1. This is the "measured hotness" shape used throughout the policy
/// crate when an application supplies frequencies directly (paper §6.1).
pub fn powerlaw_hotness(n: usize, alpha: f64) -> Vec<f64> {
    let mut h: Vec<f64> = (0..n).map(|e| ((e + 1) as f64).powf(-alpha)).collect();
    let sum: f64 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seed_rng;

    #[test]
    fn samples_in_domain() {
        let mut rng = seed_rng(3);
        let z = ZipfSampler::new(100, 0.99);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let mut rng = seed_rng(4);
        let z = ZipfSampler::new(1000, 1.2);
        let mut counts = vec![0u64; 1000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
    }

    #[test]
    fn empirical_matches_theoretical_head() {
        let mut rng = seed_rng(5);
        let n = 10_000;
        let z = ZipfSampler::new(n, 1.1);
        let draws = 400_000;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let expected = z.head_probabilities(5);
        for (r, &p) in expected.iter().enumerate() {
            let emp = counts[r] as f64 / draws as f64;
            assert!(
                (emp - p).abs() / p < 0.1,
                "rank {r}: empirical {emp} vs theoretical {p}"
            );
        }
    }

    #[test]
    fn alpha_one_is_handled() {
        let mut rng = seed_rng(6);
        let z = ZipfSampler::new(50, 1.0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn singleton_domain() {
        let mut rng = seed_rng(7);
        let z = ZipfSampler::new(1, 1.3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn powerlaw_hotness_is_normalized_and_sorted() {
        let h = powerlaw_hotness(1000, 1.2);
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for w in h.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
