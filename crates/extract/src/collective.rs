//! Collective-communication substrate (the NCCL stand-in).
//!
//! Message-based embedding systems exchange buffers with AllToAll-style
//! collectives (§3.2). This module models the bulk-synchronous transfer
//! timing of the collectives those systems use, on both hard-wired and
//! switch-based topologies, and provides a *functional* AllToAll that
//! really moves buffers — used by tests to show the message-based data
//! path is semantically equivalent to peer access, just slower.

use emb_util::SimTime;
use gpu_platform::{Interconnect, Platform};

/// A pairwise transfer matrix: `bytes[i][j]` flows from GPU `j` to GPU
/// `i` (diagonal ignored — local data does not cross the fabric).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferMatrix {
    /// `bytes[dst][src]`.
    pub bytes: Vec<Vec<f64>>,
}

impl TransferMatrix {
    /// An all-zeros matrix for `g` GPUs.
    pub fn zeros(g: usize) -> Self {
        TransferMatrix {
            bytes: vec![vec![0.0; g]; g],
        }
    }

    /// Total bytes entering `dst` from remote GPUs.
    pub fn inbound(&self, dst: usize) -> f64 {
        self.bytes[dst]
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != dst)
            .map(|(_, &b)| b)
            .sum()
    }

    /// Total bytes leaving `src` toward remote GPUs.
    pub fn outbound(&self, src: usize) -> f64 {
        self.bytes
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != src)
            .map(|(i, _)| self.bytes[i][src])
            .sum()
    }

    /// Grand total of cross-GPU bytes.
    pub fn total(&self) -> f64 {
        (0..self.bytes.len()).map(|i| self.inbound(i)).sum()
    }
}

/// Time for one AllToAll exchange of `m` on `platform`.
///
/// Hard-wired fabrics run every pair concurrently at wire speed (the
/// bundles are disjoint), so the exchange finishes when the slowest pair
/// does. Switch fabrics bound each port's ingress and egress instead
/// (NCCL's AllToAll is near bandwidth-optimal on NVSwitch).
///
/// # Panics
///
/// Panics if the matrix routes bytes across an unconnected pair.
pub fn all_to_all_time(platform: &Platform, m: &TransferMatrix) -> SimTime {
    let g = platform.num_gpus();
    assert_eq!(m.bytes.len(), g, "matrix size mismatch");
    let secs = match &platform.interconnect {
        Interconnect::HardWired { pair_bw } => {
            let mut t: f64 = 0.0;
            for i in 0..g {
                for j in 0..g {
                    if i == j || m.bytes[i][j] == 0.0 {
                        continue;
                    }
                    assert!(
                        pair_bw[i][j] > 0.0,
                        "AllToAll routes {} bytes over unconnected pair {i},{j}",
                        m.bytes[i][j]
                    );
                    t = t.max(m.bytes[i][j] / pair_bw[i][j]);
                }
            }
            t
        }
        Interconnect::Switch { outbound_bw } => {
            let mut t: f64 = 0.0;
            for x in 0..g {
                t = t
                    .max(m.inbound(x) / outbound_bw)
                    .max(m.outbound(x) / outbound_bw);
            }
            t
        }
    };
    SimTime::from_secs_f64(secs)
}

/// Time for an AllGather of `bytes_per_gpu` (every GPU ends with every
/// shard): ring-pipelined, `(g−1)/g` of the full volume crosses each
/// GPU's slowest link.
pub fn all_gather_time(platform: &Platform, bytes_per_gpu: f64) -> SimTime {
    let g = platform.num_gpus();
    if g <= 1 {
        return SimTime::ZERO;
    }
    let volume = bytes_per_gpu * (g - 1) as f64;
    let bw = match &platform.interconnect {
        Interconnect::Switch { outbound_bw } => *outbound_bw,
        Interconnect::HardWired { pair_bw } => {
            // Ring over the slowest used hop; use each GPU's best link as
            // the ring edge (an optimistic but standard assumption).
            (0..g)
                .map(|i| {
                    pair_bw[i]
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, &b)| b)
                        .fold(0.0f64, f64::max)
                })
                .fold(f64::INFINITY, f64::min)
        }
    };
    SimTime::from_secs_f64(volume / bw.max(1.0))
}

/// Functionally exchanges per-destination buffers: `send[src][dst]` is
/// the payload `src` addresses to `dst`; the result `recv[dst][src]` is
/// the payload `dst` received from `src`. This is the data-plane of the
/// message-based mechanism; tests use it to prove semantic equivalence
/// with peer access.
pub fn all_to_all_buffers(send: &[Vec<Vec<f32>>]) -> Vec<Vec<Vec<f32>>> {
    let g = send.len();
    (0..g)
        .map(|dst| (0..g).map(|src| send[src][dst].clone()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_platform::Platform;

    fn uniform_matrix(g: usize, per_pair: f64) -> TransferMatrix {
        let mut m = TransferMatrix::zeros(g);
        for i in 0..g {
            for j in 0..g {
                if i != j {
                    m.bytes[i][j] = per_pair;
                }
            }
        }
        m
    }

    #[test]
    fn accounting_is_consistent() {
        let m = uniform_matrix(4, 10.0);
        for x in 0..4 {
            assert_eq!(m.inbound(x), 30.0);
            assert_eq!(m.outbound(x), 30.0);
        }
        assert_eq!(m.total(), 120.0);
    }

    #[test]
    fn hardwired_all_to_all_is_pair_bound() {
        let p = Platform::server_a();
        // 50 MB per pair over 50 GB/s pairs → 1 ms.
        let m = uniform_matrix(4, 50e6);
        let t = all_to_all_time(&p, &m);
        assert!((t.as_secs_f64() - 1e-3).abs() < 1e-9, "{t}");
    }

    #[test]
    fn switch_all_to_all_is_port_bound() {
        let p = Platform::server_c();
        // Each GPU sends 30 MB to each of 7 peers → 210 MB egress over
        // 300 GB/s → 0.7 ms.
        let m = uniform_matrix(8, 30e6);
        let t = all_to_all_time(&p, &m);
        assert!((t.as_secs_f64() - 0.7e-3).abs() < 1e-9, "{t}");
    }

    #[test]
    fn skewed_matrix_bound_by_hot_port() {
        let p = Platform::server_c();
        let mut m = TransferMatrix::zeros(8);
        // Everyone pulls 60 MB from GPU 0 only.
        for i in 1..8 {
            m.bytes[i][0] = 60e6;
        }
        let t = all_to_all_time(&p, &m).as_secs_f64();
        // GPU0 egress: 420 MB / 300 GB/s = 1.4 ms.
        assert!((t - 1.4e-3).abs() < 1e-9, "{t}");
    }

    #[test]
    #[should_panic(expected = "unconnected pair")]
    fn hardwired_rejects_unconnected_routes() {
        let p = Platform::server_b();
        let mut m = TransferMatrix::zeros(8);
        m.bytes[0][5] = 1.0; // 0 and 5 are unconnected on DGX-1
        let _ = all_to_all_time(&p, &m);
    }

    #[test]
    fn all_gather_scales_with_volume_and_fleet() {
        let p = Platform::server_c();
        let t1 = all_gather_time(&p, 300e6);
        let t2 = all_gather_time(&p, 600e6);
        assert!((t2.as_secs_f64() / t1.as_secs_f64() - 2.0).abs() < 1e-9);
        let single = Platform::single(gpu_platform::GpuSpec::a100(80), 1 << 40);
        assert_eq!(all_gather_time(&single, 1e9), SimTime::ZERO);
    }

    #[test]
    fn functional_exchange_round_trips() {
        // send[src][dst] payloads become recv[dst][src].
        let g = 3;
        let send: Vec<Vec<Vec<f32>>> = (0..g)
            .map(|s| (0..g).map(|d| vec![(s * 10 + d) as f32; 2]).collect())
            .collect();
        let recv = all_to_all_buffers(&send);
        for dst in 0..g {
            for src in 0..g {
                assert_eq!(recv[dst][src], vec![(src * 10 + dst) as f32; 2]);
            }
        }
    }
}
