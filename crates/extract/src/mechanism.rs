//! Mechanism implementations and the unified extraction front-end.

use cache_policy::Placement;
use emb_util::SimTime;
use gpu_memsim::{simulate, DispatchMode, GpuExtraction, GpuWork, SimConfig, SourceDemand};
use gpu_platform::{DedicationConfig, Location, Platform};

/// How cross-GPU embedding extraction is carried out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mechanism {
    /// Buffer + AllToAll + reorder (message-passing systems).
    MessageBased,
    /// Zero-copy peer access with unorganized random dispatch.
    PeerNaive {
        /// Dispatch shuffle seed.
        seed: u64,
    },
    /// UGache's factored extraction mechanism.
    Factored {
        /// Core-dedication tunables.
        dedication: DedicationConfig,
    },
}

/// Result of one extraction call.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractOutcome {
    /// Time until the slowest GPU finished.
    pub makespan: SimTime,
    /// Per-GPU details (timing and per-source byte accounting).
    pub per_gpu: Vec<GpuExtraction>,
}

/// Extraction front-end bound to a platform and simulator config.
#[derive(Debug, Clone)]
pub struct Extractor {
    platform: Platform,
    sim: SimConfig,
    mechanism: Mechanism,
}

impl Extractor {
    /// Creates an extractor.
    pub fn new(platform: Platform, sim: SimConfig, mechanism: Mechanism) -> Self {
        Extractor {
            platform,
            sim,
            mechanism,
        }
    }

    /// The mechanism in use.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// The platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Builds per-GPU source demands from a placement and key batches.
    ///
    /// # Panics
    ///
    /// Panics if `keys_per_gpu.len()` differs from the GPU count.
    pub fn works_from_keys(
        &self,
        placement: &Placement,
        keys_per_gpu: &[Vec<u32>],
        entry_bytes: usize,
    ) -> Vec<GpuWork> {
        assert_eq!(
            keys_per_gpu.len(),
            self.platform.num_gpus(),
            "one key batch per GPU"
        );
        keys_per_gpu
            .iter()
            .enumerate()
            .map(|(gpu, keys)| {
                let demands = placement
                    .split_keys(gpu, keys)
                    .into_iter()
                    .map(|(src, count)| SourceDemand {
                        src,
                        bytes: count as f64 * entry_bytes as f64,
                    })
                    .collect();
                GpuWork { gpu, demands }
            })
            .collect()
    }

    /// Builds per-GPU source demands from precomputed per-source key
    /// splits (one `(location, key_count)` list per destination GPU, e.g.
    /// a gather plan's `source_split`), skipping the per-key pass of
    /// [`Extractor::works_from_keys`].
    ///
    /// # Panics
    ///
    /// Panics if `splits.len()` differs from the GPU count.
    pub fn works_from_splits(
        &self,
        splits: &[Vec<(Location, u64)>],
        entry_bytes: usize,
    ) -> Vec<GpuWork> {
        assert_eq!(
            splits.len(),
            self.platform.num_gpus(),
            "one key batch per GPU"
        );
        splits
            .iter()
            .enumerate()
            .map(|(gpu, split)| {
                let demands = split
                    .iter()
                    .map(|&(src, count)| SourceDemand {
                        src,
                        bytes: count as f64 * entry_bytes as f64,
                    })
                    .collect();
                GpuWork { gpu, demands }
            })
            .collect()
    }

    /// Extracts the given key batches under the configured mechanism.
    pub fn extract(
        &self,
        placement: &Placement,
        keys_per_gpu: &[Vec<u32>],
        entry_bytes: usize,
    ) -> ExtractOutcome {
        let works = self.works_from_keys(placement, keys_per_gpu, entry_bytes);
        self.extract_works(&works)
    }

    /// Extracts precomputed per-source key splits (the plan-based
    /// front-end: callers that already counted keys per source — e.g. via
    /// `emb_cache`'s gather plan — skip the per-key split pass).
    pub fn extract_splits(
        &self,
        splits: &[Vec<(Location, u64)>],
        entry_bytes: usize,
    ) -> ExtractOutcome {
        let works = self.works_from_splits(splits, entry_bytes);
        self.extract_works(&works)
    }

    /// Extracts pre-computed per-source demands.
    pub fn extract_works(&self, works: &[GpuWork]) -> ExtractOutcome {
        let telemetry_on = emb_telemetry::enabled();
        // Per-tier byte totals, relative to each destination GPU: local
        // HBM / peer NVLink / host PCIe (names in EXPERIMENTS.md). Only
        // computed when a telemetry scope is listening.
        let mut tiers = [0.0f64; 3]; // local, remote, host
        if telemetry_on {
            for w in works {
                for d in &w.demands {
                    match d.src {
                        Location::Gpu(j) if j == w.gpu => tiers[0] += d.bytes,
                        Location::Gpu(_) => tiers[1] += d.bytes,
                        Location::Host => tiers[2] += d.bytes,
                    }
                }
            }
            emb_telemetry::count("extract.calls", 1.0);
            emb_telemetry::count("extract.bytes.local", tiers[0]);
            emb_telemetry::count("extract.bytes.remote", tiers[1]);
            emb_telemetry::count("extract.bytes.host", tiers[2]);
        }
        let base_ns = emb_telemetry::clock_ns();
        let outcome = self.dispatch(works);
        if telemetry_on {
            // One gather span per tier with traffic, spanning the whole
            // extraction window on the scope clock (the mechanism advanced
            // the clock past its makespan).
            let end_ns = base_ns.saturating_add(outcome.makespan.as_nanos());
            for (tier, bytes) in ["local", "remote", "host"].into_iter().zip(tiers) {
                if bytes > 0.0 {
                    let track = format!("extract/tier:{tier}");
                    emb_telemetry::span(&track, "gather", base_ns, end_ns, || {
                        vec![("bytes".to_string(), emb_telemetry::EventValue::F64(bytes))]
                    });
                }
            }
        }
        outcome
    }

    /// Runs the configured mechanism (no telemetry of its own; the
    /// simulator and the message-based model record their spans and
    /// advance the scope clock themselves).
    fn dispatch(&self, works: &[GpuWork]) -> ExtractOutcome {
        match self.mechanism {
            Mechanism::PeerNaive { seed } => {
                let r = simulate(
                    &self.platform,
                    &self.sim,
                    works,
                    DispatchMode::RandomShared { seed },
                );
                ExtractOutcome {
                    makespan: r.makespan,
                    per_gpu: r.per_gpu,
                }
            }
            Mechanism::Factored { dedication } => {
                let r = simulate(
                    &self.platform,
                    &self.sim,
                    works,
                    DispatchMode::Factored { dedication },
                );
                ExtractOutcome {
                    makespan: r.makespan,
                    per_gpu: r.per_gpu,
                }
            }
            Mechanism::MessageBased => self.message_based(works),
        }
    }

    /// Analytic phase model for the message-based mechanism: every GPU
    /// first gathers the entries it owns that anyone needs into send
    /// buffers (2 local passes), buffers are exchanged AllToAll, host
    /// misses are fetched over PCIe, and received buffers are reordered
    /// into output order (2 local passes over received + locally hit
    /// data). Phases synchronize globally, as collective communication
    /// requires.
    fn message_based(&self, works: &[GpuWork]) -> ExtractOutcome {
        let g = self.platform.num_gpus();
        let mut bytes = vec![vec![0.0f64; g + 1]; g]; // [dst][src], host = g
        for w in works {
            for d in &w.demands {
                let j = match d.src {
                    Location::Gpu(j) => j,
                    Location::Host => g,
                };
                bytes[w.gpu][j] += d.bytes;
            }
        }

        // Phase 1: source-side gather into send buffers (remote-destined
        // bytes only; read + write = 2 local passes).
        let mut t1 = 0.0f64;
        for j in 0..g {
            let out: f64 = (0..g).filter(|&i| i != j).map(|i| bytes[i][j]).sum();
            t1 = t1.max(2.0 * out / self.platform.gpus[j].local_bw);
        }

        // Phase 2: AllToAll exchange via the collectives substrate.
        let mut m = crate::collective::TransferMatrix::zeros(g);
        for i in 0..g {
            for (j, cell) in m.bytes[i].iter_mut().enumerate() {
                if i != j {
                    *cell = bytes[i][j];
                }
            }
        }
        let t2 = crate::collective::all_to_all_time(&self.platform, &m).as_secs_f64();

        // Phase 3: host fill over PCIe (concurrent per GPU).
        let mut t3 = 0.0f64;
        for i in 0..g {
            t3 = t3.max(bytes[i][g] / self.platform.gpus[i].pcie_bw);
        }

        // Phase 4: reorder received buffers + gather local hits.
        let mut t4 = 0.0f64;
        for i in 0..g {
            let received: f64 = (0..g).filter(|&j| j != i).map(|j| bytes[i][j]).sum();
            let local = bytes[i][i];
            t4 = t4.max(2.0 * (received + local) / self.platform.gpus[i].local_bw);
        }

        let overhead = self.sim.launch_overhead.as_secs_f64() * 4.0;
        let total = t1 + t2 + t3 + t4 + overhead;

        if emb_telemetry::enabled() {
            // Phase spans back-to-back on the scope clock (each phase pays
            // one launch overhead), then advance the clock past the call —
            // mirroring what the event-driven simulator does for the peer
            // mechanisms.
            let mut cursor = emb_telemetry::clock_ns();
            let launch = self.sim.launch_overhead.as_secs_f64();
            for (name, secs) in [
                ("gather", t1),
                ("all_to_all", t2),
                ("host_fill", t3),
                ("reorder", t4),
            ] {
                let end = cursor.saturating_add(SimTime::from_secs_f64(secs + launch).as_nanos());
                emb_telemetry::span("extract/phases", name, cursor, end, || {
                    vec![(
                        "secs".to_string(),
                        emb_telemetry::EventValue::F64(secs + launch),
                    )]
                });
                cursor = end;
            }
            emb_telemetry::advance_clock_ns(SimTime::from_secs_f64(total).as_nanos());
        }

        // Per-GPU accounting: approximate each GPU's time by its own
        // phase contributions plus the global barriers it waits on.
        let per_gpu: Vec<GpuExtraction> = works
            .iter()
            .map(|w| {
                let per_src: Vec<gpu_memsim::LinkUse> = (0..=g)
                    .filter(|&j| bytes[w.gpu][j] > 0.0)
                    .map(|j| {
                        let src = if j == g {
                            Location::Host
                        } else {
                            Location::Gpu(j)
                        };
                        let peak = if j == g {
                            self.platform.gpus[w.gpu].pcie_bw
                        } else if j == w.gpu {
                            self.platform.gpus[w.gpu].local_bw
                        } else {
                            self.platform.path(w.gpu, src).bw
                        };
                        gpu_memsim::LinkUse {
                            src,
                            bytes: bytes[w.gpu][j],
                            busy: SimTime::from_secs_f64(total),
                            peak_bw: peak,
                        }
                    })
                    .collect();
                GpuExtraction {
                    gpu: w.gpu,
                    time: SimTime::from_secs_f64(total),
                    core_busy: SimTime::from_secs_f64(total),
                    per_src,
                }
            })
            .collect();

        ExtractOutcome {
            makespan: SimTime::from_secs_f64(total),
            per_gpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_policy::{baselines, Hotness};
    use emb_util::zipf::powerlaw_hotness;
    use emb_util::{seed_rng, ZipfSampler};

    const ENTRY_BYTES: usize = 512;

    fn hotness(n: usize) -> Hotness {
        Hotness::new(powerlaw_hotness(n, 1.2))
    }

    /// Zipf-distributed key batches matching the hotness shape.
    fn batches(platform: &Platform, n: u64, per_gpu: usize) -> Vec<Vec<u32>> {
        let zipf = ZipfSampler::new(n, 1.2);
        (0..platform.num_gpus())
            .map(|g| {
                let mut rng = seed_rng(1000 + g as u64);
                (0..per_gpu).map(|_| zipf.sample(&mut rng) as u32).collect()
            })
            .collect()
    }

    fn sim_cfg() -> SimConfig {
        SimConfig {
            launch_overhead: SimTime::from_micros(10),
            ..SimConfig::default()
        }
    }

    #[test]
    fn factored_beats_naive_beats_message() {
        let plat = Platform::server_c();
        let n = 100_000u64;
        let h = hotness(n as usize);
        let placement = baselines::partition(&plat, &h, 3_000).unwrap();
        let keys = batches(&plat, n, 60_000);

        let time = |mech: Mechanism| {
            Extractor::new(plat.clone(), sim_cfg(), mech)
                .extract(&placement, &keys, ENTRY_BYTES)
                .makespan
        };
        let t_msg = time(Mechanism::MessageBased);
        let t_naive = time(Mechanism::PeerNaive { seed: 7 });
        let t_fem = time(Mechanism::Factored {
            dedication: DedicationConfig::default(),
        });
        assert!(
            t_fem < t_naive,
            "factored {t_fem} should beat naive {t_naive}"
        );
        assert!(
            t_naive < t_msg,
            "naive peer {t_naive} should beat message {t_msg}"
        );
    }

    #[test]
    fn works_from_keys_matches_split() {
        let plat = Platform::server_a();
        let h = hotness(1000);
        let placement = baselines::replication(&plat, &h, 100);
        let keys: Vec<Vec<u32>> = vec![vec![0, 1, 999], vec![], vec![5], vec![998]];
        let ex = Extractor::new(plat, sim_cfg(), Mechanism::MessageBased);
        let works = ex.works_from_keys(&placement, &keys, ENTRY_BYTES);
        // GPU0: keys 0,1 are hot (cached locally), 999 is cold (host).
        let w0 = &works[0];
        let local: f64 = w0
            .demands
            .iter()
            .filter(|d| d.src == Location::Gpu(0))
            .map(|d| d.bytes)
            .sum();
        let host: f64 = w0
            .demands
            .iter()
            .filter(|d| d.src == Location::Host)
            .map(|d| d.bytes)
            .sum();
        assert_eq!(local, 2.0 * ENTRY_BYTES as f64);
        assert_eq!(host, ENTRY_BYTES as f64);
        assert!(works[1].demands.is_empty());
    }

    #[test]
    fn works_from_splits_matches_works_from_keys() {
        let plat = Platform::server_a();
        let h = hotness(2_000);
        let placement = baselines::partition(&plat, &h, 200).unwrap();
        let keys = batches(&plat, 2_000, 5_000);
        let ex = Extractor::new(plat, sim_cfg(), Mechanism::MessageBased);
        let from_keys = ex.works_from_keys(&placement, &keys, ENTRY_BYTES);
        let splits: Vec<Vec<(Location, u64)>> = (0..keys.len())
            .map(|g| placement.split_keys(g, &keys[g]))
            .collect();
        let from_splits = ex.works_from_splits(&splits, ENTRY_BYTES);
        assert_eq!(from_keys, from_splits);
    }

    #[test]
    fn message_based_penalizes_extra_copies() {
        // With everything locally cached, message-based still pays its
        // reorder passes; peer mechanisms only the gather.
        let plat = Platform::server_c();
        let h = hotness(10_000);
        let placement = baselines::replication(&plat, &h, 10_000);
        let keys = batches(&plat, 10_000, 50_000);
        let msg = Extractor::new(plat.clone(), sim_cfg(), Mechanism::MessageBased).extract(
            &placement,
            &keys,
            ENTRY_BYTES,
        );
        let fem = Extractor::new(
            plat,
            sim_cfg(),
            Mechanism::Factored {
                dedication: DedicationConfig::default(),
            },
        )
        .extract(&placement, &keys, ENTRY_BYTES);
        assert!(msg.makespan > fem.makespan);
    }

    #[test]
    #[should_panic(expected = "unconnected")]
    fn message_based_cannot_cross_unconnected_pairs() {
        let plat = Platform::server_b();
        let mut placement = Placement::all_host(8, 10);
        placement.stored[5][0] = true;
        placement.access[0][0] = 5;
        let keys: Vec<Vec<u32>> = (0..8)
            .map(|g| if g == 0 { vec![0] } else { vec![] })
            .collect();
        let ex = Extractor::new(plat, sim_cfg(), Mechanism::MessageBased);
        let _ = ex.extract(&placement, &keys, ENTRY_BYTES);
    }

    #[test]
    fn empty_batches_cost_only_overhead() {
        let plat = Platform::server_a();
        let h = hotness(100);
        let placement = baselines::replication(&plat, &h, 10);
        let keys: Vec<Vec<u32>> = vec![vec![]; 4];
        let fem = Extractor::new(
            plat,
            sim_cfg(),
            Mechanism::Factored {
                dedication: DedicationConfig::default(),
            },
        )
        .extract(&placement, &keys, ENTRY_BYTES);
        assert!(fem.makespan <= SimTime::from_micros(50));
    }

    #[test]
    fn per_gpu_byte_accounting_consistent_across_mechanisms() {
        let plat = Platform::server_a();
        let h = hotness(5_000);
        let placement = baselines::partition(&plat, &h, 500).unwrap();
        let keys = batches(&plat, 5_000, 20_000);
        let fem = Extractor::new(
            plat.clone(),
            sim_cfg(),
            Mechanism::Factored {
                dedication: DedicationConfig::default(),
            },
        )
        .extract(&placement, &keys, ENTRY_BYTES);
        let msg = Extractor::new(plat, sim_cfg(), Mechanism::MessageBased).extract(
            &placement,
            &keys,
            ENTRY_BYTES,
        );
        for (a, b) in fem.per_gpu.iter().zip(&msg.per_gpu) {
            let ta: f64 = a.per_src.iter().map(|u| u.bytes).sum();
            let tb: f64 = b.per_src.iter().map(|u| u.bytes).sum();
            assert!((ta - tb).abs() < 1.0, "GPU{} bytes {ta} vs {tb}", a.gpu);
        }
    }
}
