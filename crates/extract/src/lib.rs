//! Extraction mechanisms (paper §3.2 and §5).
//!
//! Given a [`cache_policy::Placement`] and the key batches each GPU must
//! serve, this crate computes how the bytes actually move on the modelled
//! platform under the three mechanism families the paper compares:
//!
//! * [`Mechanism::MessageBased`] — buffer, AllToAll-exchange, reorder
//!   (SOK/NCCL style): pays extra local memory passes and phase barriers;
//! * [`Mechanism::PeerNaive`] — zero-copy peer access with random key
//!   dispatch (WholeGraph style): no extra copies, but cores congest slow
//!   links and stall (§5.2);
//! * [`Mechanism::Factored`] — UGache's factored extraction (§5.3):
//!   per-source core dedication within link tolerance plus low-priority
//!   local padding.
//!
//! Peer mechanisms run on the `gpu-memsim` event engine; the
//! message-based path uses an analytic phase model (bulk transfers are
//! bandwidth-bound, not core-scheduling-bound).

#![deny(missing_docs)]

pub mod collective;
pub mod mechanism;

pub use collective::{all_gather_time, all_to_all_buffers, all_to_all_time, TransferMatrix};
pub use mechanism::{ExtractOutcome, Extractor, Mechanism};
