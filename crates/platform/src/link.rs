//! Transfer-path descriptions.

/// The physical medium a `destination ← source` transfer crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathKind {
    /// Destination reads its own HBM.
    Local,
    /// A statically wired NVLink bundle between a GPU pair.
    NvLink,
    /// A dynamically allocated path through an NVSwitch fabric.
    NvSwitch,
    /// PCIe from host memory.
    Pcie,
}

/// Characteristics of one `destination ← source` transfer path.
///
/// `tolerance` is the paper's key microbenchmark result (Figure 6): the
/// number of concurrently reading SMs beyond which the path's bandwidth is
/// exhausted and additional cores only stall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSpec {
    /// Medium of the path.
    pub kind: PathKind,
    /// Achievable bandwidth of the path in bytes/s.
    pub bw: f64,
    /// Bandwidth one SM can sustain on this path in bytes/s.
    pub per_core_bw: f64,
}

impl PathSpec {
    /// Number of concurrent cores that saturate this path.
    ///
    /// At least 1: even the slowest path is drainable by a single core.
    pub fn tolerance(&self) -> usize {
        ((self.bw / self.per_core_bw).ceil() as usize).max(1)
    }

    /// Seconds needed to move `bytes` at full path bandwidth.
    pub fn secs_for(&self, bytes: f64) -> f64 {
        bytes / self.bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_rounds_up_and_floors_at_one() {
        let p = PathSpec {
            kind: PathKind::Pcie,
            bw: 12e9,
            per_core_bw: 1.7e9,
        };
        assert_eq!(p.tolerance(), 8);
        let tiny = PathSpec {
            kind: PathKind::Pcie,
            bw: 1.0,
            per_core_bw: 100.0,
        };
        assert_eq!(tiny.tolerance(), 1);
    }

    #[test]
    fn secs_for_is_linear() {
        let p = PathSpec {
            kind: PathKind::NvLink,
            bw: 50e9,
            per_core_bw: 2e9,
        };
        assert!((p.secs_for(50e9) - 1.0).abs() < 1e-12);
        assert!((p.secs_for(25e9) - 0.5).abs() < 1e-12);
    }
}
