//! Per-GPU hardware description.

/// Static description of one GPU.
///
/// Bandwidth figures are *achievable gather bandwidths*, not datasheet
/// peaks: embedding extraction issues dependent, scattered reads, so the
/// sustainable rate is well below the copy-engine peak. The defaults are
/// calibrated to the paper's Figure 6 microbenchmark (see each
/// constructor).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors (the schedulable "cores").
    pub sm_count: usize,
    /// HBM capacity in bytes.
    pub mem_bytes: u64,
    /// Aggregate achievable local-HBM gather bandwidth (bytes/s).
    pub local_bw: f64,
    /// Gather bandwidth a single SM can sustain from local HBM (bytes/s).
    pub per_core_local_bw: f64,
    /// Gather bandwidth a single SM can sustain over NVLink/NVSwitch (bytes/s).
    pub per_core_remote_bw: f64,
    /// PCIe bandwidth from host memory to this GPU (bytes/s).
    pub pcie_bw: f64,
    /// Gather bandwidth a single SM can sustain over PCIe (bytes/s).
    pub per_core_pcie_bw: f64,
    /// Peak dense-math throughput (FLOP/s) for mixed-precision tensor-core
    /// GEMMs (what DL dense layers actually run on), used by the MLP cost
    /// model.
    pub flops: f64,
}

const GB: f64 = 1e9;

impl GpuSpec {
    /// NVIDIA V100 SXM2 with the given HBM capacity in GiB.
    ///
    /// Calibration (Figure 6a, 4×V100): PCIe plateaus ≈ 12 GB/s with fewer
    /// than 10 % of the 80 SMs; a hard-wired 50 GB/s pair link saturates at
    /// ≈ 1/3 of the SMs; local gather reaches ≈ 320 GB/s with all SMs.
    pub fn v100(mem_gib: u64) -> Self {
        GpuSpec {
            name: format!("V100-{mem_gib}GB"),
            sm_count: 80,
            mem_bytes: mem_gib * 1024 * 1024 * 1024,
            local_bw: 320.0 * GB,
            per_core_local_bw: 4.0 * GB,
            per_core_remote_bw: 2.0 * GB,
            pcie_bw: 12.0 * GB,
            per_core_pcie_bw: 1.7 * GB,
            flops: 112e12,
        }
    }

    /// NVIDIA A100 SXM4 with the given HBM capacity in GiB.
    ///
    /// Calibration (Figure 6b, 8×A100): PCIe 4.0 plateaus ≈ 25 GB/s at
    /// ≈ 12 SMs; an uncontended NVSwitch path reaches the full 300 GB/s
    /// outbound at ≈ half the 108 SMs; local gather reaches ≈ 650 GB/s.
    pub fn a100(mem_gib: u64) -> Self {
        GpuSpec {
            name: format!("A100-{mem_gib}GB"),
            sm_count: 108,
            mem_bytes: mem_gib * 1024 * 1024 * 1024,
            local_bw: 650.0 * GB,
            per_core_local_bw: 6.0 * GB,
            per_core_remote_bw: 6.0 * GB,
            pcie_bw: 25.0 * GB,
            per_core_pcie_bw: 2.0 * GB,
            flops: 156e12,
        }
    }

    /// Returns this GPU's HBM capacity in bytes as `f64` (convenience).
    pub fn mem_bytes_f64(&self) -> f64 {
        self.mem_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_preset_matches_paper_numbers() {
        let g = GpuSpec::v100(16);
        assert_eq!(g.sm_count, 80);
        assert_eq!(g.mem_bytes, 16 << 30);
        // PCIe tolerance should be < 10% of SMs (paper §5.1).
        let tol = (g.pcie_bw / g.per_core_pcie_bw).ceil() as usize;
        assert!(tol < g.sm_count / 10 + 1, "tolerance {tol}");
    }

    #[test]
    fn a100_preset_matches_paper_numbers() {
        let g = GpuSpec::a100(80);
        assert_eq!(g.sm_count, 108);
        assert_eq!(g.mem_bytes, 80 << 30);
        assert!(g.local_bw > 2.0 * 300.0 * 1e9, "local must dwarf NVSwitch");
    }
}
