//! Declarative model of a multi-GPU platform.
//!
//! This crate is the reproduction's stand-in for real NVIDIA hardware (see
//! `DESIGN.md`, "the central substitution"). It describes GPUs (SM count,
//! memory capacity, sustainable bandwidths), the interconnect between them
//! (hard-wired NVLink meshes or an NVSwitch fabric, plus PCIe to the host),
//! and derives from that description the parameters the rest of the system
//! consumes:
//!
//! * [`Platform::path`] — the bandwidth/latency characteristics of every
//!   `destination ← source` transfer path, including per-core sustainable
//!   bandwidth and the resulting *core tolerance* (paper Figure 6);
//! * [`Profile`] — the `T_{i←j}` (seconds per byte) and `R_{i←j}` (core
//!   dedication ratio) matrices of the paper's Table 2, fed to the cache
//!   policy solver (§6) and the factored extractor (§5).
//!
//! Three presets mirror the paper's testbeds: [`Platform::server_a`]
//! (4×V100, hard-wired, fully connected), [`Platform::server_b`] (8×V100
//! DGX-1 hybrid cube-mesh, non-uniform with unconnected pairs) and
//! [`Platform::server_c`] (8×A100, NVSwitch).

#![deny(missing_docs)]

pub mod gpu;
pub mod link;
pub mod profile;
pub mod topology;

pub use gpu::GpuSpec;
pub use link::{PathKind, PathSpec};
pub use profile::{DedicationConfig, Profile};
pub use topology::{Interconnect, Location, Platform};
