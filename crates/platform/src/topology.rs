//! Platform topology: GPUs, host, and the interconnect between them.

use crate::gpu::GpuSpec;
use crate::link::{PathKind, PathSpec};

const GB: f64 = 1e9;

/// A source (or destination) of embedding data.
///
/// Mirrors the paper's `M` = all GPUs plus host DRAM (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Location {
    /// GPU with the given index.
    Gpu(usize),
    /// Host DRAM, reached over PCIe.
    Host,
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::Gpu(i) => write!(f, "G{i}"),
            Location::Host => write!(f, "Host"),
        }
    }
}

/// Cross-GPU interconnect flavour (paper Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub enum Interconnect {
    /// Statically wired NVLink bundles. `pair_bw[i][j]` is the bandwidth of
    /// the `i ↔ j` bundle in bytes/s; `0.0` means the pair is unconnected
    /// (traffic would have to fall back to PCIe, which UGache never does —
    /// unconnected pairs are simply unreachable, as in the paper).
    HardWired {
        /// Symmetric pair bandwidth matrix, diagonal ignored.
        pair_bw: Vec<Vec<f64>>,
    },
    /// An NVSwitch fabric: every pair is connected and each GPU has
    /// `outbound_bw` total egress, dynamically shared among readers.
    Switch {
        /// Per-GPU egress bandwidth in bytes/s.
        outbound_bw: f64,
    },
}

/// A complete multi-GPU machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Human-readable name (reports).
    pub name: String,
    /// The GPUs, indexed by position.
    pub gpus: Vec<GpuSpec>,
    /// Cross-GPU interconnect.
    pub interconnect: Interconnect,
    /// Host DRAM capacity in bytes.
    pub host_mem_bytes: u64,
}

impl Platform {
    /// Server A from the paper: 4×V100 16 GB, hard-wired and fully
    /// connected — every pair gets 2 NVLinks (2 × 25 GB/s).
    pub fn server_a() -> Self {
        let n = 4;
        let mut pair_bw = vec![vec![0.0; n]; n];
        for (i, row) in pair_bw.iter_mut().enumerate() {
            for (j, bw) in row.iter_mut().enumerate() {
                if i != j {
                    *bw = 50.0 * GB;
                }
            }
        }
        Platform {
            name: "ServerA-4xV100".into(),
            gpus: (0..n).map(|_| GpuSpec::v100(16)).collect(),
            interconnect: Interconnect::HardWired { pair_bw },
            host_mem_bytes: 384 << 30,
        }
    }

    /// Server B from the paper: 8×V100 32 GB in the DGX-1 hybrid cube-mesh.
    ///
    /// Non-uniform: link multiplicity varies between pairs and some pairs
    /// (e.g. `0 ↔ 5`) are unconnected, which is exactly what breaks naive
    /// partition caches (paper §3.2).
    pub fn server_b() -> Self {
        let n = 8;
        let mut pair_bw = vec![vec![0.0; n]; n];
        // (pair, NVLink multiplicity); each NVLink is 25 GB/s.
        let links: [(usize, usize, f64); 16] = [
            (0, 1, 1.0),
            (0, 2, 1.0),
            (0, 3, 2.0),
            (1, 2, 2.0),
            (1, 3, 1.0),
            (2, 3, 1.0),
            (4, 5, 1.0),
            (4, 6, 1.0),
            (4, 7, 2.0),
            (5, 6, 2.0),
            (5, 7, 1.0),
            (6, 7, 1.0),
            (0, 4, 2.0),
            (1, 5, 2.0),
            (2, 6, 2.0),
            (3, 7, 2.0),
        ];
        for (i, j, mult) in links {
            pair_bw[i][j] = mult * 25.0 * GB;
            pair_bw[j][i] = mult * 25.0 * GB;
        }
        Platform {
            name: "ServerB-8xV100".into(),
            gpus: (0..n).map(|_| GpuSpec::v100(32)).collect(),
            interconnect: Interconnect::HardWired { pair_bw },
            host_mem_bytes: 724 << 30,
        }
    }

    /// Server C from the paper: 8×A100 80 GB behind NVSwitch, 300 GB/s
    /// egress per GPU.
    pub fn server_c() -> Self {
        Platform {
            name: "ServerC-8xA100".into(),
            gpus: (0..8).map(|_| GpuSpec::a100(80)).collect(),
            interconnect: Interconnect::Switch {
                outbound_bw: 300.0 * GB,
            },
            host_mem_bytes: 1024 << 30,
        }
    }

    /// A custom hard-wired machine from an explicit pair-bandwidth matrix
    /// (bytes/s, `0.0` = unconnected, must be symmetric).
    ///
    /// # Panics
    ///
    /// Panics if the description fails [`Platform::validate`].
    pub fn custom_hardwired(
        name: &str,
        gpus: Vec<GpuSpec>,
        pair_bw: Vec<Vec<f64>>,
        host_mem_bytes: u64,
    ) -> Self {
        let p = Platform {
            name: name.to_string(),
            gpus,
            interconnect: Interconnect::HardWired { pair_bw },
            host_mem_bytes,
        };
        if let Err(e) = p.validate() {
            panic!("invalid custom platform: {e}");
        }
        p
    }

    /// A custom switch-based machine with the given per-GPU egress.
    ///
    /// # Panics
    ///
    /// Panics if the description fails [`Platform::validate`].
    pub fn custom_switch(
        name: &str,
        gpus: Vec<GpuSpec>,
        outbound_bw: f64,
        host_mem_bytes: u64,
    ) -> Self {
        let p = Platform {
            name: name.to_string(),
            gpus,
            interconnect: Interconnect::Switch { outbound_bw },
            host_mem_bytes,
        };
        if let Err(e) = p.validate() {
            panic!("invalid custom platform: {e}");
        }
        p
    }

    /// A single-GPU machine (Table 1's testbed is one A100-80GB).
    pub fn single(gpu: GpuSpec, host_mem_bytes: u64) -> Self {
        Platform {
            name: format!("Single-{}", gpu.name),
            gpus: vec![gpu],
            interconnect: Interconnect::HardWired {
                pair_bw: vec![vec![0.0]],
            },
            host_mem_bytes,
        }
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// All source locations: every GPU plus host (the paper's `M`).
    pub fn locations(&self) -> Vec<Location> {
        let mut v: Vec<Location> = (0..self.num_gpus()).map(Location::Gpu).collect();
        v.push(Location::Host);
        v
    }

    /// Whether `dst` can read embedding data directly from `src`.
    ///
    /// Local and host paths always exist; a remote GPU is reachable when a
    /// hard-wired bundle exists or the platform is switch-based.
    pub fn connected(&self, dst: usize, src: Location) -> bool {
        match src {
            Location::Host => true,
            Location::Gpu(j) if j == dst => true,
            Location::Gpu(j) => match &self.interconnect {
                Interconnect::HardWired { pair_bw } => pair_bw[dst][j] > 0.0,
                Interconnect::Switch { .. } => true,
            },
        }
    }

    /// The transfer path for `dst ← src`.
    ///
    /// # Panics
    ///
    /// Panics if the pair is unconnected (callers must check
    /// [`Platform::connected`] first) or indices are out of range.
    pub fn path(&self, dst: usize, src: Location) -> PathSpec {
        let g = &self.gpus[dst];
        match src {
            Location::Host => PathSpec {
                kind: PathKind::Pcie,
                bw: g.pcie_bw,
                per_core_bw: g.per_core_pcie_bw,
            },
            Location::Gpu(j) if j == dst => PathSpec {
                kind: PathKind::Local,
                bw: g.local_bw,
                per_core_bw: g.per_core_local_bw,
            },
            Location::Gpu(j) => match &self.interconnect {
                Interconnect::HardWired { pair_bw } => {
                    let bw = pair_bw[dst][j];
                    assert!(bw > 0.0, "GPU{dst} and GPU{j} are unconnected");
                    PathSpec {
                        kind: PathKind::NvLink,
                        bw,
                        per_core_bw: g.per_core_remote_bw,
                    }
                }
                Interconnect::Switch { outbound_bw } => PathSpec {
                    kind: PathKind::NvSwitch,
                    bw: *outbound_bw,
                    per_core_bw: g.per_core_remote_bw,
                },
            },
        }
    }

    /// Total egress bandwidth of a source location, used by the simulator
    /// as a cap on the *sum* of concurrent flows out of that source.
    ///
    /// Host egress is approximated as the sum of all PCIe links (each GPU
    /// has its own PCIe attachment); a hard-wired GPU's egress is the sum
    /// of its bundles; a switch-based GPU has the switch port rate.
    pub fn outbound_bw(&self, src: Location) -> f64 {
        match src {
            Location::Host => self.gpus.iter().map(|g| g.pcie_bw).sum(),
            Location::Gpu(j) => match &self.interconnect {
                Interconnect::HardWired { pair_bw } => pair_bw[j].iter().sum(),
                Interconnect::Switch { outbound_bw } => *outbound_bw,
            },
        }
    }

    /// GPUs reachable from `dst` over the GPU interconnect (excluding
    /// itself).
    pub fn reachable_gpus(&self, dst: usize) -> Vec<usize> {
        (0..self.num_gpus())
            .filter(|&j| j != dst && self.connected(dst, Location::Gpu(j)))
            .collect()
    }

    /// Greedily groups GPUs into fully-connected cliques (Quiver's
    /// clique-partition strategy for platforms with unconnected pairs).
    ///
    /// On Server B this yields `{0,1,2,3}` and `{4,5,6,7}`; on fully
    /// connected platforms it yields a single group.
    pub fn fully_connected_groups(&self) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in 0..self.num_gpus() {
            let home = groups
                .iter_mut()
                .find(|grp| grp.iter().all(|&m| self.connected(i, Location::Gpu(m))));
            match home {
                Some(grp) => grp.push(i),
                None => groups.push(vec![i]),
            }
        }
        groups
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.gpus.is_empty() {
            return Err("platform has no GPUs".into());
        }
        if let Interconnect::HardWired { pair_bw } = &self.interconnect {
            if pair_bw.len() != self.num_gpus() {
                return Err(format!(
                    "pair_bw has {} rows for {} GPUs",
                    pair_bw.len(),
                    self.num_gpus()
                ));
            }
            for (i, row) in pair_bw.iter().enumerate() {
                if row.len() != self.num_gpus() {
                    return Err(format!("pair_bw row {i} has wrong length"));
                }
                for (j, &bw) in row.iter().enumerate() {
                    if bw < 0.0 {
                        return Err(format!("negative bandwidth on pair {i},{j}"));
                    }
                    if (bw - pair_bw[j][i]).abs() > 1e-6 {
                        return Err(format!("pair_bw not symmetric at {i},{j}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [
            Platform::server_a(),
            Platform::server_b(),
            Platform::server_c(),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn server_a_is_uniform_fully_connected() {
        let p = Platform::server_a();
        assert_eq!(p.num_gpus(), 4);
        for i in 0..4 {
            assert_eq!(p.reachable_gpus(i).len(), 3);
            for j in p.reachable_gpus(i) {
                let path = p.path(i, Location::Gpu(j));
                assert_eq!(path.kind, PathKind::NvLink);
                assert!((path.bw - 50e9).abs() < 1.0);
            }
        }
        assert_eq!(p.fully_connected_groups(), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn server_b_has_unconnected_pairs_and_six_links_per_gpu() {
        let p = Platform::server_b();
        assert!(!p.connected(0, Location::Gpu(5)));
        assert!(!p.connected(1, Location::Gpu(4)));
        assert!(p.connected(0, Location::Gpu(4)));
        // Every V100 exposes 6 NVLinks at 25 GB/s ⇒ 150 GB/s egress.
        for i in 0..8 {
            assert!(
                (p.outbound_bw(Location::Gpu(i)) - 150e9).abs() < 1.0,
                "GPU{i} egress {}",
                p.outbound_bw(Location::Gpu(i))
            );
        }
        assert_eq!(
            p.fully_connected_groups(),
            vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]
        );
    }

    #[test]
    fn server_c_is_switch_based() {
        let p = Platform::server_c();
        for i in 0..8 {
            for j in 0..8 {
                assert!(p.connected(i, Location::Gpu(j)));
            }
        }
        let path = p.path(0, Location::Gpu(7));
        assert_eq!(path.kind, PathKind::NvSwitch);
        assert!((path.bw - 300e9).abs() < 1.0);
        assert_eq!(p.fully_connected_groups().len(), 1);
    }

    #[test]
    fn local_and_host_paths() {
        let p = Platform::server_c();
        assert_eq!(p.path(3, Location::Gpu(3)).kind, PathKind::Local);
        assert_eq!(p.path(3, Location::Host).kind, PathKind::Pcie);
        assert!(p.connected(3, Location::Host));
    }

    #[test]
    #[should_panic(expected = "unconnected")]
    fn unconnected_path_panics() {
        let p = Platform::server_b();
        let _ = p.path(0, Location::Gpu(5));
    }

    #[test]
    fn validate_catches_asymmetry() {
        let mut p = Platform::server_a();
        if let Interconnect::HardWired { pair_bw } = &mut p.interconnect {
            pair_bw[0][1] = 1.0;
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn custom_platforms_build_and_validate() {
        let gpus: Vec<GpuSpec> = (0..3).map(|_| GpuSpec::v100(16)).collect();
        let bw = vec![
            vec![0.0, 50e9, 0.0],
            vec![50e9, 0.0, 25e9],
            vec![0.0, 25e9, 0.0],
        ];
        let p = Platform::custom_hardwired("chain", gpus.clone(), bw, 1 << 38);
        assert!(p.connected(0, Location::Gpu(1)));
        assert!(!p.connected(0, Location::Gpu(2)));
        assert_eq!(p.fully_connected_groups().len(), 2);

        let sw = Platform::custom_switch("mini-switch", gpus, 100e9, 1 << 38);
        assert!(sw.connected(0, Location::Gpu(2)));
        assert!((sw.outbound_bw(Location::Gpu(1)) - 100e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid custom platform")]
    fn custom_platform_rejects_asymmetry() {
        let gpus: Vec<GpuSpec> = (0..2).map(|_| GpuSpec::v100(16)).collect();
        let bw = vec![vec![0.0, 50e9], vec![10e9, 0.0]];
        let _ = Platform::custom_hardwired("bad", gpus, bw, 1 << 30);
    }

    #[test]
    fn single_gpu_platform() {
        let p = Platform::single(GpuSpec::a100(80), 1 << 40);
        assert_eq!(p.num_gpus(), 1);
        assert!(p.reachable_gpus(0).is_empty());
        assert_eq!(p.locations(), vec![Location::Gpu(0), Location::Host]);
    }
}
