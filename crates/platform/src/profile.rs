//! Platform profiling: the `T_{i←j}` / `R_{i←j}` matrices of the paper.
//!
//! The cache-policy solver (§6) consumes a profiled summary of the
//! platform: per-path transfer cost `T_{i←j}` (reciprocal bandwidth) and
//! the core-dedication ratios `R_{i←j}` chosen by the factored extractor
//! (§5.3). On real hardware UGache measures these; here they are derived
//! from the declarative [`Platform`] model, which plays the role of the
//! microbenchmark in Figure 6.

use crate::topology::{Interconnect, Location, Platform};

/// Tunables of the core-dedication strategy (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DedicationConfig {
    /// Upper bound on the fraction of SMs dedicated to host extraction.
    ///
    /// The paper dedicates "a small number of cores" to the host first;
    /// PCIe tolerates fewer than 10 % of cores (Figure 6), so the actual
    /// count is `min(pcie_tolerance, host_core_fraction · SMs)`.
    pub host_core_fraction: f64,
}

impl Default for DedicationConfig {
    fn default() -> Self {
        DedicationConfig {
            host_core_fraction: 0.12,
        }
    }
}

/// Profiled platform summary: everything the solver and extractor need.
///
/// Source locations are indexed `0..G` for GPUs and `G` for host (see
/// [`Profile::host_index`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Number of GPUs `G`.
    pub num_gpus: usize,
    /// `sec_per_byte[i][j]`: seconds for GPU `i` to move one byte from
    /// source `j` at full path bandwidth; `f64::INFINITY` if unreachable.
    pub sec_per_byte: Vec<Vec<f64>>,
    /// `r[i][j]`: fraction of GPU `i`'s SMs dedicated to source `j`.
    /// `r[i][i] == 1.0` by convention: local extraction pads *all* cores
    /// once their dedicated non-local group drains (§5.3).
    pub r: Vec<Vec<f64>>,
    /// `cores[i][j]`: SM count behind `r[i][j]` (0 on the diagonal's
    /// initial assignment; local runs as padding).
    pub cores: Vec<Vec<usize>>,
}

impl Profile {
    /// Builds the profile for a platform under a dedication config.
    pub fn new(platform: &Platform, cfg: DedicationConfig) -> Self {
        let g = platform.num_gpus();
        let host = g;
        let mut sec_per_byte = vec![vec![f64::INFINITY; g + 1]; g];
        let mut r = vec![vec![0.0; g + 1]; g];
        let mut cores = vec![vec![0usize; g + 1]; g];

        for i in 0..g {
            let spec = &platform.gpus[i];
            let sm = spec.sm_count;

            // Host first: a small, tolerance-bounded core group (§5.3). Use
            // the largest core count that does NOT oversubscribe PCIe, so
            // the dedicated group saturates the link without congesting it.
            let host_path = platform.path(i, Location::Host);
            let pcie_sat = ((host_path.bw / host_path.per_core_bw).floor() as usize).max(1);
            let host_cores = pcie_sat
                .min(((cfg.host_core_fraction * sm as f64).ceil() as usize).max(1))
                .min(sm.saturating_sub(1));
            cores[i][host] = host_cores;

            // Remaining cores sliced by link-bandwidth ratio among reachable
            // remote GPUs (equal slices on a switch, where bandwidths tie).
            let remotes = platform.reachable_gpus(i);
            let remaining = sm - host_cores;
            if !remotes.is_empty() {
                let bws: Vec<f64> = remotes
                    .iter()
                    .map(|&j| platform.path(i, Location::Gpu(j)).bw)
                    .collect();
                let total: f64 = bws.iter().sum();
                // Largest-remainder rounding so the slices sum exactly.
                let exact: Vec<f64> = bws.iter().map(|bw| remaining as f64 * bw / total).collect();
                let mut alloc: Vec<usize> = exact.iter().map(|x| x.floor() as usize).collect();
                let mut leftover = remaining - alloc.iter().sum::<usize>();
                let mut order: Vec<usize> = (0..remotes.len()).collect();
                order.sort_by(|&a, &b| {
                    let fa = exact[a] - exact[a].floor();
                    let fb = exact[b] - exact[b].floor();
                    fb.partial_cmp(&fa).unwrap()
                });
                let mut next = 0usize;
                while leftover > 0 {
                    alloc[order[next % order.len()]] += 1;
                    leftover -= 1;
                    next += 1;
                }
                for (k, &j) in remotes.iter().enumerate() {
                    cores[i][j] = alloc[k];
                }
            }

            for j in 0..=g {
                r[i][j] = cores[i][j] as f64 / sm as f64;
            }
            // Local extraction pads every core (see field docs).
            r[i][i] = 1.0;

            // Transfer costs, as *effective concurrent* bandwidths: the
            // rate a dedicated core group actually sustains when every GPU
            // extracts simultaneously. On a switch, a source's egress is
            // implicitly sliced `G−1` ways by the equal core dedication
            // (§5.3); everywhere the dedicated cores' aggregate per-core
            // bandwidth also caps the rate.
            sec_per_byte[i][i] = 1.0 / spec.local_bw.min(sm as f64 * spec.per_core_local_bw);
            let host_rate = spec
                .pcie_bw
                .min(cores[i][host] as f64 * spec.per_core_pcie_bw);
            sec_per_byte[i][host] = 1.0 / host_rate;
            for j in platform.reachable_gpus(i) {
                let link_bw = platform.path(i, Location::Gpu(j)).bw;
                let egress_share = match &platform.interconnect {
                    Interconnect::Switch { outbound_bw } => *outbound_bw / (g - 1).max(1) as f64,
                    Interconnect::HardWired { .. } => f64::INFINITY,
                };
                let core_cap = cores[i][j] as f64 * spec.per_core_remote_bw;
                let rate = link_bw.min(egress_share).min(core_cap.max(1.0));
                sec_per_byte[i][j] = 1.0 / rate;
            }
        }

        Profile {
            num_gpus: g,
            sec_per_byte,
            r,
            cores,
        }
    }

    /// Index of the host pseudo-source.
    pub fn host_index(&self) -> usize {
        self.num_gpus
    }

    /// Maps a [`Location`] to this profile's source index.
    pub fn loc_index(&self, loc: Location) -> usize {
        match loc {
            Location::Gpu(j) => j,
            Location::Host => self.host_index(),
        }
    }

    /// Transfer cost in seconds/byte for `dst ← src`.
    pub fn t(&self, dst: usize, src: Location) -> f64 {
        self.sec_per_byte[dst][self.loc_index(src)]
    }

    /// Core-dedication ratio for `dst ← src`.
    pub fn ratio(&self, dst: usize, src: Location) -> f64 {
        self.r[dst][self.loc_index(src)]
    }

    /// Whether `dst` can read from `src` at all.
    pub fn reachable(&self, dst: usize, src: Location) -> bool {
        self.t(dst, src).is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_a_dedication_sums_to_all_cores() {
        let p = Platform::server_a();
        let prof = Profile::new(&p, DedicationConfig::default());
        for i in 0..4 {
            let total: usize = prof.cores[i].iter().sum();
            assert_eq!(total, p.gpus[i].sm_count, "GPU{i}");
            // 3 uniform remote links → equal slices.
            let remotes: Vec<usize> = (0..4)
                .filter(|&j| j != i)
                .map(|j| prof.cores[i][j])
                .collect();
            let spread = remotes.iter().max().unwrap() - remotes.iter().min().unwrap();
            assert!(spread <= 1, "uneven slices {remotes:?}");
        }
    }

    #[test]
    fn host_cores_are_small() {
        let p = Platform::server_c();
        let prof = Profile::new(&p, DedicationConfig::default());
        for i in 0..8 {
            let frac = prof.cores[i][prof.host_index()] as f64 / p.gpus[i].sm_count as f64;
            assert!(frac <= 0.15, "GPU{i} host fraction {frac}");
            assert!(prof.cores[i][prof.host_index()] >= 1);
        }
    }

    #[test]
    fn unconnected_pairs_get_no_cores_and_infinite_cost() {
        let p = Platform::server_b();
        let prof = Profile::new(&p, DedicationConfig::default());
        assert_eq!(prof.cores[0][5], 0);
        assert!(prof.sec_per_byte[0][5].is_infinite());
        assert!(!prof.reachable(0, Location::Gpu(5)));
        assert!(prof.reachable(0, Location::Gpu(4)));
    }

    #[test]
    fn hard_wired_slices_follow_bandwidth_ratio() {
        let p = Platform::server_b();
        let prof = Profile::new(&p, DedicationConfig::default());
        // GPU0's links: G3 and G4 have 2×25 GB/s, G1 and G2 have 1×25 GB/s.
        assert!(prof.cores[0][3] > prof.cores[0][1]);
        assert!(prof.cores[0][4] > prof.cores[0][2]);
    }

    #[test]
    fn local_ratio_is_one() {
        let p = Platform::server_c();
        let prof = Profile::new(&p, DedicationConfig::default());
        for i in 0..8 {
            assert_eq!(prof.ratio(i, Location::Gpu(i)), 1.0);
        }
    }

    #[test]
    fn transfer_costs_are_ordered_local_remote_host() {
        let p = Platform::server_c();
        let prof = Profile::new(&p, DedicationConfig::default());
        let local = prof.t(0, Location::Gpu(0));
        let remote = prof.t(0, Location::Gpu(1));
        let host = prof.t(0, Location::Host);
        assert!(local < remote && remote < host);
    }

    #[test]
    fn single_gpu_profile_has_only_local_and_host() {
        let p = Platform::single(crate::gpu::GpuSpec::a100(80), 1 << 40);
        let prof = Profile::new(&p, DedicationConfig::default());
        let total: usize = prof.cores[0].iter().sum();
        assert_eq!(total, prof.cores[0][prof.host_index()]);
        assert!(prof.t(0, Location::Gpu(0)).is_finite());
    }
}
