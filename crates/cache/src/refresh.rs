//! Background cache refresh (§7.2, Figure 17).
//!
//! The Refresher re-evaluates the cache policy when hotness drifts and
//! migrates the cache to the new placement *in small batches*, bounding
//! the impact on foreground requests. It is driven by virtual time: the
//! application loop calls [`Refresher::tick`] with the current simulated
//! clock, which keeps the whole pipeline deterministic.
//!
//! The timeline of one refresh:
//!
//! ```text
//! trigger → [solve: cfg.solve_secs] → [update batch] ─ interval ─ [batch] … → hashtable swap → idle
//! ```
//!
//! While a refresh is active, foreground extraction is slowed by
//! `cfg.foreground_impact` (solver threads and copy engines compete with
//! serving, §8.6 reports ≈10 %).

use crate::cache::MultiGpuCache;
use cache_policy::Placement;
use std::collections::VecDeque;

/// Refresh tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshConfig {
    /// Simulated seconds the policy re-solve takes (paper: ~10 s).
    pub solve_secs: f64,
    /// Cache-update entries migrated per batch.
    pub entries_per_batch: usize,
    /// Simulated seconds between update batches (throttling).
    pub batch_interval_secs: f64,
    /// Fractional slowdown of foreground requests while active (~0.10).
    pub foreground_impact: f64,
    /// Estimated-time increase that triggers a refresh (e.g. 0.10 = 10 %).
    pub trigger_ratio: f64,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            solve_secs: 10.0,
            entries_per_batch: 4096,
            batch_interval_secs: 0.05,
            foreground_impact: 0.10,
            trigger_ratio: 0.10,
        }
    }
}

/// Where a refresh currently stands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshPhase {
    /// No refresh in progress.
    Idle,
    /// The solver is computing the new policy.
    Solving,
    /// Cache contents are being migrated batch by batch.
    Updating {
        /// Batches still queued.
        remaining_batches: usize,
    },
}

#[derive(Debug, Clone)]
struct UpdateBatch {
    gpu: usize,
    evict: Vec<u32>,
    insert: Vec<u32>,
}

/// The background refresher state machine.
#[derive(Debug, Clone)]
pub struct Refresher {
    cfg: RefreshConfig,
    phase: RefreshPhase,
    solve_done_at: f64,
    next_batch_at: f64,
    batches: VecDeque<UpdateBatch>,
    target: Option<Placement>,
    started_at: f64,
    /// Completed refresh durations (seconds), for reporting.
    pub history: Vec<f64>,
}

impl Refresher {
    /// Creates an idle refresher.
    pub fn new(cfg: RefreshConfig) -> Self {
        Refresher {
            cfg,
            phase: RefreshPhase::Idle,
            solve_done_at: 0.0,
            next_batch_at: 0.0,
            batches: VecDeque::new(),
            target: None,
            started_at: 0.0,
            history: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RefreshConfig {
        &self.cfg
    }

    /// Whether estimated extraction-time drift warrants a refresh.
    pub fn should_refresh(&self, current_est_secs: f64, fresh_est_secs: f64) -> bool {
        self.phase == RefreshPhase::Idle
            && current_est_secs > fresh_est_secs * (1.0 + self.cfg.trigger_ratio)
    }

    /// Whether a refresh is in progress.
    pub fn active(&self) -> bool {
        self.phase != RefreshPhase::Idle
    }

    /// Foreground slowdown multiplier (≥ 1).
    pub fn slowdown(&self) -> f64 {
        if self.active() {
            1.0 + self.cfg.foreground_impact
        } else {
            1.0
        }
    }

    /// Current phase.
    pub fn phase(&self) -> RefreshPhase {
        self.phase
    }

    /// Starts a refresh toward `target` at simulated time `now`.
    ///
    /// # Panics
    ///
    /// Panics if a refresh is already active.
    pub fn begin(&mut self, now: f64, current: &Placement, target: Placement) {
        assert!(!self.active(), "refresh already in progress");
        assert_eq!(current.num_entries, target.num_entries);
        assert_eq!(current.num_gpus, target.num_gpus);

        // Diff: per GPU, entries to drop and entries to add.
        let mut batches = VecDeque::new();
        for gpu in 0..current.num_gpus {
            let mut evict: Vec<u32> = Vec::new();
            let mut insert: Vec<u32> = Vec::new();
            for e in 0..current.num_entries {
                match (current.stored[gpu][e], target.stored[gpu][e]) {
                    (true, false) => evict.push(e as u32),
                    (false, true) => insert.push(e as u32),
                    _ => {}
                }
            }
            // Split into throttled batches, evictions first within each
            // batch so capacity never overshoots.
            let per = self.cfg.entries_per_batch.max(1);
            let mut ei = 0usize;
            let mut ii = 0usize;
            while ei < evict.len() || ii < insert.len() {
                let ev: Vec<u32> = evict[ei..(ei + per).min(evict.len())].to_vec();
                let ins: Vec<u32> = insert[ii..(ii + per).min(insert.len())].to_vec();
                ei = (ei + per).min(evict.len());
                ii = (ii + per).min(insert.len());
                batches.push_back(UpdateBatch {
                    gpu,
                    evict: ev,
                    insert: ins,
                });
            }
        }

        self.batches = batches;
        self.target = Some(target);
        self.phase = RefreshPhase::Solving;
        self.started_at = now;
        self.solve_done_at = now + self.cfg.solve_secs;
    }

    /// Advances the state machine to simulated time `now`, applying any
    /// due work to the cache. Returns the phase after the tick.
    pub fn tick(&mut self, now: f64, cache: &mut MultiGpuCache) -> RefreshPhase {
        loop {
            match self.phase {
                RefreshPhase::Idle => break,
                RefreshPhase::Solving => {
                    if now < self.solve_done_at {
                        break;
                    }
                    self.phase = RefreshPhase::Updating {
                        remaining_batches: self.batches.len(),
                    };
                    self.next_batch_at = self.solve_done_at;
                }
                RefreshPhase::Updating { .. } => {
                    if now < self.next_batch_at {
                        break;
                    }
                    match self.batches.pop_front() {
                        Some(b) => {
                            // Hashtable first, content second (§7.2): stale
                            // mappings must be gone before slots are reused.
                            cache.invalidate_before_update(b.gpu, &b.evict);
                            cache.update_arena(b.gpu, &b.evict, &b.insert);
                            self.next_batch_at += self.cfg.batch_interval_secs;
                            self.phase = RefreshPhase::Updating {
                                remaining_batches: self.batches.len(),
                            };
                        }
                        None => {
                            // All content moved: swap hashtables and finish.
                            let target = self.target.take().expect("target set in begin");
                            cache.swap_locations(&target);
                            self.history.push(self.next_batch_at - self.started_at);
                            self.phase = RefreshPhase::Idle;
                        }
                    }
                }
            }
        }
        self.phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::HostTable;
    use cache_policy::{baselines, Hotness};
    use emb_util::zipf::powerlaw_hotness;
    use gpu_platform::Platform;

    const N: usize = 400;
    const DIM: usize = 4;

    fn placements() -> (Placement, Placement) {
        let plat = Platform::server_a();
        let h1 = Hotness::new(powerlaw_hotness(N, 1.2));
        // Drifted hotness: reverse the ranking.
        let mut w = powerlaw_hotness(N, 1.2);
        w.reverse();
        let h2 = Hotness::new(w);
        (
            baselines::replication(&plat, &h1, 40),
            baselines::replication(&plat, &h2, 40),
        )
    }

    fn small_cfg() -> RefreshConfig {
        RefreshConfig {
            solve_secs: 1.0,
            entries_per_batch: 16,
            batch_interval_secs: 0.1,
            foreground_impact: 0.10,
            trigger_ratio: 0.10,
        }
    }

    #[test]
    fn trigger_logic() {
        let r = Refresher::new(small_cfg());
        assert!(!r.should_refresh(1.0, 1.0));
        assert!(!r.should_refresh(1.05, 1.0));
        assert!(r.should_refresh(1.2, 1.0));
    }

    #[test]
    fn full_refresh_migrates_cache() {
        let (p1, p2) = placements();
        let host = HostTable::dense(N, DIM);
        let mut cache = MultiGpuCache::build(host, &p1, &[40; 4]);
        let mut r = Refresher::new(small_cfg());
        r.begin(0.0, &p1, p2.clone());
        assert!(r.active());
        assert_eq!(r.slowdown(), 1.1);

        // Nothing happens during solving.
        assert_eq!(r.tick(0.5, &mut cache), RefreshPhase::Solving);

        // Drive time forward until idle.
        let mut now = 1.0;
        let mut guard = 0;
        while r.active() {
            r.tick(now, &mut cache);
            now += 0.05;
            guard += 1;
            assert!(guard < 10_000, "refresh never finished");
        }
        assert_eq!(r.history.len(), 1);

        // Cache now serves the new placement: the new-hot entries (high
        // ids) hit locally.
        let keys: Vec<u32> = ((N - 40) as u32..N as u32).collect();
        let mut out = vec![0.0f32; keys.len() * DIM];
        let stats = cache.gather(0, &keys, &mut out);
        assert_eq!(stats.local, 40);
        // Values are still correct.
        let truth = HostTable::dense(N, DIM);
        for (k, &key) in keys.iter().enumerate() {
            assert_eq!(&out[k * DIM..(k + 1) * DIM], truth.read(key).as_slice());
        }
    }

    #[test]
    fn refresh_is_throttled_over_time() {
        let (p1, p2) = placements();
        let host = HostTable::dense(N, DIM);
        let mut cache = MultiGpuCache::build(host, &p1, &[40; 4]);
        let cfg = small_cfg();
        let mut r = Refresher::new(cfg);
        r.begin(0.0, &p1, p2);
        // Diff is ~80 entries per GPU (40 out, 40 in) → 40/16 ≈ 3 batches
        // per GPU ≥ 12 batches total → ≥ 1.1 s of update time after solve.
        let mut now = 0.0;
        while r.active() && now < 100.0 {
            r.tick(now, &mut cache);
            now += 0.01;
        }
        assert!(!r.active());
        let duration = r.history[0];
        assert!(
            duration >= cfg.solve_secs + 1.0,
            "refresh finished suspiciously fast: {duration}s"
        );
    }

    #[test]
    #[should_panic(expected = "already in progress")]
    fn double_begin_panics() {
        let (p1, p2) = placements();
        let mut r = Refresher::new(small_cfg());
        r.begin(0.0, &p1, p2.clone());
        r.begin(0.0, &p1, p2);
    }

    #[test]
    fn noop_refresh_completes_quickly() {
        let (p1, _) = placements();
        let host = HostTable::dense(N, DIM);
        let mut cache = MultiGpuCache::build(host, &p1, &[40; 4]);
        let mut r = Refresher::new(small_cfg());
        r.begin(0.0, &p1, p1.clone());
        let mut now = 0.0;
        while r.active() && now < 10.0 {
            r.tick(now, &mut cache);
            now += 0.05;
        }
        assert!(!r.active());
        // Only the solve phase: no batches.
        assert!(r.history[0] <= small_cfg().solve_secs + 0.2);
    }
}
