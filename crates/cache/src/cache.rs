//! The composed multi-GPU cache and its filler.

use crate::arena::GpuArena;
use crate::plan::GatherPlan;
use crate::table::HostTable;
use cache_policy::Placement;
use gpu_platform::Location;
use std::cell::RefCell;

/// Packed location-table value meaning "not cached anywhere — read host".
const HOST_NONE: u64 = u64::MAX;

/// Keys per chunk in the parallel resolve pass. Boundaries are a
/// function of the key count only, so plans are identical at any worker
/// count.
const PLAN_CHUNK_KEYS: usize = 8_192;

/// Output rows per chunk in the parallel copy pass.
const COPY_CHUNK_ROWS: usize = 2_048;

thread_local! {
    /// Reusable gather plan, one per thread, so steady-state gathers do
    /// not allocate. Thread-local (not shared) keeps parallel repro runs
    /// independent.
    static PLAN: RefCell<GatherPlan> = RefCell::new(GatherPlan::new());
}

/// Per-source hit statistics of one gather call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatherStats {
    /// Keys served from the destination GPU's own arena.
    pub local: u64,
    /// Keys served from a remote GPU's arena (over the interconnect).
    pub remote: u64,
    /// Keys served from the host table (over PCIe).
    pub host: u64,
}

impl GatherStats {
    /// Total keys gathered.
    pub fn total(&self) -> u64 {
        self.local + self.remote + self.host
    }

    /// Accumulates another gather's counts into this one (used by the
    /// trace-replay accounting, which folds per-iteration stats).
    pub fn merge(&mut self, other: &GatherStats) {
        self.local += other.local;
        self.remote += other.remote;
        self.host += other.host;
    }
}

/// The functional multi-GPU embedding cache.
///
/// Per destination GPU it keeps the paper's location hashtable mapping a
/// cached entry to `<GPU_i, Offset>` (§4); gathers consult it, fall back
/// to the host table on miss, and report per-source counts that the
/// timing layer can turn into simulated extraction times.
///
/// The location "hashtable" is stored dense — one packed `u64` per entry
/// per destination GPU, exactly the flat-array layout a real GPU kernel
/// would index — so the gather resolve pass is a single array load per
/// key instead of a hash probe.
#[derive(Debug, Clone)]
pub struct MultiGpuCache {
    host: HostTable,
    arenas: Vec<GpuArena>,
    /// `locations[i][e]`: for destination GPU `i`, entry `e`'s packed
    /// `source << 32 | offset`, or [`HOST_NONE`] when `e` reads host.
    locations: Vec<Vec<u64>>,
    placement: Placement,
}

/// Builds one destination GPU's dense location table from an access row.
fn dense_location_row(
    arenas: &[GpuArena],
    access: &[cache_policy::SourceIdx],
    host_idx: cache_policy::SourceIdx,
    expect_msg: &str,
) -> Vec<u64> {
    access
        .iter()
        .enumerate()
        .map(|(e, &src)| {
            if src == host_idx {
                HOST_NONE
            } else {
                let off = arenas[src as usize]
                    .offset_of(e as u32)
                    .unwrap_or_else(|| panic!("{expect_msg}"));
                (src as u64) << 32 | off as u64
            }
        })
        .collect()
}

impl MultiGpuCache {
    /// Builds and fills the cache from a placement (the Filler, §4).
    ///
    /// # Panics
    ///
    /// Panics if the placement references more entries than the host
    /// table holds, or a GPU stores more entries than `cap_entries`.
    pub fn build(host: HostTable, placement: &Placement, cap_entries: &[usize]) -> Self {
        assert_eq!(
            placement.num_entries,
            host.num_entries(),
            "table size mismatch"
        );
        assert_eq!(
            placement.num_gpus,
            cap_entries.len(),
            "one capacity per GPU"
        );
        let g = placement.num_gpus;
        let dim = host.dim();
        let mut arenas: Vec<GpuArena> =
            cap_entries.iter().map(|&c| GpuArena::new(c, dim)).collect();

        // Fill arenas per the storage arrangement: materialize each GPU's
        // resident rows in entry order, then bulk-insert so the arena's
        // run-coalesced copy path turns the fill into block copies.
        let mut entries: Vec<u32> = Vec::new();
        let mut rows: Vec<f32> = Vec::new();
        for j in 0..g {
            entries.clear();
            entries.extend(
                (0..placement.num_entries)
                    .filter(|&e| placement.stored[j][e])
                    .map(|e| e as u32),
            );
            rows.resize(entries.len() * dim, 0.0);
            for (i, &e) in entries.iter().enumerate() {
                host.read_into(e, &mut rows[i * dim..(i + 1) * dim]);
            }
            arenas[j].insert_many(&entries, &rows);
        }

        // Location tables per the access arrangement.
        let locations: Vec<Vec<u64>> = (0..g)
            .map(|i| {
                dense_location_row(
                    &arenas,
                    &placement.access[i],
                    placement.host_idx(),
                    "access points at a stored entry (validated placement)",
                )
            })
            .collect();

        MultiGpuCache {
            host,
            arenas,
            locations,
            placement: placement.clone(),
        }
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.arenas.len()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.host.dim()
    }

    /// The host table.
    pub fn host_table(&self) -> &HostTable {
        &self.host
    }

    /// One GPU's arena.
    pub fn arena(&self, gpu: usize) -> &GpuArena {
        &self.arenas[gpu]
    }

    /// The active placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Destination GPU `gpu`'s packed location table (entry →
    /// `source << 32 | offset`, `u64::MAX` for host).
    pub(crate) fn location_row(&self, gpu: usize) -> &[u64] {
        &self.locations[gpu]
    }

    /// Resolves `keys` for GPU `gpu` into `plan` (the first gather pass).
    ///
    /// # Panics
    ///
    /// Panics if a key is out of range.
    pub fn plan_gather(&self, gpu: usize, keys: &[u32], plan: &mut GatherPlan) {
        let g = self.num_gpus();
        let table = &self.locations[gpu];
        plan.reset(g);
        plan.slots.reserve(keys.len());
        let host_tag = (g as u64) << 32;
        for &key in keys {
            assert!((key as usize) < table.len(), "entry {key} out of range");
            let packed = table[key as usize];
            if packed == HOST_NONE {
                plan.slots.push(host_tag | key as u64);
                plan.counts[g] += 1;
            } else {
                plan.slots.push(packed);
                plan.counts[(packed >> 32) as usize] += 1;
            }
        }
    }

    /// Resolves `keys` for GPU `gpu` into `plan` on the worker pool:
    /// disjoint chunks of `PLAN_CHUNK_KEYS` keys write disjoint slot
    /// ranges, per-chunk source counts are summed in chunk order.
    /// Produces a plan bitwise-identical to
    /// [`MultiGpuCache::plan_gather`] at any `emb_util::pool` thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if a key is out of range.
    pub fn plan_gather_par(&self, gpu: usize, keys: &[u32], plan: &mut GatherPlan) {
        let g = self.num_gpus();
        let table = &self.locations[gpu];
        plan.reset(g);
        plan.slots.resize(keys.len(), 0);
        let host_tag = (g as u64) << 32;
        let chunk_counts =
            emb_util::pool::par_chunks_mut(&mut plan.slots, PLAN_CHUNK_KEYS, |ci, slots| {
                let base = ci * PLAN_CHUNK_KEYS;
                let mut counts = vec![0u64; g + 1];
                for (j, slot) in slots.iter_mut().enumerate() {
                    let key = keys[base + j];
                    assert!((key as usize) < table.len(), "entry {key} out of range");
                    let packed = table[key as usize];
                    if packed == HOST_NONE {
                        *slot = host_tag | key as u64;
                        counts[g] += 1;
                    } else {
                        *slot = packed;
                        counts[(packed >> 32) as usize] += 1;
                    }
                }
                counts
            });
        for counts in chunk_counts {
            for (total, c) in plan.counts.iter_mut().zip(counts) {
                *total += c;
            }
        }
    }

    /// Copies every planned row into `out` (the second gather pass):
    /// one sweep per source so each arena slab is streamed in turn.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `plan.len() × dim` floats long.
    pub fn execute_plan(&self, plan: &GatherPlan, out: &mut [f32]) {
        let dim = self.dim();
        assert_eq!(out.len(), plan.len() * dim, "output buffer length mismatch");
        let g = self.num_gpus();
        for src in 0..g {
            if plan.counts[src] == 0 {
                continue;
            }
            let slab = self.arenas[src].slab();
            let tag = (src as u64) << 32;
            for (k, &packed) in plan.slots.iter().enumerate() {
                if packed & !0xFFFF_FFFF == tag {
                    let base = (packed & 0xFFFF_FFFF) as usize * dim;
                    out[k * dim..(k + 1) * dim].copy_from_slice(&slab[base..base + dim]);
                }
            }
        }
        if plan.counts[g] > 0 {
            let tag = (g as u64) << 32;
            for (k, &packed) in plan.slots.iter().enumerate() {
                if packed & !0xFFFF_FFFF == tag {
                    let key = (packed & 0xFFFF_FFFF) as u32;
                    self.host.read_into(key, &mut out[k * dim..(k + 1) * dim]);
                }
            }
        }
    }

    /// The copy pass on the worker pool: `out` is cut into disjoint
    /// chunks of `COPY_CHUNK_ROWS` rows and each chunk runs its own
    /// per-source sweeps over its slice of the plan. The copied bytes
    /// are identical to [`MultiGpuCache::execute_plan`] at any thread
    /// count — every row is written exactly once, from the same source.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `plan.len() × dim` floats long.
    pub fn execute_plan_par(&self, plan: &GatherPlan, out: &mut [f32]) {
        let dim = self.dim();
        assert_eq!(out.len(), plan.len() * dim, "output buffer length mismatch");
        if out.is_empty() {
            return;
        }
        let g = self.num_gpus();
        emb_util::pool::par_chunks_mut(out, COPY_CHUNK_ROWS * dim, |ci, chunk| {
            let row0 = ci * COPY_CHUNK_ROWS;
            let slots = &plan.slots[row0..row0 + chunk.len() / dim];
            for src in 0..g {
                if plan.counts[src] == 0 {
                    continue;
                }
                let slab = self.arenas[src].slab();
                let tag = (src as u64) << 32;
                for (k, &packed) in slots.iter().enumerate() {
                    if packed & !0xFFFF_FFFF == tag {
                        let base = (packed & 0xFFFF_FFFF) as usize * dim;
                        chunk[k * dim..(k + 1) * dim].copy_from_slice(&slab[base..base + dim]);
                    }
                }
            }
            if plan.counts[g] > 0 {
                let tag = (g as u64) << 32;
                for (k, &packed) in slots.iter().enumerate() {
                    if packed & !0xFFFF_FFFF == tag {
                        let key = (packed & 0xFFFF_FFFF) as u32;
                        self.host.read_into(key, &mut chunk[k * dim..(k + 1) * dim]);
                    }
                }
            }
        });
    }

    /// Gathers `keys` for GPU `gpu` into `out` (length `keys.len() × dim`)
    /// and reports per-source counts.
    ///
    /// Internally this is [`MultiGpuCache::plan_gather`] +
    /// [`MultiGpuCache::execute_plan`] over a thread-local reusable plan;
    /// when `emb_util::pool::current_threads() > 1` both passes run their
    /// `_par` variants on the worker pool, which produce bitwise-identical
    /// plans and output bytes.
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong length or a key is out of range.
    pub fn gather(&self, gpu: usize, keys: &[u32], out: &mut [f32]) -> GatherStats {
        assert_eq!(
            out.len(),
            keys.len() * self.dim(),
            "output buffer length mismatch"
        );
        let par = emb_util::pool::current_threads() > 1;
        let stats = PLAN.with(|p| {
            let mut plan = p.borrow_mut();
            if par {
                self.plan_gather_par(gpu, keys, &mut plan);
                self.execute_plan_par(&plan, out);
            } else {
                self.plan_gather(gpu, keys, &mut plan);
                self.execute_plan(&plan, out);
            }
            plan.stats(gpu)
        });
        emb_telemetry::count("cache.gathers", 1.0);
        emb_telemetry::count("cache.local_hits", stats.local as f64);
        emb_telemetry::count("cache.remote_hits", stats.remote as f64);
        emb_telemetry::count("cache.host_misses", stats.host as f64);
        stats
    }

    /// Per-GPU `(location, key_count)` splits for one batch of key
    /// batches, counted over the *placement's* access arrangement.
    ///
    /// This is the plan-based replacement for calling
    /// `Placement::split_keys` per GPU (identical output), reusing the
    /// thread-local plan's counting buffers. It deliberately counts over
    /// `self.placement` rather than the live location tables: mid-refresh,
    /// [`MultiGpuCache::invalidate_before_update`] re-routes reads to host
    /// before the new arrangement is swapped in, and the timing layer must
    /// keep pricing the arrangement it was given.
    ///
    /// # Panics
    ///
    /// Panics if `keys_per_gpu.len()` differs from the GPU count or a key
    /// is out of range.
    pub fn access_splits(&self, keys_per_gpu: &[Vec<u32>]) -> Vec<Vec<(Location, u64)>> {
        assert_eq!(keys_per_gpu.len(), self.num_gpus(), "one key batch per GPU");
        let g = self.num_gpus();
        PLAN.with(|p| {
            let mut plan = p.borrow_mut();
            keys_per_gpu
                .iter()
                .enumerate()
                .map(|(gpu, keys)| {
                    plan.reset(g);
                    let access = &self.placement.access[gpu];
                    for &k in keys {
                        plan.counts[access[k as usize] as usize] += 1;
                    }
                    plan.source_split()
                })
                .collect()
        })
    }

    /// Replaces the placement wholesale (re-fills arenas and hashtables).
    /// The staged, small-batch variant lives in [`crate::refresh`].
    pub fn apply_placement(&mut self, placement: &Placement) {
        let caps: Vec<usize> = self.arenas.iter().map(|a| a.capacity()).collect();
        *self = MultiGpuCache::build(self.host.clone(), placement, &caps);
    }

    /// Invalidates every location-table entry that routes a read to
    /// `gpu` for one of `evict`'s keys, re-routing those reads to host.
    ///
    /// MUST run before [`MultiGpuCache::update_arena`] reuses the evicted
    /// slots: otherwise a stale `<GPU, Offset>` mapping would serve
    /// another entry's bytes. This is the hashtable-before-content
    /// ordering of the paper's Refresher (§7.2).
    ///
    /// Each `(table, key)` pair is a single dense probe — no
    /// get-then-remove double lookup.
    pub fn invalidate_before_update(&mut self, gpu: usize, evict: &[u32]) {
        let src = gpu as u64;
        for table in self.locations.iter_mut() {
            for &e in evict {
                let slot = &mut table[e as usize];
                if *slot >> 32 == src {
                    *slot = HOST_NONE;
                }
            }
        }
    }

    /// Applies a single incremental update on one GPU: evict `evict` then
    /// insert `insert`, updating only that arena (location tables must be
    /// rebuilt by the caller once a refresh round completes — the paper's
    /// Refresher swaps the hashtable between foreground batches).
    pub fn update_arena(&mut self, gpu: usize, evict: &[u32], insert: &[u32]) {
        let dim = self.dim();
        let mut buf = vec![0.0f32; dim];
        for &e in evict {
            self.arenas[gpu].evict(e);
        }
        for &e in insert {
            self.host.read_into(e, &mut buf);
            self.arenas[gpu].insert(e, &buf);
        }
    }

    /// Rebuilds all location hashtables from a new access arrangement
    /// (the hashtable swap step of a refresh).
    ///
    /// # Panics
    ///
    /// Panics if the arrangement references entries not present in the
    /// corresponding arena.
    pub fn swap_locations(&mut self, placement: &Placement) {
        let g = self.num_gpus();
        self.locations = (0..g)
            .map(|i| {
                dense_location_row(
                    &self.arenas,
                    &placement.access[i],
                    placement.host_idx(),
                    "refresh inserted entries before hashtable swap",
                )
            })
            .collect();
        self.placement = placement.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_policy::{baselines, Hotness};
    use emb_util::zipf::powerlaw_hotness;
    use gpu_platform::Platform;

    const N: usize = 500;
    const DIM: usize = 8;

    fn setup(cap: usize) -> (MultiGpuCache, Placement) {
        let plat = Platform::server_a();
        let h = Hotness::new(powerlaw_hotness(N, 1.2));
        let placement = baselines::partition(&plat, &h, cap).unwrap();
        let host = HostTable::dense(N, DIM);
        let cache = MultiGpuCache::build(host, &placement, &[cap; 4]);
        (cache, placement)
    }

    #[test]
    fn gather_matches_host_truth() {
        let (cache, _) = setup(50);
        let keys: Vec<u32> = vec![0, 3, 499, 250, 0, 77];
        let mut out = vec![0.0f32; keys.len() * DIM];
        let stats = cache.gather(1, &keys, &mut out);
        assert_eq!(stats.total(), keys.len() as u64);
        let truth = HostTable::dense(N, DIM);
        for (k, &key) in keys.iter().enumerate() {
            assert_eq!(
                &out[k * DIM..(k + 1) * DIM],
                truth.read(key).as_slice(),
                "key {key}"
            );
        }
    }

    #[test]
    fn stats_match_placement_split() {
        let (cache, placement) = setup(50);
        let keys: Vec<u32> = (0..N as u32).collect();
        let mut out = vec![0.0f32; keys.len() * DIM];
        let stats = cache.gather(2, &keys, &mut out);
        let split = placement.split_keys(2, &keys);
        let local = split
            .iter()
            .find(|(l, _)| *l == gpu_platform::Location::Gpu(2))
            .map_or(0, |(_, c)| *c);
        let host = split
            .iter()
            .find(|(l, _)| *l == gpu_platform::Location::Host)
            .map_or(0, |(_, c)| *c);
        assert_eq!(stats.local, local);
        assert_eq!(stats.host, host);
        assert_eq!(stats.remote, N as u64 - local - host);
    }

    #[test]
    fn access_splits_match_split_keys() {
        let (cache, placement) = setup(50);
        let keys_per_gpu: Vec<Vec<u32>> = (0..4)
            .map(|i| (0..N as u32).skip(i).step_by(3).collect())
            .collect();
        let splits = cache.access_splits(&keys_per_gpu);
        for (gpu, keys) in keys_per_gpu.iter().enumerate() {
            assert_eq!(splits[gpu], placement.split_keys(gpu, keys), "gpu {gpu}");
        }
    }

    #[test]
    fn filler_respects_capacity() {
        let (cache, placement) = setup(50);
        for j in 0..4 {
            assert_eq!(cache.arenas[j].len(), placement.cached_count(j));
            assert!(cache.arenas[j].len() <= 50);
        }
    }

    #[test]
    fn apply_placement_switches_layout() {
        let (mut cache, _) = setup(50);
        let plat = Platform::server_a();
        let h = Hotness::new(powerlaw_hotness(N, 1.2));
        let rep = baselines::replication(&plat, &h, 50);
        cache.apply_placement(&rep);
        let keys: Vec<u32> = (0..50).collect();
        let mut out = vec![0.0f32; keys.len() * DIM];
        let stats = cache.gather(3, &keys, &mut out);
        // Replication: the 50 hottest (= lowest ids for powerlaw) are local.
        assert_eq!(stats.local, 50);
        assert_eq!(stats.remote, 0);
    }

    #[test]
    fn staged_update_then_swap() {
        let (mut cache, placement) = setup(50);
        // Swap a hot resident of GPU0 (entry 0 under partition) for a cold
        // entry, then swap hashtables to the matching arrangement.
        let cold = 499u32;
        let victim = 0u32;
        assert_eq!(cache.locations[0][cold as usize], HOST_NONE);
        assert!(cache.arenas[0].offset_of(victim).is_some());
        cache.update_arena(0, &[victim], &[cold]);
        let mut p2 = placement.clone();
        p2.stored[0][victim as usize] = false;
        p2.stored[0][cold as usize] = true;
        p2.access[0][cold as usize] = 0;
        for i in 0..4 {
            if p2.access[i][victim as usize] == 0 {
                p2.access[i][victim as usize] = p2.host_idx();
            }
        }
        cache.swap_locations(&p2);
        let mut out = vec![0.0f32; DIM];
        let stats = cache.gather(0, &[cold], &mut out);
        assert_eq!(stats.local, 1);
        assert_eq!(out, HostTable::dense(N, DIM).read(cold));
    }

    #[test]
    fn invalidate_routes_reads_to_host() {
        let (mut cache, _) = setup(50);
        // Entry 0 is stored on GPU0 under partition; every GPU reads it
        // from there. Invalidating GPU0's copy must re-route all four
        // destination tables to host without touching other entries.
        let before = cache.gather(1, &[0, 1], &mut [0.0f32; 2 * DIM]);
        assert_eq!(before.host, 0);
        cache.invalidate_before_update(0, &[0]);
        for i in 0..4 {
            let stats = cache.gather(i, &[0], &mut [0.0f32; DIM]);
            assert_eq!(stats.host, 1, "gpu {i} should now read entry 0 from host");
        }
        // Entry 1 lives on GPU1 — untouched.
        let after = cache.gather(1, &[1], &mut [0.0f32; DIM]);
        assert_eq!(after.host, 0);
    }

    #[test]
    fn parallel_gather_is_bitwise_identical_to_serial() {
        let (cache, _) = setup(50);
        // Enough keys to span several plan chunks would need >8192 keys;
        // use a repeated mixed pattern so every source tier is exercised.
        let keys: Vec<u32> = (0..20_000u32).map(|i| (i * 7) % N as u32).collect();
        let mut serial_out = vec![0.0f32; keys.len() * DIM];
        let mut serial_plan = GatherPlan::new();
        cache.plan_gather(2, &keys, &mut serial_plan);
        cache.execute_plan(&serial_plan, &mut serial_out);
        for threads in [1, 2, 8] {
            emb_util::pool::with_threads(threads, || {
                let mut plan = GatherPlan::new();
                cache.plan_gather_par(2, &keys, &mut plan);
                assert_eq!(plan.counts(), serial_plan.counts(), "threads {threads}");
                assert_eq!(plan.slots, serial_plan.slots, "threads {threads}");
                let mut out = vec![0.0f32; keys.len() * DIM];
                cache.execute_plan_par(&plan, &mut out);
                for (i, (a, b)) in out.iter().zip(&serial_out).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "threads {threads}, elem {i}");
                }
                // The public gather dispatches on the pool width and must
                // match too (stats and bytes).
                let mut out2 = vec![0.0f32; keys.len() * DIM];
                let stats = cache.gather(2, &keys, &mut out2);
                assert_eq!(stats, serial_plan.stats(2));
                assert_eq!(out2, serial_out);
            });
        }
    }

    #[test]
    #[should_panic(expected = "output buffer length")]
    fn wrong_output_length_panics() {
        let (cache, _) = setup(10);
        let mut out = vec![0.0f32; 3];
        let _ = cache.gather(0, &[1, 2], &mut out);
    }
}
