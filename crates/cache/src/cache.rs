//! The composed multi-GPU cache and its filler.

use crate::arena::GpuArena;
use crate::table::HostTable;
use cache_policy::Placement;
use std::collections::HashMap;

/// Per-source hit statistics of one gather call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatherStats {
    /// Keys served from the destination GPU's own arena.
    pub local: u64,
    /// Keys served from a remote GPU's arena (over the interconnect).
    pub remote: u64,
    /// Keys served from the host table (over PCIe).
    pub host: u64,
}

impl GatherStats {
    /// Total keys gathered.
    pub fn total(&self) -> u64 {
        self.local + self.remote + self.host
    }
}

/// The functional multi-GPU embedding cache.
///
/// Per destination GPU it keeps the paper's location hashtable mapping a
/// cached entry to `<GPU_i, Offset>` (§4); gathers consult it, fall back
/// to the host table on miss, and report per-source counts that the
/// timing layer can turn into simulated extraction times.
#[derive(Debug, Clone)]
pub struct MultiGpuCache {
    host: HostTable,
    arenas: Vec<GpuArena>,
    /// `locations[i]`: for destination GPU `i`, entry → (source GPU, slot).
    locations: Vec<HashMap<u32, (u8, u32)>>,
    placement: Placement,
}

impl MultiGpuCache {
    /// Builds and fills the cache from a placement (the Filler, §4).
    ///
    /// # Panics
    ///
    /// Panics if the placement references more entries than the host
    /// table holds, or a GPU stores more entries than `cap_entries`.
    pub fn build(host: HostTable, placement: &Placement, cap_entries: &[usize]) -> Self {
        assert_eq!(
            placement.num_entries,
            host.num_entries(),
            "table size mismatch"
        );
        assert_eq!(
            placement.num_gpus,
            cap_entries.len(),
            "one capacity per GPU"
        );
        let g = placement.num_gpus;
        let dim = host.dim();
        let mut arenas: Vec<GpuArena> =
            cap_entries.iter().map(|&c| GpuArena::new(c, dim)).collect();

        // Fill arenas per the storage arrangement.
        let mut buf = vec![0.0f32; dim];
        for j in 0..g {
            for e in 0..placement.num_entries {
                if placement.stored[j][e] {
                    host.read_into(e as u32, &mut buf);
                    arenas[j].insert(e as u32, &buf);
                }
            }
        }

        // Location hashtables per the access arrangement.
        let mut locations: Vec<HashMap<u32, (u8, u32)>> = Vec::with_capacity(g);
        for i in 0..g {
            let mut map = HashMap::new();
            for e in 0..placement.num_entries {
                let src = placement.access[i][e];
                if src != placement.host_idx() {
                    let off = arenas[src as usize]
                        .offset_of(e as u32)
                        .expect("access points at a stored entry (validated placement)");
                    map.insert(e as u32, (src, off));
                }
            }
            locations.push(map);
        }

        MultiGpuCache {
            host,
            arenas,
            locations,
            placement: placement.clone(),
        }
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.arenas.len()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.host.dim()
    }

    /// The host table.
    pub fn host_table(&self) -> &HostTable {
        &self.host
    }

    /// The active placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Gathers `keys` for GPU `gpu` into `out` (length `keys.len() × dim`)
    /// and reports per-source counts.
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong length or a key is out of range.
    pub fn gather(&self, gpu: usize, keys: &[u32], out: &mut [f32]) -> GatherStats {
        let dim = self.dim();
        assert_eq!(out.len(), keys.len() * dim, "output buffer length mismatch");
        let mut stats = GatherStats::default();
        for (k, &key) in keys.iter().enumerate() {
            let dst = &mut out[k * dim..(k + 1) * dim];
            match self.locations[gpu].get(&key) {
                Some(&(src, off)) => {
                    self.arenas[src as usize].read_slot(off, dst);
                    if src as usize == gpu {
                        stats.local += 1;
                    } else {
                        stats.remote += 1;
                    }
                }
                None => {
                    self.host.read_into(key, dst);
                    stats.host += 1;
                }
            }
        }
        emb_telemetry::count("cache.gathers", 1.0);
        emb_telemetry::count("cache.local_hits", stats.local as f64);
        emb_telemetry::count("cache.remote_hits", stats.remote as f64);
        emb_telemetry::count("cache.host_misses", stats.host as f64);
        stats
    }

    /// Replaces the placement wholesale (re-fills arenas and hashtables).
    /// The staged, small-batch variant lives in [`crate::refresh`].
    pub fn apply_placement(&mut self, placement: &Placement) {
        let caps: Vec<usize> = self.arenas.iter().map(|a| a.capacity()).collect();
        *self = MultiGpuCache::build(self.host.clone(), placement, &caps);
    }

    /// Invalidates every location-table entry that routes a read to
    /// `gpu` for one of `evict`'s keys, re-routing those reads to host.
    ///
    /// MUST run before [`MultiGpuCache::update_arena`] reuses the evicted
    /// slots: otherwise a stale `<GPU, Offset>` mapping would serve
    /// another entry's bytes. This is the hashtable-before-content
    /// ordering of the paper's Refresher (§7.2).
    pub fn invalidate_before_update(&mut self, gpu: usize, evict: &[u32]) {
        for i in 0..self.num_gpus() {
            for &e in evict {
                if let Some(&(src, _)) = self.locations[i].get(&e) {
                    if src as usize == gpu {
                        self.locations[i].remove(&e);
                    }
                }
            }
        }
    }

    /// Applies a single incremental update on one GPU: evict `evict` then
    /// insert `insert`, updating only that arena (location tables must be
    /// rebuilt by the caller once a refresh round completes — the paper's
    /// Refresher swaps the hashtable between foreground batches).
    pub fn update_arena(&mut self, gpu: usize, evict: &[u32], insert: &[u32]) {
        let dim = self.dim();
        let mut buf = vec![0.0f32; dim];
        for &e in evict {
            self.arenas[gpu].evict(e);
        }
        for &e in insert {
            self.host.read_into(e, &mut buf);
            self.arenas[gpu].insert(e, &buf);
        }
    }

    /// Rebuilds all location hashtables from a new access arrangement
    /// (the hashtable swap step of a refresh).
    ///
    /// # Panics
    ///
    /// Panics if the arrangement references entries not present in the
    /// corresponding arena.
    pub fn swap_locations(&mut self, placement: &Placement) {
        let g = self.num_gpus();
        let mut locations: Vec<HashMap<u32, (u8, u32)>> = Vec::with_capacity(g);
        for i in 0..g {
            let mut map = HashMap::new();
            for e in 0..placement.num_entries {
                let src = placement.access[i][e];
                if src != placement.host_idx() {
                    let off = self.arenas[src as usize]
                        .offset_of(e as u32)
                        .expect("refresh inserted entries before hashtable swap");
                    map.insert(e as u32, (src, off));
                }
            }
            locations.push(map);
        }
        self.locations = locations;
        self.placement = placement.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_policy::{baselines, Hotness};
    use emb_util::zipf::powerlaw_hotness;
    use gpu_platform::Platform;

    const N: usize = 500;
    const DIM: usize = 8;

    fn setup(cap: usize) -> (MultiGpuCache, Placement) {
        let plat = Platform::server_a();
        let h = Hotness::new(powerlaw_hotness(N, 1.2));
        let placement = baselines::partition(&plat, &h, cap).unwrap();
        let host = HostTable::dense(N, DIM);
        let cache = MultiGpuCache::build(host, &placement, &[cap; 4]);
        (cache, placement)
    }

    #[test]
    fn gather_matches_host_truth() {
        let (cache, _) = setup(50);
        let keys: Vec<u32> = vec![0, 3, 499, 250, 0, 77];
        let mut out = vec![0.0f32; keys.len() * DIM];
        let stats = cache.gather(1, &keys, &mut out);
        assert_eq!(stats.total(), keys.len() as u64);
        let truth = HostTable::dense(N, DIM);
        for (k, &key) in keys.iter().enumerate() {
            assert_eq!(
                &out[k * DIM..(k + 1) * DIM],
                truth.read(key).as_slice(),
                "key {key}"
            );
        }
    }

    #[test]
    fn stats_match_placement_split() {
        let (cache, placement) = setup(50);
        let keys: Vec<u32> = (0..N as u32).collect();
        let mut out = vec![0.0f32; keys.len() * DIM];
        let stats = cache.gather(2, &keys, &mut out);
        let split = placement.split_keys(2, &keys);
        let local = split
            .iter()
            .find(|(l, _)| *l == gpu_platform::Location::Gpu(2))
            .map_or(0, |(_, c)| *c);
        let host = split
            .iter()
            .find(|(l, _)| *l == gpu_platform::Location::Host)
            .map_or(0, |(_, c)| *c);
        assert_eq!(stats.local, local);
        assert_eq!(stats.host, host);
        assert_eq!(stats.remote, N as u64 - local - host);
    }

    #[test]
    fn filler_respects_capacity() {
        let (cache, placement) = setup(50);
        for j in 0..4 {
            assert_eq!(cache.arenas[j].len(), placement.cached_count(j));
            assert!(cache.arenas[j].len() <= 50);
        }
    }

    #[test]
    fn apply_placement_switches_layout() {
        let (mut cache, _) = setup(50);
        let plat = Platform::server_a();
        let h = Hotness::new(powerlaw_hotness(N, 1.2));
        let rep = baselines::replication(&plat, &h, 50);
        cache.apply_placement(&rep);
        let keys: Vec<u32> = (0..50).collect();
        let mut out = vec![0.0f32; keys.len() * DIM];
        let stats = cache.gather(3, &keys, &mut out);
        // Replication: the 50 hottest (= lowest ids for powerlaw) are local.
        assert_eq!(stats.local, 50);
        assert_eq!(stats.remote, 0);
    }

    #[test]
    fn staged_update_then_swap() {
        let (mut cache, placement) = setup(50);
        // Swap a hot resident of GPU0 (entry 0 under partition) for a cold
        // entry, then swap hashtables to the matching arrangement.
        let cold = 499u32;
        let victim = 0u32;
        assert!(!cache.locations[0].contains_key(&cold));
        assert!(cache.arenas[0].offset_of(victim).is_some());
        cache.update_arena(0, &[victim], &[cold]);
        let mut p2 = placement.clone();
        p2.stored[0][victim as usize] = false;
        p2.stored[0][cold as usize] = true;
        p2.access[0][cold as usize] = 0;
        for i in 0..4 {
            if p2.access[i][victim as usize] == 0 {
                p2.access[i][victim as usize] = p2.host_idx();
            }
        }
        cache.swap_locations(&p2);
        let mut out = vec![0.0f32; DIM];
        let stats = cache.gather(0, &[cold], &mut out);
        assert_eq!(stats.local, 1);
        assert_eq!(out, HostTable::dense(N, DIM).read(cold));
    }

    #[test]
    #[should_panic(expected = "output buffer length")]
    fn wrong_output_length_panics() {
        let (cache, _) = setup(10);
        let mut out = vec![0.0f32; 3];
        let _ = cache.gather(0, &[1, 2], &mut out);
    }
}
