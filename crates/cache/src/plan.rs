//! Reusable gather plans: the resolve pass of the two-pass gather.
//!
//! [`crate::MultiGpuCache::gather`] used to probe a `HashMap` and copy one
//! row per key, interleaving pointer-chasing lookups with short `memcpy`s.
//! The optimized path splits the work in two:
//!
//! 1. **plan** — resolve every key to a packed `(source, offset)` slot by
//!    probing the dense location table (a flat array indexed by entry id),
//!    accumulating per-source key counts as it goes;
//! 2. **copy** — sweep the plan once per source, streaming rows out of a
//!    single arena slab at a time (cache-friendly, autovectorizable
//!    `copy_from_slice` bodies with no per-key branching).
//!
//! The per-source counts double as the per-tier statistics the timing
//! layer needs, so [`GatherPlan::source_split`] replaces the per-key
//! `match` branches that used to feed `extract`'s byte counters.
//!
//! Plans are plain buffers and are meant to be reused across calls (the
//! cache keeps one per thread); [`GatherPlan::reset`] retains capacity.

use crate::cache::GatherStats;
use gpu_platform::Location;

/// A resolved gather: one packed slot per key plus per-source counts.
///
/// Each slot packs `source << 32 | payload` where `payload` is the arena
/// offset for GPU sources and the entry id for the host source (index
/// `num_gpus`), so the copy pass never re-probes any table.
#[derive(Debug, Clone, Default)]
pub struct GatherPlan {
    pub(crate) num_gpus: usize,
    /// Packed `(source, offset-or-key)` per key, in key order.
    pub(crate) slots: Vec<u64>,
    /// Keys per source; index `num_gpus` is the host.
    pub(crate) counts: Vec<u64>,
}

impl GatherPlan {
    /// Creates an empty plan (no capacity reserved yet).
    pub fn new() -> Self {
        GatherPlan::default()
    }

    /// Clears the plan for `num_gpus` sources, retaining buffer capacity.
    pub fn reset(&mut self, num_gpus: usize) {
        self.num_gpus = num_gpus;
        self.slots.clear();
        self.counts.clear();
        self.counts.resize(num_gpus + 1, 0);
    }

    /// Number of planned keys.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Keys per source; index `num_gpus` is the host tier.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-source hit statistics as seen from destination GPU `gpu`.
    pub fn stats(&self, gpu: usize) -> GatherStats {
        let local = self.counts[gpu];
        let host = self.counts[self.num_gpus];
        let total: u64 = self.counts.iter().sum();
        GatherStats {
            local,
            remote: total - local - host,
            host,
        }
    }

    /// The plan's `(location, key_count)` pairs, merged per source —
    /// GPUs in ascending index order, host last, zero counts skipped.
    ///
    /// This is the same shape (and ordering) as
    /// `cache_policy::Placement::split_keys`, computed from the already
    /// accumulated counts instead of a second pass over the keys.
    pub fn source_split(&self) -> Vec<(Location, u64)> {
        let mut out = Vec::new();
        for (j, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let loc = if j == self.num_gpus {
                Location::Host
            } else {
                Location::Gpu(j)
            };
            out.push((loc, c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_and_split_agree_with_counts() {
        let mut p = GatherPlan::new();
        p.reset(3);
        p.counts[0] = 4;
        p.counts[2] = 1;
        p.counts[3] = 2;
        let s = p.stats(0);
        assert_eq!(
            s,
            GatherStats {
                local: 4,
                remote: 1,
                host: 2
            }
        );
        assert_eq!(
            p.source_split(),
            vec![
                (Location::Gpu(0), 4),
                (Location::Gpu(2), 1),
                (Location::Host, 2)
            ]
        );
    }

    #[test]
    fn reset_retains_nothing_visible() {
        let mut p = GatherPlan::new();
        p.reset(2);
        p.slots.push(42);
        p.counts[1] = 7;
        p.reset(2);
        assert!(p.is_empty());
        assert_eq!(p.counts(), &[0, 0, 0]);
        assert_eq!(p.stats(0), GatherStats::default());
        assert!(p.source_split().is_empty());
    }
}
