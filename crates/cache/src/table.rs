//! The host-resident embedding table.

/// The full `N × D` embedding table living in host memory.
///
/// Two storage modes:
///
/// * **Dense** — real `f32` buffers, used by tests and examples where the
///   scaled table fits in RAM;
/// * **Procedural** — values computed on demand from a hash of
///   `(entry, dim)`. Paper-scale tables (hundreds of GB) cannot be
///   materialized on a development box; procedural values preserve the
///   property the functional layer needs — every read of the same entry
///   returns the same vector — at O(1) memory.
#[derive(Debug, Clone, PartialEq)]
pub struct HostTable {
    num_entries: usize,
    dim: usize,
    /// Dense backing store, or `None` for procedural mode.
    data: Option<Vec<f32>>,
}

impl HostTable {
    /// Creates a dense table with procedurally initialized values (same
    /// values as procedural mode, but materialized).
    pub fn dense(num_entries: usize, dim: usize) -> Self {
        let mut data = Vec::with_capacity(num_entries * dim);
        for e in 0..num_entries {
            for d in 0..dim {
                data.push(procedural_value(e as u32, d as u32));
            }
        }
        HostTable {
            num_entries,
            dim,
            data: Some(data),
        }
    }

    /// Creates a procedural table (O(1) memory).
    pub fn procedural(num_entries: usize, dim: usize) -> Self {
        HostTable {
            num_entries,
            dim,
            data: None,
        }
    }

    /// Number of entries `N`.
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// Embedding dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bytes per entry (f32 elements).
    pub fn entry_bytes(&self) -> usize {
        self.dim * std::mem::size_of::<f32>()
    }

    /// Total logical size in bytes (the paper's `VolumeE`).
    pub fn volume_bytes(&self) -> u64 {
        self.num_entries as u64 * self.entry_bytes() as u64
    }

    /// Reads entry `e` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or `out.len() != dim`.
    pub fn read_into(&self, e: u32, out: &mut [f32]) {
        assert!((e as usize) < self.num_entries, "entry {e} out of range");
        assert_eq!(out.len(), self.dim, "output slice has wrong dim");
        match &self.data {
            Some(data) => {
                let base = e as usize * self.dim;
                out.copy_from_slice(&data[base..base + self.dim]);
            }
            None => {
                for (d, v) in out.iter_mut().enumerate() {
                    *v = procedural_value(e, d as u32);
                }
            }
        }
    }

    /// Returns entry `e` as a fresh vector.
    pub fn read(&self, e: u32) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        self.read_into(e, &mut out);
        out
    }
}

/// Deterministic pseudo-random value in `[-1, 1)` for `(entry, dim)`.
fn procedural_value(e: u32, d: u32) -> f32 {
    let mut z = (e as u64) << 32 | d as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Map the top 24 bits to [-1, 1).
    ((z >> 40) as f32 / (1u64 << 23) as f32) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_procedural_agree() {
        let dense = HostTable::dense(64, 8);
        let proc_ = HostTable::procedural(64, 8);
        for e in [0u32, 1, 33, 63] {
            assert_eq!(dense.read(e), proc_.read(e));
        }
    }

    #[test]
    fn reads_are_stable() {
        let t = HostTable::procedural(100, 16);
        assert_eq!(t.read(42), t.read(42));
        assert_ne!(t.read(42), t.read(43));
    }

    #[test]
    fn values_in_range() {
        let t = HostTable::procedural(1000, 4);
        for e in 0..1000u32 {
            for v in t.read(e) {
                assert!((-1.0..1.0).contains(&v), "value {v}");
            }
        }
    }

    #[test]
    fn volume_accounting() {
        let t = HostTable::procedural(1000, 128);
        assert_eq!(t.entry_bytes(), 512);
        assert_eq!(t.volume_bytes(), 512_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let t = HostTable::procedural(10, 4);
        let _ = t.read(10);
    }
}
