//! Frozen pre-optimization gather, kept for differential tests and the
//! `repro bench` wall-clock microbenches.
//!
//! [`ReferenceGatherer`] reproduces the original `MultiGpuCache::gather`
//! exactly: a per-key `HashMap` probe into a per-destination location
//! table, then a per-row `read_slot`/`read_into` copy. It records no
//! telemetry (the optimized path owns the counters) and must not be
//! "improved" — its value is being the fixed yardstick the optimized
//! two-pass plan is compared against.

use crate::cache::{GatherStats, MultiGpuCache};
use std::collections::HashMap;

/// Snapshot of a cache's location tables in the original hash-map form,
/// with the original per-key gather loop.
#[derive(Debug, Clone)]
pub struct ReferenceGatherer {
    /// `locations[i]`: for destination GPU `i`, entry → (source GPU, slot).
    locations: Vec<HashMap<u32, (u8, u32)>>,
}

impl ReferenceGatherer {
    /// Snapshots `cache`'s current location tables.
    pub fn new(cache: &MultiGpuCache) -> Self {
        let locations = (0..cache.num_gpus())
            .map(|i| {
                cache
                    .location_row(i)
                    .iter()
                    .enumerate()
                    .filter(|&(_, &packed)| packed != u64::MAX)
                    .map(|(e, &packed)| {
                        (
                            e as u32,
                            ((packed >> 32) as u8, (packed & 0xFFFF_FFFF) as u32),
                        )
                    })
                    .collect()
            })
            .collect();
        ReferenceGatherer { locations }
    }

    /// The original per-key gather: hash probe, then one short copy per
    /// row, reading values out of `cache`'s arenas and host table.
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong length or a key is out of range.
    pub fn gather(
        &self,
        cache: &MultiGpuCache,
        gpu: usize,
        keys: &[u32],
        out: &mut [f32],
    ) -> GatherStats {
        let dim = cache.dim();
        assert_eq!(out.len(), keys.len() * dim, "output buffer length mismatch");
        let mut stats = GatherStats::default();
        for (k, &key) in keys.iter().enumerate() {
            let dst = &mut out[k * dim..(k + 1) * dim];
            match self.locations[gpu].get(&key) {
                Some(&(src, off)) => {
                    cache.arena(src as usize).read_slot(off, dst);
                    if src as usize == gpu {
                        stats.local += 1;
                    } else {
                        stats.remote += 1;
                    }
                }
                None => {
                    cache.host_table().read_into(key, dst);
                    stats.host += 1;
                }
            }
        }
        stats
    }
}
