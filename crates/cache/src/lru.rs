//! An online LRU embedding cache (the HPS baseline's design, §7.2/§9).
//!
//! Traditional inference caches track recency and evict on the fly. The
//! paper contrasts this with UGache's static, refresh-based design: LRU
//! adapts without a solver, but pays per-lookup bookkeeping and eviction
//! churn on every miss, and under a *stable* skewed workload converges to
//! roughly the same residency a static top-hotness cache starts with.
//! This module implements a real LRU so that comparison is measured, not
//! assumed.

use std::collections::HashMap;

/// A fixed-capacity LRU set over entry ids with hit/miss/eviction
/// accounting. Intrusive doubly-linked list over a slab, O(1) per access.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    /// entry id → slab index.
    index: HashMap<u32, usize>,
    /// Slab of nodes: (entry, prev, next); `usize::MAX` = none.
    nodes: Vec<(u32, usize, usize)>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

const NONE: usize = usize::MAX;

impl LruCache {
    /// Creates an empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            capacity,
            index: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            head: NONE,
            tail: NONE,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether an entry is resident (does not touch recency).
    pub fn contains(&self, entry: u32) -> bool {
        self.index.contains_key(&entry)
    }

    /// Total hits recorded by [`LruCache::access`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses recorded by [`LruCache::access`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit rate so far (0 when nothing accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn unlink(&mut self, i: usize) {
        let (_, prev, next) = self.nodes[i];
        if prev != NONE {
            self.nodes[prev].2 = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.nodes[next].1 = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].1 = NONE;
        self.nodes[i].2 = self.head;
        if self.head != NONE {
            self.nodes[self.head].1 = i;
        }
        self.head = i;
        if self.tail == NONE {
            self.tail = i;
        }
    }

    /// Accesses an entry: returns `true` on hit. On miss the entry is
    /// inserted, evicting the least-recently-used entry if full (returned
    /// as `Some(victim)` through `evicted`).
    pub fn access(&mut self, entry: u32) -> (bool, Option<u32>) {
        if let Some(&i) = self.index.get(&entry) {
            self.hits += 1;
            self.unlink(i);
            self.push_front(i);
            return (true, None);
        }
        self.misses += 1;
        let mut evicted = None;
        let slot = if self.index.len() < self.capacity {
            self.nodes.push((entry, NONE, NONE));
            self.nodes.len() - 1
        } else {
            // Reuse the tail node.
            let victim_slot = self.tail;
            let victim = self.nodes[victim_slot].0;
            self.unlink(victim_slot);
            self.index.remove(&victim);
            self.evictions += 1;
            evicted = Some(victim);
            self.nodes[victim_slot].0 = entry;
            victim_slot
        };
        self.index.insert(entry, slot);
        self.push_front(slot);
        (false, evicted)
    }

    /// Accesses a whole batch; returns `(hits, misses)` for the batch.
    pub fn access_batch(&mut self, keys: &[u32]) -> (u64, u64) {
        let mut h = 0;
        let mut m = 0;
        for &k in keys {
            if self.access(k).0 {
                h += 1;
            } else {
                m += 1;
            }
        }
        (h, m)
    }

    /// Resident entries, most recent first.
    pub fn residents(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        let mut i = self.head;
        while i != NONE {
            out.push(self.nodes[i].0);
            i = self.nodes[i].2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emb_util::{seed_rng, ZipfSampler};

    #[test]
    fn basic_hit_miss_evict() {
        let mut c = LruCache::new(2);
        assert_eq!(c.access(1), (false, None));
        assert_eq!(c.access(2), (false, None));
        assert_eq!(c.access(1), (true, None));
        // 3 evicts 2 (1 was refreshed).
        assert_eq!(c.access(3), (false, Some(2)));
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 3);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn recency_order_is_maintained() {
        let mut c = LruCache::new(3);
        for k in [1, 2, 3] {
            c.access(k);
        }
        c.access(1); // 1 most recent, 2 is LRU
        assert_eq!(c.residents(), vec![1, 3, 2]);
        let (_, ev) = c.access(4);
        assert_eq!(ev, Some(2));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = LruCache::new(10);
        let mut rng = seed_rng(1);
        let z = ZipfSampler::new(1000, 1.1);
        for _ in 0..5_000 {
            c.access(z.sample(&mut rng) as u32);
            assert!(c.len() <= 10);
        }
    }

    #[test]
    fn zipf_hit_rate_approaches_static_top_k() {
        // Under a stable Zipf workload, LRU residency converges near the
        // top-k set, so its hit rate approaches (but does not beat by
        // much) a static top-k cache — the paper's §7.2 argument.
        let n = 10_000u64;
        let alpha = 1.2;
        let cap = 500usize;
        let z = ZipfSampler::new(n, alpha);
        let mut rng = seed_rng(2);
        let mut lru = LruCache::new(cap);
        // Warm up.
        for _ in 0..50_000 {
            lru.access(z.sample(&mut rng) as u32);
        }
        // Measure.
        let mut lru_hits = 0u64;
        let mut static_hits = 0u64;
        let trials = 50_000;
        for _ in 0..trials {
            let k = z.sample(&mut rng) as u32;
            if lru.access(k).0 {
                lru_hits += 1;
            }
            if (k as usize) < cap {
                static_hits += 1;
            }
        }
        let lru_rate = lru_hits as f64 / trials as f64;
        let static_rate = static_hits as f64 / trials as f64;
        assert!(
            (lru_rate - static_rate).abs() < 0.08,
            "LRU {lru_rate:.3} vs static {static_rate:.3}"
        );
    }

    #[test]
    fn batch_accounting() {
        let mut c = LruCache::new(4);
        let (h, m) = c.access_batch(&[1, 2, 1, 3, 2]);
        assert_eq!((h, m), (2, 3));
        assert!((c.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::new(0);
    }
}
