//! Functional multi-GPU embedding cache.
//!
//! This crate is the *data* half of the reproduction (the timing half is
//! `gpu-memsim`): it really stores embedding vectors and really gathers
//! them, so correctness is testable end-to-end:
//!
//! * [`HostTable`] — the full embedding table in (real or procedural)
//!   host memory;
//! * [`GpuArena`] — one GPU's cache storage: a flat slot array plus the
//!   entry→offset map;
//! * [`MultiGpuCache`] — the composed cache: per-GPU location hashtables
//!   in the paper's `<GPU_i, Offset>` format (§4), a
//!   [`MultiGpuCache::gather`] that returns both values and per-source
//!   hit statistics, and a [`MultiGpuCache::apply_placement`] refill path
//!   (the Filler);
//! * [`HotnessSampler`] — foreground request sampling for hotness
//!   tracking (§7.2);
//! * [`Refresher`] — the background refresh state machine: solve → staged
//!   small-batch cache updates with bounded foreground impact (Figure 17);
//! * [`LruCache`] — an online LRU cache (the HPS baseline's eviction
//!   design), kept so the static-vs-LRU comparison of §7.2 is measured
//!   against a real implementation.

#![deny(missing_docs)]

pub mod arena;
pub mod cache;
pub mod lru;
pub mod plan;
pub mod reference;
pub mod refresh;
pub mod sampler;
pub mod table;

pub use arena::GpuArena;
pub use cache::{GatherStats, MultiGpuCache};
pub use lru::LruCache;
pub use plan::GatherPlan;
pub use reference::ReferenceGatherer;
pub use refresh::{RefreshConfig, RefreshPhase, Refresher};
pub use sampler::HotnessSampler;
pub use table::HostTable;
