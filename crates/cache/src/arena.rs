//! Per-GPU cache storage.

use std::collections::HashMap;

/// One GPU's embedding-cache arena: `capacity × dim` f32 slots plus the
/// entry→slot index. Stands in for a GPU HBM allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuArena {
    dim: usize,
    capacity: usize,
    data: Vec<f32>,
    /// entry id → slot index.
    slots: HashMap<u32, u32>,
    /// Free slot indices (reverse order so allocation is LIFO).
    free: Vec<u32>,
}

impl GpuArena {
    /// Creates an arena with room for `capacity` entries of `dim` floats.
    pub fn new(capacity: usize, dim: usize) -> Self {
        GpuArena {
            dim,
            capacity,
            data: vec![0.0; capacity * dim],
            slots: HashMap::with_capacity(capacity),
            free: (0..capacity as u32).rev().collect(),
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Slot offset of a cached entry.
    pub fn offset_of(&self, entry: u32) -> Option<u32> {
        self.slots.get(&entry).copied()
    }

    /// Inserts an entry's values; returns its slot offset.
    ///
    /// Re-inserting an existing entry overwrites it in place.
    ///
    /// # Panics
    ///
    /// Panics if the arena is full or `values.len() != dim`.
    pub fn insert(&mut self, entry: u32, values: &[f32]) -> u32 {
        assert_eq!(values.len(), self.dim, "value dim mismatch");
        let slot = match self.slots.get(&entry) {
            Some(&s) => s,
            None => {
                let s = self
                    .free
                    .pop()
                    .unwrap_or_else(|| panic!("arena full ({} entries)", self.capacity));
                self.slots.insert(entry, s);
                s
            }
        };
        let base = slot as usize * self.dim;
        self.data[base..base + self.dim].copy_from_slice(values);
        slot
    }

    /// Bulk-inserts `entries` with their rows packed contiguously in
    /// `rows` (`entries.len() × dim` floats, entry order).
    ///
    /// Equivalent to calling [`GpuArena::insert`] once per entry, but the
    /// copy loop coalesces runs of adjacent destination slots into single
    /// `copy_from_slice` calls — on a fresh arena the LIFO free list
    /// hands out consecutive slots, so a filler pass becomes a handful of
    /// large block copies instead of one bounds-checked copy per row.
    /// Bitwise-identical to the per-row path (it moves the same bytes).
    ///
    /// # Panics
    ///
    /// Panics if the arena runs out of capacity or
    /// `rows.len() != entries.len() * dim`.
    pub fn insert_many(&mut self, entries: &[u32], rows: &[f32]) {
        assert_eq!(
            rows.len(),
            entries.len() * self.dim,
            "rows buffer must be entries × dim"
        );
        if self.dim == 0 {
            for &entry in entries {
                self.insert(entry, &[]);
            }
            return;
        }
        // Pass 1: allocate a slot per entry (dedup-aware — a repeated
        // entry reuses its slot, matching repeated `insert` calls).
        let slots: Vec<u32> = entries
            .iter()
            .map(|&entry| match self.slots.get(&entry) {
                Some(&s) => s,
                None => {
                    let s = self
                        .free
                        .pop()
                        .unwrap_or_else(|| panic!("arena full ({} entries)", self.capacity));
                    self.slots.insert(entry, s);
                    s
                }
            })
            .collect();
        // Pass 2: copy maximal runs of consecutive destination slots.
        let dim = self.dim;
        let mut i = 0;
        while i < slots.len() {
            let mut j = i + 1;
            while j < slots.len() && slots[j] == slots[j - 1] + 1 {
                j += 1;
            }
            let dst = slots[i] as usize * dim;
            self.data[dst..dst + (j - i) * dim].copy_from_slice(&rows[i * dim..j * dim]);
            i = j;
        }
    }

    /// Evicts an entry; returns whether it was present.
    pub fn evict(&mut self, entry: u32) -> bool {
        match self.slots.remove(&entry) {
            Some(s) => {
                self.free.push(s);
                true
            }
            None => false,
        }
    }

    /// Reads the values at a slot offset.
    ///
    /// # Panics
    ///
    /// Panics if the offset is out of range.
    pub fn read_slot(&self, offset: u32, out: &mut [f32]) {
        assert!(
            (offset as usize) < self.capacity,
            "slot {offset} out of range"
        );
        assert_eq!(out.len(), self.dim);
        let base = offset as usize * self.dim;
        out.copy_from_slice(&self.data[base..base + self.dim]);
    }

    /// The raw backing slab: `capacity × dim` floats, slot-major.
    ///
    /// Row `s` occupies `slab()[s * dim .. (s + 1) * dim]`. Exposed so
    /// blocked gather paths can stream many rows out of one slab without
    /// a bounds-checked call per row.
    pub fn slab(&self) -> &[f32] {
        &self.data
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free = (0..self.capacity as u32).rev().collect();
    }

    /// Iterates over cached entry ids.
    pub fn entries(&self) -> impl Iterator<Item = u32> + '_ {
        self.slots.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_read_roundtrip() {
        let mut a = GpuArena::new(4, 3);
        let off = a.insert(7, &[1.0, 2.0, 3.0]);
        let mut out = [0.0; 3];
        a.read_slot(off, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert_eq!(a.offset_of(7), Some(off));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn reinsert_overwrites_in_place() {
        let mut a = GpuArena::new(2, 2);
        let o1 = a.insert(1, &[1.0, 1.0]);
        let o2 = a.insert(1, &[2.0, 2.0]);
        assert_eq!(o1, o2);
        assert_eq!(a.len(), 1);
        let mut out = [0.0; 2];
        a.read_slot(o2, &mut out);
        assert_eq!(out, [2.0, 2.0]);
    }

    #[test]
    fn evict_frees_slot_for_reuse() {
        let mut a = GpuArena::new(1, 1);
        a.insert(5, &[5.0]);
        assert!(a.evict(5));
        assert!(!a.evict(5));
        // Capacity freed: a new insert must succeed.
        a.insert(6, &[6.0]);
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arena full")]
    fn overfull_panics() {
        let mut a = GpuArena::new(1, 1);
        a.insert(1, &[1.0]);
        a.insert(2, &[2.0]);
    }

    /// Reference per-row fill loop `insert_many` must match bitwise.
    fn insert_rows_one_by_one(a: &mut GpuArena, entries: &[u32], rows: &[f32], dim: usize) {
        for (i, &e) in entries.iter().enumerate() {
            a.insert(e, &rows[i * dim..(i + 1) * dim]);
        }
    }

    #[test]
    fn insert_many_is_bitwise_identical_to_per_row_inserts() {
        let dim = 5;
        // Non-trivial values (including denormal-ish magnitudes) and a
        // duplicated entry whose later row must win, like repeated inserts.
        let entries: Vec<u32> = vec![9, 2, 5, 2, 30, 31, 32, 7];
        let rows: Vec<f32> = (0..entries.len() * dim)
            .map(|i| (i as f32 - 11.0) * 1.0e-7)
            .collect();
        let mut bulk = GpuArena::new(64, dim);
        bulk.insert_many(&entries, &rows);
        let mut reference = GpuArena::new(64, dim);
        insert_rows_one_by_one(&mut reference, &entries, &rows, dim);
        assert_eq!(bulk.len(), reference.len());
        for &e in &entries {
            assert_eq!(bulk.offset_of(e), reference.offset_of(e), "entry {e}");
        }
        let (b, r) = (bulk.slab(), reference.slab());
        assert_eq!(b.len(), r.len());
        for (i, (x, y)) in b.iter().zip(r).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "slab element {i}");
        }
    }

    #[test]
    fn insert_many_coalesces_after_fragmentation() {
        // Evictions scramble the free list, so bulk inserts land on
        // non-consecutive slots; values must still match per-row inserts.
        let dim = 3;
        let mut bulk = GpuArena::new(8, dim);
        let mut reference = GpuArena::new(8, dim);
        for a in [&mut bulk, &mut reference] {
            for e in 0..8u32 {
                a.insert(e, &[e as f32; 3]);
            }
            a.evict(6);
            a.evict(1);
            a.evict(3);
        }
        let entries = [10u32, 11, 12];
        let rows: Vec<f32> = (0..9).map(|i| i as f32 * 0.125).collect();
        bulk.insert_many(&entries, &rows);
        insert_rows_one_by_one(&mut reference, &entries, &rows, dim);
        for (x, y) in bulk.slab().iter().zip(reference.slab()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "arena full")]
    fn insert_many_overflow_panics() {
        let mut a = GpuArena::new(2, 1);
        a.insert_many(&[1, 2, 3], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn clear_resets() {
        let mut a = GpuArena::new(3, 1);
        a.insert(1, &[1.0]);
        a.insert(2, &[2.0]);
        a.clear();
        assert!(a.is_empty());
        a.insert(3, &[3.0]);
        assert_eq!(a.len(), 1);
    }
}
