//! Foreground hotness sampling (§7.2).
//!
//! UGache samples input requests on the CPU to track hotness without
//! impacting the extraction path. The sampler counts every `1/rate`-th
//! key deterministically (stride sampling is unbiased here because keys
//! arrive in workload order, not sorted order).

use cache_policy::Hotness;

/// Streaming key-frequency sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct HotnessSampler {
    counts: Vec<u64>,
    /// Record one of every `stride` keys.
    stride: usize,
    cursor: usize,
    sampled: u64,
    observed: u64,
}

impl HotnessSampler {
    /// Creates a sampler over `num_entries` keys, recording one in
    /// `stride` observations (`stride = 1` counts everything).
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn new(num_entries: usize, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        HotnessSampler {
            counts: vec![0; num_entries],
            stride,
            cursor: 0,
            sampled: 0,
            observed: 0,
        }
    }

    /// Observes a batch of keys.
    ///
    /// # Panics
    ///
    /// Panics if a key is out of range.
    pub fn observe(&mut self, keys: &[u32]) {
        for &k in keys {
            self.observed += 1;
            self.cursor += 1;
            if self.cursor >= self.stride {
                self.cursor = 0;
                self.counts[k as usize] += 1;
                self.sampled += 1;
            }
        }
    }

    /// Total keys seen (sampled or not).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Keys actually counted.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Snapshot of the current hotness estimate.
    pub fn snapshot(&self) -> Hotness {
        Hotness::from_counts(&self.counts)
    }

    /// Clears counts (e.g. after a refresh consumed them).
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.cursor = 0;
        self.sampled = 0;
        self.observed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emb_util::{seed_rng, ZipfSampler};

    #[test]
    fn full_rate_counts_everything() {
        let mut s = HotnessSampler::new(10, 1);
        s.observe(&[1, 1, 2, 9]);
        assert_eq!(s.observed(), 4);
        assert_eq!(s.sampled(), 4);
        let h = s.snapshot();
        assert_eq!(h.weights[1], 2.0);
        assert_eq!(h.weights[9], 1.0);
    }

    #[test]
    fn stride_sampling_is_proportional() {
        let n = 1000u64;
        let zipf = ZipfSampler::new(n, 1.2);
        let mut rng = seed_rng(3);
        let keys: Vec<u32> = (0..200_000).map(|_| zipf.sample(&mut rng) as u32).collect();
        let mut full = HotnessSampler::new(n as usize, 1);
        let mut sub = HotnessSampler::new(n as usize, 16);
        full.observe(&keys);
        sub.observe(&keys);
        assert_eq!(sub.sampled(), 200_000 / 16);
        // The top entries should agree between full and subsampled counts.
        let top_full = full.snapshot().ranking()[0];
        let top_sub = sub.snapshot().ranking()[0];
        assert_eq!(top_full, top_sub);
        // Subsampled counts scale by ~stride.
        let ratio = full.snapshot().weights[top_full as usize]
            / sub.snapshot().weights[top_sub as usize].max(1.0);
        assert!((ratio - 16.0).abs() < 3.0, "ratio {ratio}");
    }

    #[test]
    fn reset_clears_state() {
        let mut s = HotnessSampler::new(4, 2);
        s.observe(&[0, 1, 2, 3]);
        s.reset();
        assert_eq!(s.observed(), 0);
        assert_eq!(s.snapshot().total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = HotnessSampler::new(4, 0);
    }
}
