//! Execution traces: who was reading what, when.
//!
//! [`crate::engine::simulate_traced`] records one event per completed
//! chunk — `(gpu, core, source, start, end)` — which is enough to rebuild
//! the factored-extraction schedule the paper sketches in Figure 8:
//! dedicated groups ticking along their links, local padding filling the
//! drained cores' tails.

use gpu_platform::Location;

/// One chunk's lifetime on one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Destination GPU.
    pub gpu: usize,
    /// Core index within the GPU.
    pub core: usize,
    /// Source the chunk was read from.
    pub src: Location,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
}

/// A full extraction trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExtractionTrace {
    /// All chunk events, in completion order.
    pub events: Vec<TraceEvent>,
}

impl ExtractionTrace {
    /// Wall-clock end of the last event (0 when empty).
    pub fn makespan(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Core-seconds spent per source on one GPU.
    pub fn busy_per_source(&self, gpu: usize) -> Vec<(Location, f64)> {
        let mut acc: Vec<(Location, f64)> = Vec::new();
        for e in self.events.iter().filter(|e| e.gpu == gpu) {
            let d = e.end - e.start;
            match acc.iter_mut().find(|(s, _)| *s == e.src) {
                Some((_, t)) => *t += d,
                None => acc.push((e.src, d)),
            }
        }
        acc
    }

    /// Mean core utilization of one GPU over the trace's makespan, given
    /// its SM count.
    pub fn core_utilization(&self, gpu: usize, sm_count: usize) -> f64 {
        let span = self.makespan();
        if span <= 0.0 || sm_count == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .events
            .iter()
            .filter(|e| e.gpu == gpu)
            .map(|e| e.end - e.start)
            .sum();
        busy / (span * sm_count as f64)
    }

    /// Samples, at `buckets` evenly spaced instants, how many of `gpu`'s
    /// cores were reading each source. Rows are `(time, counts)` with
    /// `counts` parallel to `sources`.
    pub fn occupancy_timeline(
        &self,
        gpu: usize,
        sources: &[Location],
        buckets: usize,
    ) -> Vec<(f64, Vec<usize>)> {
        let span = self.makespan();
        if span <= 0.0 || buckets == 0 {
            return Vec::new();
        }
        let evs: Vec<&TraceEvent> = self.events.iter().filter(|e| e.gpu == gpu).collect();
        (0..buckets)
            .map(|b| {
                let t = span * (b as f64 + 0.5) / buckets as f64;
                let counts = sources
                    .iter()
                    .map(|&s| {
                        evs.iter()
                            .filter(|e| e.src == s && e.start <= t && t < e.end)
                            .count()
                    })
                    .collect();
                (t, counts)
            })
            .collect()
    }

    /// Renders an ASCII occupancy chart for one GPU (rows = sources,
    /// columns = time; glyph density encodes active core count).
    pub fn render_occupancy(
        &self,
        gpu: usize,
        sources: &[Location],
        width: usize,
        max_cores: usize,
    ) -> String {
        let timeline = self.occupancy_timeline(gpu, sources, width);
        if timeline.is_empty() {
            return String::from("(empty trace)\n");
        }
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let mut out = String::new();
        for (si, s) in sources.iter().enumerate() {
            out.push_str(&format!("{:>6} |", s.to_string()));
            for (_, counts) in &timeline {
                let c = counts[si];
                let level = if max_cores == 0 {
                    0
                } else {
                    ((c * (glyphs.len() - 1)).div_ceil(max_cores)).min(glyphs.len() - 1)
                };
                out.push(glyphs[level]);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>6}  0{}{}s\n",
            "t=",
            " ".repeat(width.saturating_sub(8)),
            format_args!("{:.2e}", self.makespan())
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_traced, DispatchMode, GpuWork, SimConfig, SourceDemand};
    use emb_util::SimTime;
    use gpu_platform::{DedicationConfig, Platform};

    fn traced() -> (crate::engine::ExtractionResult, ExtractionTrace) {
        let p = Platform::server_a();
        let works = vec![GpuWork {
            gpu: 0,
            demands: vec![
                SourceDemand {
                    src: Location::Gpu(0),
                    bytes: 200e6,
                },
                SourceDemand {
                    src: Location::Gpu(1),
                    bytes: 100e6,
                },
                SourceDemand {
                    src: Location::Host,
                    bytes: 50e6,
                },
            ],
        }];
        let cfg = SimConfig {
            launch_overhead: SimTime::ZERO,
            ..SimConfig::default()
        };
        simulate_traced(
            &p,
            &cfg,
            &works,
            DispatchMode::Factored {
                dedication: DedicationConfig::default(),
            },
        )
    }

    #[test]
    fn trace_covers_all_bytes_and_matches_makespan() {
        let (res, trace) = traced();
        assert!(!trace.events.is_empty());
        let span = trace.makespan();
        assert!((span - res.makespan.as_secs_f64()).abs() < 1e-9);
        // Busy per source is positive for all three sources.
        let busy = trace.busy_per_source(0);
        assert_eq!(busy.len(), 3);
        for (_, t) in busy {
            assert!(t > 0.0);
        }
    }

    #[test]
    fn events_are_well_formed() {
        let (_, trace) = traced();
        for e in &trace.events {
            assert!(e.end >= e.start);
            assert_eq!(e.gpu, 0);
            assert!(e.core < 80);
        }
    }

    #[test]
    fn occupancy_and_render() {
        let (_, trace) = traced();
        let sources = [Location::Gpu(0), Location::Gpu(1), Location::Host];
        let tl = trace.occupancy_timeline(0, &sources, 20);
        assert_eq!(tl.len(), 20);
        // Host group is bounded by its dedication (≤ ~8 cores).
        for (_, counts) in &tl {
            assert!(counts[2] <= 10, "host cores {}", counts[2]);
        }
        let art = trace.render_occupancy(0, &sources, 40, 80);
        assert!(art.lines().count() >= 4);
        assert!(art.contains("Host"));
    }

    #[test]
    fn utilization_in_unit_range() {
        let (_, trace) = traced();
        let u = trace.core_utilization(0, 80);
        assert!((0.0..=1.0).contains(&u), "{u}");
        assert!(u > 0.05);
    }
}
