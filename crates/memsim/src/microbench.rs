//! Bandwidth-vs-cores microbenchmark (paper Figure 6).
//!
//! Closed-form evaluation of the congestion model for a steady-state
//! stream: how much bandwidth do `n` concurrent cores achieve from a given
//! source, optionally while other GPUs interfere on the same source (the
//! `G2←G4`/`G3←G4` collision in Figure 6b)?

use crate::bandwidth::{effective_bw, CongestionModel};
use gpu_platform::{Interconnect, Location, Platform};

/// An interfering reader: `(dst_gpu, src, cores)`.
pub type Interferer = (usize, Location, usize);

/// Steady-state bandwidth achieved by `cores` SMs of `dst` reading `src`,
/// given concurrent interferers, in bytes/s.
///
/// # Panics
///
/// Panics if `dst` cannot reach `src` on this platform.
pub fn bandwidth_with_cores(
    platform: &Platform,
    dst: usize,
    src: Location,
    cores: usize,
    interference: &[Interferer],
    model: CongestionModel,
) -> f64 {
    assert!(
        platform.connected(dst, src),
        "GPU{dst} cannot read from {src}"
    );
    let path = platform.path(dst, src);
    let raw = effective_bw(path.bw, path.per_core_bw, cores, model);

    // Does the source's egress port get shared?
    let egress_applies = match src {
        Location::Host => true,
        Location::Gpu(j) if j == dst => false,
        Location::Gpu(_) => matches!(platform.interconnect, Interconnect::Switch { .. }),
    };
    if !egress_applies {
        record_sample(dst, src, cores, raw);
        return raw;
    }

    let mut demands: Vec<(f64, f64, usize)> = vec![(raw, path.per_core_bw, cores)];
    for &(d2, s2, c2) in interference {
        if s2 != src || c2 == 0 {
            continue;
        }
        let p2 = platform.path(d2, s2);
        demands.push((
            effective_bw(p2.bw, p2.per_core_bw, c2, model),
            p2.per_core_bw,
            c2,
        ));
    }
    let cap = platform.outbound_bw(src);
    let total_cores: usize = demands.iter().map(|d| d.2).sum();
    let pc: f64 = demands.iter().map(|d| d.1 * d.2 as f64).sum::<f64>() / total_cores.max(1) as f64;
    let eff_cap = effective_bw(cap, pc, total_cores, model).min(cap);
    let total: f64 = demands.iter().map(|d| d.0).sum();
    let achieved = if total <= eff_cap {
        raw
    } else {
        raw * eff_cap / total
    };
    record_sample(dst, src, cores, achieved);
    achieved
}

/// Records one closed-form bandwidth sample into the active telemetry
/// scope (no-op when none is active); counter names in `EXPERIMENTS.md`.
fn record_sample(dst: usize, src: Location, cores: usize, bytes_per_sec: f64) {
    if !emb_telemetry::enabled() {
        return;
    }
    emb_telemetry::count("memsim.microbench.samples", 1.0);
    emb_telemetry::observe("memsim.microbench.bytes_per_sec", bytes_per_sec);
    emb_telemetry::event("memsim.microbench", || {
        vec![
            (
                "dst".to_string(),
                emb_telemetry::EventValue::U64(dst as u64),
            ),
            (
                "src".to_string(),
                emb_telemetry::EventValue::Str(src.to_string()),
            ),
            (
                "cores".to_string(),
                emb_telemetry::EventValue::U64(cores as u64),
            ),
            (
                "bytes_per_sec".to_string(),
                emb_telemetry::EventValue::F64(bytes_per_sec),
            ),
        ]
    });
}

/// Sweeps `1..=max_cores` concurrent cores and returns `(cores, bytes/s)`
/// pairs — one series of Figure 6.
pub fn sweep(
    platform: &Platform,
    dst: usize,
    src: Location,
    max_cores: usize,
    interference: &[Interferer],
    model: CongestionModel,
) -> Vec<(usize, f64)> {
    (1..=max_cores)
        .map(|c| {
            (
                c,
                bandwidth_with_cores(platform, dst, src, c, interference, model),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_scales_to_all_cores() {
        let p = Platform::server_c();
        let m = CongestionModel::default();
        let series = sweep(&p, 0, Location::Gpu(0), 108, &[], m);
        // Monotone non-decreasing until saturation for local HBM.
        let (_, at_54) = series[53];
        let (_, at_108) = series[107];
        assert!(at_108 >= at_54);
        assert!(at_108 <= p.gpus[0].local_bw * 1.001);
        assert!(at_108 >= p.gpus[0].local_bw * 0.95);
    }

    #[test]
    fn pcie_saturates_with_few_cores() {
        let p = Platform::server_a();
        let m = CongestionModel::default();
        let series = sweep(&p, 0, Location::Host, 80, &[], m);
        let sat_core = series
            .iter()
            .find(|(_, bw)| *bw >= p.gpus[0].pcie_bw * 0.98)
            .map(|(c, _)| *c)
            .expect("PCIe never saturates");
        assert!(sat_core <= 8, "saturated at {sat_core} cores");
        // Beyond tolerance the bandwidth *drops* (congestion).
        assert!(series[79].1 < p.gpus[0].pcie_bw);
    }

    #[test]
    fn hardwired_remote_saturates_at_fraction_of_cores() {
        let p = Platform::server_a();
        let m = CongestionModel::default();
        let series = sweep(&p, 0, Location::Gpu(1), 80, &[], m);
        let sat_core = series
            .iter()
            .find(|(_, bw)| *bw >= 50e9 * 0.999)
            .map(|(c, _)| *c)
            .unwrap();
        // ~1/3 of 80 cores, as the paper reports for 4×V100.
        assert!((20..=30).contains(&sat_core), "saturated at {sat_core}");
    }

    #[test]
    fn nvswitch_collision_halves_bandwidth() {
        let p = Platform::server_c();
        let m = CongestionModel::default();
        let alone = bandwidth_with_cores(&p, 2, Location::Gpu(4), 60, &[], m);
        let contended =
            bandwidth_with_cores(&p, 2, Location::Gpu(4), 60, &[(3, Location::Gpu(4), 60)], m);
        assert!(
            contended < alone * 0.7,
            "contended {contended} vs alone {alone}"
        );
    }

    #[test]
    fn interference_on_other_source_is_ignored() {
        let p = Platform::server_c();
        let m = CongestionModel::default();
        let alone = bandwidth_with_cores(&p, 2, Location::Gpu(4), 40, &[], m);
        let other =
            bandwidth_with_cores(&p, 2, Location::Gpu(4), 40, &[(3, Location::Gpu(5), 64)], m);
        assert_eq!(alone, other);
    }
}
