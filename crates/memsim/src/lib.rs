//! Flow-level discrete-event simulation of multi-GPU embedding extraction.
//!
//! This crate is the timing substitute for real GPU hardware (see
//! `DESIGN.md`). Given how many bytes each destination GPU must pull from
//! each source location, and how SM cores are assigned to that work, it
//! computes how long the extraction takes on the modelled platform —
//! including the effects UGache's design revolves around:
//!
//! * **per-core bandwidth limits** — one SM can only sustain a few GB/s of
//!   dependent gather traffic (paper Figure 6);
//! * **link saturation** — a path's aggregate bandwidth caps the sum of
//!   its readers;
//! * **congestion collapse** — once concurrent readers exceed a path's
//!   *tolerance*, the effective bandwidth degrades (modelled as a bounded
//!   penalty, calibrated to the paper's "up to 50 %" core-stall loss);
//! * **source egress collision** — on switch-based platforms several GPUs
//!   reading the same source share its egress port (Figure 6b, right);
//! * **core stall** — a core occupied by a slow transfer cannot serve
//!   other work, which the event engine captures naturally.
//!
//! The three dispatch modes correspond to the extraction mechanisms of
//! §3.2/§5: [`DispatchMode::RandomShared`] (naive peer access, random key
//! dispatch), [`DispatchMode::Factored`] (UGache's core dedication with
//! local-extraction padding) and [`DispatchMode::Sequential`] (one source
//! at a time, used for message-based phase modelling).

#![deny(missing_docs)]

pub mod bandwidth;
pub mod engine;
pub mod microbench;
pub mod reference;
pub mod trace;

pub use bandwidth::{effective_bw, CongestionModel};
pub use engine::{
    simulate, simulate_traced, DispatchMode, ExtractionResult, GpuExtraction, GpuWork, LinkUse,
    SimConfig, SourceDemand,
};
pub use reference::{simulate_reference, simulate_reference_traced};
pub use trace::{ExtractionTrace, TraceEvent};
