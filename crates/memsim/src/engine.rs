//! The discrete-event extraction engine.
//!
//! Work arrives as "destination GPU `i` must pull `b` bytes from source
//! `j`". Each GPU's SM cores pick up fixed-size chunks of that work
//! according to a [`DispatchMode`]; at every instant the engine computes
//! each flow's rate from the congestion model (per-core caps, path caps,
//! source-egress caps) and advances simulated time to the next chunk
//! completion. Stalls emerge naturally: a core stuck on an oversubscribed
//! PCIe chunk holds that core while fast local chunks drain elsewhere.
//!
//! The event loop is incremental: per-group active-core counts, the
//! per-GPU busy-core counts, and the list of busy cores are maintained on
//! completion/dispatch transitions instead of being recounted by scanning
//! every core each step, and the egress source list (with per-source
//! caps and candidate reader groups) is computed once up front instead of
//! being re-collected, re-sorted and re-deduped per step. The
//! pre-optimization loop is preserved verbatim in [`crate::reference`]
//! for differential tests and `repro bench`; both produce bit-identical
//! results and telemetry.

use crate::bandwidth::{effective_bw, CongestionModel};
use crate::trace::{ExtractionTrace, TraceEvent};
use emb_util::{split_seed, SimTime};
use gpu_platform::{
    DedicationConfig, Interconnect, Location, PathKind, PathSpec, Platform, Profile,
};
use rand::seq::SliceRandom;
use std::collections::VecDeque;

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Bytes per dispatched chunk (the unit of core occupancy).
    pub chunk_bytes: f64,
    /// Congestion model shared by all paths.
    pub congestion: CongestionModel,
    /// Fixed per-extraction kernel-launch overhead added to every GPU.
    pub launch_overhead: SimTime,
    /// Optional cap on total host-DRAM egress (sum over all PCIe links).
    /// `None` means only the per-GPU PCIe links limit host reads.
    pub host_dram_bw: Option<f64>,
    /// Factored mode only: serve local chunks as low-priority padding on
    /// cores whose dedicated queue drained (§5.3). Disabling it (for the
    /// ablation) makes local extraction a barrier phase that starts only
    /// after every non-local group of the GPU finished.
    pub factored_padding: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            chunk_bytes: 256.0 * 1024.0,
            congestion: CongestionModel::default(),
            launch_overhead: SimTime::from_micros(15),
            host_dram_bw: None,
            factored_padding: true,
        }
    }
}

/// Bytes a destination GPU must pull from one source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceDemand {
    /// Where the bytes live.
    pub src: Location,
    /// How many bytes to move.
    pub bytes: f64,
}

/// The extraction work of one destination GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuWork {
    /// Destination GPU index.
    pub gpu: usize,
    /// Per-source byte demands (sources may repeat; they are merged).
    pub demands: Vec<SourceDemand>,
}

/// How SM cores are assigned to per-source work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchMode {
    /// Naive peer access: every core pulls the next chunk from one shared,
    /// randomly interleaved queue — the congestion-prone scheme of §3.2.
    RandomShared {
        /// Shuffle seed (per-GPU streams are derived from it).
        seed: u64,
    },
    /// UGache's factored extraction (§5.3): cores are statically dedicated
    /// per non-local source within link tolerance; local work runs as
    /// low-priority padding on every core whose dedicated queue drained.
    Factored {
        /// Core-dedication tunables.
        dedication: DedicationConfig,
    },
    /// All cores gang up on one source at a time, in demand order. Used to
    /// model bulk per-source phases (e.g. message-based buffer gathers).
    Sequential,
}

/// Per-source outcome on one destination GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUse {
    /// Source location.
    pub src: Location,
    /// Bytes moved from this source.
    pub bytes: f64,
    /// Wall time during which at least one core was reading this source.
    pub busy: SimTime,
    /// Nominal path bandwidth (bytes/s).
    pub peak_bw: f64,
}

impl LinkUse {
    /// Average bandwidth achieved while the path was busy (bytes/s).
    pub fn avg_bw_while_busy(&self) -> f64 {
        let s = self.busy.as_secs_f64();
        if s > 0.0 {
            self.bytes / s
        } else {
            0.0
        }
    }

    /// Utilization of the path over a reference window (e.g. the GPU's
    /// extraction makespan): achieved average bandwidth / nominal.
    pub fn utilization_over(&self, window: SimTime) -> f64 {
        let s = window.as_secs_f64();
        if s > 0.0 && self.peak_bw > 0.0 {
            (self.bytes / s) / self.peak_bw
        } else {
            0.0
        }
    }
}

/// Extraction outcome for one destination GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuExtraction {
    /// Destination GPU index.
    pub gpu: usize,
    /// Wall time from launch until this GPU's last chunk completed,
    /// including launch overhead.
    pub time: SimTime,
    /// Aggregate core-busy time (core-seconds as [`SimTime`]); divide by
    /// `time × SM count` for core utilization.
    pub core_busy: SimTime,
    /// Per-source transfer accounting.
    pub per_src: Vec<LinkUse>,
}

impl GpuExtraction {
    /// Bytes moved from a given source (0 if none).
    pub fn bytes_from(&self, src: Location) -> f64 {
        self.per_src
            .iter()
            .find(|u| u.src == src)
            .map_or(0.0, |u| u.bytes)
    }
}

/// Outcome of a whole extraction call.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionResult {
    /// Max over GPUs of their extraction time (the batch completes when the
    /// slowest GPU finishes — data-parallel steps synchronize).
    pub makespan: SimTime,
    /// Per-GPU details, indexed by position in the input works.
    pub per_gpu: Vec<GpuExtraction>,
}

pub(crate) struct Group {
    pub(crate) gpu: usize,
    pub(crate) src: Location,
    pub(crate) path: PathSpec,
    pub(crate) chunks_left: u64,
    pub(crate) chunk_size: f64,
    pub(crate) bytes_done: f64,
    pub(crate) busy: f64,
    /// Scratch: number of cores currently on this group.
    pub(crate) active: usize,
    /// Scratch: allocated aggregate rate for this instant.
    pub(crate) rate: f64,
}

pub(crate) struct Core {
    pub(crate) gpu: usize,
    /// Index of this core within its GPU.
    pub(crate) local_idx: usize,
    /// Group this core is dedicated to (Factored mode), by global index.
    pub(crate) dedicated: Option<usize>,
    /// Current chunk: (group index, remaining bytes).
    pub(crate) job: Option<(usize, f64)>,
}

pub(crate) enum GpuQueue {
    /// Static random dispatch: every chunk is pre-assigned to a core at
    /// launch (per-core queues, no work stealing) — the unorganized
    /// parallelism of §5.2, where an unlucky core stuck with slow chunks
    /// stalls the whole kernel.
    Random {
        per_core: Vec<VecDeque<usize>>,
    },
    Factored {
        local: Option<usize>,
    },
    Sequential {
        order: Vec<usize>,
    },
}

/// Everything the event loop needs, built once per call and shared by the
/// optimized loop and the frozen reference loop.
pub(crate) struct SimState {
    pub(crate) groups: Vec<Group>,
    pub(crate) gpu_groups: Vec<Vec<usize>>,
    pub(crate) cores: Vec<Core>,
    pub(crate) queues: Vec<GpuQueue>,
}

/// Simulates one extraction call.
///
/// # Panics
///
/// Panics if a demand references an unreachable source (callers must
/// respect the topology), a GPU index is out of range, or byte counts are
/// negative/non-finite.
pub fn simulate(
    platform: &Platform,
    cfg: &SimConfig,
    works: &[GpuWork],
    mode: DispatchMode,
) -> ExtractionResult {
    run(platform, cfg, works, mode, false).0
}

/// Like [`simulate`], but also records a per-chunk execution trace
/// (who read what, when) for schedule visualization and analysis.
pub fn simulate_traced(
    platform: &Platform,
    cfg: &SimConfig,
    works: &[GpuWork],
    mode: DispatchMode,
) -> (ExtractionResult, ExtractionTrace) {
    run(platform, cfg, works, mode, true)
}

/// Merges demands, builds groups/cores/queues for one extraction call.
pub(crate) fn build_state(
    platform: &Platform,
    cfg: &SimConfig,
    works: &[GpuWork],
    mode: DispatchMode,
) -> SimState {
    // Collect per-(gpu, src) byte totals (merging duplicate sources).
    let mut totals: Vec<Vec<(Location, f64)>> = vec![Vec::new(); platform.num_gpus()];
    for w in works {
        assert!(
            w.gpu < platform.num_gpus(),
            "GPU index {} out of range",
            w.gpu
        );
        for d in &w.demands {
            assert!(
                d.bytes.is_finite() && d.bytes >= 0.0,
                "invalid byte count {}",
                d.bytes
            );
            if d.bytes == 0.0 {
                continue;
            }
            assert!(
                platform.connected(w.gpu, d.src),
                "GPU{} cannot read from {}",
                w.gpu,
                d.src
            );
            match totals[w.gpu].iter_mut().find(|(s, _)| *s == d.src) {
                Some((_, b)) => *b += d.bytes,
                None => totals[w.gpu].push((d.src, d.bytes)),
            }
        }
    }

    // Build groups. Chunk count adapts to small demands: a group must
    // offer enough chunks to occupy its potential cores (real gathers
    // parallelize at warp granularity, not at the bulk chunk size), with
    // a floor on chunk size so tiny demands don't explode the event count.
    const MIN_CHUNK_BYTES: f64 = 8.0 * 1024.0;
    let mut groups: Vec<Group> = Vec::new();
    let mut gpu_groups: Vec<Vec<usize>> = vec![Vec::new(); platform.num_gpus()];
    for (gpu, list) in totals.iter().enumerate() {
        for &(src, bytes) in list {
            let by_size = (bytes / cfg.chunk_bytes).ceil().max(1.0) as u64;
            let parallel_target = 2 * platform.gpus[gpu].sm_count as u64;
            let by_floor = (bytes / MIN_CHUNK_BYTES).ceil().max(1.0) as u64;
            let chunks = by_size.max(parallel_target.min(by_floor));
            let gi = groups.len();
            groups.push(Group {
                gpu,
                src,
                path: platform.path(gpu, src),
                chunks_left: chunks,
                chunk_size: bytes / chunks as f64,
                bytes_done: 0.0,
                busy: 0.0,
                active: 0,
                rate: 0.0,
            });
            gpu_groups[gpu].push(gi);
        }
    }

    // Build cores and per-GPU queues.
    let mut cores: Vec<Core> = Vec::new();
    let mut queues: Vec<GpuQueue> = Vec::new();
    for gpu in 0..platform.num_gpus() {
        let sm = platform.gpus[gpu].sm_count;
        let my_groups = &gpu_groups[gpu];
        let q = match mode {
            DispatchMode::RandomShared { seed } => {
                let mut tokens: Vec<usize> = Vec::new();
                for &gi in my_groups {
                    for _ in 0..groups[gi].chunks_left {
                        tokens.push(gi);
                    }
                }
                let mut rng = emb_util::seed_rng(split_seed(seed, gpu as u64));
                tokens.shuffle(&mut rng);
                // Deal shuffled chunks round-robin: equal counts per core,
                // random composition, no stealing afterwards.
                let mut per_core: Vec<VecDeque<usize>> = vec![VecDeque::new(); sm];
                for (k, gi) in tokens.into_iter().enumerate() {
                    per_core[k % sm].push_back(gi);
                }
                for local_idx in 0..sm {
                    cores.push(Core {
                        gpu,
                        local_idx,
                        dedicated: None,
                        job: None,
                    });
                }
                GpuQueue::Random { per_core }
            }
            DispatchMode::Factored { dedication } => {
                let profile = profile_for(platform, dedication);
                let local = my_groups
                    .iter()
                    .copied()
                    .find(|&gi| groups[gi].src == Location::Gpu(gpu));
                // Dedicate cores per non-local group with work; groups with
                // work but zero allotted cores borrow one from the largest.
                let mut alloc: Vec<(usize, usize)> = Vec::new(); // (group, cores)
                let mut used = 0usize;
                for &gi in my_groups {
                    if Some(gi) == local {
                        continue;
                    }
                    let j = profile.loc_index(groups[gi].src);
                    let c = profile.cores[gpu][j];
                    alloc.push((gi, c));
                    used += c;
                }
                // Trim if over-allocated (host cores cap may not leave room).
                while used > sm {
                    let max = alloc.iter_mut().max_by_key(|(_, c)| *c).unwrap();
                    max.1 -= 1;
                    used -= 1;
                }
                // Every non-local group with pending work needs at least one
                // core: use spare cores first, then borrow from the largest.
                for k in 0..alloc.len() {
                    if alloc[k].1 > 0 {
                        continue;
                    }
                    if used < sm {
                        alloc[k].1 = 1;
                        used += 1;
                    } else if let Some(donor) = (0..alloc.len())
                        .filter(|&d| alloc[d].1 > 1)
                        .max_by_key(|&d| alloc[d].1)
                    {
                        alloc[donor].1 -= 1;
                        alloc[k].1 = 1;
                    }
                }
                let mut assigned = 0usize;
                for (gi, c) in &alloc {
                    for _ in 0..*c {
                        cores.push(Core {
                            gpu,
                            local_idx: assigned,
                            dedicated: Some(*gi),
                            job: None,
                        });
                        assigned += 1;
                    }
                }
                for local_idx in assigned..sm {
                    cores.push(Core {
                        gpu,
                        local_idx,
                        dedicated: None,
                        job: None,
                    });
                }
                GpuQueue::Factored { local }
            }
            DispatchMode::Sequential => {
                for local_idx in 0..sm {
                    cores.push(Core {
                        gpu,
                        local_idx,
                        dedicated: None,
                        job: None,
                    });
                }
                GpuQueue::Sequential {
                    order: my_groups.clone(),
                }
            }
        };
        queues.push(q);
    }

    SimState {
        groups,
        gpu_groups,
        cores,
        queues,
    }
}

/// Pops one chunk from a group, if any remain.
pub(crate) fn take(groups: &mut [Group], gi: usize) -> Option<(usize, f64)> {
    let g = &mut groups[gi];
    if g.chunks_left == 0 {
        None
    } else {
        g.chunks_left -= 1;
        Some((gi, g.chunk_size))
    }
}

/// Next chunk for a core under its GPU's queue discipline, or `None`.
pub(crate) fn dispatch(
    cfg: &SimConfig,
    gpu_groups: &[Vec<usize>],
    groups: &mut [Group],
    queues: &mut [GpuQueue],
    core: &Core,
) -> Option<(usize, f64)> {
    match &mut queues[core.gpu] {
        GpuQueue::Random { per_core } => {
            let gi = per_core[core.local_idx].pop_front()?;
            take(groups, gi)
        }
        GpuQueue::Factored { local } => {
            if let Some(gi) = core.dedicated {
                if let Some(job) = take(groups, gi) {
                    return Some(job);
                }
            }
            let gi = (*local)?;
            if !cfg.factored_padding {
                // Ablation: local runs as a barrier phase after every
                // non-local group of this GPU has drained.
                let pending_non_local = gpu_groups[core.gpu]
                    .iter()
                    .any(|&g| g != gi && groups[g].chunks_left > 0);
                if pending_non_local {
                    return None;
                }
            }
            take(groups, gi)
        }
        GpuQueue::Sequential { order } => {
            for gi in order.iter().copied() {
                if let Some(job) = take(groups, gi) {
                    return Some(job);
                }
            }
            None
        }
    }
}

/// One egress-limited source with its static cap and candidate readers.
struct EgressSource {
    /// Shared egress cap (bytes/s) for this source.
    cap: f64,
    /// Non-local reader groups of this source, in group-index order.
    cands: Vec<usize>,
}

fn run(
    platform: &Platform,
    cfg: &SimConfig,
    works: &[GpuWork],
    mode: DispatchMode,
    record: bool,
) -> (ExtractionResult, ExtractionTrace) {
    let SimState {
        mut groups,
        gpu_groups,
        mut cores,
        mut queues,
    } = build_state(platform, cfg, works, mode);

    // Initial assignment.
    let mut job_start = vec![0.0f64; cores.len()];
    for ci in 0..cores.len() {
        let job = dispatch(cfg, &gpu_groups, &mut groups, &mut queues, &cores[ci]);
        cores[ci].job = job;
    }
    let mut trace = ExtractionTrace::default();

    let total_chunks: u64 = groups
        .iter()
        .map(|g| g.chunks_left + 1) // +1 slack for merged rounding
        .sum::<u64>()
        + cores.iter().filter(|c| c.job.is_some()).count() as u64;

    // Incremental active-set bookkeeping. `busy` lists cores holding a
    // job in ascending index order (so completion processing and chunk
    // dispatch visit cores in the same order as a full scan would);
    // `groups[gi].active` and `gpu_busy` are updated on transitions.
    // A core whose dispatch returns `None` is permanently retired in
    // every mode except the Factored no-padding ablation, where the
    // local-phase barrier can release work later — only then do idle
    // cores stay on a `waiting` list and get re-offered work.
    let may_revive = matches!(mode, DispatchMode::Factored { .. }) && !cfg.factored_padding;
    let mut busy: Vec<usize> = Vec::with_capacity(cores.len());
    let mut waiting: Vec<usize> = Vec::new();
    let mut gpu_busy: Vec<usize> = vec![0; platform.num_gpus()];
    for (ci, c) in cores.iter().enumerate() {
        match c.job {
            Some((gi, _)) => {
                groups[gi].active += 1;
                gpu_busy[c.gpu] += 1;
                busy.push(ci);
            }
            None if may_revive => waiting.push(ci),
            None => {}
        }
    }

    // Source-egress sharing applies to switch-based GPU sources and the
    // host; the source list, per-source caps and candidate reader groups
    // are static, so build them once instead of re-collecting, re-sorting
    // and re-deduping every step. Candidates are filtered by the live
    // active counts each step.
    let switch_based = matches!(platform.interconnect, Interconnect::Switch { .. });
    let egress_sources: Vec<EgressSource> = {
        let mut srcs: Vec<Location> = groups
            .iter()
            .filter(|g| g.src != Location::Gpu(g.gpu))
            .map(|g| g.src)
            .collect();
        srcs.sort();
        srcs.dedup();
        srcs.into_iter()
            .filter(|src| match src {
                Location::Host => true,
                Location::Gpu(_) => switch_based,
            })
            .map(|src| {
                let cap = match src {
                    Location::Host => {
                        let pcie_sum = platform.outbound_bw(Location::Host);
                        cfg.host_dram_bw.map_or(pcie_sum, |d| d.min(pcie_sum))
                    }
                    Location::Gpu(_) => platform.outbound_bw(src),
                };
                let cands = groups
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.src == src && g.src != Location::Gpu(g.gpu))
                    .map(|(i, _)| i)
                    .collect();
                EgressSource { cap, cands }
            })
            .collect()
    };

    let mut now = 0.0f64; // seconds
    let mut gpu_finish = vec![0.0f64; platform.num_gpus()];
    let mut core_busy = vec![0.0f64; platform.num_gpus()];
    let mut iterations: u64 = 0;
    // Telemetry tallies, recorded once after the loop; counting here is a
    // plain integer add so the disabled path stays free.
    let mut congestion_hits: u64 = 0;
    let mut egress_caps: u64 = 0;
    // Simulated-time spans: per-link contiguous busy intervals and per-GPU
    // partial-stall windows, positioned at the scope clock cursor so
    // sequential simulate() calls inside one collect() stack on a single
    // timeline. Everything span-related is guarded by `spans_on` so the
    // disabled path stays allocation-free.
    let spans_on = emb_telemetry::enabled();
    let base_ns = emb_telemetry::clock_ns();
    let mut xfer_open: Vec<Option<OpenXfer>> = Vec::new();
    let mut grp_congest: Vec<u64> = Vec::new();
    let mut grp_egress: Vec<u64> = Vec::new();
    let mut stall_open: Vec<Option<OpenStall>> = Vec::new();
    if spans_on {
        xfer_open = (0..groups.len()).map(|_| None).collect();
        grp_congest = vec![0; groups.len()];
        grp_egress = vec![0; groups.len()];
        stall_open = vec![None; platform.num_gpus()];
    }

    // Reused scratch buffers.
    let mut readers: Vec<usize> = Vec::new();
    let mut finished: Vec<usize> = Vec::new();
    let mut joined: Vec<usize> = Vec::new();
    let mut merge_scratch: Vec<usize> = Vec::new();

    loop {
        iterations += 1;
        assert!(
            iterations <= total_chunks * 4 + 64,
            "extraction simulation failed to converge"
        );

        if busy.is_empty() {
            break;
        }

        if spans_on {
            // Open/close per-link busy intervals and per-GPU stall windows
            // on active-set transitions; remaining opens are flushed after
            // the loop at the final instant.
            for (gi, g) in groups.iter().enumerate() {
                match (&xfer_open[gi], g.active > 0) {
                    (None, true) => {
                        xfer_open[gi] = Some(OpenXfer {
                            start: now,
                            bytes0: g.bytes_done,
                            congest0: grp_congest[gi],
                            egress0: grp_egress[gi],
                        });
                    }
                    (Some(open), false) => {
                        emit_xfer_span(base_ns, g, open, now, grp_congest[gi], grp_egress[gi]);
                        xfer_open[gi] = None;
                    }
                    _ => {}
                }
            }
            for gpu in 0..platform.num_gpus() {
                let sm = platform.gpus[gpu].sm_count;
                let partial = gpu_busy[gpu] > 0 && gpu_busy[gpu] < sm;
                match (stall_open[gpu], partial) {
                    (None, true) => {
                        stall_open[gpu] = Some(OpenStall {
                            start: now,
                            idle_core_secs: 0.0,
                        });
                    }
                    (Some(open), false) => {
                        emit_stall_span(base_ns, gpu, &open, now);
                        stall_open[gpu] = None;
                    }
                    _ => {}
                }
            }
        }

        // Per-group raw rates from the congestion model (idle groups keep
        // a zero rate; nothing downstream reads it).
        for (gi, g) in groups.iter_mut().enumerate() {
            if g.active == 0 {
                g.rate = 0.0;
                continue;
            }
            g.rate = effective_bw(g.path.bw, g.path.per_core_bw, g.active, cfg.congestion);
            if g.active as f64 * g.path.per_core_bw > g.path.bw {
                congestion_hits += 1;
                if spans_on {
                    grp_congest[gi] += 1;
                }
            }
        }

        // Source-egress sharing over the precomputed source list.
        for es in &egress_sources {
            readers.clear();
            readers.extend(es.cands.iter().copied().filter(|&i| groups[i].active > 0));
            if readers.is_empty() {
                continue;
            }
            let total_cores: usize = readers.iter().map(|&i| groups[i].active).sum();
            // Per-core bandwidth for the egress tolerance: weighted mean of
            // the readers' per-core path bandwidths.
            let pc: f64 = readers
                .iter()
                .map(|&i| groups[i].path.per_core_bw * groups[i].active as f64)
                .sum::<f64>()
                / total_cores.max(1) as f64;
            let eff_cap = effective_bw(es.cap, pc, total_cores, cfg.congestion).min(es.cap);
            let demand: f64 = readers.iter().map(|&i| groups[i].rate).sum();
            if demand > eff_cap && demand > 0.0 {
                egress_caps += 1;
                let scale = eff_cap / demand;
                for &i in &readers {
                    groups[i].rate *= scale;
                    if spans_on {
                        grp_egress[i] += 1;
                    }
                }
            }
        }

        // Next completion: only busy cores can finish.
        let mut dt = f64::INFINITY;
        for &ci in &busy {
            let (gi, rem) = cores[ci].job.expect("busy core holds a job");
            let g = &groups[gi];
            let r = g.rate / g.active as f64;
            if r > 0.0 {
                dt = dt.min(rem / r);
            }
        }
        assert!(dt.is_finite(), "no progress possible (all rates zero)");

        // Advance.
        for g in groups.iter_mut() {
            if g.active > 0 {
                g.busy += dt;
                g.bytes_done += g.rate * dt;
            }
        }
        now += dt;
        if spans_on {
            for gpu in 0..platform.num_gpus() {
                if let Some(open) = stall_open[gpu].as_mut() {
                    let sm = platform.gpus[gpu].sm_count;
                    open.idle_core_secs += sm.saturating_sub(gpu_busy[gpu]) as f64 * dt;
                }
            }
        }
        finished.clear();
        for &ci in &busy {
            let (gi, rem) = cores[ci].job.expect("busy core holds a job");
            let g = &groups[gi];
            let r = g.rate / g.active as f64;
            let gpu = cores[ci].gpu;
            core_busy[gpu] += dt;
            let rem = rem - r * dt;
            if rem <= 1e-6 {
                gpu_finish[gpu] = now;
                if record {
                    trace.events.push(TraceEvent {
                        gpu,
                        core: cores[ci].local_idx,
                        src: g.src,
                        start: job_start[ci],
                        end: now,
                    });
                }
                finished.push(ci);
            } else {
                cores[ci].job = Some((gi, rem));
            }
        }

        if finished.is_empty() {
            continue;
        }

        // Completion transitions: retire finished cores from the active
        // sets, then re-dispatch them (and, in the revivable ablation,
        // every other idle core) in ascending core order — the same order
        // a full scan over all cores would use.
        for &ci in &finished {
            let (gi, _) = cores[ci].job.take().expect("finished core had a job");
            groups[gi].active -= 1;
            gpu_busy[cores[ci].gpu] -= 1;
        }
        busy.retain(|&ci| cores[ci].job.is_some());
        joined.clear();
        for &ci in &finished {
            let job = dispatch(cfg, &gpu_groups, &mut groups, &mut queues, &cores[ci]);
            if let Some((gi, _)) = job {
                cores[ci].job = job;
                job_start[ci] = now;
                groups[gi].active += 1;
                gpu_busy[cores[ci].gpu] += 1;
                joined.push(ci);
            } else if may_revive {
                let pos = waiting.binary_search(&ci).unwrap_err();
                waiting.insert(pos, ci);
            }
        }
        if may_revive && !waiting.is_empty() {
            // The barrier release may happen mid-instant (a finished core's
            // dispatch drained the last non-local chunk), so idle cores are
            // re-offered work in the same instant, like the full rescan did.
            let mut w = 0;
            while w < waiting.len() {
                let ci = waiting[w];
                let job = dispatch(cfg, &gpu_groups, &mut groups, &mut queues, &cores[ci]);
                if let Some((gi, _)) = job {
                    cores[ci].job = job;
                    job_start[ci] = now;
                    groups[gi].active += 1;
                    gpu_busy[cores[ci].gpu] += 1;
                    joined.push(ci);
                    waiting.remove(w);
                } else {
                    w += 1;
                }
            }
        }
        if !joined.is_empty() {
            joined.sort_unstable();
            merge_scratch.clear();
            merge_scratch.reserve(busy.len() + joined.len());
            let mut a = 0;
            let mut b = 0;
            while a < busy.len() || b < joined.len() {
                match (busy.get(a), joined.get(b)) {
                    (Some(&x), Some(&y)) => {
                        if x < y {
                            merge_scratch.push(x);
                            a += 1;
                        } else {
                            merge_scratch.push(y);
                            b += 1;
                        }
                    }
                    (Some(&x), None) => {
                        merge_scratch.push(x);
                        a += 1;
                    }
                    (None, Some(&y)) => {
                        merge_scratch.push(y);
                        b += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            std::mem::swap(&mut busy, &mut merge_scratch);
        }
    }

    if spans_on {
        // Flush intervals still open at the final instant.
        for (gi, open) in xfer_open.iter().enumerate() {
            if let Some(open) = open {
                emit_xfer_span(
                    base_ns,
                    &groups[gi],
                    open,
                    now,
                    grp_congest[gi],
                    grp_egress[gi],
                );
            }
        }
        for (gpu, open) in stall_open.iter().enumerate() {
            if let Some(open) = open {
                emit_stall_span(base_ns, gpu, open, now);
            }
        }
    }

    let result = finalize(
        platform,
        cfg,
        works,
        &groups,
        &gpu_groups,
        &gpu_finish,
        &core_busy,
        mode,
        congestion_hits,
        egress_caps,
        spans_on,
        base_ns,
    );
    (result, trace)
}

/// Assembles the [`ExtractionResult`], records telemetry counters, emits
/// the per-GPU `extract` spans and advances the scope clock. Shared by
/// the optimized loop and the frozen reference loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finalize(
    platform: &Platform,
    cfg: &SimConfig,
    works: &[GpuWork],
    groups: &[Group],
    gpu_groups: &[Vec<usize>],
    gpu_finish: &[f64],
    core_busy: &[f64],
    mode: DispatchMode,
    congestion_hits: u64,
    egress_caps: u64,
    spans_on: bool,
    base_ns: u64,
) -> ExtractionResult {
    // Assemble results.
    let mut per_gpu: Vec<GpuExtraction> = Vec::new();
    for w in works {
        let gpu = w.gpu;
        let t = if gpu_finish[gpu] > 0.0 {
            SimTime::from_secs_f64(gpu_finish[gpu]) + cfg.launch_overhead
        } else {
            SimTime::ZERO
        };
        let per_src: Vec<LinkUse> = gpu_groups[gpu]
            .iter()
            .map(|&gi| {
                let g = &groups[gi];
                LinkUse {
                    src: g.src,
                    bytes: g.bytes_done,
                    busy: SimTime::from_secs_f64(g.busy),
                    peak_bw: g.path.bw,
                }
            })
            .collect();
        per_gpu.push(GpuExtraction {
            gpu,
            time: t,
            core_busy: SimTime::from_secs_f64(core_busy[gpu]),
            per_src,
        });
    }
    let makespan = per_gpu
        .iter()
        .map(|g| g.time)
        .max()
        .unwrap_or(SimTime::ZERO);
    let result = ExtractionResult { makespan, per_gpu };
    record_telemetry(platform, &result, mode, congestion_hits, egress_caps);
    if spans_on {
        // One top-level span per GPU covering its whole extraction
        // (including launch overhead), then advance the scope clock past
        // this call so the next simulation starts after it.
        for g in &result.per_gpu {
            if g.time > SimTime::ZERO {
                let track = format!("gpu{}", g.gpu);
                let bytes: f64 = g.per_src.iter().map(|u| u.bytes).sum();
                let sm = platform.gpus[g.gpu].sm_count as f64;
                let util = if sm > 0.0 && g.time > SimTime::ZERO {
                    g.core_busy.as_secs_f64() / (g.time.as_secs_f64() * sm)
                } else {
                    0.0
                };
                emb_telemetry::span(
                    &track,
                    "extract",
                    base_ns,
                    base_ns.saturating_add(g.time.as_nanos()),
                    || {
                        vec![
                            ("bytes".to_string(), emb_telemetry::EventValue::F64(bytes)),
                            (
                                "core_util".to_string(),
                                emb_telemetry::EventValue::F64(util),
                            ),
                        ]
                    },
                );
            }
        }
        emb_telemetry::advance_clock_ns(result.makespan.as_nanos());
    }
    result
}

/// Per-link busy interval being accumulated for a span.
pub(crate) struct OpenXfer {
    /// Interval start (engine seconds).
    pub(crate) start: f64,
    /// `bytes_done` of the group at interval start.
    pub(crate) bytes0: f64,
    /// Group congestion-activation count at interval start.
    pub(crate) congest0: u64,
    /// Group egress-cap count at interval start.
    pub(crate) egress0: u64,
}

/// Per-GPU partial-stall window being accumulated for a span.
#[derive(Clone, Copy)]
pub(crate) struct OpenStall {
    /// Window start (engine seconds).
    pub(crate) start: f64,
    /// Idle core-seconds accumulated inside the window.
    pub(crate) idle_core_secs: f64,
}

/// Engine seconds → scope-clock nanoseconds.
fn secs_to_scope_ns(base_ns: u64, t: f64) -> u64 {
    base_ns.saturating_add(SimTime::from_secs_f64(t).as_nanos())
}

/// Label for track names: `local` / `nvlink` / `nvswitch` / `pcie`.
fn kind_label(kind: PathKind) -> &'static str {
    match kind {
        PathKind::Local => "local",
        PathKind::NvLink => "nvlink",
        PathKind::NvSwitch => "nvswitch",
        PathKind::Pcie => "pcie",
    }
}

/// Emits one `xfer` span for a closed per-link busy interval.
pub(crate) fn emit_xfer_span(
    base_ns: u64,
    g: &Group,
    open: &OpenXfer,
    end: f64,
    congest_now: u64,
    egress_now: u64,
) {
    let bytes = g.bytes_done - open.bytes0;
    let dur_s = end - open.start;
    let track = format!(
        "gpu{}/link:{}->{}",
        g.gpu,
        kind_label(g.path.kind),
        loc_label(g.src)
    );
    emb_telemetry::span(
        &track,
        "xfer",
        secs_to_scope_ns(base_ns, open.start),
        secs_to_scope_ns(base_ns, end),
        || {
            vec![
                ("bytes".to_string(), emb_telemetry::EventValue::F64(bytes)),
                (
                    "gbps".to_string(),
                    emb_telemetry::EventValue::F64(if dur_s > 0.0 {
                        bytes / dur_s / 1e9
                    } else {
                        0.0
                    }),
                ),
                (
                    "congestion_activations".to_string(),
                    emb_telemetry::EventValue::U64(congest_now - open.congest0),
                ),
                (
                    "egress_capped".to_string(),
                    emb_telemetry::EventValue::U64(egress_now - open.egress0),
                ),
            ]
        },
    );
}

/// Emits one `stall` span for a closed per-GPU partial-stall window.
pub(crate) fn emit_stall_span(base_ns: u64, gpu: usize, open: &OpenStall, end: f64) {
    let track = format!("gpu{gpu}/cores");
    emb_telemetry::span(
        &track,
        "stall",
        secs_to_scope_ns(base_ns, open.start),
        secs_to_scope_ns(base_ns, end),
        || {
            vec![(
                "idle_core_secs".to_string(),
                emb_telemetry::EventValue::F64(open.idle_core_secs),
            )]
        },
    );
}

/// Label for metric names: `gpu3` / `host`.
fn loc_label(src: Location) -> String {
    match src {
        Location::Gpu(j) => format!("gpu{j}"),
        Location::Host => "host".to_string(),
    }
}

/// Records one extraction's per-link, per-flow and per-GPU observability
/// data into the active `emb_telemetry` scope (no-op when none is
/// active). Counter names are documented in `EXPERIMENTS.md`.
fn record_telemetry(
    platform: &Platform,
    result: &ExtractionResult,
    mode: DispatchMode,
    congestion_hits: u64,
    egress_caps: u64,
) {
    if !emb_telemetry::enabled() {
        return;
    }
    let mut total_bytes = 0.0f64;
    for g in &result.per_gpu {
        let makespan_s = g.time.as_secs_f64();
        for u in &g.per_src {
            total_bytes += u.bytes;
            let prefix = format!("memsim.link.gpu{}.{}", g.gpu, loc_label(u.src));
            emb_telemetry::count(&format!("{prefix}.bytes"), u.bytes);
            emb_telemetry::count(&format!("{prefix}.busy_secs"), u.busy.as_secs_f64());
            // Queueing/stall: wall time this GPU was still extracting while
            // the flow had no core serving it.
            let stall = (makespan_s - u.busy.as_secs_f64()).max(0.0);
            emb_telemetry::count(&format!("{prefix}.stall_secs"), stall);
        }
        let sm = platform.gpus[g.gpu].sm_count as f64;
        if makespan_s > 0.0 && sm > 0.0 {
            let util = g.core_busy.as_secs_f64() / (makespan_s * sm);
            emb_telemetry::observe("memsim.core_util", util);
            emb_telemetry::count(
                "memsim.stall_core_secs",
                (makespan_s * sm - g.core_busy.as_secs_f64()).max(0.0),
            );
        }
    }
    emb_telemetry::count("memsim.extractions", 1.0);
    emb_telemetry::count("memsim.congestion.link_activations", congestion_hits as f64);
    emb_telemetry::count("memsim.congestion.egress_capped", egress_caps as f64);
    emb_telemetry::event("memsim.extract", || {
        let mode_label = match mode {
            DispatchMode::RandomShared { .. } => "random",
            DispatchMode::Factored { .. } => "factored",
            DispatchMode::Sequential => "sequential",
        };
        vec![
            (
                "gpus".to_string(),
                emb_telemetry::EventValue::U64(result.per_gpu.len() as u64),
            ),
            (
                "mode".to_string(),
                emb_telemetry::EventValue::Str(mode_label.to_string()),
            ),
            (
                "bytes".to_string(),
                emb_telemetry::EventValue::F64(total_bytes),
            ),
            (
                "makespan_secs".to_string(),
                emb_telemetry::EventValue::F64(result.makespan.as_secs_f64()),
            ),
            (
                "congestion_activations".to_string(),
                emb_telemetry::EventValue::U64(congestion_hits),
            ),
            (
                "egress_capped".to_string(),
                emb_telemetry::EventValue::U64(egress_caps),
            ),
        ]
    });
}

fn profile_for(platform: &Platform, dedication: DedicationConfig) -> Profile {
    Profile::new(platform, dedication)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_gpu_work(src: Location, bytes: f64) -> Vec<GpuWork> {
        vec![GpuWork {
            gpu: 0,
            demands: vec![SourceDemand { src, bytes }],
        }]
    }

    fn cfg() -> SimConfig {
        SimConfig {
            launch_overhead: SimTime::ZERO,
            ..SimConfig::default()
        }
    }

    #[test]
    fn local_only_matches_bandwidth() {
        let p = Platform::server_c();
        let bytes = 1e9;
        let r = simulate(
            &p,
            &cfg(),
            &one_gpu_work(Location::Gpu(0), bytes),
            DispatchMode::Sequential,
        );
        let expect = bytes / p.gpus[0].local_bw;
        let got = r.makespan.as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "expected ~{expect}s got {got}s"
        );
    }

    #[test]
    fn host_only_is_pcie_bound() {
        let p = Platform::server_c();
        let bytes = 1e9;
        let r = simulate(
            &p,
            &cfg(),
            &one_gpu_work(Location::Host, bytes),
            DispatchMode::Factored {
                dedication: DedicationConfig::default(),
            },
        );
        let expect = bytes / p.gpus[0].pcie_bw;
        let got = r.makespan.as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 0.10,
            "expected ~{expect}s got {got}s"
        );
    }

    #[test]
    fn random_dispatch_congests_but_factored_does_not() {
        let p = Platform::server_c();
        // A mix with meaningful host traffic: random dispatch floods PCIe.
        let works: Vec<GpuWork> = (0..8)
            .map(|gpu| GpuWork {
                gpu,
                demands: vec![
                    SourceDemand {
                        src: Location::Gpu(gpu),
                        bytes: 400e6,
                    },
                    SourceDemand {
                        src: Location::Gpu((gpu + 1) % 8),
                        bytes: 200e6,
                    },
                    SourceDemand {
                        src: Location::Host,
                        bytes: 100e6,
                    },
                ],
            })
            .collect();
        let naive = simulate(&p, &cfg(), &works, DispatchMode::RandomShared { seed: 1 });
        let fem = simulate(
            &p,
            &cfg(),
            &works,
            DispatchMode::Factored {
                dedication: DedicationConfig::default(),
            },
        );
        assert!(
            fem.makespan < naive.makespan,
            "FEM {} should beat naive {}",
            fem.makespan,
            naive.makespan
        );
    }

    #[test]
    fn zero_work_zero_time() {
        let p = Platform::server_a();
        let r = simulate(
            &p,
            &cfg(),
            &[GpuWork {
                gpu: 0,
                demands: vec![],
            }],
            DispatchMode::Sequential,
        );
        assert_eq!(r.makespan, SimTime::ZERO);
    }

    #[test]
    fn byte_accounting_is_exact() {
        let p = Platform::server_a();
        let works = vec![GpuWork {
            gpu: 1,
            demands: vec![
                SourceDemand {
                    src: Location::Gpu(1),
                    bytes: 3e8,
                },
                SourceDemand {
                    src: Location::Gpu(2),
                    bytes: 2e8,
                },
                SourceDemand {
                    src: Location::Host,
                    bytes: 1e8,
                },
            ],
        }];
        let r = simulate(
            &p,
            &cfg(),
            &works,
            DispatchMode::Factored {
                dedication: DedicationConfig::default(),
            },
        );
        let g = &r.per_gpu[0];
        assert!((g.bytes_from(Location::Gpu(1)) - 3e8).abs() < 1e3);
        assert!((g.bytes_from(Location::Gpu(2)) - 2e8).abs() < 1e3);
        assert!((g.bytes_from(Location::Host) - 1e8).abs() < 1e3);
    }

    #[test]
    fn merged_duplicate_sources() {
        let p = Platform::server_a();
        let works = vec![GpuWork {
            gpu: 0,
            demands: vec![
                SourceDemand {
                    src: Location::Gpu(2),
                    bytes: 1e8,
                },
                SourceDemand {
                    src: Location::Gpu(2),
                    bytes: 1e8,
                },
            ],
        }];
        let r = simulate(&p, &cfg(), &works, DispatchMode::Sequential);
        assert!((r.per_gpu[0].bytes_from(Location::Gpu(2)) - 2e8).abs() < 1e3);
    }

    #[test]
    #[should_panic(expected = "cannot read")]
    fn unreachable_source_panics() {
        let p = Platform::server_b();
        let _ = simulate(
            &p,
            &cfg(),
            &one_gpu_work(Location::Gpu(5), 1e6),
            DispatchMode::Sequential,
        );
    }

    #[test]
    fn switch_egress_collision_slows_readers() {
        let p = Platform::server_c();
        // GPUs 1..=4 all hammer GPU 0.
        let collide: Vec<GpuWork> = (1..=4)
            .map(|gpu| GpuWork {
                gpu,
                demands: vec![SourceDemand {
                    src: Location::Gpu(0),
                    bytes: 500e6,
                }],
            })
            .collect();
        let spread: Vec<GpuWork> = (1..=4)
            .map(|gpu| GpuWork {
                gpu,
                demands: vec![SourceDemand {
                    src: Location::Gpu(5),
                    bytes: 500e6,
                }],
            })
            .collect();
        // Spread over distinct sources would be as bad or worse if egress
        // sharing were not modelled; with it, colliding on one source is
        // clearly slower than each reading its own remote.
        let spread_each: Vec<GpuWork> = (1..=4)
            .map(|gpu| GpuWork {
                gpu,
                demands: vec![SourceDemand {
                    src: Location::Gpu(gpu + 3),
                    bytes: 500e6,
                }],
            })
            .collect();
        let _ = spread;
        let t_collide = simulate(&p, &cfg(), &collide, DispatchMode::Sequential).makespan;
        let t_spread = simulate(&p, &cfg(), &spread_each, DispatchMode::Sequential).makespan;
        assert!(
            t_collide > t_spread.mul_f64(1.5),
            "collide {} vs spread {}",
            t_collide,
            t_spread
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = Platform::server_c();
        let works: Vec<GpuWork> = (0..8)
            .map(|gpu| GpuWork {
                gpu,
                demands: vec![
                    SourceDemand {
                        src: Location::Gpu(gpu),
                        bytes: 1e8,
                    },
                    SourceDemand {
                        src: Location::Host,
                        bytes: 5e7,
                    },
                ],
            })
            .collect();
        let a = simulate(&p, &cfg(), &works, DispatchMode::RandomShared { seed: 9 });
        let b = simulate(&p, &cfg(), &works, DispatchMode::RandomShared { seed: 9 });
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn padding_beats_barrier_local_phase() {
        let p = Platform::server_c();
        // Meaningful local work plus uneven non-local work: padding lets
        // drained cores start local early; the barrier variant waits.
        let works: Vec<GpuWork> = (0..8)
            .map(|gpu| GpuWork {
                gpu,
                demands: vec![
                    SourceDemand {
                        src: Location::Gpu(gpu),
                        bytes: 800e6,
                    },
                    SourceDemand {
                        src: Location::Gpu((gpu + 1) % 8),
                        bytes: 100e6,
                    },
                    SourceDemand {
                        src: Location::Host,
                        bytes: 60e6,
                    },
                ],
            })
            .collect();
        let mode = DispatchMode::Factored {
            dedication: DedicationConfig::default(),
        };
        let with = simulate(&p, &cfg(), &works, mode);
        let mut no_pad = cfg();
        no_pad.factored_padding = false;
        let without = simulate(&p, &no_pad, &works, mode);
        assert!(
            with.makespan < without.makespan,
            "padding {} should beat barrier {}",
            with.makespan,
            without.makespan
        );
        // Bytes identical either way.
        let b = |r: &ExtractionResult| -> f64 {
            r.per_gpu
                .iter()
                .flat_map(|g| g.per_src.iter())
                .map(|u| u.bytes)
                .sum()
        };
        assert!((b(&with) - b(&without)).abs() < 1e3);
    }

    #[test]
    fn spans_cover_extraction_and_stack_on_scope_clock() {
        let p = Platform::server_c();
        let works: Vec<GpuWork> = (0..2)
            .map(|gpu| GpuWork {
                gpu,
                demands: vec![
                    SourceDemand {
                        src: Location::Gpu(gpu),
                        bytes: 2e8,
                    },
                    SourceDemand {
                        src: Location::Host,
                        bytes: 5e7,
                    },
                ],
            })
            .collect();
        let ((r1, r2), report) = emb_telemetry::collect(|| {
            let r1 = simulate(&p, &cfg(), &works, DispatchMode::Sequential);
            let r2 = simulate(&p, &cfg(), &works, DispatchMode::Sequential);
            (r1, r2)
        });
        assert!(!report.spans.is_empty());
        // Every track family is present.
        assert!(report
            .spans
            .iter()
            .any(|s| s.name == "xfer" && s.track.starts_with("gpu0/link:")));
        assert!(report
            .spans
            .iter()
            .any(|s| s.name == "extract" && s.track == "gpu0"));
        // All spans are well-formed and lie inside the two-call horizon.
        let horizon = r1.makespan.as_nanos() + r2.makespan.as_nanos();
        for s in &report.spans {
            assert!(s.end_ns >= s.start_ns, "span {} inverted", s.track);
            assert!(s.end_ns <= horizon, "span {} beyond horizon", s.track);
        }
        // The second call's spans start at or after the first's makespan.
        assert!(report
            .spans
            .iter()
            .any(|s| s.start_ns >= r1.makespan.as_nanos()));
        assert_eq!(report.clock_ns, horizon);
        // Span recording must not perturb the simulation itself.
        let bare = simulate(&p, &cfg(), &works, DispatchMode::Sequential);
        assert_eq!(bare.makespan, r1.makespan);
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn launch_overhead_is_added() {
        let p = Platform::server_a();
        let mut c = cfg();
        c.launch_overhead = SimTime::from_micros(100);
        let r = simulate(
            &p,
            &c,
            &one_gpu_work(Location::Gpu(0), 1e6),
            DispatchMode::Sequential,
        );
        assert!(r.makespan >= SimTime::from_micros(100));
    }
}
