//! Frozen pre-optimization event loop, kept for differential tests and
//! the `repro bench` wall-clock microbenches.
//!
//! [`simulate_reference`] reproduces the original engine loop exactly:
//! every step it recounts the active cores of every group by scanning all
//! cores, re-collects/re-sorts/re-dedups the egress source list, and
//! re-offers work to every idle core with a full rescan. It shares the
//! state construction, dispatch discipline, span emission and result
//! assembly with the optimized engine (those were not the slow part), so
//! the two differ only in the per-step bookkeeping — which is the claim
//! the differential tests pin down: bit-identical results, traces and
//! telemetry. Do not "improve" this loop; its value is being the fixed
//! yardstick the incremental loop is compared against.

use crate::bandwidth::effective_bw;
use crate::engine::{
    build_state, dispatch, emit_stall_span, emit_xfer_span, finalize, DispatchMode,
    ExtractionResult, GpuWork, OpenStall, OpenXfer, SimConfig, SimState,
};
use crate::trace::{ExtractionTrace, TraceEvent};
use gpu_platform::{Interconnect, Location, Platform};

/// [`crate::simulate`] with the original per-step-rescan event loop.
///
/// # Panics
///
/// Panics on the same inputs as [`crate::simulate`] (unreachable source,
/// GPU index out of range, negative/non-finite byte counts).
pub fn simulate_reference(
    platform: &Platform,
    cfg: &SimConfig,
    works: &[GpuWork],
    mode: DispatchMode,
) -> ExtractionResult {
    run_reference(platform, cfg, works, mode, false).0
}

/// [`crate::simulate_traced`] with the original event loop.
///
/// # Panics
///
/// Panics on the same inputs as [`simulate_reference`].
pub fn simulate_reference_traced(
    platform: &Platform,
    cfg: &SimConfig,
    works: &[GpuWork],
    mode: DispatchMode,
) -> (ExtractionResult, ExtractionTrace) {
    run_reference(platform, cfg, works, mode, true)
}

fn run_reference(
    platform: &Platform,
    cfg: &SimConfig,
    works: &[GpuWork],
    mode: DispatchMode,
    record: bool,
) -> (ExtractionResult, ExtractionTrace) {
    let SimState {
        mut groups,
        gpu_groups,
        mut cores,
        mut queues,
    } = build_state(platform, cfg, works, mode);

    // Initial assignment.
    let mut job_start = vec![0.0f64; cores.len()];
    for ci in 0..cores.len() {
        let job = dispatch(cfg, &gpu_groups, &mut groups, &mut queues, &cores[ci]);
        cores[ci].job = job;
    }
    let mut trace = ExtractionTrace::default();

    let total_chunks: u64 = groups
        .iter()
        .map(|g| g.chunks_left + 1) // +1 slack for merged rounding
        .sum::<u64>()
        + cores.iter().filter(|c| c.job.is_some()).count() as u64;

    let mut now = 0.0f64; // seconds
    let mut gpu_finish = vec![0.0f64; platform.num_gpus()];
    let mut core_busy = vec![0.0f64; platform.num_gpus()];
    let mut iterations: u64 = 0;
    let mut congestion_hits: u64 = 0;
    let mut egress_caps: u64 = 0;
    let spans_on = emb_telemetry::enabled();
    let base_ns = emb_telemetry::clock_ns();
    let mut xfer_open: Vec<Option<OpenXfer>> = Vec::new();
    let mut grp_congest: Vec<u64> = Vec::new();
    let mut grp_egress: Vec<u64> = Vec::new();
    let mut stall_open: Vec<Option<OpenStall>> = Vec::new();
    let mut gpu_active: Vec<usize> = Vec::new();
    if spans_on {
        xfer_open = (0..groups.len()).map(|_| None).collect();
        grp_congest = vec![0; groups.len()];
        grp_egress = vec![0; groups.len()];
        stall_open = vec![None; platform.num_gpus()];
        gpu_active = vec![0; platform.num_gpus()];
    }

    loop {
        iterations += 1;
        assert!(
            iterations <= total_chunks * 4 + 64,
            "extraction simulation failed to converge"
        );

        // Count active cores per group — full rescan every step.
        for g in groups.iter_mut() {
            g.active = 0;
        }
        let mut any_active = false;
        for c in &cores {
            if let Some((gi, _)) = c.job {
                groups[gi].active += 1;
                any_active = true;
            }
        }
        if !any_active {
            break;
        }

        if spans_on {
            for (gi, g) in groups.iter().enumerate() {
                match (&xfer_open[gi], g.active > 0) {
                    (None, true) => {
                        xfer_open[gi] = Some(OpenXfer {
                            start: now,
                            bytes0: g.bytes_done,
                            congest0: grp_congest[gi],
                            egress0: grp_egress[gi],
                        });
                    }
                    (Some(open), false) => {
                        emit_xfer_span(base_ns, g, open, now, grp_congest[gi], grp_egress[gi]);
                        xfer_open[gi] = None;
                    }
                    _ => {}
                }
            }
            for a in gpu_active.iter_mut() {
                *a = 0;
            }
            for c in &cores {
                if c.job.is_some() {
                    gpu_active[c.gpu] += 1;
                }
            }
            for gpu in 0..platform.num_gpus() {
                let sm = platform.gpus[gpu].sm_count;
                let partial = gpu_active[gpu] > 0 && gpu_active[gpu] < sm;
                match (stall_open[gpu], partial) {
                    (None, true) => {
                        stall_open[gpu] = Some(OpenStall {
                            start: now,
                            idle_core_secs: 0.0,
                        });
                    }
                    (Some(open), false) => {
                        emit_stall_span(base_ns, gpu, &open, now);
                        stall_open[gpu] = None;
                    }
                    _ => {}
                }
            }
        }

        // Per-group raw rates from the congestion model.
        for (gi, g) in groups.iter_mut().enumerate() {
            g.rate = effective_bw(g.path.bw, g.path.per_core_bw, g.active, cfg.congestion);
            if g.active as f64 * g.path.per_core_bw > g.path.bw {
                congestion_hits += 1;
                if spans_on {
                    grp_congest[gi] += 1;
                }
            }
        }

        // Source-egress sharing — re-collected and re-sorted every step.
        let switch_based = matches!(platform.interconnect, Interconnect::Switch { .. });
        let mut sources: Vec<Location> = groups
            .iter()
            .filter(|g| g.active > 0 && g.src != Location::Gpu(g.gpu))
            .map(|g| g.src)
            .collect();
        sources.sort();
        sources.dedup();
        for src in sources {
            let egress_applies = match src {
                Location::Host => true,
                Location::Gpu(_) => switch_based,
            };
            if !egress_applies {
                continue;
            }
            let cap = match src {
                Location::Host => {
                    let pcie_sum = platform.outbound_bw(Location::Host);
                    cfg.host_dram_bw.map_or(pcie_sum, |d| d.min(pcie_sum))
                }
                Location::Gpu(_) => platform.outbound_bw(src),
            };
            let readers: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.src == src && g.src != Location::Gpu(g.gpu) && g.active > 0)
                .map(|(i, _)| i)
                .collect();
            let total_cores: usize = readers.iter().map(|&i| groups[i].active).sum();
            let pc: f64 = readers
                .iter()
                .map(|&i| groups[i].path.per_core_bw * groups[i].active as f64)
                .sum::<f64>()
                / total_cores.max(1) as f64;
            let eff_cap = effective_bw(cap, pc, total_cores, cfg.congestion).min(cap);
            let demand: f64 = readers.iter().map(|&i| groups[i].rate).sum();
            if demand > eff_cap && demand > 0.0 {
                egress_caps += 1;
                let scale = eff_cap / demand;
                for &i in &readers {
                    groups[i].rate *= scale;
                    if spans_on {
                        grp_egress[i] += 1;
                    }
                }
            }
        }

        // Next completion.
        let mut dt = f64::INFINITY;
        for c in &cores {
            if let Some((gi, rem)) = c.job {
                let g = &groups[gi];
                let r = g.rate / g.active as f64;
                if r > 0.0 {
                    dt = dt.min(rem / r);
                }
            }
        }
        assert!(dt.is_finite(), "no progress possible (all rates zero)");

        // Advance.
        for g in groups.iter_mut() {
            if g.active > 0 {
                g.busy += dt;
                g.bytes_done += g.rate * dt;
            }
        }
        now += dt;
        if spans_on {
            for gpu in 0..platform.num_gpus() {
                if let Some(open) = stall_open[gpu].as_mut() {
                    let sm = platform.gpus[gpu].sm_count;
                    open.idle_core_secs += sm.saturating_sub(gpu_active[gpu]) as f64 * dt;
                }
            }
        }
        let mut finished: Vec<usize> = Vec::new();
        for (ci, c) in cores.iter_mut().enumerate() {
            if let Some((gi, rem)) = c.job.as_mut() {
                let g = &groups[*gi];
                let r = g.rate / g.active as f64;
                core_busy[c.gpu] += dt;
                *rem -= r * dt;
                if *rem <= 1e-6 {
                    gpu_finish[c.gpu] = now;
                    if record {
                        trace.events.push(TraceEvent {
                            gpu: c.gpu,
                            core: c.local_idx,
                            src: groups[*gi].src,
                            start: job_start[ci],
                            end: now,
                        });
                    }
                    finished.push(ci);
                }
            }
        }
        for ci in finished {
            cores[ci].job = dispatch(cfg, &gpu_groups, &mut groups, &mut queues, &cores[ci]);
            job_start[ci] = now;
        }
        // Idle cores may become eligible again (e.g. the no-padding
        // ablation releases local work once non-local groups drain).
        for ci in 0..cores.len() {
            if cores[ci].job.is_none() {
                cores[ci].job = dispatch(cfg, &gpu_groups, &mut groups, &mut queues, &cores[ci]);
                if cores[ci].job.is_some() {
                    job_start[ci] = now;
                }
            }
        }
    }

    if spans_on {
        for (gi, open) in xfer_open.iter().enumerate() {
            if let Some(open) = open {
                emit_xfer_span(
                    base_ns,
                    &groups[gi],
                    open,
                    now,
                    grp_congest[gi],
                    grp_egress[gi],
                );
            }
        }
        for (gpu, open) in stall_open.iter().enumerate() {
            if let Some(open) = open {
                emit_stall_span(base_ns, gpu, open, now);
            }
        }
    }

    let result = finalize(
        platform,
        cfg,
        works,
        &groups,
        &gpu_groups,
        &gpu_finish,
        &core_busy,
        mode,
        congestion_hits,
        egress_caps,
        spans_on,
        base_ns,
    );
    (result, trace)
}
