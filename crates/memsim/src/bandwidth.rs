//! The bandwidth/congestion transfer function.
//!
//! This single function encodes the paper's Figure 6: achieved bandwidth
//! grows linearly with concurrent cores up to the path's *tolerance*, then
//! — rather than staying flat — degrades, because oversubscribed memory
//! pipelines stall cores and lose issue slots. The degradation is bounded
//! by `penalty` (default 0.5, matching the paper's "reduces system
//! performance by up to 50 %" observation in §3.2).

/// Parameters of the congestion model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionModel {
    /// Maximum fractional bandwidth loss under unbounded oversubscription.
    ///
    /// `0.0` disables congestion (an idealized link that merely saturates);
    /// `0.5` loses up to half the bandwidth, the paper's observation.
    pub penalty: f64,
}

impl Default for CongestionModel {
    fn default() -> Self {
        CongestionModel { penalty: 0.5 }
    }
}

impl CongestionModel {
    /// A model without congestion loss (for ablation).
    pub fn ideal() -> Self {
        CongestionModel { penalty: 0.0 }
    }
}

/// Achieved aggregate bandwidth of a path with `cores` concurrent readers.
///
/// * Below tolerance (`cores · per_core_bw ≤ bw`): linear in `cores`.
/// * Above tolerance: `bw · (1 − penalty · (1 − tol/cores))` — monotonically
///   decreasing in `cores`, approaching `bw · (1 − penalty)`.
///
/// # Examples
///
/// ```
/// use gpu_memsim::{effective_bw, CongestionModel};
/// let m = CongestionModel::default();
/// // 4 cores at 2 GB/s each on a 12 GB/s link: below tolerance.
/// assert_eq!(effective_bw(12e9, 2e9, 4, m), 8e9);
/// // 6 cores saturate exactly.
/// assert_eq!(effective_bw(12e9, 2e9, 6, m), 12e9);
/// // 12 cores: tolerance 6, factor 1 - 0.5*(1 - 0.5) = 0.75.
/// assert_eq!(effective_bw(12e9, 2e9, 12, m), 9e9);
/// ```
pub fn effective_bw(bw: f64, per_core_bw: f64, cores: usize, model: CongestionModel) -> f64 {
    if cores == 0 {
        return 0.0;
    }
    let demand = cores as f64 * per_core_bw;
    if demand <= bw {
        return demand;
    }
    let tol = bw / per_core_bw;
    bw * (1.0 - model.penalty * (1.0 - tol / cores as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BW: f64 = 50e9;
    const PC: f64 = 2e9;

    #[test]
    fn zero_cores_zero_bandwidth() {
        assert_eq!(effective_bw(BW, PC, 0, CongestionModel::default()), 0.0);
    }

    #[test]
    fn linear_below_tolerance() {
        let m = CongestionModel::default();
        assert_eq!(effective_bw(BW, PC, 1, m), 2e9);
        assert_eq!(effective_bw(BW, PC, 10, m), 20e9);
        assert_eq!(effective_bw(BW, PC, 25, m), 50e9);
    }

    #[test]
    fn degrades_above_tolerance() {
        let m = CongestionModel::default();
        let at_tol = effective_bw(BW, PC, 25, m);
        let over = effective_bw(BW, PC, 50, m);
        let way_over = effective_bw(BW, PC, 500, m);
        assert!(over < at_tol);
        assert!(way_over < over);
        // Bounded by (1 - penalty).
        assert!(way_over > BW * 0.5 - 1.0);
    }

    #[test]
    fn ideal_model_plateaus() {
        let m = CongestionModel::ideal();
        assert_eq!(effective_bw(BW, PC, 25, m), BW);
        assert_eq!(effective_bw(BW, PC, 500, m), BW);
    }

    #[test]
    fn monotone_decrease_is_continuous_at_tolerance() {
        let m = CongestionModel::default();
        // One core over the exact tolerance loses only a sliver.
        let just_over = effective_bw(BW, PC, 26, m);
        assert!(just_over > BW * 0.97, "{just_over}");
    }
}
