//! Differential tests: the incremental event loop must be bit-identical
//! to the frozen reference loop — results, traces, and telemetry.

use emb_util::SimTime;
use gpu_memsim::{
    simulate, simulate_reference, simulate_reference_traced, simulate_traced, DispatchMode,
    GpuWork, SimConfig, SourceDemand,
};
use gpu_platform::{DedicationConfig, Location, Platform};

fn cfg() -> SimConfig {
    SimConfig {
        launch_overhead: SimTime::from_micros(15),
        ..SimConfig::default()
    }
}

/// A skewed, merged-duplicate workload touching local, remote and host
/// paths on every GPU of the platform.
fn mixed_works(platform: &Platform) -> Vec<GpuWork> {
    let n = platform.num_gpus();
    (0..n)
        .map(|gpu| {
            // First reachable peer after `gpu` (hardwired topologies don't
            // connect every pair); fall back to local if none.
            let peer = (1..n)
                .map(|d| (gpu + d) % n)
                .find(|&j| platform.connected(gpu, Location::Gpu(j)))
                .unwrap_or(gpu);
            GpuWork {
                gpu,
                demands: vec![
                    SourceDemand {
                        src: Location::Gpu(gpu),
                        bytes: 600e6 + gpu as f64 * 17e6,
                    },
                    SourceDemand {
                        src: Location::Gpu(peer),
                        bytes: 250e6 - gpu as f64 * 11e6,
                    },
                    SourceDemand {
                        src: Location::Gpu(peer),
                        bytes: 40e6,
                    },
                    SourceDemand {
                        src: Location::Host,
                        bytes: 80e6 + gpu as f64 * 5e6,
                    },
                ],
            }
        })
        .collect()
}

fn modes() -> Vec<DispatchMode> {
    vec![
        DispatchMode::RandomShared { seed: 0x5EED },
        DispatchMode::Factored {
            dedication: DedicationConfig::default(),
        },
        DispatchMode::Sequential,
    ]
}

#[test]
fn results_match_reference_across_modes_and_platforms() {
    for platform in [
        Platform::server_a(),
        Platform::server_b(),
        Platform::server_c(),
    ] {
        let works = mixed_works(&platform);
        for mode in modes() {
            let opt = simulate(&platform, &cfg(), &works, mode);
            let refr = simulate_reference(&platform, &cfg(), &works, mode);
            assert_eq!(opt, refr, "mode {mode:?} on {}", platform.name);
        }
    }
}

#[test]
fn results_match_reference_without_padding() {
    // The Factored no-padding ablation exercises the barrier-release
    // revival path, the only case where an idle core can pick up work
    // again after a None dispatch.
    let mut c = cfg();
    c.factored_padding = false;
    let mode = DispatchMode::Factored {
        dedication: DedicationConfig::default(),
    };
    for platform in [Platform::server_a(), Platform::server_c()] {
        let works = mixed_works(&platform);
        let opt = simulate(&platform, &c, &works, mode);
        let refr = simulate_reference(&platform, &c, &works, mode);
        assert_eq!(opt, refr, "no-padding on {}", platform.name);
    }
}

#[test]
fn traces_match_reference_event_for_event() {
    let platform = Platform::server_c();
    let works = mixed_works(&platform);
    for mode in modes() {
        let (opt_r, opt_t) = simulate_traced(&platform, &cfg(), &works, mode);
        let (ref_r, ref_t) = simulate_reference_traced(&platform, &cfg(), &works, mode);
        assert_eq!(opt_r, ref_r, "result under {mode:?}");
        assert_eq!(
            opt_t.events.len(),
            ref_t.events.len(),
            "event count under {mode:?}"
        );
        for (a, b) in opt_t.events.iter().zip(ref_t.events.iter()) {
            assert_eq!(a.gpu, b.gpu);
            assert_eq!(a.core, b.core);
            assert_eq!(a.src, b.src);
            assert_eq!(a.start.to_bits(), b.start.to_bits());
            assert_eq!(a.end.to_bits(), b.end.to_bits());
        }
    }
}

#[test]
fn telemetry_matches_reference() {
    let platform = Platform::server_c();
    let works = mixed_works(&platform);
    for mode in modes() {
        let (_, opt_rep) = emb_telemetry::collect(|| simulate(&platform, &cfg(), &works, mode));
        let (_, ref_rep) =
            emb_telemetry::collect(|| simulate_reference(&platform, &cfg(), &works, mode));
        assert_eq!(opt_rep.metrics, ref_rep.metrics, "metrics under {mode:?}");
        assert_eq!(
            opt_rep.spans.len(),
            ref_rep.spans.len(),
            "span count under {mode:?}"
        );
        for (a, b) in opt_rep.spans.iter().zip(ref_rep.spans.iter()) {
            assert_eq!((&a.track, &a.name), (&b.track, &b.name));
            assert_eq!(a.start_ns, b.start_ns, "span {} start", a.track);
            assert_eq!(a.end_ns, b.end_ns, "span {} end", a.track);
        }
        assert_eq!(opt_rep.clock_ns, ref_rep.clock_ns);
    }
}
