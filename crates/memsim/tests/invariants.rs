//! Property tests for the extraction simulator: conservation, bounds,
//! monotonicity and mechanism orderings on randomized demand mixes.

use emb_util::SimTime;
use gpu_memsim::{
    simulate, simulate_traced, CongestionModel, DispatchMode, GpuWork, SimConfig, SourceDemand,
};
use gpu_platform::{DedicationConfig, Location, Platform};
use proptest::prelude::*;

fn cfg() -> SimConfig {
    SimConfig {
        launch_overhead: SimTime::ZERO,
        ..SimConfig::default()
    }
}

fn works_for(plat: &Platform, local: f64, remote: f64, host: f64) -> Vec<GpuWork> {
    let g = plat.num_gpus();
    (0..g)
        .map(|gpu| GpuWork {
            gpu,
            demands: vec![
                SourceDemand {
                    src: Location::Gpu(gpu),
                    bytes: local,
                },
                SourceDemand {
                    src: Location::Gpu((gpu + 1) % g),
                    bytes: remote,
                },
                SourceDemand {
                    src: Location::Host,
                    bytes: host,
                },
            ],
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// All dispatch modes move exactly the requested bytes.
    #[test]
    fn bytes_conserved_across_modes(
        local in 0.1f64..5.0,
        remote in 0.1f64..5.0,
        host in 0.1f64..2.0,
        seed in 0u64..20,
    ) {
        let plat = Platform::server_a();
        let works = works_for(&plat, local * 1e6, remote * 1e6, host * 1e6);
        let expected = (local + remote + host) * 1e6;
        for mode in [
            DispatchMode::Sequential,
            DispatchMode::RandomShared { seed },
            DispatchMode::Factored { dedication: DedicationConfig::default() },
        ] {
            let r = simulate(&plat, &cfg(), &works, mode);
            for g in &r.per_gpu {
                let moved: f64 = g.per_src.iter().map(|u| u.bytes).sum();
                prop_assert!(
                    (moved - expected).abs() < expected * 1e-6 + 1.0,
                    "{mode:?} gpu{} moved {moved} expected {expected}",
                    g.gpu
                );
            }
        }
    }

    /// Makespan is bounded below by each link's line-rate time and above
    /// by the fully serialized single-core time.
    #[test]
    fn makespan_bounds(
        local in 0.1f64..4.0,
        remote in 0.1f64..4.0,
        host in 0.1f64..2.0,
        seed in 0u64..20,
    ) {
        let plat = Platform::server_a();
        let works = works_for(&plat, local * 1e6, remote * 1e6, host * 1e6);
        let r = simulate(&plat, &cfg(), &works, DispatchMode::RandomShared { seed });
        let t = r.makespan.as_secs_f64();
        let lb = (local * 1e6 / 320e9).max(remote * 1e6 / 50e9).max(host * 1e6 / 12e9);
        prop_assert!(t >= lb * 0.999, "t {t} below line-rate bound {lb}");
        // Single core at the slowest per-core rate, everything serial, with
        // the worst congestion discount: a very loose upper bound.
        let ub = 2.0
            * (local * 1e6 / 4e9 + remote * 1e6 / 2e9 + host * 1e6 / 1.7e9);
        prop_assert!(t <= ub, "t {t} above serial bound {ub}");
    }

    /// More bytes never finish faster (monotonicity in demand).
    #[test]
    fn monotone_in_demand(base in 0.2f64..2.0, extra in 0.1f64..2.0) {
        let plat = Platform::server_c();
        let mode = DispatchMode::Factored { dedication: DedicationConfig::default() };
        let small = simulate(&plat, &cfg(), &works_for(&plat, base * 1e6, base * 1e6, base * 1e6), mode);
        let big = simulate(
            &plat,
            &cfg(),
            &works_for(&plat, (base + extra) * 1e6, (base + extra) * 1e6, (base + extra) * 1e6),
            mode,
        );
        prop_assert!(big.makespan >= small.makespan);
    }

    /// Disabling the congestion penalty never slows anything down.
    #[test]
    fn congestion_penalty_only_hurts(
        local in 0.1f64..3.0,
        remote in 0.1f64..3.0,
        host in 0.1f64..2.0,
        seed in 0u64..20,
    ) {
        let plat = Platform::server_a();
        let works = works_for(&plat, local * 1e6, remote * 1e6, host * 1e6);
        let ideal_cfg = SimConfig {
            congestion: CongestionModel::ideal(),
            launch_overhead: SimTime::ZERO,
            ..SimConfig::default()
        };
        let mode = DispatchMode::RandomShared { seed };
        let ideal = simulate(&plat, &ideal_cfg, &works, mode);
        let real = simulate(&plat, &cfg(), &works, mode);
        prop_assert!(real.makespan >= ideal.makespan);
    }

    /// Traced and untraced runs agree exactly.
    #[test]
    fn trace_does_not_perturb(
        local in 0.1f64..3.0,
        host in 0.1f64..1.0,
        seed in 0u64..20,
    ) {
        let plat = Platform::server_a();
        let works = works_for(&plat, local * 1e6, local * 0.5e6, host * 1e6);
        let mode = DispatchMode::RandomShared { seed };
        let plain = simulate(&plat, &cfg(), &works, mode);
        let (traced, trace) = simulate_traced(&plat, &cfg(), &works, mode);
        prop_assert_eq!(plain.makespan, traced.makespan);
        // Trace busy time never exceeds cores × makespan.
        for gpu in 0..plat.num_gpus() {
            let u = trace.core_utilization(gpu, plat.gpus[gpu].sm_count);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
    }
}
