//! The modelling API: variables, constraints, objective.

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Positional index of the variable in solution vectors.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Constraint comparison sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// A linear expression `Σ coeff · var`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms; duplicates are summed on use.
    pub terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// An empty expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `coeff · var` and returns `self` for chaining.
    pub fn plus(mut self, var: VarId, coeff: f64) -> Self {
        self.terms.push((var, coeff));
        self
    }

    /// Builds an expression from an iterator of terms.
    pub fn from_terms<I: IntoIterator<Item = (VarId, f64)>>(it: I) -> Self {
        LinExpr {
            terms: it.into_iter().collect(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct VarDef {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
    pub integer: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ConstraintDef {
    pub expr: LinExpr,
    pub sense: ConstraintSense,
    pub rhs: f64,
}

/// A minimization (MI)LP.
///
/// # Examples
///
/// ```
/// use milp::{ConstraintSense, LinExpr, Model};
/// // minimize -x - 2y  s.t.  x + y <= 4, 0 <= x,y <= 3
/// let mut m = Model::new();
/// let x = m.add_var("x", 0.0, 3.0, -1.0, false);
/// let y = m.add_var("y", 0.0, 3.0, -2.0, false);
/// m.add_constraint(LinExpr::new().plus(x, 1.0).plus(y, 1.0), ConstraintSense::Le, 4.0);
/// let sol = milp::solve_lp(&m).unwrap();
/// assert!((sol.objective - (-7.0)).abs() < 1e-6); // x=1, y=3
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<ConstraintDef>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with bounds `[lb, ub]`, objective coefficient
    /// `obj`, and integrality flag. Returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn add_var(&mut self, name: &str, lb: f64, ub: f64, obj: f64, integer: bool) -> VarId {
        assert!(!lb.is_nan() && !ub.is_nan(), "NaN bound on variable {name}");
        assert!(
            lb <= ub,
            "empty bound range on variable {name}: [{lb}, {ub}]"
        );
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            name: name.to_string(),
            lb,
            ub,
            obj,
            integer,
        });
        id
    }

    /// Convenience: a `[0,1]` binary variable.
    pub fn add_binary(&mut self, name: &str, obj: f64) -> VarId {
        self.add_var(name, 0.0, 1.0, obj, true)
    }

    /// Convenience: a continuous variable in `[0, +inf)`.
    pub fn add_nonneg(&mut self, name: &str, obj: f64) -> VarId {
        self.add_var(name, 0.0, f64::INFINITY, obj, false)
    }

    /// Adds a linear constraint.
    ///
    /// # Panics
    ///
    /// Panics if the expression references an unknown variable or a
    /// coefficient/rhs is non-finite.
    pub fn add_constraint(&mut self, expr: LinExpr, sense: ConstraintSense, rhs: f64) {
        assert!(rhs.is_finite(), "non-finite constraint rhs {rhs}");
        for &(v, c) in &expr.terms {
            assert!(
                v.0 < self.vars.len(),
                "constraint references unknown variable"
            );
            assert!(c.is_finite(), "non-finite coefficient {c}");
        }
        self.constraints.push(ConstraintDef { expr, sense, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Indices of integer variables.
    pub fn integer_vars(&self) -> Vec<usize> {
        (0..self.vars.len())
            .filter(|&i| self.vars[i].integer)
            .collect()
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Largest primal constraint violation of a point, in rhs units
    /// (`0.0` when every constraint holds exactly). Variable bounds and
    /// integrality are not included — use [`Model::is_feasible`] for the
    /// full check. This is the convergence residual the telemetry layer
    /// reports per LP solve.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the highest variable index any
    /// constraint references.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for c in &self.constraints {
            let lhs: f64 = c.expr.terms.iter().map(|&(v, k)| k * x[v.0]).sum();
            let viol = match c.sense {
                ConstraintSense::Le => lhs - c.rhs,
                ConstraintSense::Ge => c.rhs - lhs,
                ConstraintSense::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }

    /// Checks primal feasibility of a point within tolerance `tol`
    /// (bounds, constraints, and integrality for integer variables).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lb - tol || xi > v.ub + tol {
                return false;
            }
            if v.integer && (xi - xi.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.expr.terms.iter().map(|&(v, k)| k * x[v.0]).sum();
            let ok = match c.sense {
                ConstraintSense::Le => lhs <= c.rhs + tol,
                ConstraintSense::Ge => lhs >= c.rhs - tol,
                ConstraintSense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0, 1.0, false);
        let b = m.add_binary("b", 2.0);
        m.add_constraint(
            LinExpr::new().plus(x, 1.0).plus(b, -1.0),
            ConstraintSense::Ge,
            0.5,
        );
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.integer_vars(), vec![1]);
        assert_eq!(m.objective_value(&[3.0, 1.0]), 5.0);
    }

    #[test]
    fn feasibility_checks_everything() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, 0.0, false);
        let b = m.add_binary("b", 0.0);
        m.add_constraint(
            LinExpr::new().plus(x, 1.0).plus(b, 1.0),
            ConstraintSense::Le,
            1.5,
        );
        assert!(m.is_feasible(&[0.5, 1.0], 1e-9));
        assert!(!m.is_feasible(&[0.5, 0.5], 1e-9), "fractional binary");
        assert!(!m.is_feasible(&[2.0, 0.0], 1e-9), "bound violation");
        assert!(!m.is_feasible(&[1.0, 1.0], 1e-9), "constraint violation");
        assert!(!m.is_feasible(&[1.0], 1e-9), "wrong arity");
    }

    #[test]
    #[should_panic(expected = "empty bound range")]
    fn inverted_bounds_panic() {
        let mut m = Model::new();
        let _ = m.add_var("x", 2.0, 1.0, 0.0, false);
    }
}
