//! Frozen pre-optimization dense simplex, kept for differential tests
//! and the `repro bench` wall-clock microbenches.
//!
//! [`solve_lp_dense`] is the original solver verbatim: every pivot and
//! every pricing pass walks all `n` tableau columns. It must produce the
//! same pivots, iteration counts and solutions as the sparsified
//! [`crate::solve_lp`] (the differential tests assert this); do not
//! "improve" it — its value is being the fixed yardstick the sparse row
//! operations are compared against.

use crate::model::{ConstraintSense, Model};
use crate::simplex::{LpResult, LpStatus};

const EPS: f64 = 1e-7;
const PIVOT_TOL: f64 = 1e-9;

struct DenseTableau {
    m: usize,
    /// Total columns: structural + slacks + artificials.
    n: usize,
    /// Number of structural columns.
    n_struct: usize,
    /// First artificial column.
    art_start: usize,
    /// `B⁻¹ A`, row-major `m × n`.
    t: Vec<f64>,
    /// Current value of every column's variable.
    x: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// For nonbasic columns: resting at upper bound?
    at_upper: Vec<bool>,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    cost: Vec<f64>,
    /// Simplex steps taken so far, accumulated across phases.
    iterations: usize,
}

impl DenseTableau {
    fn build(model: &Model) -> Self {
        let m = model.num_constraints();
        let n_struct = model.num_vars();
        let n_slack = m;
        let n = n_struct + n_slack + m; // + artificials
        let art_start = n_struct + n_slack;

        let mut lb = vec![0.0f64; n];
        let mut ub = vec![0.0f64; n];
        for (j, v) in model.vars.iter().enumerate() {
            lb[j] = v.lb;
            ub[j] = v.ub;
        }
        let mut t = vec![0.0f64; m * n];
        let mut b = vec![0.0f64; m];
        for (i, c) in model.constraints.iter().enumerate() {
            for &(v, k) in &c.expr.terms {
                t[i * n + v.index()] += k;
            }
            b[i] = c.rhs;
            let s = n_struct + i;
            t[i * n + s] = 1.0;
            match c.sense {
                ConstraintSense::Le => {
                    lb[s] = 0.0;
                    ub[s] = f64::INFINITY;
                }
                ConstraintSense::Ge => {
                    lb[s] = f64::NEG_INFINITY;
                    ub[s] = 0.0;
                }
                ConstraintSense::Eq => {
                    lb[s] = 0.0;
                    ub[s] = 0.0;
                }
            }
        }
        // Artificials: bounds set below once residual signs are known.
        for i in 0..m {
            let a = art_start + i;
            lb[a] = 0.0;
            ub[a] = f64::INFINITY;
            t[i * n + a] = 1.0;
        }

        // Nonbasic start: every structural/slack at its nearest finite
        // bound (0 for free variables).
        let mut x = vec![0.0f64; n];
        let mut at_upper = vec![false; n];
        for j in 0..art_start {
            if lb[j].is_finite() {
                x[j] = lb[j];
            } else if ub[j].is_finite() {
                x[j] = ub[j];
                at_upper[j] = true;
            } else {
                x[j] = 0.0;
            }
        }

        // Residuals decide artificial signs; rows with negative residual
        // are negated so artificials stay ≥ 0.
        for i in 0..m {
            let mut r = b[i];
            for j in 0..art_start {
                r -= t[i * n + j] * x[j];
            }
            if r < 0.0 {
                for j in 0..art_start {
                    t[i * n + j] = -t[i * n + j];
                }
                r = -r;
            }
            x[art_start + i] = r;
        }

        let basis: Vec<usize> = (0..m).map(|i| art_start + i).collect();
        let mut in_basis = vec![false; n];
        for &j in &basis {
            in_basis[j] = true;
        }

        DenseTableau {
            m,
            n,
            n_struct,
            art_start,
            t,
            x,
            lb,
            ub,
            at_upper,
            basis,
            in_basis,
            cost: vec![0.0; n],
            iterations: 0,
        }
    }

    fn set_phase1_costs(&mut self) {
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for j in self.art_start..self.n {
            self.cost[j] = 1.0;
        }
    }

    fn set_phase2_costs(&mut self, model: &Model) {
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for (j, v) in model.vars.iter().enumerate() {
            self.cost[j] = v.obj;
        }
        // Artificials are pinned at zero for phase 2.
        for j in self.art_start..self.n {
            self.lb[j] = 0.0;
            self.ub[j] = 0.0;
        }
    }

    /// Reduced costs `d = c − c_B' · (B⁻¹A)`.
    fn reduced_costs(&self) -> Vec<f64> {
        let mut d = self.cost.clone();
        for i in 0..self.m {
            let yb = self.cost[self.basis[i]];
            if yb != 0.0 {
                let row = &self.t[i * self.n..(i + 1) * self.n];
                for (dj, &tij) in d.iter_mut().zip(row) {
                    *dj -= yb * tij;
                }
            }
        }
        d
    }

    /// Picks the entering column, or `None` at optimality. The optimality
    /// tolerance is relative to the cost magnitude so badly scaled
    /// objectives (tiny per-iteration times) still converge.
    fn choose_entering(&self, d: &[f64], bland: bool) -> Option<usize> {
        let cmax = self.cost.iter().fold(0.0f64, |a, &c| a.max(c.abs()));
        let eps = EPS * cmax.clamp(1e-9, 1.0);
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.n {
            if self.in_basis[j] || self.lb[j] == self.ub[j] {
                continue;
            }
            let free = self.lb[j] == f64::NEG_INFINITY && self.ub[j] == f64::INFINITY;
            let viol = if free {
                d[j].abs()
            } else if self.at_upper[j] {
                d[j]
            } else {
                -d[j]
            };
            if viol > eps {
                if bland {
                    return Some(j);
                }
                if best.is_none_or(|(_, v)| viol > v) {
                    best = Some((j, viol));
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// One simplex step for entering column `q`. Returns `Ok(t)` (step
    /// length) or `Err(())` when the problem is unbounded along `q`.
    fn step(&mut self, q: usize, d_q: f64) -> Result<f64, ()> {
        // Direction of movement for x_q.
        let free = self.lb[q] == f64::NEG_INFINITY && self.ub[q] == f64::INFINITY;
        let dir: f64 = if free {
            if d_q < 0.0 {
                1.0
            } else {
                -1.0
            }
        } else if self.at_upper[q] {
            -1.0
        } else {
            1.0
        };

        // Own bound span.
        let span = if free {
            f64::INFINITY
        } else {
            self.ub[q] - self.lb[q]
        };

        // Ratio test over basic variables.
        let mut t_best = span;
        let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        for i in 0..self.m {
            let alpha = self.t[i * self.n + q] * dir;
            let bi = self.basis[i];
            let xb = self.x[bi];
            if alpha > PIVOT_TOL {
                if self.lb[bi].is_finite() {
                    let ti = (xb - self.lb[bi]) / alpha;
                    if ti < t_best - 1e-12 {
                        t_best = ti.max(0.0);
                        leave = Some((i, false));
                    }
                }
            } else if alpha < -PIVOT_TOL && self.ub[bi].is_finite() {
                let ti = (self.ub[bi] - xb) / (-alpha);
                if ti < t_best - 1e-12 {
                    t_best = ti.max(0.0);
                    leave = Some((i, true));
                }
            }
        }

        if t_best.is_infinite() {
            return Err(());
        }
        let t_step = t_best;

        // Move basic values.
        for i in 0..self.m {
            let alpha = self.t[i * self.n + q] * dir;
            let bi = self.basis[i];
            self.x[bi] -= alpha * t_step;
        }
        self.x[q] += dir * t_step;

        match leave {
            None => {
                // Bound flip: q stays nonbasic at the other bound.
                self.at_upper[q] = !self.at_upper[q];
                self.x[q] = if self.at_upper[q] {
                    self.ub[q]
                } else {
                    self.lb[q]
                };
            }
            Some((r, leaves_at_upper)) => {
                let out = self.basis[r];
                // Snap the leaving variable exactly onto its bound.
                self.x[out] = if leaves_at_upper {
                    self.ub[out]
                } else {
                    self.lb[out]
                };
                self.at_upper[out] = leaves_at_upper;
                self.in_basis[out] = false;
                self.basis[r] = q;
                self.in_basis[q] = true;
                self.pivot(r, q);
            }
        }
        Ok(t_step)
    }

    fn pivot(&mut self, r: usize, q: usize) {
        let n = self.n;
        let piv = self.t[r * n + q];
        debug_assert!(piv.abs() > PIVOT_TOL, "tiny pivot {piv}");
        let inv = 1.0 / piv;
        for j in 0..n {
            self.t[r * n + j] *= inv;
        }
        self.t[r * n + q] = 1.0; // kill round-off on the pivot column
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let f = self.t[i * n + q];
            if f.abs() <= 1e-12 {
                self.t[i * n + q] = 0.0;
                continue;
            }
            for j in 0..n {
                self.t[i * n + j] -= f * self.t[r * n + j];
            }
            self.t[i * n + q] = 0.0;
        }
    }

    /// Runs simplex to optimality with the current costs.
    fn optimize(&mut self) -> Result<(), LpStatus> {
        let max_iter = 400 + 60 * (self.m + self.n);
        let mut degenerate_run = 0usize;
        let mut bland = false;
        for _ in 0..max_iter {
            let d = self.reduced_costs();
            let Some(q) = self.choose_entering(&d, bland) else {
                return Ok(());
            };
            self.iterations += 1;
            match self.step(q, d[q]) {
                Ok(t) => {
                    if t <= 1e-10 {
                        degenerate_run += 1;
                        if degenerate_run > 2 * (self.m + 16) {
                            bland = true;
                        }
                    } else {
                        degenerate_run = 0;
                        bland = false;
                    }
                }
                Err(()) => return Err(LpStatus::Unbounded),
            }
        }
        Err(LpStatus::IterationLimit)
    }

    fn phase1_objective(&self) -> f64 {
        (self.art_start..self.n).map(|j| self.x[j]).sum()
    }

    fn solution(&self, model: &Model) -> LpResult {
        let x: Vec<f64> = self.x[..self.n_struct].to_vec();
        let objective = model.objective_value(&x);
        let max_residual = model.max_violation(&x);
        LpResult {
            x,
            objective,
            iterations: self.iterations,
            max_residual,
        }
    }
}

/// [`crate::solve_lp`] with the original dense row operations.
///
/// Returns the optimal solution, or the terminal [`LpStatus`] otherwise.
pub fn solve_lp_dense(model: &Model) -> Result<LpResult, LpStatus> {
    let mut t = DenseTableau::build(model);

    // Phase 1 only if some artificial starts positive.
    if t.phase1_objective() > EPS {
        t.set_phase1_costs();
        match t.optimize() {
            Ok(()) => {}
            // Phase 1 is bounded below by 0; unboundedness is numerical.
            Err(LpStatus::Unbounded) => return Err(LpStatus::IterationLimit),
            Err(s) => return Err(s),
        }
        if t.phase1_objective() > 1e-6 {
            return Err(LpStatus::Infeasible);
        }
    }

    t.set_phase2_costs(model);
    t.optimize()?;
    Ok(t.solution(model))
}
