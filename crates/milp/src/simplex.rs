//! Bounded-variable primal simplex with a two-phase start.
//!
//! Variables carry native `[lb, ub]` bounds (so `0 ≤ x ≤ 1` binaries do
//! not become rows), nonbasic variables rest at one of their bounds, and
//! the ratio test supports *bound flips*. Phase 1 minimizes the sum of
//! per-row artificial variables; phase 2 minimizes the true objective.
//! Anti-cycling falls back to Bland's rule after a run of degenerate
//! pivots.
//!
//! Row operations are *sparsified*: each tableau row keeps a sorted index
//! of its (potentially) nonzero columns, so pivoting and pricing touch
//! only that support instead of all `n` columns. The placement tableaus
//! are mostly slack/artificial columns, so this is where the solver spent
//! its time. Skipped columns hold exact zeros, and adding/subtracting a
//! `±0.0` term never changes a nonzero value bitwise nor any comparison
//! the solver makes, so the sparse path produces the same pivots and the
//! same solution as the frozen dense copy in [`crate::dense`] — which the
//! differential tests assert.

use crate::model::{ConstraintSense, Model};

/// Terminal states other than "optimal solution found".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// No point satisfies the constraints.
    Infeasible,
    /// The objective decreases without bound.
    Unbounded,
    /// The iteration limit was hit (numerical trouble).
    IterationLimit,
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpResult {
    /// Optimal values of the model's structural variables.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
    /// Simplex pivots/bound-flips performed across both phases.
    pub iterations: usize,
    /// Largest remaining constraint violation at `x` (see
    /// [`Model::max_violation`]); ideally ~0, reported as the solver's
    /// convergence residual.
    pub max_residual: f64,
}

const EPS: f64 = 1e-7;
const PIVOT_TOL: f64 = 1e-9;

struct Tableau {
    m: usize,
    /// Total columns: structural + slacks + artificials.
    n: usize,
    /// Number of structural columns.
    n_struct: usize,
    /// First artificial column.
    art_start: usize,
    /// `B⁻¹ A`, row-major `m × n`.
    t: Vec<f64>,
    /// Current value of every column's variable.
    x: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// For nonbasic columns: resting at upper bound?
    at_upper: Vec<bool>,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    cost: Vec<f64>,
    /// Simplex steps taken so far, accumulated across phases.
    iterations: usize,
    /// Per-row sorted column support: every column whose tableau entry
    /// may be nonzero is listed (entries may point at exact zeros; the
    /// pivot merge prunes them).
    nz: Vec<Vec<u32>>,
    /// Reusable merge buffer for [`Tableau::pivot`].
    scratch: Vec<u32>,
}

impl Tableau {
    fn build(model: &Model) -> Self {
        let m = model.num_constraints();
        let n_struct = model.num_vars();
        let n_slack = m;
        let n = n_struct + n_slack + m; // + artificials
        let art_start = n_struct + n_slack;

        let mut lb = vec![0.0f64; n];
        let mut ub = vec![0.0f64; n];
        for (j, v) in model.vars.iter().enumerate() {
            lb[j] = v.lb;
            ub[j] = v.ub;
        }
        let mut t = vec![0.0f64; m * n];
        let mut b = vec![0.0f64; m];
        for (i, c) in model.constraints.iter().enumerate() {
            for &(v, k) in &c.expr.terms {
                t[i * n + v.index()] += k;
            }
            b[i] = c.rhs;
            let s = n_struct + i;
            t[i * n + s] = 1.0;
            match c.sense {
                ConstraintSense::Le => {
                    lb[s] = 0.0;
                    ub[s] = f64::INFINITY;
                }
                ConstraintSense::Ge => {
                    lb[s] = f64::NEG_INFINITY;
                    ub[s] = 0.0;
                }
                ConstraintSense::Eq => {
                    lb[s] = 0.0;
                    ub[s] = 0.0;
                }
            }
        }
        // Artificials: bounds set below once residual signs are known.
        for i in 0..m {
            let a = art_start + i;
            lb[a] = 0.0;
            ub[a] = f64::INFINITY;
            t[i * n + a] = 1.0;
        }

        // Nonbasic start: every structural/slack at its nearest finite
        // bound (0 for free variables).
        let mut x = vec![0.0f64; n];
        let mut at_upper = vec![false; n];
        for j in 0..art_start {
            if lb[j].is_finite() {
                x[j] = lb[j];
            } else if ub[j].is_finite() {
                x[j] = ub[j];
                at_upper[j] = true;
            } else {
                x[j] = 0.0;
            }
        }

        // Residuals decide artificial signs; rows with negative residual
        // are negated so artificials stay ≥ 0.
        for i in 0..m {
            let mut r = b[i];
            for j in 0..art_start {
                r -= t[i * n + j] * x[j];
            }
            if r < 0.0 {
                for j in 0..art_start {
                    t[i * n + j] = -t[i * n + j];
                }
                r = -r;
            }
            x[art_start + i] = r;
        }

        let basis: Vec<usize> = (0..m).map(|i| art_start + i).collect();
        let mut in_basis = vec![false; n];
        for &j in &basis {
            in_basis[j] = true;
        }

        // Initial row supports: the structural terms plus one slack and
        // one artificial per row.
        assert!(n <= u32::MAX as usize, "tableau too wide");
        let nz: Vec<Vec<u32>> = (0..m)
            .map(|i| {
                (0..n)
                    .filter(|&j| t[i * n + j] != 0.0)
                    .map(|j| j as u32)
                    .collect()
            })
            .collect();

        Tableau {
            m,
            n,
            n_struct,
            art_start,
            t,
            x,
            lb,
            ub,
            at_upper,
            basis,
            in_basis,
            cost: vec![0.0; n],
            iterations: 0,
            nz,
            scratch: Vec::new(),
        }
    }

    fn set_phase1_costs(&mut self) {
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for j in self.art_start..self.n {
            self.cost[j] = 1.0;
        }
    }

    fn set_phase2_costs(&mut self, model: &Model) {
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for (j, v) in model.vars.iter().enumerate() {
            self.cost[j] = v.obj;
        }
        // Artificials are pinned at zero for phase 2.
        for j in self.art_start..self.n {
            self.lb[j] = 0.0;
            self.ub[j] = 0.0;
        }
    }

    /// Reduced costs `d = c − c_B' · (B⁻¹A)`, priced over each row's
    /// support only (skipped columns contribute an exact-zero term).
    fn reduced_costs(&self) -> Vec<f64> {
        let mut d = self.cost.clone();
        for i in 0..self.m {
            let yb = self.cost[self.basis[i]];
            if yb != 0.0 {
                for &j in &self.nz[i] {
                    d[j as usize] -= yb * self.t[i * self.n + j as usize];
                }
            }
        }
        d
    }

    /// Picks the entering column, or `None` at optimality. The optimality
    /// tolerance is relative to the cost magnitude so badly scaled
    /// objectives (tiny per-iteration times) still converge.
    fn choose_entering(&self, d: &[f64], bland: bool) -> Option<usize> {
        let cmax = self.cost.iter().fold(0.0f64, |a, &c| a.max(c.abs()));
        let eps = EPS * cmax.clamp(1e-9, 1.0);
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.n {
            if self.in_basis[j] || self.lb[j] == self.ub[j] {
                continue;
            }
            let free = self.lb[j] == f64::NEG_INFINITY && self.ub[j] == f64::INFINITY;
            let viol = if free {
                d[j].abs()
            } else if self.at_upper[j] {
                d[j]
            } else {
                -d[j]
            };
            if viol > eps {
                if bland {
                    return Some(j);
                }
                if best.is_none_or(|(_, v)| viol > v) {
                    best = Some((j, viol));
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// One simplex step for entering column `q`. Returns `Ok(t)` (step
    /// length) or `Err(())` when the problem is unbounded along `q`.
    fn step(&mut self, q: usize, d_q: f64) -> Result<f64, ()> {
        // Direction of movement for x_q.
        let free = self.lb[q] == f64::NEG_INFINITY && self.ub[q] == f64::INFINITY;
        let dir: f64 = if free {
            if d_q < 0.0 {
                1.0
            } else {
                -1.0
            }
        } else if self.at_upper[q] {
            -1.0
        } else {
            1.0
        };

        // Own bound span.
        let span = if free {
            f64::INFINITY
        } else {
            self.ub[q] - self.lb[q]
        };

        // Ratio test over basic variables.
        let mut t_best = span;
        let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        for i in 0..self.m {
            let alpha = self.t[i * self.n + q] * dir;
            let bi = self.basis[i];
            let xb = self.x[bi];
            if alpha > PIVOT_TOL {
                if self.lb[bi].is_finite() {
                    let ti = (xb - self.lb[bi]) / alpha;
                    if ti < t_best - 1e-12 {
                        t_best = ti.max(0.0);
                        leave = Some((i, false));
                    }
                }
            } else if alpha < -PIVOT_TOL && self.ub[bi].is_finite() {
                let ti = (self.ub[bi] - xb) / (-alpha);
                if ti < t_best - 1e-12 {
                    t_best = ti.max(0.0);
                    leave = Some((i, true));
                }
            }
        }

        if t_best.is_infinite() {
            return Err(());
        }
        let t_step = t_best;

        // Move basic values.
        for i in 0..self.m {
            let alpha = self.t[i * self.n + q] * dir;
            let bi = self.basis[i];
            self.x[bi] -= alpha * t_step;
        }
        self.x[q] += dir * t_step;

        match leave {
            None => {
                // Bound flip: q stays nonbasic at the other bound.
                self.at_upper[q] = !self.at_upper[q];
                self.x[q] = if self.at_upper[q] {
                    self.ub[q]
                } else {
                    self.lb[q]
                };
            }
            Some((r, leaves_at_upper)) => {
                let out = self.basis[r];
                // Snap the leaving variable exactly onto its bound.
                self.x[out] = if leaves_at_upper {
                    self.ub[out]
                } else {
                    self.lb[out]
                };
                self.at_upper[out] = leaves_at_upper;
                self.in_basis[out] = false;
                self.basis[r] = q;
                self.in_basis[q] = true;
                self.pivot(r, q);
            }
        }
        Ok(t_step)
    }

    fn pivot(&mut self, r: usize, q: usize) {
        let n = self.n;
        let m = self.m;
        let piv = self.t[r * n + q];
        debug_assert!(piv.abs() > PIVOT_TOL, "tiny pivot {piv}");
        let inv = 1.0 / piv;
        let Tableau { t, nz, scratch, .. } = self;
        let mut row_nz = std::mem::take(&mut nz[r]);
        for &j in &row_nz {
            t[r * n + j as usize] *= inv;
        }
        t[r * n + q] = 1.0; // kill round-off on the pivot column
        row_nz.retain(|&j| t[r * n + j as usize] != 0.0);
        for i in 0..m {
            if i == r {
                continue;
            }
            let f = t[i * n + q];
            if f.abs() <= 1e-12 {
                t[i * n + q] = 0.0;
                continue;
            }
            for &j in &row_nz {
                t[i * n + j as usize] -= f * t[r * n + j as usize];
            }
            t[i * n + q] = 0.0;
            // New support of row i = old support ∪ pivot-row support,
            // pruning columns whose entry is exactly zero now (a pruned
            // column can only come back through a pivot-row merge, which
            // re-adds it).
            scratch.clear();
            let (a, b) = (&nz[i], &row_nz);
            let (mut ai, mut bi) = (0usize, 0usize);
            while ai < a.len() || bi < b.len() {
                let j = match (a.get(ai), b.get(bi)) {
                    (Some(&x), Some(&y)) => {
                        if x <= y {
                            if x == y {
                                bi += 1;
                            }
                            ai += 1;
                            x
                        } else {
                            bi += 1;
                            y
                        }
                    }
                    (Some(&x), None) => {
                        ai += 1;
                        x
                    }
                    (None, Some(&y)) => {
                        bi += 1;
                        y
                    }
                    (None, None) => unreachable!(),
                };
                if t[i * n + j as usize] != 0.0 {
                    scratch.push(j);
                }
            }
            std::mem::swap(&mut nz[i], scratch);
        }
        nz[r] = row_nz;
    }

    /// Runs simplex to optimality with the current costs.
    fn optimize(&mut self) -> Result<(), LpStatus> {
        let max_iter = 400 + 60 * (self.m + self.n);
        let mut degenerate_run = 0usize;
        let mut bland = false;
        for _ in 0..max_iter {
            let d = self.reduced_costs();
            let Some(q) = self.choose_entering(&d, bland) else {
                return Ok(());
            };
            self.iterations += 1;
            match self.step(q, d[q]) {
                Ok(t) => {
                    if t <= 1e-10 {
                        degenerate_run += 1;
                        if degenerate_run > 2 * (self.m + 16) {
                            bland = true;
                        }
                    } else {
                        degenerate_run = 0;
                        bland = false;
                    }
                }
                Err(()) => return Err(LpStatus::Unbounded),
            }
        }
        Err(LpStatus::IterationLimit)
    }

    fn phase1_objective(&self) -> f64 {
        (self.art_start..self.n).map(|j| self.x[j]).sum()
    }

    fn solution(&self, model: &Model) -> LpResult {
        let x: Vec<f64> = self.x[..self.n_struct].to_vec();
        let objective = model.objective_value(&x);
        let max_residual = model.max_violation(&x);
        LpResult {
            x,
            objective,
            iterations: self.iterations,
            max_residual,
        }
    }
}

/// Solves the LP relaxation of `model` (integrality ignored).
///
/// Returns the optimal solution, or the terminal [`LpStatus`] otherwise.
pub fn solve_lp(model: &Model) -> Result<LpResult, LpStatus> {
    let mut t = Tableau::build(model);

    // Phase 1 only if some artificial starts positive.
    if t.phase1_objective() > EPS {
        t.set_phase1_costs();
        match t.optimize() {
            Ok(()) => {}
            // Phase 1 is bounded below by 0; unboundedness is numerical.
            Err(LpStatus::Unbounded) => return Err(LpStatus::IterationLimit),
            Err(s) => return Err(s),
        }
        if t.phase1_objective() > 1e-6 {
            return Err(LpStatus::Infeasible);
        }
    }

    t.set_phase2_costs(model);
    t.optimize()?;
    Ok(t.solution(model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintSense::*, LinExpr, Model};

    fn expr(terms: &[(crate::model::VarId, f64)]) -> LinExpr {
        LinExpr::from_terms(terms.iter().copied())
    }

    #[test]
    fn simple_2d_lp() {
        // min -3x - 5y ; x <= 4 ; 2y <= 12 ; 3x + 2y <= 18 → (2,6), -36.
        let mut m = Model::new();
        let x = m.add_nonneg("x", -3.0);
        let y = m.add_nonneg("y", -5.0);
        m.add_constraint(expr(&[(x, 1.0)]), Le, 4.0);
        m.add_constraint(expr(&[(y, 2.0)]), Le, 12.0);
        m.add_constraint(expr(&[(x, 3.0), (y, 2.0)]), Le, 18.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective + 36.0).abs() < 1e-6, "{}", sol.objective);
        assert!((sol.x[0] - 2.0).abs() < 1e-6);
        assert!((sol.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn bound_flip_only_problem() {
        // min -x - y with 0<=x<=2, 0<=y<=3, no constraints.
        let mut m = Model::new();
        let _ = m.add_var("x", 0.0, 2.0, -1.0, false);
        let _ = m.add_var("y", 0.0, 3.0, -1.0, false);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective + 5.0).abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x - y = 1 → (3,2), obj 5.
        let mut m = Model::new();
        let x = m.add_nonneg("x", 1.0);
        let y = m.add_nonneg("y", 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Eq, 5.0);
        m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Eq, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-6);
        assert!((sol.x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_and_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2 → (10? no): best puts all
        // weight on x: x=10,y=0 → obj 20? x>=2 satisfied. Check: obj 20.
        let mut m = Model::new();
        let x = m.add_nonneg("x", 2.0);
        let y = m.add_nonneg("y", 3.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Ge, 10.0);
        m.add_constraint(expr(&[(x, 1.0)]), Ge, 2.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, 1.0, false);
        m.add_constraint(expr(&[(x, 1.0)]), Ge, 2.0);
        assert_eq!(solve_lp(&m), Err(LpStatus::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_nonneg("x", -1.0);
        let y = m.add_nonneg("y", 0.0);
        m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Le, 1.0);
        assert_eq!(solve_lp(&m), Err(LpStatus::Unbounded));
    }

    #[test]
    fn free_variable() {
        // min x s.t. x >= -7 (free var) → -7.
        let mut m = Model::new();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0, false);
        m.add_constraint(expr(&[(x, 1.0)]), Ge, -7.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective + 7.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x+y s.t. -x - y <= -4 (i.e. x+y >= 4), 0<=x,y<=3.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 3.0, 1.0, false);
        let y = m.add_var("y", 0.0, 3.0, 1.0, false);
        m.add_constraint(expr(&[(x, -1.0), (y, -1.0)]), Le, -4.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple constraints meet at the optimum.
        let mut m = Model::new();
        let x = m.add_nonneg("x", -1.0);
        let y = m.add_nonneg("y", -1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Le, 1.0);
        m.add_constraint(expr(&[(y, 1.0)]), Le, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Le, 2.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 2.0)]), Le, 3.0);
        m.add_constraint(expr(&[(x, 2.0), (y, 1.0)]), Le, 3.0);
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective + 2.0).abs() < 1e-6);
    }

    #[test]
    fn transportation_like_lp() {
        // 2 supplies × 3 demands, costs chosen so the answer is known.
        let mut m = Model::new();
        let costs = [[4.0, 6.0, 9.0], [5.0, 3.0, 8.0]];
        let supply = [30.0, 40.0];
        let demand = [20.0, 30.0, 20.0];
        let mut v = [[None; 3]; 2];
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                v[i][j] = Some(m.add_nonneg(&format!("x{i}{j}"), c));
            }
        }
        for i in 0..2 {
            let e = expr(&(0..3).map(|j| (v[i][j].unwrap(), 1.0)).collect::<Vec<_>>());
            m.add_constraint(e, Le, supply[i]);
        }
        for j in 0..3 {
            let e = expr(&(0..2).map(|i| (v[i][j].unwrap(), 1.0)).collect::<Vec<_>>());
            m.add_constraint(e, Ge, demand[j]);
        }
        let sol = solve_lp(&m).unwrap();
        // Optimal: x00=20, x02=10, x11=30, x12=10 → 80+90+90+80 = 340.
        assert!((sol.objective - 340.0).abs() < 1e-5, "{}", sol.objective);
    }

    #[test]
    fn larger_random_lp_is_feasible_and_bounded() {
        use rand::Rng;
        let mut rng = emb_util::seed_rng(11);
        let mut m = Model::new();
        let n = 40;
        let rows = 25;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(&format!("x{i}"), 0.0, 1.0, rng.gen_range(-1.0..1.0), false))
            .collect();
        for _ in 0..rows {
            let e = expr(
                &vars
                    .iter()
                    .map(|&v| (v, rng.gen_range(0.0..1.0)))
                    .collect::<Vec<_>>(),
            );
            m.add_constraint(e, Le, rng.gen_range(2.0..8.0));
        }
        let sol = solve_lp(&m).unwrap();
        assert!(m.is_feasible(&sol.x, 1e-6));
    }
}
