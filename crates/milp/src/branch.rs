//! Best-first branch-and-bound over the LP relaxation.

use crate::model::Model;
use crate::simplex::{solve_lp, LpStatus};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Branch-and-bound limits and tolerances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MilpOptions {
    /// Maximum branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Relative optimality gap at which the search stops early.
    pub rel_gap: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 20_000,
            int_tol: 1e-6,
            rel_gap: 1e-6,
        }
    }
}

/// Outcome classification of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Incumbent proven optimal (within the configured gap).
    Optimal,
    /// Node limit hit; the incumbent is feasible but not proven optimal.
    Feasible,
    /// No integer-feasible point exists.
    Infeasible,
    /// The relaxation (hence the MILP) is unbounded.
    Unbounded,
    /// Node limit hit before any integer-feasible point was found.
    NoSolutionFound,
}

/// Result of [`solve_milp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MilpResult {
    /// Solve outcome.
    pub status: MilpStatus,
    /// Best integer-feasible point (empty when none found).
    pub x: Vec<f64>,
    /// Objective of `x` (+inf when none found).
    pub objective: f64,
    /// Best proven lower bound on the optimum.
    pub bound: f64,
    /// Nodes explored.
    pub nodes: usize,
}

/// A pending node: bound overrides relative to the base model.
#[derive(Debug, Clone)]
struct Node {
    overrides: Vec<(usize, f64, f64)>,
    lp_bound: f64,
}

/// Min-heap ordering by LP bound (best-first for minimization).
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.lp_bound == other.lp_bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest bound.
        other
            .lp_bound
            .partial_cmp(&self.lp_bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// Solves a MILP by branch-and-bound.
///
/// The model's integer variables are branched on; continuous variables
/// are left to the LP. Designed for the block-granularity placement
/// instances of the UGache solver (hundreds of binaries).
pub fn solve_milp(model: &Model, opts: &MilpOptions) -> MilpResult {
    let int_vars = model.integer_vars();
    let mut work = model.clone();

    let mut best_x: Vec<f64> = Vec::new();
    let mut best_obj = f64::INFINITY;
    let mut nodes = 0usize;

    // Root relaxation.
    let root = match solve_with(&mut work, model, &[]) {
        Ok(sol) => sol,
        Err(LpStatus::Infeasible) => {
            return MilpResult {
                status: MilpStatus::Infeasible,
                x: vec![],
                objective: f64::INFINITY,
                bound: f64::INFINITY,
                nodes: 1,
            }
        }
        Err(LpStatus::Unbounded) => {
            return MilpResult {
                status: MilpStatus::Unbounded,
                x: vec![],
                objective: f64::NEG_INFINITY,
                bound: f64::NEG_INFINITY,
                nodes: 1,
            }
        }
        Err(LpStatus::IterationLimit) => {
            return MilpResult {
                status: MilpStatus::NoSolutionFound,
                x: vec![],
                objective: f64::INFINITY,
                bound: f64::NEG_INFINITY,
                nodes: 1,
            }
        }
    };

    // Root rounding heuristic: nearest-integer snap, keep if feasible.
    {
        let mut rx = root.x.clone();
        for &v in &int_vars {
            rx[v] = rx[v].round();
        }
        if model.is_feasible(&rx, 1e-6) {
            best_obj = model.objective_value(&rx);
            best_x = rx;
        }
    }

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        overrides: vec![],
        lp_bound: root.objective,
    });
    let mut global_bound = root.objective;

    while let Some(node) = heap.pop() {
        if nodes >= opts.max_nodes {
            break;
        }
        nodes += 1;
        global_bound = node.lp_bound;

        // Prune against incumbent.
        if node.lp_bound >= best_obj - gap_abs(best_obj, opts.rel_gap) {
            // Best-first: every remaining node is at least as bad.
            global_bound = best_obj;
            break;
        }

        let sol = match solve_with(&mut work, model, &node.overrides) {
            Ok(s) => s,
            Err(_) => continue, // infeasible or numerically stuck: prune
        };
        if sol.objective >= best_obj - gap_abs(best_obj, opts.rel_gap) {
            continue;
        }

        // Most fractional integer variable.
        let frac_var = int_vars
            .iter()
            .copied()
            .map(|v| (v, (sol.x[v] - sol.x[v].round()).abs()))
            .filter(|&(_, f)| f > opts.int_tol)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

        match frac_var {
            None => {
                // Integral: new incumbent.
                if sol.objective < best_obj {
                    best_obj = sol.objective;
                    best_x = sol.x.clone();
                }
            }
            Some((v, _)) => {
                let xv = sol.x[v];
                let (lo_ub, hi_lb) = (xv.floor(), xv.floor() + 1.0);
                let mut down = node.overrides.clone();
                down.push((v, f64::NEG_INFINITY, lo_ub));
                let mut up = node.overrides.clone();
                up.push((v, hi_lb, f64::INFINITY));
                heap.push(Node {
                    overrides: down,
                    lp_bound: sol.objective,
                });
                heap.push(Node {
                    overrides: up,
                    lp_bound: sol.objective,
                });
            }
        }
    }

    if heap.is_empty() && nodes < opts.max_nodes {
        global_bound = best_obj;
    }
    let status = if best_x.is_empty() {
        if heap.is_empty() && nodes < opts.max_nodes {
            MilpStatus::Infeasible
        } else {
            MilpStatus::NoSolutionFound
        }
    } else if heap.is_empty()
        || global_bound >= best_obj - gap_abs(best_obj, opts.rel_gap)
        || nodes < opts.max_nodes && heap.peek().is_none_or(|n| n.lp_bound >= best_obj)
    {
        MilpStatus::Optimal
    } else {
        MilpStatus::Feasible
    };
    MilpResult {
        status,
        x: best_x,
        objective: best_obj,
        bound: global_bound,
        nodes,
    }
}

fn gap_abs(obj: f64, rel: f64) -> f64 {
    if obj.is_finite() {
        rel * obj.abs().max(1.0)
    } else {
        0.0
    }
}

/// Solves the LP with per-node bound overrides applied (intersected with
/// the base bounds), restoring the work model afterwards.
fn solve_with(
    work: &mut Model,
    base: &Model,
    overrides: &[(usize, f64, f64)],
) -> Result<crate::simplex::LpResult, LpStatus> {
    for &(v, lb, ub) in overrides {
        let new_lb = work.vars[v].lb.max(lb);
        let new_ub = work.vars[v].ub.min(ub);
        if new_lb > new_ub {
            // Restore before reporting.
            for &(w, _, _) in overrides {
                work.vars[w].lb = base.vars[w].lb;
                work.vars[w].ub = base.vars[w].ub;
            }
            return Err(LpStatus::Infeasible);
        }
        work.vars[v].lb = new_lb;
        work.vars[v].ub = new_ub;
    }
    let r = solve_lp(work);
    for &(v, _, _) in overrides {
        work.vars[v].lb = base.vars[v].lb;
        work.vars[v].ub = base.vars[v].ub;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintSense::*, LinExpr, Model};

    fn expr(terms: &[(crate::model::VarId, f64)]) -> LinExpr {
        LinExpr::from_terms(terms.iter().copied())
    }

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c + 4d s.t. 3a+4b+2c+d <= 7  (as min of negs)
        let mut m = Model::new();
        let a = m.add_binary("a", -10.0);
        let b = m.add_binary("b", -13.0);
        let c = m.add_binary("c", -7.0);
        let d = m.add_binary("d", -4.0);
        m.add_constraint(expr(&[(a, 3.0), (b, 4.0), (c, 2.0), (d, 1.0)]), Le, 7.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        // Best: b + c + d = 13+7+4 = 24 (weight 7).
        assert!((r.objective + 24.0).abs() < 1e-6, "{}", r.objective);
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // LP optimum is fractional; MILP must branch.
        // max x + y s.t. 2x + 2y <= 3, x,y binary → best is 1 (not 1.5).
        let mut m = Model::new();
        let x = m.add_binary("x", -1.0);
        let y = m.add_binary("y", -1.0);
        m.add_constraint(expr(&[(x, 2.0), (y, 2.0)]), Le, 3.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn assignment_problem() {
        // 3×3 assignment, cost matrix with known optimum 5 (1+1+3).
        let cost = [[1.0, 4.0, 5.0], [3.0, 1.0, 9.0], [8.0, 7.0, 3.0]];
        let mut m = Model::new();
        let mut v = [[None; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                v[i][j] = Some(m.add_binary(&format!("x{i}{j}"), cost[i][j]));
            }
        }
        for i in 0..3 {
            let e = expr(&(0..3).map(|j| (v[i][j].unwrap(), 1.0)).collect::<Vec<_>>());
            m.add_constraint(e, Eq, 1.0);
        }
        for j in 0..3 {
            let e = expr(&(0..3).map(|i| (v[i][j].unwrap(), 1.0)).collect::<Vec<_>>());
            m.add_constraint(e, Eq, 1.0);
        }
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 5.0).abs() < 1e-6, "{}", r.objective);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Ge, 3.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Infeasible);
    }

    #[test]
    fn mixed_integer_with_continuous() {
        // min -y - 0.5 x s.t. y <= 2.5 + ... : y integer, x continuous.
        // y - x <= 1.2, x <= 0.7, y <= 3 → x=0.7, y<=1.9 → y=1 → obj -1.35.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 0.7, -0.5, false);
        let y = m.add_var("y", 0.0, 3.0, -1.0, true);
        m.add_constraint(expr(&[(y, 1.0), (x, -1.0)]), Le, 1.2);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective + 1.35).abs() < 1e-6, "{}", r.objective);
        assert!((r.x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 4.0, -1.0, false);
        m.add_constraint(expr(&[(x, 1.0)]), Le, 2.5);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective + 2.5).abs() < 1e-9);
    }

    #[test]
    fn node_limit_respected() {
        use rand::Rng;
        let mut rng = emb_util::seed_rng(5);
        let mut m = Model::new();
        let n = 30;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_binary(&format!("b{i}"), -rng.gen_range(1.0..10.0)))
            .collect();
        let e = expr(
            &vars
                .iter()
                .map(|&v| (v, rng.gen_range(1.0..5.0)))
                .collect::<Vec<_>>(),
        );
        m.add_constraint(e, Le, 20.0);
        let r = solve_milp(
            &m,
            &MilpOptions {
                max_nodes: 5,
                ..Default::default()
            },
        );
        assert!(r.nodes <= 6);
        // With the rounding heuristic an incumbent usually exists; either
        // way the status must reflect reality.
        match r.status {
            MilpStatus::Optimal | MilpStatus::Feasible => assert!(!r.x.is_empty()),
            MilpStatus::NoSolutionFound => assert!(r.x.is_empty()),
            s => panic!("unexpected status {s:?}"),
        }
    }

    #[test]
    fn bound_never_exceeds_incumbent() {
        let mut m = Model::new();
        let a = m.add_binary("a", -3.0);
        let b = m.add_binary("b", -2.0);
        m.add_constraint(expr(&[(a, 1.0), (b, 1.0)]), Le, 1.0);
        let r = solve_milp(&m, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!(r.bound <= r.objective + 1e-6);
        assert!((r.objective + 3.0).abs() < 1e-6);
    }
}
