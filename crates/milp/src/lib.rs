//! A self-contained (MI)LP solver: the reproduction's Gurobi substitute.
//!
//! UGache models cache placement as a mixed-integer linear program
//! (paper §6.2) and hands it to an off-the-shelf solver. This crate
//! implements the required machinery from scratch:
//!
//! * [`Model`] — a small modelling API (variables with bounds and
//!   integrality, linear constraints, a linear objective to minimize);
//! * [`simplex`] — a *bounded-variable* primal simplex with a two-phase
//!   start (so `0 ≤ x ≤ 1` binaries do not blow up the row count) and
//!   sparsified row operations; the original dense solver survives as
//!   [`dense::solve_lp_dense`] for differential tests and benchmarks;
//! * [`branch`] — best-first branch-and-bound over the LP relaxation with
//!   most-fractional branching and node limits.
//!
//! Scale note: UGache's block batching (§6.3) keeps instances at
//! hundreds-to-thousands of variables, which a dense simplex handles in
//! seconds. The policy crate additionally exploits that *fractional*
//! block placements are realizable (a block can be split), so the LP
//! relaxation is usually the final answer and branch-and-bound is only
//! exercised for per-entry "theoretically optimal" baselines (Figure 16).

#![deny(missing_docs)]

pub mod branch;
pub mod dense;
pub mod model;
pub mod simplex;

pub use branch::{solve_milp, MilpOptions, MilpResult, MilpStatus};
pub use dense::solve_lp_dense;
pub use model::{ConstraintSense, LinExpr, Model, VarId};
pub use simplex::{solve_lp, LpResult, LpStatus};
